//! Hydra-style user kernels.
//!
//! Compact RANS-flavoured arithmetic with the access structure of the
//! loops in Tables 3–4. Two properties matter for the CA back-end and
//! are upheld throughout:
//!
//! * loops that execute redundantly over halo layers use only
//!   *commutative, associative* per-target updates (sums and products),
//!   so execution order changes results only in the last bits;
//! * loops over the periodic / boundary / centreline sets touch each
//!   target node at most once (each node belongs to at most one periodic
//!   edge, one wall element, one centreline element), so their
//!   read-modify-write updates are deterministic.
//!
//! Argument layouts (indices into [`Args`]) are listed per kernel.

use op2_core::Args;

/// Flow-state width (ρ, ρu, ρv, ρw, ρE).
pub const NQ: usize = 5;

// ---------- weight chain (setup) ----------

/// `sumbwts` — bnd: `qo` INC (arg 0, via bnd2n), `x` READ (arg 1).
/// Accumulates boundary weights.
pub fn sumbwts(args: &Args<'_>) {
    let r = (args.get(1, 0).powi(2) + args.get(1, 1).powi(2)).sqrt();
    args.inc(0, 0, 0.5 * r);
    args.inc(0, 1, 0.25);
}

/// `periodsym` — pedges: `qo` RW at both matched nodes (args 0, 1).
/// Symmetrises weights across the periodic planes; every node belongs
/// to exactly one periodic edge, so the update is deterministic.
pub fn periodsym(args: &Args<'_>) {
    for c in 0..2 {
        let avg = 0.5 * (args.get(0, c) + args.get(1, c));
        args.set(0, c, avg);
        args.set(1, c, avg);
    }
}

/// `centreline` — cbnd: `qo` WRITE (arg 0, via c2n). Pins centreline
/// weights.
pub fn centreline(args: &Args<'_>) {
    args.set(0, 0, 1.0);
    args.set(0, 1, 0.0);
}

/// `edgelength` — edges: `qo` RW at both nodes (args 0, 1), `x` READ at
/// both nodes (args 2, 3). Scales weights by edge length —
/// multiplicative, hence order-independent per node.
pub fn edgelength(args: &Args<'_>) {
    let mut len2 = 0.0;
    for c in 0..3 {
        let d = args.get(2, c) - args.get(3, c);
        len2 += d * d;
    }
    let f = 1.0 - 0.01 * len2.sqrt().min(1.0);
    for (a, c) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
        args.set(a, c, args.get(a, c) * f);
    }
}

/// `periodicity` — pedges: `qo` RW at both matched nodes (args 0, 1).
/// Re-applies the periodic constraint after the edge sweep.
pub fn periodicity(args: &Args<'_>) {
    for c in 0..2 {
        let avg = 0.5 * (args.get(0, c) + args.get(1, c));
        args.set(0, c, avg);
        args.set(1, c, avg);
    }
}

// ---------- period chain (setup) ----------

/// `negflag` — pedges: `vol` RW at both matched nodes (args 0, 1).
/// Hydra flags periodic volumes by sign; flipping twice (the chain runs
/// it at entry and exit) restores them.
pub fn negflag(args: &Args<'_>) {
    args.set(0, 0, -args.get(0, 0));
    args.set(1, 0, -args.get(1, 0));
}

/// `limxp` — edges: `qo` RW at both nodes (args 0, 1), `vol` READ at
/// both nodes (args 2, 3). A limiter sweep: multiplicative damping by
/// the volume ratio.
pub fn limxp(args: &Args<'_>) {
    let va = args.get(2, 0).abs().max(1e-9);
    let vb = args.get(3, 0).abs().max(1e-9);
    let ratio = (va.min(vb) / va.max(vb)).sqrt();
    let f = 0.999 + 0.001 * ratio;
    for (a, c) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
        args.set(a, c, args.get(a, c) * f);
    }
}

// ---------- gradl chain ----------

/// `edgecon` — edges: `qp` INC at both nodes (args 0, 1), `ql` INC at
/// both nodes (args 2, 3), `vol` READ at both nodes (args 4, 5).
/// Gradient edge contributions.
pub fn edgecon(args: &Args<'_>) {
    let w = 1.0 / (args.get(4, 0).abs() + args.get(5, 0).abs() + 1.0);
    for v in 0..NQ {
        args.inc(0, v, 1e-4 * w);
        args.inc(1, v, -1e-4 * w);
        args.inc(2, v, 5e-5 * w);
        args.inc(3, v, -5e-5 * w);
    }
}

/// `period` — pedges: `qp` RW at both matched nodes (args 0, 1), `ql`
/// RW at both matched nodes (args 2, 3). Periodic gradient fix-up.
pub fn period(args: &Args<'_>) {
    for v in 0..NQ {
        let ap = 0.5 * (args.get(0, v) + args.get(1, v));
        args.set(0, v, ap);
        args.set(1, v, ap);
        let al = 0.5 * (args.get(2, v) + args.get(3, v));
        args.set(2, v, al);
        args.set(3, v, al);
    }
}

// ---------- vflux chain ----------

/// `initres` — nodes, direct: `vres` WRITE. Zero the viscous residual.
pub fn initres(args: &Args<'_>) {
    for v in 0..NQ {
        args.set(0, v, 0.0);
    }
}

/// `vflux_edge` — edges, the most expensive Hydra loop (18% of
/// runtime): reads `qp`, `xp`, `ql`, `qmu`, `qrg` at both nodes (args
/// 0–9), `vres` INC at both nodes (args 10, 11). Viscous flux with a
/// deformation-weighted diffusion.
pub fn vflux_edge(args: &Args<'_>) {
    // Geometric weight from the deformed coordinates.
    let mut dist2 = 0.0;
    for c in 0..3 {
        let d = args.get(2, c) - args.get(3, c);
        dist2 += d * d;
    }
    let geo = 1.0 / (dist2 + 1.0);
    let mu = 0.5 * (args.get(6, 0) + args.get(7, 0));
    let rg = 0.5 * (args.get(8, 0) + args.get(9, 0));
    let coef = geo * (mu + 0.1 * rg);
    for v in 0..NQ {
        let dq = args.get(1, v) - args.get(0, v);
        let dl = args.get(5, v) - args.get(4, v);
        let f = coef * (dq + 0.3 * dl) * 1e-3;
        args.inc(10, v, f);
        args.inc(11, v, -f);
    }
}

// ---------- iflux chain ----------

/// `initviscres` — nodes, direct: `ires` WRITE.
pub fn initviscres(args: &Args<'_>) {
    args.set(0, 0, 0.0);
}

/// `iflux_edge` — edges: `qrg` READ at both nodes (args 0, 1), `ires`
/// INC at both nodes (args 2, 3). Inviscid smoothing flux.
pub fn iflux_edge(args: &Args<'_>) {
    let f = 1e-3 * (args.get(1, 0) - args.get(0, 0));
    args.inc(2, 0, f);
    args.inc(3, 0, -f);
}

// ---------- jacob chain ----------

/// `jac_period` — pedges: `jac` RW (args 0, 1) and `jaca` RW (args 2,
/// 3) at both matched nodes. Periodic Jacobian symmetrisation.
pub fn jac_period(args: &Args<'_>) {
    for v in 0..4 {
        let j = 0.5 * (args.get(0, v) + args.get(1, v));
        args.set(0, v, j);
        args.set(1, v, j);
        let ja = 0.5 * (args.get(2, v) + args.get(3, v));
        args.set(2, v, ja);
        args.set(3, v, ja);
    }
}

/// `jac_centreline` — cbnd: `jac` WRITE (arg 0, via c2n). Pins the
/// centreline Jacobian block to identity.
pub fn jac_centreline(args: &Args<'_>) {
    args.set(0, 0, 1.0);
    args.set(0, 1, 0.0);
    args.set(0, 2, 0.0);
    args.set(0, 3, 1.0);
}

/// `jac_corrections` — bnd: `jac` RW (arg 0, via bnd2n). Wall
/// corrections; each wall node appears exactly once in `bnd`.
pub fn jac_corrections(args: &Args<'_>) {
    for v in 0..4 {
        let j = args.get(0, v);
        args.set(0, v, 0.9 * j + if v == 0 || v == 3 { 0.1 } else { 0.0 });
    }
}

// ---------- glue loops (outside the benchmarked chains) ----------

/// `update_state` — nodes, direct: `qp` RW, `ql` WRITE, `qmu` WRITE,
/// `qrg` WRITE, `xp` WRITE, `qo` READ, `x` READ. Refreshes (and
/// dirties) every dat the vflux chain exchanges — the per-iteration
/// producer that makes those halos dirty, as in the real solver.
pub fn update_state(args: &Args<'_>) {
    let w0 = args.get(5, 0);
    for v in 0..NQ {
        let qp = args.get(0, v);
        args.set(0, v, qp * 0.999 + 0.001 * w0);
        args.set(1, v, qp * 0.5);
    }
    let qp0 = args.get(0, 0);
    args.set(2, 0, 0.9 + 0.1 * qp0.abs().min(2.0));
    args.set(3, 0, qp0 * 0.25);
    for c in 0..3 {
        args.set(4, c, args.get(6, c) * (1.0 + 1e-4 * qp0));
    }
}

/// `smooth_rg` — nodes, direct: `qrg` RW, `ires` READ. Re-dirties `qrg`
/// between the vflux and iflux chains (Hydra's gradient smoother), so
/// iflux genuinely exchanges it, per Table 4.
pub fn smooth_rg(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) * 0.995 + 0.01 * args.get(1, 0));
}

/// `jac_assemble` — nodes, direct: `jac` WRITE, `jaca` WRITE, `qp`
/// READ. Builds (and dirties) the Jacobian blocks before the jacob
/// chain.
pub fn jac_assemble(args: &Args<'_>) {
    let q0 = args.get(2, 0);
    let q1 = args.get(2, 1);
    for v in 0..4 {
        let j = if v == 0 || v == 3 { 1.0 + 0.01 * q0 } else { 0.005 * q1 };
        args.set(0, v, j);
        args.set(1, v, 0.5 * j);
    }
}

/// `rk_accumulate` — nodes, direct: `qp` RW, `vres` READ, `ires` READ,
/// `jac` READ. The Runge–Kutta stage update consuming the residuals.
pub fn rk_accumulate(args: &Args<'_>) {
    let damp = args.get(3, 0).clamp(0.5, 2.0);
    let ir = args.get(2, 0);
    for v in 0..NQ {
        let qp = args.get(0, v);
        args.set(0, v, qp + (args.get(1, v) + 0.2 * ir) / damp * 0.1);
    }
}

/// `residual_norm` — nodes, direct: `vres` READ, gbl INC. The
/// convergence monitor (a global reduction — chain terminator).
pub fn residual_norm(args: &Args<'_>) {
    let mut s = 0.0;
    for v in 0..NQ {
        let r = args.get(0, v);
        s += r * r;
    }
    args.inc(1, 0, s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_core::kernel::ArgSlot;
    use op2_core::AccessMode;

    fn run<const N: usize>(
        kernel: fn(&Args<'_>),
        bufs: &mut [(&mut [f64], AccessMode); N],
    ) {
        let slots: Vec<ArgSlot> = bufs
            .iter_mut()
            .map(|(b, m)| ArgSlot {
                ptr: b.as_mut_ptr(),
                dim: b.len() as u32,
                mode: *m,
            })
            .collect();
        kernel(&Args::new(&slots));
    }

    #[test]
    fn periodsym_symmetrises() {
        let mut a = [1.0, 3.0];
        let mut b = [3.0, 1.0];
        run(periodsym, &mut [(&mut a, AccessMode::Rw), (&mut b, AccessMode::Rw)]);
        assert_eq!(a, [2.0, 2.0]);
        assert_eq!(b, [2.0, 2.0]);
    }

    #[test]
    fn negflag_is_involutive() {
        let mut a = [1.5];
        let mut b = [-2.5];
        run(negflag, &mut [(&mut a, AccessMode::Rw), (&mut b, AccessMode::Rw)]);
        run(negflag, &mut [(&mut a, AccessMode::Rw), (&mut b, AccessMode::Rw)]);
        assert_eq!(a, [1.5]);
        assert_eq!(b, [-2.5]);
    }

    #[test]
    fn iflux_edge_antisymmetric() {
        let mut ra = [1.0];
        let mut rb = [3.0];
        let mut ia = [0.0];
        let mut ib = [0.0];
        run(
            iflux_edge,
            &mut [
                (&mut ra, AccessMode::Read),
                (&mut rb, AccessMode::Read),
                (&mut ia, AccessMode::Inc),
                (&mut ib, AccessMode::Inc),
            ],
        );
        assert!((ia[0] + ib[0]).abs() < 1e-15);
        assert!(ia[0] > 0.0);
    }

    #[test]
    fn vflux_edge_conserves() {
        let mut qp_a = [1.0, 0.2, 0.0, 0.0, 2.0];
        let mut qp_b = [1.1, 0.1, 0.0, 0.0, 2.1];
        let mut xp_a = [0.0, 0.0, 0.0];
        let mut xp_b = [1.0, 0.0, 0.0];
        let mut ql_a = [0.5; 5];
        let mut ql_b = [0.6; 5];
        let mut mu_a = [1.0];
        let mut mu_b = [1.2];
        let mut rg_a = [0.3];
        let mut rg_b = [0.4];
        let mut va = [0.0; 5];
        let mut vb = [0.0; 5];
        run(
            vflux_edge,
            &mut [
                (&mut qp_a, AccessMode::Read),
                (&mut qp_b, AccessMode::Read),
                (&mut xp_a, AccessMode::Read),
                (&mut xp_b, AccessMode::Read),
                (&mut ql_a, AccessMode::Read),
                (&mut ql_b, AccessMode::Read),
                (&mut mu_a, AccessMode::Read),
                (&mut mu_b, AccessMode::Read),
                (&mut rg_a, AccessMode::Read),
                (&mut rg_b, AccessMode::Read),
                (&mut va, AccessMode::Inc),
                (&mut vb, AccessMode::Inc),
            ],
        );
        for v in 0..NQ {
            assert!((va[v] + vb[v]).abs() < 1e-15, "component {v}");
        }
        assert!(va.iter().any(|&f| f != 0.0));
    }

    #[test]
    fn jac_centreline_writes_identity() {
        let mut j = [9.0, 9.0, 9.0, 9.0];
        run(jac_centreline, &mut [(&mut j, AccessMode::Write)]);
        assert_eq!(j, [1.0, 0.0, 0.0, 1.0]);
    }
}
