//! # hydra-sim
//!
//! A structural reproduction of **OP2-Hydra** — Rolls-Royce's production
//! RANS solver as re-engineered over OP2 (Mudalige et al. 2022) — at the
//! granularity the paper benchmarks: the six loop-chains of Tables 3–4
//! (`weight`, `period`, `gradl`, `vflux`, `iflux`, `jacob`), embedded in
//! a time-marching iteration, over an annular rotor-passage mesh with
//! periodic planes, hub/casing boundary and centreline sets.
//!
//! The real Hydra is ~100 kLoC of Fortran with ~500 parallel loops; its
//! CA behaviour on each chain, however, is fully determined by the
//! chain's iteration sets and access descriptors, which this crate
//! replicates loop by loop (see Tables 3–4 and `app::Hydra`). Kernels
//! are compact CFD-flavoured arithmetic with the right operand structure
//! — commutative where executed redundantly, per the order-independence
//! assumption sparse tiling relies on (§2.2).
//!
//! ## Halo extents: `Safe` vs `Paper`
//!
//! Our dependency analysis ([`op2_core::chain::calc_halo_extents`]) is
//! *transitive*: chains of read-write loops over the periodic-edge set
//! ladder up (period: `[5,4,3,2,1,1]`). The paper's Algorithm 3 tracks
//! dats independently and reports shallower extents (period:
//! `[2,2,1,2,1,1]`), which is sound for Hydra only because periodic-edge
//! loops perturb a thin subset of each dat. Both are supported:
//! [`app::ExtentMode::Safe`] executes with provably-consistent extents
//! (strict validity checks; bit-level agreement with the sequential
//! reference up to float reassociation), while [`app::ExtentMode::Paper`]
//! pins the published Table 3–4 extents and runs the chains in *relaxed*
//! mode (one sync per chain, bounded staleness counted in the traces) —
//! matching what the paper's configuration file does. EXPERIMENTS.md
//! records both.

pub mod app;
pub mod kernels;
pub mod run;

pub use app::{ExtentMode, Hydra, HydraParams};
pub use run::{
    register_service_mesh, run_auto, run_ca, run_ca_dataflow, run_ca_fused, run_ca_rebalanced,
    run_ca_service, run_ca_staged, run_ca_supervised, run_ca_threaded, run_ca_tiled,
    run_ca_tiled_threaded, run_op2, run_op2_staged, run_sequential, run_sequential_staged,
    run_tuned, service_job,
};
