//! Hydra command-line driver.
//!
//! ```text
//! cargo run --release -p hydra-sim --bin hydra -- \
//!     --n 10 --ranks 4 --iters 3 --backend ca --extents paper
//! ```
//!
//! Backends: `seq`, `op2`, `ca`. `--extents safe|paper` selects the
//! transitive (strict) or published (relaxed) halo extents for the CA
//! back-end. Prints each chain's execution plan and the run statistics.

use hydra_sim::{run_ca_staged, run_op2_staged, run_sequential_staged, ExtentMode, Hydra, HydraParams};
use op2_mesh::AnnulusParams;
use op2_partition::{build_layouts, derive_ownership, rib_partition};

struct Opts {
    n: usize,
    ranks: usize,
    iters: usize,
    stages: usize,
    backend: String,
    extents: String,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        n: 10,
        ranks: 4,
        iters: 3,
        stages: 1,
        backend: "ca".into(),
        extents: "paper".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = || {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--n" => o.n = val().parse().expect("--n"),
            "--ranks" => o.ranks = val().parse().expect("--ranks"),
            "--iters" => o.iters = val().parse().expect("--iters"),
            "--stages" => o.stages = val().parse().expect("--stages"),
            "--backend" => o.backend = val(),
            "--extents" => o.extents = val(),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --n <grid> --ranks <n> --iters <n> --stages <rk stages> \
                     --backend seq|op2|ca --extents safe|paper"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}`"),
        }
        i += 2;
    }
    o
}

fn main() {
    let o = parse_opts();
    let mode = match o.extents.as_str() {
        "safe" => ExtentMode::Safe,
        "paper" => ExtentMode::Paper,
        other => panic!("unknown extents `{other}` (safe|paper)"),
    };
    let mut app = Hydra::new(HydraParams {
        mesh: AnnulusParams::small(o.n, o.n, o.n),
    });
    println!(
        "Hydra passage: {} nodes, {} edges, {} pedges, {} bnd, {} cbnd; \
         backend = {}, extents = {}",
        app.mesh.dom.set(app.mesh.nodes).size,
        app.mesh.dom.set(app.mesh.edges).size,
        app.mesh.dom.set(app.mesh.pedges).size,
        app.mesh.dom.set(app.mesh.bnd).size,
        app.mesh.dom.set(app.mesh.cbnd).size,
        o.backend,
        o.extents,
    );
    for name in Hydra::chain_names() {
        let chain = app.chain(name, mode).expect("chain valid");
        print!("{}", chain.describe(&app.mesh.dom));
    }

    let outcome = match o.backend.as_str() {
        "seq" => run_sequential_staged(&mut app, o.iters, o.stages),
        "op2" | "ca" => {
            let depth = app.required_depth(mode).max(2);
            let base = rib_partition(app.mesh.node_coords(), 3, o.ranks);
            let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, o.ranks);
            let layouts = build_layouts(&app.mesh.dom, &own, depth);
            if o.backend == "op2" {
                run_op2_staged(&mut app, &layouts, o.iters, o.stages)
            } else {
                run_ca_staged(&mut app, &layouts, o.iters, mode, o.stages)
            }
        }
        other => panic!("unknown backend `{other}` (seq|op2|ca)"),
    };

    println!(
        "\nresidual norm after {} iterations: {:.6e}",
        o.iters, outcome.norm
    );
    if !outcome.traces.is_empty() {
        let msgs: usize = outcome.traces.iter().map(|t| t.total_msgs()).sum();
        let stale: usize = outcome
            .traces
            .iter()
            .flat_map(|t| t.chains.iter())
            .map(|c| c.stale_reads)
            .sum();
        println!("messages: {msgs}; tolerated stale reads: {stale}");
    }
}
