//! Drivers: sequential reference, OP2 baseline, CA back-end, and the
//! model-driven adaptive back-end ([`run_auto`]).

use crate::app::{ExtentMode, Hydra, Step};
use op2_core::seq;
use op2_model::Machine;
use op2_partition::RankLayout;
use op2_runtime::exec::{run_chain, run_chain_relaxed, run_chain_tiled, run_loop};
use op2_runtime::{
    run_distributed, run_distributed_with, run_supervised, run_supervised_with_state, ExecMode,
    FuseMode, Job, JobStep, RankState, RankTrace, RebalancePolicy, RebalanceRec, RunOptions,
    RuntimeError, Service, ServiceError, SuperviseOptions, Threading, Tuner, TunerMode,
};
use std::sync::{Arc, Mutex};

/// Result of a driver run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final residual norm.
    pub norm: f64,
    /// Per-rank traces (empty for sequential).
    pub traces: Vec<RankTrace>,
}

fn seq_steps(app: &mut Hydra, steps: &[Step]) {
    for step in steps {
        match step {
            Step::Loop(l) => {
                seq::run_loop(&mut app.mesh.dom, l);
            }
            Step::Chain(c, _) => {
                for l in &c.loops {
                    seq::run_loop(&mut app.mesh.dom, l);
                }
            }
        }
    }
}

/// Run `iters` iterations sequentially.
pub fn run_sequential(app: &mut Hydra, iters: usize) -> RunOutcome {
    run_sequential_staged(app, iters, 1)
}

/// [`run_sequential`] with `stages` Runge–Kutta stages per iteration.
pub fn run_sequential_staged(app: &mut Hydra, iters: usize, stages: usize) -> RunOutcome {
    let setup = app.setup(false, ExtentMode::Safe);
    let iteration = app.rk_iteration(false, ExtentMode::Safe, stages);
    let norm_spec = app.norm_loop();
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    seq_steps(app, &setup);
    let mut norm = 0.0;
    for _ in 0..iters {
        seq_steps(app, &iteration);
        let r = seq::run_loop(&mut app.mesh.dom, &norm_spec);
        norm = (r.gbls[0][0] / n).sqrt();
    }
    RunOutcome {
        norm,
        traces: Vec::new(),
    }
}

fn run_dist(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    ca: bool,
    mode: ExtentMode,
    stages: usize,
    opts: &RunOptions,
) -> RunOutcome {
    let setup = app.setup(ca, mode);
    let iteration = app.rk_iteration(ca, mode, stages);
    let norm_spec = app.norm_loop();
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    let exec_steps = |env: &mut op2_runtime::RankEnv<'_>,
                      steps: &[Step]|
     -> Result<(), op2_runtime::RuntimeError> {
        for step in steps {
            match step {
                Step::Loop(l) => {
                    run_loop(env, l)?;
                }
                Step::Chain(c, relaxed) => {
                    if *relaxed {
                        run_chain_relaxed(env, c)?;
                    } else {
                        run_chain(env, c)?;
                    }
                }
            }
        }
        Ok(())
    };
    let out = run_distributed_with(&mut app.mesh.dom, layouts, opts, |env| {
        exec_steps(env, &setup)?;
        let mut norm = 0.0;
        for _ in 0..iters {
            exec_steps(env, &iteration)?;
            let r = run_loop(env, &norm_spec)?;
            norm = (r.gbls[0][0] / n).sqrt();
        }
        Ok(norm)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let norm = match &results[0] {
        Ok(n) => *n,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { norm, traces }
}

/// Distributed, standard OP2 back-end (every chain flattened).
pub fn run_op2(app: &mut Hydra, layouts: &[RankLayout], iters: usize) -> RunOutcome {
    run_dist(
        app,
        layouts,
        iters,
        false,
        ExtentMode::Safe,
        1,
        &RunOptions::default(),
    )
}

/// Distributed, CA back-end with the chosen extent mode.
pub fn run_ca(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
) -> RunOutcome {
    run_dist(
        app,
        layouts,
        iters,
        true,
        mode,
        1,
        &RunOptions::default(),
    )
}

/// Run the fusable `state_jac` glue pair ([`Hydra::fused_chain`]) for
/// `iters` iterations under the given [`FuseMode`]: `Off` executes it
/// loop-by-loop, `On` through the fused whole-chain schedule — both
/// node-direct kernels interleaved per element — and `Auto` defers to
/// the profit arm. Bitwise identical across modes and thread counts.
pub fn run_ca_fused(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    fuse: FuseMode,
    threading: Option<Threading>,
) -> RunOutcome {
    let init = app.init_loop();
    let chain = app.fused_chain().expect("fused chain is valid");
    let norm_spec = app.norm_loop();
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    let mut opts = RunOptions::default().fuse(fuse);
    if let Some(t) = threading {
        opts = opts.threading(t);
    }
    let out = run_distributed_with(&mut app.mesh.dom, layouts, &opts, |env| {
        run_loop(env, &init)?;
        let mut norm = 0.0;
        for _ in 0..iters {
            run_chain(env, &chain)?;
            let r = run_loop(env, &norm_spec)?;
            norm = (r.gbls[0][0] / n).sqrt();
        }
        Ok(norm)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let norm = match &results[0] {
        Ok(n) => *n,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { norm, traces }
}

/// [`run_ca`] under the self-healing supervisor: chain-boundary
/// checkpointing, coordinated rollback on rank death or straggler
/// timeout, and bitwise-deterministic replay, bounded by the recovery
/// budget in `opts`. Returns [`RuntimeError::RecoveryExhausted`] when
/// the budget runs out.
pub fn run_ca_supervised(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    opts: &SuperviseOptions,
) -> Result<RunOutcome, RuntimeError> {
    let setup = app.setup(true, mode);
    let iteration = app.rk_iteration(true, mode, 1);
    let norm_spec = app.norm_loop();
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    let exec_steps = |env: &mut op2_runtime::RankEnv<'_>,
                      steps: &[Step]|
     -> Result<(), RuntimeError> {
        for step in steps {
            match step {
                Step::Loop(l) => {
                    run_loop(env, l)?;
                }
                Step::Chain(c, relaxed) => {
                    if *relaxed {
                        run_chain_relaxed(env, c)?;
                    } else {
                        run_chain(env, c)?;
                    }
                }
            }
        }
        Ok(())
    };
    let out = run_supervised(&mut app.mesh.dom, layouts, opts, |env| {
        exec_steps(env, &setup)?;
        let mut norm = 0.0;
        for _ in 0..iters {
            exec_steps(env, &iteration)?;
            let r = run_loop(env, &norm_spec)?;
            norm = (r.gbls[0][0] / n).sqrt();
        }
        Ok(norm)
    })?;
    let op2_runtime::DistOutcome { traces, results } = out;
    let norm = match &results[0] {
        Ok(n) => *n,
        Err(f) => panic!("supervised run reported success with a failed rank: {f}"),
    };
    Ok(RunOutcome { norm, traces })
}

/// [`run_ca_supervised`] with **online rebalancing** (the Hydra twin of
/// `mg-cfd`'s `run_ca_rebalanced`): segmented supervised execution over
/// shared state slots, windowed imbalance detection at segment
/// boundaries, cost-weighted re-shard + element migration over the
/// transport, and an epoch fence on the carried state before the next
/// segment runs on the new layouts. The residual norm matches a
/// never-migrated [`run_ca`] of the same `mode` bitwise (strict chains;
/// relaxed extent trades exactness by design), while partition-boundary
/// dat entries may drift by ~1 ULP of Inc reassociation — exactly as
/// any two *static* partitions do (see `mg-cfd`'s driver doc and
/// DESIGN.md §15).
pub fn run_ca_rebalanced(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    opts: &SuperviseOptions,
    policy: &RebalancePolicy,
) -> Result<(RunOutcome, RebalanceRec, Vec<RankLayout>), RuntimeError> {
    let nparts = layouts.len();
    let setup = app.setup(true, mode);
    let iteration = app.rk_iteration(true, mode, 1);
    let norm_spec = app.norm_loop();
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    let base_set = app.mesh.nodes;
    let coords = app.mesh.coords;
    let exec_steps =
        |env: &mut op2_runtime::RankEnv<'_>, steps: &[Step]| -> Result<(), RuntimeError> {
            for step in steps {
                match step {
                    Step::Loop(l) => {
                        run_loop(env, l)?;
                    }
                    Step::Chain(c, relaxed) => {
                        if *relaxed {
                            run_chain_relaxed(env, c)?;
                        } else {
                            run_chain(env, c)?;
                        }
                    }
                }
            }
            Ok(())
        };

    let slots: Vec<Arc<Mutex<RankState>>> = (0..nparts)
        .map(|_| Arc::new(Mutex::new(RankState::new())))
        .collect();
    let mut cur = layouts.to_vec();
    let seg_len = if policy.segment_iters == 0 {
        iters.max(1)
    } else {
        policy.segment_iters
    };
    let mut done = 0usize;
    let mut migrations = 0usize;
    let mut post_migration = false;
    let mut rec = RebalanceRec::default();
    let mut norm = 0.0;
    let mut traces = Vec::new();
    while done < iters || done == 0 {
        let seg = seg_len.min(iters - done);
        let first = done == 0;
        let mut sopts = opts.clone();
        if post_migration {
            sopts.run.faults = policy.post_migration_faults.clone();
            post_migration = false;
        }
        let out = run_supervised_with_state(&mut app.mesh.dom, &cur, &sopts, &slots, |env| {
            if first {
                exec_steps(env, &setup)?;
            }
            let mut norm = 0.0;
            for _ in 0..seg {
                exec_steps(env, &iteration)?;
                let r = run_loop(env, &norm_spec)?;
                norm = (r.gbls[0][0] / n).sqrt();
            }
            Ok(norm)
        })?;
        let op2_runtime::DistOutcome { traces: t, results } = out;
        if seg > 0 {
            norm = match &results[0] {
                Ok(r) => *r,
                Err(f) => panic!("supervised run reported success with a failed rank: {f}"),
            };
        }
        traces = t;
        done += seg;
        if done >= iters {
            break;
        }
        if policy.max_migrations != 0 && migrations >= policy.max_migrations {
            continue;
        }
        if let Some(est) = op2_runtime::detect(&traces, &policy.cfg) {
            let costs = match &policy.costs {
                Some(c) => c.clone(),
                None => op2_runtime::element_costs(&app.mesh.dom, base_set, &cur, &est),
            };
            let mut ship_opts = opts.run.clone();
            ship_opts.faults = None;
            if let Some(outcome) = op2_runtime::rebalance(
                &mut app.mesh.dom,
                base_set,
                coords,
                3,
                &cur,
                &costs,
                est.imbalance_milli(),
                &ship_opts,
            )? {
                op2_runtime::fence_slots(&slots);
                cur = outcome.layouts;
                rec.add(&outcome.rec);
                migrations += 1;
                post_migration = true;
            }
        }
    }
    Ok((RunOutcome { norm, traces }, rec, cur))
}

/// Describe `iters` CA iterations of this app as a service [`Job`]:
/// the setup program as setup steps, one RK iteration as the repeated
/// step list (strict chains as [`JobStep::Chain`], relaxed chains as
/// [`JobStep::ChainRelaxed`]), and the pure norm reduction as the
/// finish step. Mirrors [`run_ca`]'s instruction stream.
pub fn service_job(app: &Hydra, iters: usize, mode: ExtentMode) -> Job {
    let map_steps = |steps: Vec<Step>| -> Vec<JobStep> {
        steps
            .into_iter()
            .map(|s| match s {
                Step::Loop(l) => JobStep::Loop(l),
                Step::Chain(c, relaxed) => {
                    if relaxed {
                        JobStep::ChainRelaxed(c)
                    } else {
                        JobStep::Chain(c)
                    }
                }
            })
            .collect()
    };
    Job::new("hydra-ca", map_steps(app.rk_iteration(true, mode, 1)), iters)
        .setup(map_steps(app.setup(true, mode)))
        .finish(vec![JobStep::Loop(app.norm_loop())])
}

/// Register this app's domain as a resident service world.
pub fn register_service_mesh(svc: &Service, app: &Hydra, layouts: Vec<RankLayout>) -> u64 {
    svc.register_mesh(app.mesh.dom.clone(), layouts)
}

/// [`run_ca`] through a resident [`Service`]: one submitted job against
/// a registered mesh, returning the same residual norm bitwise; repeat
/// jobs on the mesh run warm (shared plans, recycled buffer pools).
pub fn run_ca_service(
    svc: &Service,
    mesh: u64,
    app: &Hydra,
    iters: usize,
    mode: ExtentMode,
) -> Result<RunOutcome, ServiceError> {
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    let out = svc.submit(mesh, &service_job(app, iters, mode))?;
    let norm = (out.gbls[0][0][0] / n).sqrt();
    Ok(RunOutcome {
        norm,
        traces: out.trace.ranks,
    })
}

/// [`run_ca`] with `threading.n_threads` colored pool threads per rank.
/// Bitwise identical to [`run_ca`] by the order-preserving block
/// coloring contract (see `op2_core::par`).
pub fn run_ca_threaded(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    threading: Threading,
) -> RunOutcome {
    run_dist(
        app,
        layouts,
        iters,
        true,
        mode,
        1,
        &RunOptions::default().threading(threading),
    )
}

/// [`run_ca_threaded`] under an explicit schedule drain policy
/// (`OP2_EXEC`) and first-touch chunk pinning (`OP2_THREAD_PIN`):
/// `ExecMode::Dataflow` drains every lowered schedule through the
/// per-chunk dependency-counter executor instead of one pool barrier
/// per level. Bitwise identical to [`run_ca`] under either drain.
pub fn run_ca_dataflow(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    threading: Threading,
    exec: ExecMode,
    pin: bool,
) -> RunOutcome {
    run_dist(
        app,
        layouts,
        iters,
        true,
        mode,
        1,
        &RunOptions::default()
            .threading(threading)
            .exec(exec)
            .thread_pin(pin),
    )
}

/// [`run_ca`] with intra-rank sparse tiling of every *strict* chain
/// (`n_tiles` tiles per rank through the leveled [`op2_core::Schedule`]
/// lowering); relaxed chains keep their pinned-extent executor, whose
/// accuracy contract the tiling inspection does not model.
pub fn run_ca_tiled(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    n_tiles: usize,
) -> RunOutcome {
    run_dist_tiled(app, layouts, iters, mode, n_tiles, &RunOptions::default())
}

/// [`run_ca_tiled`] with `threading.n_threads` pool threads per rank:
/// same-level (provably conflict-free) tiles run concurrently, bitwise
/// identical to the sequential tiled executor at any thread count.
pub fn run_ca_tiled_threaded(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    n_tiles: usize,
    threading: Threading,
) -> RunOutcome {
    run_dist_tiled(
        app,
        layouts,
        iters,
        mode,
        n_tiles,
        &RunOptions::default().threading(threading),
    )
}

fn run_dist_tiled(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    n_tiles: usize,
    opts: &RunOptions,
) -> RunOutcome {
    let setup = app.setup(true, mode);
    let iteration = app.rk_iteration(true, mode, 1);
    let norm_spec = app.norm_loop();
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    let exec_steps = |env: &mut op2_runtime::RankEnv<'_>,
                      steps: &[Step]|
     -> Result<(), op2_runtime::RuntimeError> {
        for step in steps {
            match step {
                Step::Loop(l) => {
                    run_loop(env, l)?;
                }
                Step::Chain(c, relaxed) => {
                    if *relaxed {
                        run_chain_relaxed(env, c)?;
                    } else {
                        run_chain_tiled(env, c, n_tiles)?;
                    }
                }
            }
        }
        Ok(())
    };
    let out = run_distributed_with(&mut app.mesh.dom, layouts, opts, |env| {
        exec_steps(env, &setup)?;
        let mut norm = 0.0;
        for _ in 0..iters {
            exec_steps(env, &iteration)?;
            let r = run_loop(env, &norm_spec)?;
            norm = (r.gbls[0][0] / n).sqrt();
        }
        Ok(norm)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let norm = match &results[0] {
        Ok(n) => *n,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { norm, traces }
}

/// [`run_op2`] with `stages` Runge–Kutta stages per iteration (Hydra's
/// production time-marcher uses 5, §4.2).
pub fn run_op2_staged(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    stages: usize,
) -> RunOutcome {
    run_dist(
        app,
        layouts,
        iters,
        false,
        ExtentMode::Safe,
        stages,
        &RunOptions::default(),
    )
}

/// [`run_ca`] with `stages` Runge–Kutta stages per iteration.
pub fn run_ca_staged(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    stages: usize,
) -> RunOutcome {
    run_dist(app, layouts, iters, true, mode, stages, &RunOptions::default())
}

/// Distributed, **adaptive** back-end: strict chains go through a
/// per-rank [`Tuner`] (calibrate once, classify with the §3.2 model on
/// `mach`, dispatch repeats to the winner); relaxed chains — whose
/// pinned extents encode an application-level accuracy contract, not a
/// performance choice — always run the planned relaxed chain executor.
/// `fixed_g` pins the per-iteration cost for deterministic decisions.
pub fn run_auto(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
    mach: &Machine,
    tmode: TunerMode,
    fixed_g: Option<f64>,
) -> RunOutcome {
    let setup = app.setup(true, mode);
    let iteration = app.rk_iteration(true, mode, 1);
    let norm_spec = app.norm_loop();
    let n = app.mesh.dom.set(app.mesh.nodes).size as f64;
    let out = run_distributed(&mut app.mesh.dom, layouts, |env| {
        let mut tuner = Tuner::new(mach.clone(), tmode);
        if let Some(g) = fixed_g {
            tuner = tuner.with_fixed_g(g);
        }
        let exec_steps = |env: &mut op2_runtime::RankEnv<'_>,
                          tuner: &mut Tuner,
                          steps: &[Step]|
         -> Result<(), op2_runtime::RuntimeError> {
            for step in steps {
                match step {
                    Step::Loop(l) => {
                        run_loop(env, l)?;
                    }
                    Step::Chain(c, relaxed) => {
                        if *relaxed {
                            run_chain_relaxed(env, c)?;
                        } else {
                            tuner.run_chain(env, c)?;
                        }
                    }
                }
            }
            Ok(())
        };
        exec_steps(env, &mut tuner, &setup)?;
        let mut norm = 0.0;
        for _ in 0..iters {
            exec_steps(env, &mut tuner, &iteration)?;
            let r = run_loop(env, &norm_spec)?;
            norm = (r.gbls[0][0] / n).sqrt();
        }
        Ok(norm)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let norm = match &results[0] {
        Ok(n) => *n,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { norm, traces }
}

/// [`run_auto`] with deployment defaults: ARCHER2-like machine model,
/// measured costs, policy from the `OP2_TUNER` env var.
pub fn run_tuned(
    app: &mut Hydra,
    layouts: &[RankLayout],
    iters: usize,
    mode: ExtentMode,
) -> RunOutcome {
    run_auto(
        app,
        layouts,
        iters,
        mode,
        &Machine::archer2(),
        TunerMode::from_env(),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::HydraParams;
    use op2_partition::{build_layouts, derive_ownership, rib_partition};

    fn layouts_for(app: &Hydra, nparts: usize, depth: usize) -> Vec<RankLayout> {
        // Hydra's default partitioner is recursive inertial bisection.
        let base = rib_partition(app.mesh.node_coords(), 3, nparts);
        let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, nparts);
        build_layouts(&app.mesh.dom, &own, depth)
    }

    /// Error normalised by the dat's global magnitude: per-component
    /// relative error is meaningless for antisymmetric flux sums that
    /// legitimately cancel to ~0.
    fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
        let scale = a
            .iter()
            .chain(b)
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-30);
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs() / scale)
            .fold(0.0, f64::max)
    }

    /// Safe-mode CA and the OP2 baseline both match the sequential
    /// reference to float-reassociation tolerance.
    #[test]
    fn safe_ca_matches_sequential() {
        let params = HydraParams::small(7);
        let iters = 2;

        let mut seq_app = Hydra::new(params);
        let s = run_sequential(&mut seq_app, iters);

        let mut op2_app = Hydra::new(params);
        let l = layouts_for(&op2_app, 4, op2_app.required_depth(ExtentMode::Safe));
        let o = run_op2(&mut op2_app, &l, iters);

        let mut ca_app = Hydra::new(params);
        let l2 = layouts_for(&ca_app, 4, ca_app.required_depth(ExtentMode::Safe));
        let c = run_ca(&mut ca_app, &l2, iters, ExtentMode::Safe);

        for dat in [seq_app.qp, seq_app.qo, seq_app.vres, seq_app.jac] {
            let name = &seq_app.mesh.dom.dat(dat).name;
            let e1 = max_rel_err(
                &seq_app.mesh.dom.dat(dat).data,
                &op2_app.mesh.dom.dat(dat).data,
            );
            let e2 = max_rel_err(
                &seq_app.mesh.dom.dat(dat).data,
                &ca_app.mesh.dom.dat(dat).data,
            );
            assert!(e1 < 1e-10, "OP2 diverged on {name}: {e1}");
            assert!(e2 < 1e-10, "CA diverged on {name}: {e2}");
        }
        assert!(s.norm.is_finite() && o.norm.is_finite() && c.norm.is_finite());
        assert!((s.norm - c.norm).abs() <= 1e-10 * s.norm.abs().max(1e-30));
    }

    /// Paper-mode (relaxed) execution stays finite and close to the
    /// reference: staleness is confined to boundary-subset rings.
    #[test]
    fn paper_mode_runs_and_counts_staleness() {
        let params = HydraParams::small(7);
        let iters = 2;

        let mut seq_app = Hydra::new(params);
        let s = run_sequential(&mut seq_app, iters);

        let mut ca_app = Hydra::new(params);
        let l = layouts_for(&ca_app, 4, ca_app.required_depth(ExtentMode::Paper));
        let c = run_ca(&mut ca_app, &l, iters, ExtentMode::Paper);

        assert!(c.norm.is_finite());
        // The result tracks the reference loosely (staleness is bounded).
        assert!(
            (s.norm - c.norm).abs() <= 0.05 * s.norm.abs().max(1e-30),
            "paper-mode norm drifted: {} vs {}",
            c.norm,
            s.norm
        );
        // Staleness is actually detected somewhere (the weight/period
        // chains pin extents below the transitive requirement).
        let total_stale: usize = c
            .traces
            .iter()
            .flat_map(|t| t.chains.iter())
            .map(|cr| cr.stale_reads)
            .sum();
        assert!(total_stale > 0, "expected counted stale reads");
    }

    /// The adaptive back-end matches the sequential reference in safe
    /// mode; strict chains get rank-agreed tuner decisions, relaxed
    /// chains bypass the tuner, and repeat iterations hit the plan cache.
    #[test]
    fn tuned_matches_sequential() {
        let params = HydraParams::small(7);
        let iters = 3;

        let mut seq_app = Hydra::new(params);
        let s = run_sequential(&mut seq_app, iters);

        let mut app = Hydra::new(params);
        let l = layouts_for(&app, 4, app.required_depth(ExtentMode::Safe));
        let c = run_auto(
            &mut app,
            &l,
            iters,
            ExtentMode::Safe,
            &Machine::archer2(),
            TunerMode::Auto,
            Some(5e-8),
        );
        assert!(c.norm.is_finite());
        assert!(
            (s.norm - c.norm).abs() <= 1e-10 * s.norm.abs().max(1e-30),
            "adaptive norm diverged: {} vs {}",
            c.norm,
            s.norm
        );

        // One calibration record per distinct strict chain, identical
        // across ranks (modulo the per-rank measured wall clock).
        let agreed = |t: &RankTrace| -> Vec<_> {
            t.tuner
                .iter()
                .map(|r| op2_runtime::TunerRec {
                    t_measured_ns: 0,
                    ..r.clone()
                })
                .collect()
        };
        let first = agreed(&c.traces[0]);
        assert!(!first.is_empty(), "strict chains must be calibrated");
        for t in &c.traces[1..] {
            assert_eq!(agreed(t), first, "rank {} decided differently", t.rank);
        }
        // Repeat iterations re-dispatch the same chains: plans amortize.
        for t in &c.traces {
            assert!(
                t.plan.hits > 0,
                "rank {}: expected plan-cache hits, {:?}",
                t.rank,
                t.plan
            );
        }
    }

    /// Threaded safe-mode CA is **bitwise identical** to single-threaded
    /// CA — the order-preserving block coloring makes thread count
    /// invisible in the results, even through Hydra's relaxed chains
    /// (which run sequentially inside the tiled executor) and strict
    /// chains (which run colored).
    #[test]
    fn threaded_ca_bitwise_equals_single_threaded() {
        let params = HydraParams::small(7);
        let iters = 2;

        let mut ref_app = Hydra::new(params);
        let l0 = layouts_for(&ref_app, 4, ref_app.required_depth(ExtentMode::Safe));
        let reference = run_ca(&mut ref_app, &l0, iters, ExtentMode::Safe);

        let mut app = Hydra::new(params);
        let l = layouts_for(&app, 4, app.required_depth(ExtentMode::Safe));
        let threading = Threading {
            n_threads: 4,
            block_size: 16,
            auto_block: false,
        };
        let out = run_ca_threaded(&mut app, &l, iters, ExtentMode::Safe, threading);

        assert_eq!(
            out.norm.to_bits(),
            reference.norm.to_bits(),
            "threaded norm diverged"
        );
        for dat in [app.qp, app.qo, app.vres, app.jac] {
            let name = &app.mesh.dom.dat(dat).name;
            let got: Vec<u64> = app.mesh.dom.dat(dat).data.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u64> = ref_app
                .mesh
                .dom
                .dat(dat)
                .data
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(got, want, "threaded run diverged on dat `{name}`");
        }
        assert!(
            out.traces.iter().any(|t| !t.threads.is_empty()),
            "no threaded executions recorded"
        );
    }

    /// The threaded tiled executor on Hydra: CA + sparse tiling of the
    /// strict chains with pool threads is **bitwise identical** to the
    /// sequential tiled run, and the traces prove same-level tiles
    /// actually went through the pool.
    #[test]
    fn tiled_threaded_bitwise_equals_tiled_sequential() {
        let params = HydraParams::small(10);
        let (iters, n_tiles) = (2, 8);

        let mut ref_app = Hydra::new(params);
        let l0 = layouts_for(&ref_app, 2, ref_app.required_depth(ExtentMode::Safe));
        let reference = run_ca_tiled(&mut ref_app, &l0, iters, ExtentMode::Safe, n_tiles);

        let mut app = Hydra::new(params);
        let l = layouts_for(&app, 2, app.required_depth(ExtentMode::Safe));
        let out = run_ca_tiled_threaded(
            &mut app,
            &l,
            iters,
            ExtentMode::Safe,
            n_tiles,
            Threading::with_threads(4),
        );

        assert_eq!(
            out.norm.to_bits(),
            reference.norm.to_bits(),
            "tiled-threaded norm diverged"
        );
        for dat in [app.qp, app.qo, app.vres, app.jac] {
            let name = &app.mesh.dom.dat(dat).name;
            let got: Vec<u64> = app.mesh.dom.dat(dat).data.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u64> = ref_app
                .mesh
                .dom
                .dat(dat)
                .data
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(got, want, "tiled-threaded run diverged on dat `{name}`");
        }
        let tiled: Vec<_> = out
            .traces
            .iter()
            .flat_map(|t| &t.threads)
            .filter(|r| r.kind == op2_runtime::SchedKind::Tiled)
            .collect();
        assert!(!tiled.is_empty(), "no tiled pool executions recorded");
        for rec in tiled {
            assert_eq!(rec.n_threads, 4);
            assert_eq!(rec.level_ns.len(), rec.n_levels);
            assert_eq!(rec.block_size, 0, "tiled schedules chunk by tile");
        }
    }

    /// Resident-service execution matches [`run_ca`] bitwise (safe
    /// mode, relaxed chains included), and the second job runs warm on
    /// the shared plan registry with recycled payload pools.
    #[test]
    fn service_jobs_match_run_ca_and_warm_up() {
        let params = HydraParams::small(7);
        let iters = 2;

        let mut ref_app = Hydra::new(params);
        let l0 = layouts_for(&ref_app, 4, ref_app.required_depth(ExtentMode::Safe));
        let reference = run_ca(&mut ref_app, &l0, iters, ExtentMode::Safe);

        let app = Hydra::new(params);
        let layouts = layouts_for(&app, 4, app.required_depth(ExtentMode::Safe));
        let svc = Service::new(op2_runtime::ServiceConfig::default());
        let mesh = register_service_mesh(&svc, &app, layouts);

        let cold = run_ca_service(&svc, mesh, &app, iters, ExtentMode::Safe).unwrap();
        let warm = run_ca_service(&svc, mesh, &app, iters, ExtentMode::Safe).unwrap();
        let steady = run_ca_service(&svc, mesh, &app, iters, ExtentMode::Safe).unwrap();
        assert_eq!(cold.norm.to_bits(), reference.norm.to_bits());
        assert_eq!(warm.norm.to_bits(), reference.norm.to_bits());
        assert_eq!(steady.norm.to_bits(), reference.norm.to_bits());

        // Second job: zero inspection — every plan from the registry.
        let mut plan = op2_runtime::PlanStats::default();
        for t in &warm.traces {
            plan.add(&t.plan);
        }
        assert_eq!(plan.misses, 0, "warm job must skip inspection: {plan:?}");
        assert!(plan.registry_hits >= 1, "expected registry hits: {plan:?}");

        // Steady state (pair pools rebalanced over the first jobs): zero
        // payload heap allocations.
        let payload_allocs: u64 = steady.traces.iter().map(|t| t.comm.payload_allocs).sum();
        assert_eq!(payload_allocs, 0, "steady-state job must recycle payload pools");
    }

    /// Per chain, CA sends fewer messages than the flattened baseline
    /// for the chains the paper reports as communication-reducing.
    #[test]
    fn chain_message_reduction() {
        let params = HydraParams::small(7);
        let iters = 2;

        let mut op2_app = Hydra::new(params);
        let l = layouts_for(&op2_app, 4, op2_app.required_depth(ExtentMode::Safe));
        let o = run_op2(&mut op2_app, &l, iters);

        let mut ca_app = Hydra::new(params);
        let l2 = layouts_for(&ca_app, 4, ca_app.required_depth(ExtentMode::Safe));
        let c = run_ca(&mut ca_app, &l2, iters, ExtentMode::Safe);

        // Total message count falls under CA.
        let op2_msgs: usize = o.traces.iter().map(|t| t.total_msgs()).sum();
        let ca_msgs: usize = c.traces.iter().map(|t| t.total_msgs()).sum();
        assert!(
            ca_msgs < op2_msgs,
            "CA total messages {ca_msgs} !< OP2 {op2_msgs}"
        );
    }
}
