//! Hydra application assembly: the six benchmarked loop-chains over an
//! annular rotor-passage mesh.

use crate::kernels;
use op2_core::{AccessMode, Arg, ChainSpec, DatId, GblDecl, LoopSpec, Result};
use op2_mesh::{Annulus, AnnulusParams};

/// Which halo extents the chains are built with (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtentMode {
    /// Transitive (provably consistent) extents; strict execution.
    Safe,
    /// The published Table 3–4 extents, pinned; relaxed execution with
    /// one sync per chain (the paper's configuration).
    Paper,
}

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct HydraParams {
    /// Mesh dimensions.
    pub mesh: AnnulusParams,
}

impl HydraParams {
    /// A small test/demo passage.
    pub fn small(n: usize) -> Self {
        HydraParams {
            mesh: AnnulusParams::small(n, n, n),
        }
    }
}

/// One step of the program.
#[derive(Debug, Clone)]
pub enum Step {
    /// A standard OP2 loop.
    Loop(LoopSpec),
    /// A CA chain; `relaxed` selects the execution mode.
    Chain(ChainSpec, bool),
}

/// The assembled application: mesh handles plus every dat.
pub struct Hydra {
    /// Mesh (owns the domain).
    pub mesh: Annulus,
    /// Boundary weights, dim 2 (the `weight`/`period` chains' target).
    pub qo: DatId,
    /// Nodal volumes, dim 1.
    pub vol: DatId,
    /// Primary state, dim 5.
    pub qp: DatId,
    /// Limited state, dim 5.
    pub ql: DatId,
    /// Turbulent viscosity, dim 1.
    pub qmu: DatId,
    /// Gradient magnitude, dim 1.
    pub qrg: DatId,
    /// Deformed coordinates, dim 3.
    pub xp: DatId,
    /// Viscous residual, dim 5.
    pub vres: DatId,
    /// Inviscid residual, dim 1.
    pub ires: DatId,
    /// Jacobian block, dim 4.
    pub jac: DatId,
    /// Jacobian correction block, dim 4.
    pub jaca: DatId,
    /// Parameters.
    pub params: HydraParams,
}

impl Hydra {
    /// Generate the mesh and declare every dat.
    pub fn new(params: HydraParams) -> Self {
        let mut mesh = Annulus::generate(params.mesh);
        let nodes = mesh.nodes;
        let qo = mesh.dom.decl_dat_zeros("qo", nodes, 2);
        let vol = mesh.dom.decl_dat_zeros("vol", nodes, 1);
        let qp = mesh.dom.decl_dat_zeros("qp", nodes, 5);
        let ql = mesh.dom.decl_dat_zeros("ql", nodes, 5);
        let qmu = mesh.dom.decl_dat_zeros("qmu", nodes, 1);
        let qrg = mesh.dom.decl_dat_zeros("qrg", nodes, 1);
        let xp = mesh.dom.decl_dat_zeros("xp", nodes, 3);
        let vres = mesh.dom.decl_dat_zeros("vres", nodes, 5);
        let ires = mesh.dom.decl_dat_zeros("ires", nodes, 1);
        let jac = mesh.dom.decl_dat_zeros("jac", nodes, 4);
        let jaca = mesh.dom.decl_dat_zeros("jaca", nodes, 4);
        Hydra {
            mesh,
            qo,
            vol,
            qp,
            ql,
            qmu,
            qrg,
            xp,
            vres,
            ires,
            jac,
            jaca,
            params,
        }
    }

    /// Initialise every field from the coordinates (direct writes).
    pub fn init_loop(&self) -> LoopSpec {
        fn init_fields(args: &Args<'_>) {
            let x0 = args.get(11, 0);
            let x1 = args.get(11, 1);
            let x2 = args.get(11, 2);
            let r = (x0 * x0 + x1 * x1).sqrt();
            args.set(0, 0, 1.0 + 0.1 * r); // qo
            args.set(0, 1, 0.5);
            args.set(1, 0, 0.8 + 0.2 * r); // vol
            for v in 0..5 {
                args.set(2, v, 1.0 + 0.05 * (v as f64) * r); // qp
                args.set(3, v, 0.5 + 0.01 * x2); // ql
                args.set(7, v, 0.0); // vres
            }
            args.set(4, 0, 1.0); // qmu
            args.set(5, 0, 0.2 + 0.1 * r); // qrg
            for c in 0..3 {
                args.set(6, c, args.get(11, c)); // xp = x
            }
            args.set(8, 0, 0.0); // ires
            for v in 0..4 {
                args.set(9, v, if v == 0 || v == 3 { 1.0 } else { 0.0 }); // jac
                args.set(10, v, 0.5); // jaca
            }
        }
        use op2_core::Args;
        LoopSpec::new(
            "init_fields",
            self.mesh.nodes,
            vec![
                Arg::dat_direct(self.qo, AccessMode::Write),
                Arg::dat_direct(self.vol, AccessMode::Write),
                Arg::dat_direct(self.qp, AccessMode::Write),
                Arg::dat_direct(self.ql, AccessMode::Write),
                Arg::dat_direct(self.qmu, AccessMode::Write),
                Arg::dat_direct(self.qrg, AccessMode::Write),
                Arg::dat_direct(self.xp, AccessMode::Write),
                Arg::dat_direct(self.vres, AccessMode::Write),
                Arg::dat_direct(self.ires, AccessMode::Write),
                Arg::dat_direct(self.jac, AccessMode::Write),
                Arg::dat_direct(self.jaca, AccessMode::Write),
                Arg::dat_direct(self.mesh.coords, AccessMode::Read),
            ],
            init_fields,
        )
    }

    // ---- weight chain loops ----

    fn sumbwts_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "sumbwts",
            self.mesh.bnd,
            vec![
                Arg::dat_indirect(self.qo, self.mesh.bnd2n, 0, AccessMode::Inc),
                Arg::dat_indirect(self.mesh.coords, self.mesh.bnd2n, 0, AccessMode::Read),
            ],
            kernels::sumbwts,
        )
    }

    fn periodsym_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "periodsym",
            self.mesh.pedges,
            vec![
                Arg::dat_indirect(self.qo, self.mesh.p2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.qo, self.mesh.p2n, 1, AccessMode::Rw),
            ],
            kernels::periodsym,
        )
    }

    fn centreline_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "centreline",
            self.mesh.cbnd,
            vec![Arg::dat_indirect(self.qo, self.mesh.c2n, 0, AccessMode::Write)],
            kernels::centreline,
        )
    }

    fn edgelength_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "edgelength",
            self.mesh.edges,
            vec![
                Arg::dat_indirect(self.qo, self.mesh.e2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.qo, self.mesh.e2n, 1, AccessMode::Rw),
                Arg::dat_indirect(self.mesh.coords, self.mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.mesh.coords, self.mesh.e2n, 1, AccessMode::Read),
            ],
            kernels::edgelength,
        )
    }

    fn periodicity_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "periodicity",
            self.mesh.pedges,
            vec![
                Arg::dat_indirect(self.qo, self.mesh.p2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.qo, self.mesh.p2n, 1, AccessMode::Rw),
            ],
            kernels::periodicity,
        )
    }

    // ---- period chain loops ----

    fn negflag_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "negflag",
            self.mesh.pedges,
            vec![
                Arg::dat_indirect(self.vol, self.mesh.p2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.vol, self.mesh.p2n, 1, AccessMode::Rw),
            ],
            kernels::negflag,
        )
    }

    fn limxp_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "limxp",
            self.mesh.edges,
            vec![
                Arg::dat_indirect(self.qo, self.mesh.e2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.qo, self.mesh.e2n, 1, AccessMode::Rw),
                Arg::dat_indirect(self.vol, self.mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.vol, self.mesh.e2n, 1, AccessMode::Read),
            ],
            kernels::limxp,
        )
    }

    // ---- gradl chain loops ----

    fn edgecon_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "edgecon",
            self.mesh.edges,
            vec![
                Arg::dat_indirect(self.qp, self.mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(self.qp, self.mesh.e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(self.ql, self.mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(self.ql, self.mesh.e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(self.vol, self.mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.vol, self.mesh.e2n, 1, AccessMode::Read),
            ],
            kernels::edgecon,
        )
    }

    fn period_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "period",
            self.mesh.pedges,
            vec![
                Arg::dat_indirect(self.qp, self.mesh.p2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.qp, self.mesh.p2n, 1, AccessMode::Rw),
                Arg::dat_indirect(self.ql, self.mesh.p2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.ql, self.mesh.p2n, 1, AccessMode::Rw),
            ],
            kernels::period,
        )
    }

    // ---- vflux chain loops ----

    fn initres_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "initres",
            self.mesh.nodes,
            vec![Arg::dat_direct(self.vres, AccessMode::Write)],
            kernels::initres,
        )
    }

    fn vflux_edge_loop(&self) -> LoopSpec {
        let e2n = self.mesh.e2n;
        LoopSpec::new(
            "vflux_edge",
            self.mesh.edges,
            vec![
                Arg::dat_indirect(self.qp, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.qp, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(self.xp, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.xp, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(self.ql, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.ql, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(self.qmu, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.qmu, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(self.qrg, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.qrg, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(self.vres, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(self.vres, e2n, 1, AccessMode::Inc),
            ],
            kernels::vflux_edge,
        )
    }

    // ---- iflux chain loops ----

    fn initviscres_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "initviscres",
            self.mesh.nodes,
            vec![Arg::dat_direct(self.ires, AccessMode::Write)],
            kernels::initviscres,
        )
    }

    fn iflux_edge_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "iflux_edge",
            self.mesh.edges,
            vec![
                Arg::dat_indirect(self.qrg, self.mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.qrg, self.mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(self.ires, self.mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(self.ires, self.mesh.e2n, 1, AccessMode::Inc),
            ],
            kernels::iflux_edge,
        )
    }

    // ---- jacob chain loops ----

    fn jac_period_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "jac_period",
            self.mesh.pedges,
            vec![
                Arg::dat_indirect(self.jac, self.mesh.p2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.jac, self.mesh.p2n, 1, AccessMode::Rw),
                Arg::dat_indirect(self.jaca, self.mesh.p2n, 0, AccessMode::Rw),
                Arg::dat_indirect(self.jaca, self.mesh.p2n, 1, AccessMode::Rw),
            ],
            kernels::jac_period,
        )
    }

    fn jac_centreline_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "jac_centreline",
            self.mesh.cbnd,
            vec![Arg::dat_indirect(self.jac, self.mesh.c2n, 0, AccessMode::Write)],
            kernels::jac_centreline,
        )
    }

    fn jac_corrections_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "jac_corrections",
            self.mesh.bnd,
            vec![Arg::dat_indirect(self.jac, self.mesh.bnd2n, 0, AccessMode::Rw)],
            kernels::jac_corrections,
        )
    }

    // ---- glue loops ----

    fn update_state_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "update_state",
            self.mesh.nodes,
            vec![
                Arg::dat_direct(self.qp, AccessMode::Rw),
                Arg::dat_direct(self.ql, AccessMode::Write),
                Arg::dat_direct(self.qmu, AccessMode::Write),
                Arg::dat_direct(self.qrg, AccessMode::Write),
                Arg::dat_direct(self.xp, AccessMode::Write),
                Arg::dat_direct(self.qo, AccessMode::Read),
                Arg::dat_direct(self.mesh.coords, AccessMode::Read),
            ],
            kernels::update_state,
        )
    }

    fn smooth_rg_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "smooth_rg",
            self.mesh.nodes,
            vec![
                Arg::dat_direct(self.qrg, AccessMode::Rw),
                Arg::dat_direct(self.ires, AccessMode::Read),
            ],
            kernels::smooth_rg,
        )
    }

    fn jac_assemble_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "jac_assemble",
            self.mesh.nodes,
            vec![
                Arg::dat_direct(self.jac, AccessMode::Write),
                Arg::dat_direct(self.jaca, AccessMode::Write),
                Arg::dat_direct(self.qp, AccessMode::Read),
            ],
            kernels::jac_assemble,
        )
    }

    fn rk_accumulate_loop(&self) -> LoopSpec {
        LoopSpec::new(
            "rk_accumulate",
            self.mesh.nodes,
            vec![
                Arg::dat_direct(self.qp, AccessMode::Rw),
                Arg::dat_direct(self.vres, AccessMode::Read),
                Arg::dat_direct(self.ires, AccessMode::Read),
                Arg::dat_direct(self.jac, AccessMode::Read),
            ],
            kernels::rk_accumulate,
        )
    }

    /// The convergence monitor (global reduction).
    pub fn norm_loop(&self) -> LoopSpec {
        LoopSpec::with_gbls(
            "residual_norm",
            self.mesh.nodes,
            vec![
                Arg::dat_direct(self.vres, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            kernels::residual_norm,
        )
    }

    /// The published Table 3–4 halo extents per chain, in loop order.
    pub fn paper_extents(name: &str) -> &'static [usize] {
        match name {
            "weight" => &[2, 1, 2, 2, 1],
            "period" => &[2, 2, 1, 2, 1, 1],
            "gradl" => &[2, 1],
            "vflux" => &[1, 1],
            "iflux" => &[1, 1],
            "jacob" => &[1, 1, 1],
            other => panic!("unknown chain `{other}`"),
        }
    }

    /// Build one of the six chains by name.
    pub fn chain(&self, name: &str, mode: ExtentMode) -> Result<ChainSpec> {
        let loops = match name {
            "weight" => vec![
                self.sumbwts_loop(),
                self.periodsym_loop(),
                self.centreline_loop(),
                self.edgelength_loop(),
                self.periodicity_loop(),
            ],
            "period" => vec![
                self.negflag_loop(),
                self.limxp_loop(),
                self.periodicity_qo_alias(),
                self.limxp_loop(),
                self.periodicity_qo_alias(),
                self.negflag_loop(),
            ],
            "gradl" => vec![self.edgecon_loop(), self.period_loop()],
            "vflux" => vec![self.initres_loop(), self.vflux_edge_loop()],
            "iflux" => vec![self.initviscres_loop(), self.iflux_edge_loop()],
            "jacob" => vec![
                self.jac_period_loop(),
                self.jac_centreline_loop(),
                self.jac_corrections_loop(),
            ],
            other => panic!("unknown chain `{other}`"),
        };
        match mode {
            ExtentMode::Safe => ChainSpec::new(name, loops, None, &[]),
            ExtentMode::Paper => {
                let pins: Vec<(usize, usize)> = Self::paper_extents(name)
                    .iter()
                    .copied()
                    .enumerate()
                    .collect();
                ChainSpec::new(name, loops, None, &pins)
            }
        }
    }

    // `periodicity` inside the period chain acts on the same dat the
    // weight chain version does; reuse the loop builder.
    fn periodicity_qo_alias(&self) -> LoopSpec {
        self.periodicity_loop()
    }

    /// The six benchmarked chain names.
    pub fn chain_names() -> [&'static str; 6] {
        ["weight", "period", "gradl", "vflux", "iflux", "jacob"]
    }

    /// The fusable glue pair: `update_state` (node-direct, refreshes the
    /// limited state `qp`/`ql`/… from `qo`) straight into `jac_assemble`
    /// (node-direct, builds the Jacobian diagonal from `qp`). Every
    /// shared dat is accessed directly in both loops, so the fusion
    /// analysis merges them into one per-element group — no elision
    /// (their products feed the downstream chains), but the interleaving
    /// reads `qp` while it is still register/cache-hot from the write.
    pub fn fused_chain(&self) -> Result<ChainSpec> {
        ChainSpec::new(
            "state_jac",
            vec![self.update_state_loop(), self.jac_assemble_loop()],
            None,
            &[],
        )
    }

    /// Setup phase: field initialisation plus the `weight` and `period`
    /// chains (they sit outside the time-marching loop, §4.2).
    pub fn setup(&self, ca: bool, mode: ExtentMode) -> Vec<Step> {
        let relaxed = mode == ExtentMode::Paper;
        let mut steps = vec![Step::Loop(self.init_loop())];
        for name in ["weight", "period"] {
            let chain = self.chain(name, mode).expect("setup chain is valid");
            if ca {
                steps.push(Step::Chain(chain, relaxed));
            } else {
                for l in chain.loops {
                    steps.push(Step::Loop(l));
                }
            }
        }
        steps
    }

    /// One time-marching iteration: the four in-loop chains (`vflux`,
    /// `iflux`, `gradl`, `jacob`) plus the glue loops that dirty their
    /// inputs, closed by the RK accumulation.
    pub fn iteration(&self, ca: bool, mode: ExtentMode) -> Vec<Step> {
        let relaxed = mode == ExtentMode::Paper;
        let mut steps = vec![Step::Loop(self.update_state_loop())];
        let push_chain = |steps: &mut Vec<Step>, name: &str| {
            let chain = self.chain(name, mode).expect("iteration chain is valid");
            if ca {
                steps.push(Step::Chain(chain, relaxed));
            } else {
                for l in chain.loops {
                    steps.push(Step::Loop(l));
                }
            }
        };
        push_chain(&mut steps, "vflux");
        steps.push(Step::Loop(self.smooth_rg_loop()));
        push_chain(&mut steps, "iflux");
        push_chain(&mut steps, "gradl");
        steps.push(Step::Loop(self.jac_assemble_loop()));
        push_chain(&mut steps, "jacob");
        steps.push(Step::Loop(self.rk_accumulate_loop()));
        steps
    }

    /// A full 5-stage Runge–Kutta iteration (Hydra's time-marcher, §4.2):
    /// the in-loop chains and their glue repeated per stage, with one
    /// state update closing each stage. Tests use the single-stage
    /// [`Hydra::iteration`]; the CLI and benchmarks can use this.
    pub fn rk_iteration(&self, ca: bool, mode: ExtentMode, stages: usize) -> Vec<Step> {
        assert!(stages >= 1);
        let mut steps = Vec::new();
        for _ in 0..stages {
            steps.extend(self.iteration(ca, mode));
        }
        steps
    }

    /// Deepest halo layer any chain requires in this mode — the layout
    /// build depth.
    pub fn required_depth(&self, mode: ExtentMode) -> usize {
        Self::chain_names()
            .iter()
            .map(|n| self.chain(n, mode).expect("chain is valid").max_halo_layers())
            .max()
            .unwrap_or(1)
    }

    /// Validate every loop against the domain.
    pub fn validate(&self) -> Result<()> {
        for step in self
            .setup(false, ExtentMode::Safe)
            .into_iter()
            .chain(self.iteration(false, ExtentMode::Safe))
        {
            if let Step::Loop(l) = step {
                l.validate(&self.mesh.dom)?;
            }
        }
        self.norm_loop().validate(&self.mesh.dom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let app = Hydra::new(HydraParams::small(6));
        app.validate().unwrap();
    }

    /// vflux / iflux / gradl: the transitive analysis reproduces the
    /// paper's extents exactly. weight / period / jacob ladder deeper
    /// (see crate docs); their paper variants pin the published values.
    #[test]
    fn chain_extents_vs_paper() {
        let app = Hydra::new(HydraParams::small(6));
        let safe =
            |n: &str| app.chain(n, ExtentMode::Safe).unwrap().halo_ext;
        assert_eq!(safe("vflux"), vec![1, 1]);
        assert_eq!(safe("iflux"), vec![1, 1]);
        assert_eq!(safe("gradl"), vec![2, 1]);
        assert_eq!(safe("weight"), vec![2, 1, 3, 2, 1]);
        assert_eq!(safe("period"), vec![5, 4, 3, 2, 1, 1]);
        assert_eq!(safe("jacob"), vec![1, 2, 1]);
        for name in Hydra::chain_names() {
            let paper = app.chain(name, ExtentMode::Paper).unwrap();
            assert_eq!(paper.halo_ext, Hydra::paper_extents(name));
        }
    }

    /// The vflux chain's grouped import carries exactly the five dats of
    /// Table 4: qp, xp, ql, qmu, qrg.
    #[test]
    fn vflux_imports_match_table4() {
        let app = Hydra::new(HydraParams::small(6));
        let chain = app.chain("vflux", ExtentMode::Safe).unwrap();
        let sigs = chain.sigs();
        let imports = op2_core::chain::import_depths(&sigs, &chain.halo_ext, &|_| 0);
        let mut names: Vec<&str> = imports
            .iter()
            .map(|(d, _)| app.mesh.dom.dat(*d).name.as_str())
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec!["ql", "qmu", "qp", "qrg", "xp"]);
        assert!(imports.iter().all(|&(_, t)| t == 1));
    }

    #[test]
    fn required_depth_by_mode() {
        let app = Hydra::new(HydraParams::small(6));
        assert_eq!(app.required_depth(ExtentMode::Paper), 2);
        assert_eq!(app.required_depth(ExtentMode::Safe), 5);
    }

    #[test]
    fn iteration_contains_all_inloop_chains() {
        let app = Hydra::new(HydraParams::small(5));
        let steps = app.iteration(true, ExtentMode::Safe);
        let chains: Vec<String> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Chain(c, _) => Some(c.name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(chains, vec!["vflux", "iflux", "gradl", "jacob"]);
    }
}
