//! 3D node-centred mesh: the Rotor 37 stand-in for MG-CFD.
//!
//! MG-CFD (like the Rodinia CFD solver it extends) is node-centred: flow
//! variables live on nodes, fluxes are computed over *edges* connecting
//! neighbouring nodes, and boundary conditions apply to a set of boundary
//! nodes. We generate an `nx × ny × nz` grid of nodes with the 6-neighbour
//! dual-edge connectivity, exposed as a fully unstructured domain
//! (edges→nodes map plus coordinates; nothing downstream knows it came
//! from a grid).

use op2_core::{DatId, Domain, MapId, SetId};

/// Generation parameters for [`Hex3D`].
#[derive(Debug, Clone, Copy)]
pub struct Hex3DParams {
    /// Nodes in x.
    pub nx: usize,
    /// Nodes in y.
    pub ny: usize,
    /// Nodes in z.
    pub nz: usize,
}

impl Hex3DParams {
    /// A cube of `n³` nodes.
    pub fn cube(n: usize) -> Self {
        Hex3DParams {
            nx: n,
            ny: n,
            nz: n,
        }
    }

    /// The paper's 8M-node mesh: 200³ = 8.0M nodes.
    pub fn mesh_8m() -> Self {
        Self::cube(200)
    }

    /// The paper's 24M-node mesh: 288 · 288 · 289 ≈ 23.97M nodes.
    pub fn mesh_24m() -> Self {
        Hex3DParams {
            nx: 288,
            ny: 288,
            nz: 289,
        }
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total dual-edge count (grid edges along the three axes).
    pub fn n_edges(&self) -> usize {
        (self.nx - 1) * self.ny * self.nz
            + self.nx * (self.ny - 1) * self.nz
            + self.nx * self.ny * (self.nz - 1)
    }

    /// Number of boundary nodes (nodes on any face of the box).
    pub fn n_bnodes(&self) -> usize {
        let interior = |n: usize| n.saturating_sub(2);
        self.n_nodes() - interior(self.nx) * interior(self.ny) * interior(self.nz)
    }
}

/// Handles into a generated 3D node-centred mesh.
#[derive(Debug)]
pub struct Hex3D {
    /// The declared domain.
    pub dom: Domain,
    /// Node set.
    pub nodes: SetId,
    /// Dual-edge set.
    pub edges: SetId,
    /// Boundary-node set (its own set, mapped onto nodes — MG-CFD's
    /// boundary loops iterate such a set).
    pub bnodes: SetId,
    /// Edges→nodes, arity 2.
    pub e2n: MapId,
    /// Boundary-elements→nodes, arity 1.
    pub b2n: MapId,
    /// Node coordinates, dim 3.
    pub coords: DatId,
    /// Generation parameters.
    pub params: Hex3DParams,
}

/// Ids of one grid level generated into a shared domain — what
/// [`Hex3D::generate_level`] returns, used by MG-CFD to hold a whole
/// multigrid hierarchy in a single [`Domain`].
#[derive(Debug, Clone, Copy)]
pub struct Hex3DIds {
    /// Node set.
    pub nodes: SetId,
    /// Dual-edge set.
    pub edges: SetId,
    /// Boundary-node set.
    pub bnodes: SetId,
    /// Edges→nodes, arity 2.
    pub e2n: MapId,
    /// Boundary-elements→nodes, arity 1.
    pub b2n: MapId,
    /// Node coordinates, dim 3.
    pub coords: DatId,
}

impl Hex3D {
    /// Generate the mesh.
    pub fn generate(params: Hex3DParams) -> Self {
        let mut dom = Domain::new();
        let ids = Self::generate_level(&mut dom, params, "");
        Hex3D {
            dom,
            nodes: ids.nodes,
            edges: ids.edges,
            bnodes: ids.bnodes,
            e2n: ids.e2n,
            b2n: ids.b2n,
            coords: ids.coords,
            params,
        }
    }

    /// Generate one grid level into an existing domain, suffixing every
    /// declared name with `suffix` (e.g. `"_l1"` for multigrid level 1).
    pub fn generate_level(dom: &mut Domain, params: Hex3DParams, suffix: &str) -> Hex3DIds {
        let Hex3DParams { nx, ny, nz } = params;
        assert!(nx >= 2 && ny >= 2 && nz >= 2, "need at least 2 nodes/axis");
        let nnode = params.n_nodes();
        let node = |i: usize, j: usize, k: usize| ((k * ny + j) * nx + i) as u32;

        let mut coords = Vec::with_capacity(nnode * 3);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    coords.push(i as f64);
                    coords.push(j as f64);
                    coords.push(k as f64);
                }
            }
        }

        let mut e2n: Vec<u32> = Vec::with_capacity(params.n_edges() * 2);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if i + 1 < nx {
                        e2n.extend_from_slice(&[node(i, j, k), node(i + 1, j, k)]);
                    }
                    if j + 1 < ny {
                        e2n.extend_from_slice(&[node(i, j, k), node(i, j + 1, k)]);
                    }
                    if k + 1 < nz {
                        e2n.extend_from_slice(&[node(i, j, k), node(i, j, k + 1)]);
                    }
                }
            }
        }
        let nedge = e2n.len() / 2;

        let mut b2n: Vec<u32> = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let on_boundary = i == 0
                        || j == 0
                        || k == 0
                        || i == nx - 1
                        || j == ny - 1
                        || k == nz - 1;
                    if on_boundary {
                        b2n.push(node(i, j, k));
                    }
                }
            }
        }
        let nbnode = b2n.len();

        let nodes = dom.decl_set(&format!("nodes{suffix}"), nnode);
        let edges = dom.decl_set(&format!("edges{suffix}"), nedge);
        let bnodes = dom.decl_set(&format!("bnodes{suffix}"), nbnode);
        let e2n = dom
            .decl_map(&format!("e2n{suffix}"), edges, nodes, 2, e2n)
            .expect("generated e2n in range");
        let b2n = dom
            .decl_map(&format!("b2n{suffix}"), bnodes, nodes, 1, b2n)
            .expect("generated b2n in range");
        let coords = dom.decl_dat(&format!("x{suffix}"), nodes, 3, coords);

        Hex3DIds {
            nodes,
            edges,
            bnodes,
            e2n,
            b2n,
            coords,
        }
    }

    /// Node coordinates as (x, y, z) triples — partitioner input.
    pub fn node_coords(&self) -> &[f64] {
        &self.dom.dat(self.coords).data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulae() {
        for p in [
            Hex3DParams::cube(2),
            Hex3DParams::cube(5),
            Hex3DParams {
                nx: 3,
                ny: 4,
                nz: 6,
            },
        ] {
            let m = Hex3D::generate(p);
            assert_eq!(m.dom.set(m.nodes).size, p.n_nodes());
            assert_eq!(m.dom.set(m.edges).size, p.n_edges());
            assert_eq!(m.dom.set(m.bnodes).size, p.n_bnodes());
        }
    }

    #[test]
    fn paper_mesh_sizes() {
        assert_eq!(Hex3DParams::mesh_8m().n_nodes(), 8_000_000);
        let n24 = Hex3DParams::mesh_24m().n_nodes();
        assert!((23_900_000..=24_100_000).contains(&n24), "{n24}");
    }

    #[test]
    fn edges_connect_unit_distance_nodes() {
        let m = Hex3D::generate(Hex3DParams {
            nx: 3,
            ny: 3,
            nz: 4,
        });
        let e2n = m.dom.map(m.e2n);
        let x = m.node_coords();
        for e in 0..m.dom.set(m.edges).size {
            let a = e2n.values[2 * e] as usize;
            let b = e2n.values[2 * e + 1] as usize;
            let d: f64 = (0..3).map(|c| (x[3 * a + c] - x[3 * b + c]).abs()).sum();
            assert_eq!(d, 1.0);
        }
    }

    #[test]
    fn every_node_degree_at_most_six() {
        let m = Hex3D::generate(Hex3DParams::cube(4));
        let e2n = m.dom.map(m.e2n);
        let mut deg = vec![0usize; m.dom.set(m.nodes).size];
        for &v in &e2n.values {
            deg[v as usize] += 1;
        }
        assert!(deg.iter().all(|&d| (3..=6).contains(&d)));
    }
}
