//! Multigrid level maps for MG-CFD.
//!
//! MG-CFD accelerates convergence with a geometric multigrid: a hierarchy
//! of successively coarser meshes plus inter-grid transfer maps. The
//! transfers are plain OP2 indirect loops — a fine→coarse node map of
//! arity 1 drives both restriction (INC on the coarse dat while iterating
//! fine nodes) and prolongation (READ from the coarse dat).

use crate::hex3d::{Hex3D, Hex3DParams};
use op2_core::{Domain, MapId, SetId};

/// Coarse-grid parameters: halve each axis (rounding up, min 2).
pub fn coarsen(p: Hex3DParams) -> Hex3DParams {
    let half = |n: usize| (n.div_ceil(2)).max(2);
    Hex3DParams {
        nx: half(p.nx),
        ny: half(p.ny),
        nz: half(p.nz),
    }
}

/// Declare, inside `dom`, a fine→coarse node map (`arity` 1) between two
/// grids generated from `fine` and `coarsen(fine)` dimensions. `fine_set`
/// and `coarse_set` must have sizes matching the parameter products.
pub fn mg_node_map(
    dom: &mut Domain,
    name: &str,
    fine: Hex3DParams,
    fine_set: SetId,
    coarse_set: SetId,
) -> MapId {
    let cp = coarsen(fine);
    assert_eq!(dom.set(fine_set).size, fine.n_nodes());
    assert_eq!(dom.set(coarse_set).size, cp.n_nodes());
    let mut values = Vec::with_capacity(fine.n_nodes());
    for k in 0..fine.nz {
        for j in 0..fine.ny {
            for i in 0..fine.nx {
                let ci = (i / 2).min(cp.nx - 1);
                let cj = (j / 2).min(cp.ny - 1);
                let ck = (k / 2).min(cp.nz - 1);
                values.push(((ck * cp.ny + cj) * cp.nx + ci) as u32);
            }
        }
    }
    dom.decl_map(name, fine_set, coarse_set, 1, values)
        .expect("generated multigrid map in range")
}

/// A generated multigrid hierarchy: level 0 is the finest. Each level is
/// its own [`Hex3D`] domain; [`MgLevel`] records the parameters so
/// applications can wire the grids into one combined domain.
#[derive(Debug)]
pub struct MgLevel {
    /// Grid dimensions at this level.
    pub params: Hex3DParams,
    /// The generated mesh.
    pub mesh: Hex3D,
}

/// Generate `n_levels` meshes, halving each axis per level.
pub fn hierarchy(finest: Hex3DParams, n_levels: usize) -> Vec<MgLevel> {
    assert!(n_levels >= 1);
    let mut levels = Vec::with_capacity(n_levels);
    let mut p = finest;
    for _ in 0..n_levels {
        levels.push(MgLevel {
            params: p,
            mesh: Hex3D::generate(p),
        });
        p = coarsen(p);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarsen_halves_and_clamps() {
        let p = Hex3DParams {
            nx: 9,
            ny: 4,
            nz: 2,
        };
        let c = coarsen(p);
        assert_eq!((c.nx, c.ny, c.nz), (5, 2, 2));
    }

    #[test]
    fn mg_map_targets_in_range_and_onto() {
        let fine = Hex3DParams::cube(6);
        let cp = coarsen(fine);
        let mut dom = Domain::new();
        let fs = dom.decl_set("fine", fine.n_nodes());
        let cs = dom.decl_set("coarse", cp.n_nodes());
        let m = mg_node_map(&mut dom, "f2c", fine, fs, cs);
        let map = dom.map(m);
        // Every coarse node is hit by at least one fine node.
        let mut hit = vec![false; cp.n_nodes()];
        for &v in &map.values {
            hit[v as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "restriction map must be onto");
        // Each fine node maps to the coarse node at half its position.
        assert_eq!(map.values[0], 0);
    }

    #[test]
    fn hierarchy_shrinks() {
        let levels = hierarchy(Hex3DParams::cube(8), 3);
        assert_eq!(levels.len(), 3);
        assert!(levels[1].params.n_nodes() < levels[0].params.n_nodes());
        assert!(levels[2].params.n_nodes() < levels[1].params.n_nodes());
    }
}
