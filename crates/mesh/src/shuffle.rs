//! Element-numbering shuffles.
//!
//! Grid generators emit lexicographic numbering, which is unrealistically
//! cache-friendly and can mask bugs that only appear with scattered
//! indices. [`shuffle_set`] renumbers one set with a seeded random
//! permutation, rewriting every map into or out of it and every dat on it,
//! leaving the mesh semantically identical.

use op2_core::{Domain, SetId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Apply a seeded random renumbering to `set`. Returns the permutation
/// used: `perm[old] = new`.
pub fn shuffle_set(dom: &mut Domain, set: SetId, seed: u64) -> Vec<u32> {
    let n = dom.set(set).size;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    apply_permutation(dom, set, &perm);
    perm
}

/// Renumber `set` with an explicit permutation `perm[old] = new`.
///
/// * maps *into* the set have their values relabelled;
/// * maps *out of* the set have their rows reordered;
/// * dats on the set have their element blocks reordered.
pub fn apply_permutation(dom: &mut Domain, set: SetId, perm: &[u32]) {
    let n = dom.set(set).size;
    assert_eq!(perm.len(), n, "permutation length must equal set size");
    debug_assert!(is_permutation(perm), "perm must be a bijection");

    for mid in 0..dom.n_maps() {
        let id = op2_core::MapId(mid as u32);
        let (from, to, arity) = {
            let m = dom.map(id);
            (m.from, m.to, m.arity)
        };
        if to == set {
            let m = dom.map_mut(id);
            for v in &mut m.values {
                *v = perm[*v as usize];
            }
        }
        if from == set {
            let m = dom.map_mut(id);
            let old = m.values.clone();
            for (e, row) in old.chunks_exact(arity).enumerate() {
                let ne = perm[e] as usize;
                m.values[ne * arity..(ne + 1) * arity].copy_from_slice(row);
            }
        }
    }
    for did in 0..dom.n_dats() {
        let id = op2_core::DatId(did as u32);
        if dom.dat(id).set == set {
            let dim = dom.dat(id).dim;
            let d = dom.dat_mut(id);
            let old = d.data.clone();
            for (e, block) in old.chunks_exact(dim).enumerate() {
                let ne = perm[e] as usize;
                d.data[ne * dim..(ne + 1) * dim].copy_from_slice(block);
            }
        }
    }
}

fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let i = p as usize;
        if i >= perm.len() || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quad2d::Quad2D;
    use op2_core::seq::run_loop;
    use op2_core::{AccessMode, Arg, Args, LoopSpec};

    fn sum_inc(args: &Args<'_>) {
        args.inc(0, 0, 1.0);
        args.inc(1, 0, 1.0);
    }

    /// Shuffling node numbering must not change the result of an
    /// indirect-increment loop (up to the permutation itself).
    #[test]
    fn shuffle_preserves_semantics() {
        let run = |shuffle: bool| -> Vec<f64> {
            let mut m = Quad2D::generate(4, 4);
            let deg = m.dom.decl_dat_zeros("deg", m.nodes, 1);
            let perm = if shuffle {
                shuffle_set(&mut m.dom, m.nodes, 42)
            } else {
                (0..m.dom.set(m.nodes).size as u32).collect()
            };
            let spec = LoopSpec::new(
                "count",
                m.edges,
                vec![
                    Arg::dat_indirect(deg, m.e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(deg, m.e2n, 1, AccessMode::Inc),
                ],
                sum_inc,
            );
            run_loop(&mut m.dom, &spec);
            // Un-permute for comparison.
            let data = &m.dom.dat(deg).data;
            let mut out = vec![0.0; data.len()];
            for (old, &new) in perm.iter().enumerate() {
                out[old] = data[new as usize];
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn permutation_validation() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3]));
    }
}
