//! Tetrahedral mesh via Kuhn subdivision — the closest synthetic match
//! to the simplex meshes production CFD (including the real Rotor 37
//! grids) runs on.
//!
//! Every unit cube of an `nx × ny × nz` node grid is split into six
//! tetrahedra sharing the main diagonal (the Kuhn / Freudenthal
//! triangulation, globally consistent without case tables). Compared to
//! [`crate::hex3d`], the dual edge set gains the three face diagonals
//! and the body diagonal per cube corner, pushing interior node degree
//! from 6 to 14 — noticeably fatter halos per ring, like a real tet
//! mesh — and the `t2n` map exercises arity 4.

use op2_core::{DatId, Domain, MapId, SetId};

/// Handles into a generated tetrahedral mesh.
#[derive(Debug)]
pub struct Tet3D {
    /// The declared domain.
    pub dom: Domain,
    /// Node set (grid points).
    pub nodes: SetId,
    /// Unique-edge set (axis + face-diagonal + body-diagonal edges).
    pub edges: SetId,
    /// Tetrahedron set (6 per cube).
    pub tets: SetId,
    /// Edges→nodes, arity 2.
    pub e2n: MapId,
    /// Tets→nodes, arity 4.
    pub t2n: MapId,
    /// Node coordinates, dim 3.
    pub coords: DatId,
    /// Nodes per axis.
    pub n: (usize, usize, usize),
}

impl Tet3D {
    /// Generate an `nx × ny × nz`-node mesh.
    pub fn generate(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 2 && ny >= 2 && nz >= 2);
        let nnode = nx * ny * nz;
        let node = |i: usize, j: usize, k: usize| ((k * ny + j) * nx + i) as u32;

        let mut coords = Vec::with_capacity(nnode * 3);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    coords.push(i as f64);
                    coords.push(j as f64);
                    coords.push(k as f64);
                }
            }
        }

        // Kuhn edges from each node: the 7 strictly-increasing offsets.
        const OFFS: [(usize, usize, usize); 7] = [
            (1, 0, 0),
            (0, 1, 0),
            (0, 0, 1),
            (1, 1, 0),
            (0, 1, 1),
            (1, 0, 1),
            (1, 1, 1),
        ];
        let mut e2n: Vec<u32> = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    for &(di, dj, dk) in &OFFS {
                        let (i2, j2, k2) = (i + di, j + dj, k + dk);
                        if i2 < nx && j2 < ny && k2 < nz {
                            e2n.extend_from_slice(&[node(i, j, k), node(i2, j2, k2)]);
                        }
                    }
                }
            }
        }
        let nedge = e2n.len() / 2;

        // Six tets per cube: paths from (0,0,0) to (1,1,1) along the
        // cube edges — each permutation of the axis steps is one tet.
        const PERMS: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut t2n: Vec<u32> = Vec::new();
        for k in 0..nz - 1 {
            for j in 0..ny - 1 {
                for i in 0..nx - 1 {
                    for perm in &PERMS {
                        let mut p = [i, j, k];
                        let mut verts = [node(p[0], p[1], p[2]), 0, 0, 0];
                        for (step, &axis) in perm.iter().enumerate() {
                            p[axis] += 1;
                            verts[step + 1] = node(p[0], p[1], p[2]);
                        }
                        t2n.extend_from_slice(&verts);
                    }
                }
            }
        }
        let ntet = t2n.len() / 4;

        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", nnode);
        let edges = dom.decl_set("edges", nedge);
        let tets = dom.decl_set("tets", ntet);
        let e2n = dom
            .decl_map("e2n", edges, nodes, 2, e2n)
            .expect("generated e2n in range");
        let t2n = dom
            .decl_map("t2n", tets, nodes, 4, t2n)
            .expect("generated t2n in range");
        let coords = dom.decl_dat("x", nodes, 3, coords);
        Tet3D {
            dom,
            nodes,
            edges,
            tets,
            e2n,
            t2n,
            coords,
            n: (nx, ny, nz),
        }
    }

    /// Node coordinates — partitioner input.
    pub fn node_coords(&self) -> &[f64] {
        &self.dom.dat(self.coords).data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_kuhn_formulae() {
        let (nx, ny, nz) = (4, 5, 6);
        let m = Tet3D::generate(nx, ny, nz);
        assert_eq!(m.dom.set(m.nodes).size, nx * ny * nz);
        // Six tets per cube.
        assert_eq!(m.dom.set(m.tets).size, 6 * (nx - 1) * (ny - 1) * (nz - 1));
        // Edge count: axis + face diagonals (one per face of 3
        // orientations) + body diagonal per cube.
        let axis = (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1);
        let diag = (nx - 1) * (ny - 1) * nz + nx * (ny - 1) * (nz - 1) + (nx - 1) * ny * (nz - 1);
        let body = (nx - 1) * (ny - 1) * (nz - 1);
        assert_eq!(m.dom.set(m.edges).size, axis + diag + body);
    }

    #[test]
    fn interior_degree_is_fourteen() {
        let m = Tet3D::generate(5, 5, 5);
        let e2n = m.dom.map(m.e2n);
        let mut deg = vec![0usize; m.dom.set(m.nodes).size];
        for &v in &e2n.values {
            deg[v as usize] += 1;
        }
        // Node (2,2,2) is interior: 7 increasing + 7 decreasing = 14.
        let centre = (2 * 5 + 2) * 5 + 2;
        assert_eq!(deg[centre], 14);
    }

    #[test]
    fn tets_have_positive_volume_and_distinct_vertices() {
        let m = Tet3D::generate(3, 3, 3);
        let t2n = m.dom.map(m.t2n);
        let x = m.node_coords();
        for t in 0..m.dom.set(m.tets).size {
            let vs = &t2n.values[4 * t..4 * t + 4];
            let mut sorted = vs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "tet {t} has repeated vertices");
            // Volume via the scalar triple product.
            let p = |v: u32| {
                let v = v as usize;
                [x[3 * v], x[3 * v + 1], x[3 * v + 2]]
            };
            let (a, b, c, d) = (p(vs[0]), p(vs[1]), p(vs[2]), p(vs[3]));
            let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
            let w = [d[0] - a[0], d[1] - a[1], d[2] - a[2]];
            let vol = u[0] * (v[1] * w[2] - v[2] * w[1])
                - u[1] * (v[0] * w[2] - v[2] * w[0])
                + u[2] * (v[0] * w[1] - v[1] * w[0]);
            assert!(vol.abs() > 1e-12, "degenerate tet {t}");
        }
        // Volumes tile the domain: 6 tets of volume 1/6 per unit cube.
        let total: f64 = (0..m.dom.set(m.tets).size)
            .map(|t| {
                let vs = &t2n.values[4 * t..4 * t + 4];
                let p = |v: u32| {
                    let v = v as usize;
                    [x[3 * v], x[3 * v + 1], x[3 * v + 2]]
                };
                let (a, b, c, d) = (p(vs[0]), p(vs[1]), p(vs[2]), p(vs[3]));
                let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
                let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
                let w = [d[0] - a[0], d[1] - a[1], d[2] - a[2]];
                (u[0] * (v[1] * w[2] - v[2] * w[1])
                    - u[1] * (v[0] * w[2] - v[2] * w[0])
                    + u[2] * (v[0] * w[1] - v[1] * w[0]))
                    .abs()
                    / 6.0
            })
            .sum();
        assert!((total - 8.0).abs() < 1e-9, "volumes must tile the 2x2x2 box, got {total}");
    }
}
