//! Cost-skewed workload generators for the online-rebalancing tests.
//!
//! A uniform-cost mesh never triggers the rebalance detector: every
//! rank's window sums the same work, the max/mean ratio stays at 1, and
//! the weighted re-shard reproduces the unweighted partition. These
//! helpers manufacture the *interesting* case — a spatially localized
//! hot region, like the refinement zones or shock-adapted cells real
//! CFD runs develop — as an explicit per-element cost vector the
//! weighted partitioners and the migration planner consume directly.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Per-element costs with a hot axis-aligned half: elements whose
/// coordinate along `axis` falls below the midpoint of the observed
/// range cost `hot_mult`, the rest cost 1. `coords` is the flat
/// interleaved coordinate dat (`dims` values per element).
///
/// With `hot_mult` well above 1 a cost-weighted re-shard must shrink
/// the hot side's partitions — guaranteeing a non-empty migration from
/// any coordinate-based initial partition.
pub fn skewed_costs(coords: &[f64], dims: usize, axis: usize, hot_mult: f64) -> Vec<f64> {
    assert!(dims >= 1 && axis < dims);
    assert!(hot_mult.is_finite() && hot_mult > 0.0);
    let n = coords.len() / dims;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for e in 0..n {
        let x = coords[e * dims + axis];
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let mid = 0.5 * (lo + hi);
    (0..n)
        .map(|e| {
            if coords[e * dims + axis] < mid {
                hot_mult
            } else {
                1.0
            }
        })
        .collect()
}

/// Per-element costs drifting with a seeded random walk around 1:
/// every element's cost is `1 + amp * u` with `u` uniform in `[0, 1)`.
/// Deterministic for a given seed — two calls agree bitwise, so tests
/// can re-derive the same partition on both sides of a comparison.
pub fn drifting_costs(n: usize, seed: u64, amp: f64) -> Vec<f64> {
    assert!(amp.is_finite() && amp >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| 1.0 + amp * rng.gen_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quad2d::Quad2D;

    #[test]
    fn skew_splits_at_the_midpoint() {
        let m = Quad2D::generate(4, 4);
        let coords = &m.dom.dat(m.coords).data;
        let costs = skewed_costs(coords, 2, 0, 8.0);
        assert_eq!(costs.len(), coords.len() / 2);
        assert!(costs.contains(&8.0));
        assert!(costs.contains(&1.0));
        // The hot side is exactly the low-x half.
        for (e, &c) in costs.iter().enumerate() {
            let hot = coords[e * 2] < 2.0;
            assert_eq!(c == 8.0, hot, "element {e}");
        }
    }

    #[test]
    fn drift_is_seed_deterministic() {
        let a = drifting_costs(100, 7, 0.5);
        let b = drifting_costs(100, 7, 0.5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| (1.0..1.5).contains(&c)));
        let c = drifting_costs(100, 8, 0.5);
        assert_ne!(a, c);
    }
}
