//! Compressed sparse row (CSR) adjacency: the reverse of an OP2 map.
//!
//! A map stores, for every *from*-element, its `arity` targets. Halo-ring
//! BFS and graph partitioning also need the reverse direction (which
//! from-elements touch a given to-element), built once here with a
//! counting sort.

use op2_core::MapData;

/// CSR structure: `items[offsets[v] .. offsets[v+1]]` are the sources
/// adjacent to target `v`.
#[derive(Debug, Clone)]
pub struct Csr {
    /// `n_targets + 1` offsets.
    pub offsets: Vec<u32>,
    /// Flattened adjacency lists.
    pub items: Vec<u32>,
}

impl Csr {
    /// Reverse a map: for each element of the *to*-set, the list of
    /// *from*-elements pointing at it.
    pub fn reverse(map: &MapData, n_to: usize) -> Self {
        let mut counts = vec![0u32; n_to + 1];
        for &v in &map.values {
            counts[v as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut items = vec![0u32; map.values.len()];
        let mut cursor = counts;
        for (entry, &v) in map.values.iter().enumerate() {
            let from = (entry / map.arity) as u32;
            let slot = cursor[v as usize] as usize;
            items[slot] = from;
            cursor[v as usize] += 1;
        }
        Csr { offsets, items }
    }

    /// Build a symmetric node-to-node adjacency from an arity-2 map
    /// (edge list): neighbours of node `v` are the opposite endpoints of
    /// its incident edges. Used by the graph partitioner.
    pub fn node_graph(map: &MapData, n_nodes: usize) -> Self {
        assert_eq!(map.arity, 2, "node_graph needs an edge list (arity 2)");
        let mut counts = vec![0u32; n_nodes + 1];
        for &v in &map.values {
            counts[v as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut items = vec![0u32; map.values.len()];
        let mut cursor = counts;
        for pair in map.values.chunks_exact(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            items[cursor[a] as usize] = b as u32;
            cursor[a] += 1;
            items[cursor[b] as usize] = a as u32;
            cursor[b] += 1;
        }
        Csr { offsets, items }
    }

    /// Neighbour list of target `v`.
    #[inline]
    pub fn row(&self, v: usize) -> &[u32] {
        &self.items[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when there are no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_core::{Domain, SetId};

    fn path_map() -> MapData {
        // edges 0:(0,1) 1:(1,2) 2:(2,3)
        let mut dom = Domain::new();
        let nodes: SetId = dom.decl_set("nodes", 4);
        let edges = dom.decl_set("edges", 3);
        let id = dom
            .decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2, 2, 3])
            .unwrap();
        dom.map(id).clone()
    }

    #[test]
    fn reverse_lists_incident_edges() {
        let map = path_map();
        let csr = Csr::reverse(&map, 4);
        assert_eq!(csr.len(), 4);
        assert_eq!(csr.row(0), &[0]);
        let mut r1 = csr.row(1).to_vec();
        r1.sort_unstable();
        assert_eq!(r1, vec![0, 1]);
        assert_eq!(csr.row(3), &[2]);
    }

    #[test]
    fn node_graph_is_symmetric() {
        let map = path_map();
        let g = Csr::node_graph(&map, 4);
        for v in 0..4 {
            for &w in g.row(v) {
                assert!(
                    g.row(w as usize).contains(&(v as u32)),
                    "edge {v}->{w} missing its reverse"
                );
            }
        }
        assert_eq!(g.row(1), &[0, 2]);
    }

    #[test]
    fn reverse_handles_unreferenced_targets() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 5);
        let edges = dom.decl_set("edges", 1);
        let id = dom.decl_map("m", edges, nodes, 2, vec![0, 4]).unwrap();
        let csr = Csr::reverse(dom.map(id), 5);
        assert!(csr.row(2).is_empty());
        assert_eq!(csr.row(4), &[0]);
    }
}
