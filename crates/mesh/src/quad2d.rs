//! The 2D quad mesh of Figure 1: nodes, edges and quadrilateral cells with
//! edges→nodes and edges→cells connectivity.
//!
//! An `nx × ny` grid of cells has `(nx+1)(ny+1)` nodes. *Interior* edges
//! (the ones the Figure 2 loops iterate) separate two cells; boundary
//! edges are omitted, exactly like the paper's example where `ec` maps
//! every edge to the two cells either side of it.

use op2_core::{DatId, Domain, MapId, SetId};

/// Handles into a generated quad mesh.
#[derive(Debug)]
pub struct Quad2D {
    /// The declared domain (sets/maps/dats).
    pub dom: Domain,
    /// Node set: `(nx+1)*(ny+1)` elements.
    pub nodes: SetId,
    /// Interior edge set.
    pub edges: SetId,
    /// Cell set: `nx*ny` elements.
    pub cells: SetId,
    /// Edges→nodes, arity 2.
    pub e2n: MapId,
    /// Edges→cells, arity 2 (the two cells either side).
    pub e2c: MapId,
    /// Node coordinates, dim 2.
    pub coords: DatId,
    /// Cells in x.
    pub nx: usize,
    /// Cells in y.
    pub ny: usize,
}

impl Quad2D {
    /// Generate an `nx × ny`-cell quad mesh.
    pub fn generate(nx: usize, ny: usize) -> Self {
        assert!(nx >= 1 && ny >= 1, "mesh must have at least one cell");
        let nnx = nx + 1;
        let nny = ny + 1;
        let nnode = nnx * nny;
        let ncell = nx * ny;

        let node = |i: usize, j: usize| (j * nnx + i) as u32;
        let cell = |i: usize, j: usize| (j * nx + i) as u32;

        let mut coords = Vec::with_capacity(nnode * 2);
        for j in 0..nny {
            for i in 0..nnx {
                coords.push(i as f64);
                coords.push(j as f64);
            }
        }

        // Interior vertical edges: between cell (i-1, j) and (i, j),
        // connecting node (i, j) to node (i, j+1).
        let mut e2n = Vec::new();
        let mut e2c = Vec::new();
        for j in 0..ny {
            for i in 1..nx {
                e2n.extend_from_slice(&[node(i, j), node(i, j + 1)]);
                e2c.extend_from_slice(&[cell(i - 1, j), cell(i, j)]);
            }
        }
        // Interior horizontal edges: between cell (i, j-1) and (i, j),
        // connecting node (i, j) to node (i+1, j).
        for j in 1..ny {
            for i in 0..nx {
                e2n.extend_from_slice(&[node(i, j), node(i + 1, j)]);
                e2c.extend_from_slice(&[cell(i, j - 1), cell(i, j)]);
            }
        }
        let nedge = e2n.len() / 2;

        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", nnode);
        let edges = dom.decl_set("edges", nedge);
        let cells = dom.decl_set("cells", ncell);
        let e2n = dom
            .decl_map("e2n", edges, nodes, 2, e2n)
            .expect("generated e2n in range");
        let e2c = dom
            .decl_map("e2c", edges, cells, 2, e2c)
            .expect("generated e2c in range");
        let coords = dom.decl_dat("x", nodes, 2, coords);

        Quad2D {
            dom,
            nodes,
            edges,
            cells,
            e2n,
            e2c,
            coords,
            nx,
            ny,
        }
    }

    /// Number of interior edges of an `nx × ny` mesh.
    pub fn n_interior_edges(nx: usize, ny: usize) -> usize {
        (nx - 1) * ny + nx * (ny - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_formulae() {
        for (nx, ny) in [(1, 1), (2, 2), (3, 5), (8, 8)] {
            let m = Quad2D::generate(nx, ny);
            assert_eq!(m.dom.set(m.nodes).size, (nx + 1) * (ny + 1));
            assert_eq!(m.dom.set(m.cells).size, nx * ny);
            assert_eq!(m.dom.set(m.edges).size, Quad2D::n_interior_edges(nx, ny));
        }
    }

    #[test]
    fn single_cell_has_no_interior_edges() {
        let m = Quad2D::generate(1, 1);
        assert_eq!(m.dom.set(m.edges).size, 0);
    }

    #[test]
    fn edge_endpoints_are_adjacent_nodes() {
        let m = Quad2D::generate(4, 3);
        let e2n = m.dom.map(m.e2n);
        let coords = &m.dom.dat(m.coords).data;
        for e in 0..m.dom.set(m.edges).size {
            let a = e2n.values[2 * e] as usize;
            let b = e2n.values[2 * e + 1] as usize;
            let dx = (coords[2 * a] - coords[2 * b]).abs();
            let dy = (coords[2 * a + 1] - coords[2 * b + 1]).abs();
            assert_eq!(dx + dy, 1.0, "edge {e} endpoints not grid neighbours");
        }
    }

    #[test]
    fn edge_cells_share_the_edge() {
        // The two cells of every interior edge must be grid-adjacent.
        let m = Quad2D::generate(5, 4);
        let e2c = m.dom.map(m.e2c);
        for e in 0..m.dom.set(m.edges).size {
            let a = e2c.values[2 * e] as usize;
            let b = e2c.values[2 * e + 1] as usize;
            let (ax, ay) = (a % m.nx, a / m.nx);
            let (bx, by) = (b % m.nx, b / m.nx);
            let manhattan = ax.abs_diff(bx) + ay.abs_diff(by);
            assert_eq!(manhattan, 1, "edge {e}: cells {a} and {b} not adjacent");
        }
    }
}
