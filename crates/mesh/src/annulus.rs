//! Annular-sector (rotor-passage-like) mesh for the Hydra-style solver.
//!
//! Hydra models turbomachinery blade rows: an annular sector of the
//! machine with *periodic* planes at the two tangential ends, *hub* and
//! *casing* walls radially, and a *centreline* at the axis. The six
//! loop-chains benchmarked in the paper iterate exactly these special
//! sets (`pedges`, `bnd`, `cbnd`) besides plain `edges`/`nodes`
//! (Tables 3–4).
//!
//! The generator builds an `nr × nt × na` (radial × tangential × axial)
//! node grid in cylindrical coordinates, with:
//!
//! * `edges` — the 6-neighbour dual edges (tangential direction *not*
//!   wrapped; the periodic coupling is explicit instead);
//! * `pedges` — one periodic edge per `(r, a)` pair, mapping the matched
//!   nodes on the two periodic planes (`p2n`, arity 2);
//! * `bnd` — boundary elements on hub (`r = 0`) and casing
//!   (`r = nr − 1`), each mapped to its wall node (`bnd2n`, arity 1);
//! * `cbnd` — centreline elements along the axis at the hub's upstream
//!   edge (`c2n`, arity 1).

use op2_core::{DatId, Domain, MapId, SetId};

/// Generation parameters for [`Annulus`].
#[derive(Debug, Clone, Copy)]
pub struct AnnulusParams {
    /// Radial node count (hub → casing).
    pub nr: usize,
    /// Tangential node count (periodic plane → periodic plane).
    pub nt: usize,
    /// Axial node count (inlet → outlet).
    pub na: usize,
    /// Inner (hub) radius.
    pub r_hub: f64,
    /// Outer (casing) radius.
    pub r_casing: f64,
    /// Sector angle in radians (e.g. 2π/36 for a 36-blade row).
    pub sector: f64,
}

impl AnnulusParams {
    /// A small test passage.
    pub fn small(nr: usize, nt: usize, na: usize) -> Self {
        AnnulusParams {
            nr,
            nt,
            na,
            r_hub: 0.5,
            r_casing: 1.0,
            sector: std::f64::consts::PI / 18.0,
        }
    }

    /// ≈ 8M-node passage (200³).
    pub fn mesh_8m() -> Self {
        Self::small(200, 200, 200)
    }

    /// ≈ 24M-node passage (288·288·289).
    pub fn mesh_24m() -> Self {
        AnnulusParams {
            nr: 288,
            nt: 288,
            na: 289,
            ..Self::small(0, 0, 0)
        }
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nr * self.nt * self.na
    }
}

/// Handles into a generated annular mesh.
#[derive(Debug)]
pub struct Annulus {
    /// The declared domain.
    pub dom: Domain,
    /// Node set.
    pub nodes: SetId,
    /// Dual-edge set.
    pub edges: SetId,
    /// Periodic-edge set (couples the two periodic planes).
    pub pedges: SetId,
    /// Hub/casing boundary set.
    pub bnd: SetId,
    /// Centreline boundary set.
    pub cbnd: SetId,
    /// Edges→nodes, arity 2.
    pub e2n: MapId,
    /// Periodic-edges→nodes, arity 2 (the matched pair).
    pub p2n: MapId,
    /// Boundary→nodes, arity 1.
    pub bnd2n: MapId,
    /// Centreline→nodes, arity 1.
    pub c2n: MapId,
    /// Cartesian node coordinates, dim 3.
    pub coords: DatId,
    /// Generation parameters.
    pub params: AnnulusParams,
}

impl Annulus {
    /// Generate the mesh.
    pub fn generate(params: AnnulusParams) -> Self {
        let AnnulusParams {
            nr,
            nt,
            na,
            r_hub,
            r_casing,
            sector,
        } = params;
        assert!(nr >= 2 && nt >= 2 && na >= 2, "need at least 2 nodes/axis");
        let nnode = params.n_nodes();
        let node = |r: usize, t: usize, a: usize| ((a * nt + t) * nr + r) as u32;

        // Cartesian coordinates from the cylindrical grid.
        let mut coords = Vec::with_capacity(nnode * 3);
        for a in 0..na {
            for t in 0..nt {
                for r in 0..nr {
                    let radius = r_hub + (r_casing - r_hub) * r as f64 / (nr - 1) as f64;
                    let theta = sector * t as f64 / (nt - 1) as f64;
                    coords.push(radius * theta.cos());
                    coords.push(radius * theta.sin());
                    coords.push(a as f64 / (na - 1) as f64);
                }
            }
        }

        let mut e2n: Vec<u32> = Vec::new();
        for a in 0..na {
            for t in 0..nt {
                for r in 0..nr {
                    if r + 1 < nr {
                        e2n.extend_from_slice(&[node(r, t, a), node(r + 1, t, a)]);
                    }
                    if t + 1 < nt {
                        e2n.extend_from_slice(&[node(r, t, a), node(r, t + 1, a)]);
                    }
                    if a + 1 < na {
                        e2n.extend_from_slice(&[node(r, t, a), node(r, t, a + 1)]);
                    }
                }
            }
        }
        let nedge = e2n.len() / 2;

        // Periodic edges: (r, a) on plane t = 0 matched with t = nt−1.
        let mut p2n: Vec<u32> = Vec::with_capacity(nr * na * 2);
        for a in 0..na {
            for r in 0..nr {
                p2n.extend_from_slice(&[node(r, 0, a), node(r, nt - 1, a)]);
            }
        }
        let npedge = p2n.len() / 2;

        // Hub and casing walls.
        let mut bnd2n: Vec<u32> = Vec::with_capacity(2 * nt * na);
        for a in 0..na {
            for t in 0..nt {
                bnd2n.push(node(0, t, a));
                bnd2n.push(node(nr - 1, t, a));
            }
        }
        let nbnd = bnd2n.len();

        // Centreline: the hub line at t = 0 along the axis.
        let c2n: Vec<u32> = (0..na).map(|a| node(0, 0, a)).collect();
        let ncbnd = c2n.len();

        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", nnode);
        let edges = dom.decl_set("edges", nedge);
        let pedges = dom.decl_set("pedges", npedge);
        let bnd = dom.decl_set("bnd", nbnd);
        let cbnd = dom.decl_set("cbnd", ncbnd);
        let e2n = dom
            .decl_map("e2n", edges, nodes, 2, e2n)
            .expect("generated e2n in range");
        let p2n = dom
            .decl_map("p2n", pedges, nodes, 2, p2n)
            .expect("generated p2n in range");
        let bnd2n = dom
            .decl_map("bnd2n", bnd, nodes, 1, bnd2n)
            .expect("generated bnd2n in range");
        let c2n = dom
            .decl_map("c2n", cbnd, nodes, 1, c2n)
            .expect("generated c2n in range");
        let coords = dom.decl_dat("x", nodes, 3, coords);

        Annulus {
            dom,
            nodes,
            edges,
            pedges,
            bnd,
            cbnd,
            e2n,
            p2n,
            bnd2n,
            c2n,
            coords,
            params,
        }
    }

    /// Node coordinates as (x, y, z) triples — partitioner input.
    pub fn node_coords(&self) -> &[f64] {
        &self.dom.dat(self.coords).data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_sizes() {
        let p = AnnulusParams::small(4, 5, 6);
        let m = Annulus::generate(p);
        assert_eq!(m.dom.set(m.nodes).size, 4 * 5 * 6);
        assert_eq!(m.dom.set(m.pedges).size, 4 * 6);
        assert_eq!(m.dom.set(m.bnd).size, 2 * 5 * 6);
        assert_eq!(m.dom.set(m.cbnd).size, 6);
        let expected_edges = 3 * 5 * 6 + 4 * 4 * 6 + 4 * 5 * 5;
        assert_eq!(m.dom.set(m.edges).size, expected_edges);
    }

    #[test]
    fn periodic_pairs_match_radially_and_axially() {
        let p = AnnulusParams::small(3, 4, 5);
        let m = Annulus::generate(p);
        let p2n = m.dom.map(m.p2n);
        let x = m.node_coords();
        for e in 0..m.dom.set(m.pedges).size {
            let a = p2n.values[2 * e] as usize;
            let b = p2n.values[2 * e + 1] as usize;
            // Same radius and same axial position.
            let ra = (x[3 * a].powi(2) + x[3 * a + 1].powi(2)).sqrt();
            let rb = (x[3 * b].powi(2) + x[3 * b + 1].powi(2)).sqrt();
            assert!((ra - rb).abs() < 1e-12);
            assert_eq!(x[3 * a + 2], x[3 * b + 2]);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn boundary_nodes_on_hub_or_casing() {
        let p = AnnulusParams::small(3, 4, 5);
        let m = Annulus::generate(p);
        let bnd2n = m.dom.map(m.bnd2n);
        let x = m.node_coords();
        for &v in &bnd2n.values {
            let r = (x[3 * v as usize].powi(2) + x[3 * v as usize + 1].powi(2)).sqrt();
            let on_hub = (r - p.r_hub).abs() < 1e-9;
            let on_casing = (r - p.r_casing).abs() < 1e-9;
            assert!(on_hub || on_casing, "bnd node radius {r}");
        }
    }
}
