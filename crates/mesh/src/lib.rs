//! # op2-mesh
//!
//! Unstructured-mesh generators for the OP2-CA reproduction.
//!
//! The paper evaluates on NASA Rotor 37 meshes (8M and 24M nodes) — a
//! proprietary transonic-compressor geometry we cannot ship. What the CA
//! trade-off actually depends on is the *structure* of the mesh graph:
//! surface-to-volume ratios of partitions, map arities, and the presence
//! of the special boundary sets Hydra's loop-chains iterate (periodic
//! edges, hub/casing boundary, centreline). These generators reproduce
//! that structure synthetically:
//!
//! * [`quad2d`] — the small 2D quad mesh of Figure 1 (nodes, edges,
//!   cells, `e2n`, `e2c`) used by the quickstart and many tests;
//! * [`hex3d`] — a 3D node-centred mesh (nodes + dual edges + boundary
//!   nodes) of arbitrary size, e.g. 200³ = 8M and 288·288·289 ≈ 24M
//!   nodes, standing in for the Rotor 37 grids in MG-CFD runs;
//! * [`annulus`] — a rotor-passage-like annular sector with periodic
//!   planes (`pedges`), hub/casing boundary (`bnd`) and centreline
//!   (`cbnd`) sets, matching the iteration sets of the Hydra loop-chains
//!   in Tables 3–4;
//! * [`tet3d`] — a Kuhn-subdivision tetrahedral mesh (arity-4 maps,
//!   degree-14 nodes — the fatter halos of genuine simplex grids);
//! * [`multigrid`] — fine→coarse node maps for MG-CFD's multigrid;
//! * [`csr`] — compressed reverse adjacency used by partitioners and the
//!   halo-ring BFS;
//! * [`workload`] — cost-skewed per-element weight generators (hot
//!   spatial regions, seeded cost drift) for the online-rebalancing
//!   subsystem's weighted re-shards.
//!
//! All generators emit plain [`op2_core::Domain`]
//! declarations plus typed handles to the ids, and can optionally shuffle
//! element numbering to exercise genuinely unstructured orderings.

pub mod annulus;
pub mod csr;
pub mod hex3d;
pub mod multigrid;
pub mod quad2d;
pub mod tet3d;
pub mod shuffle;
pub mod workload;

pub use annulus::{Annulus, AnnulusParams};
pub use csr::Csr;
pub use hex3d::{Hex3D, Hex3DIds, Hex3DParams};
pub use multigrid::mg_node_map;
pub use quad2d::Quad2D;
pub use tet3d::Tet3D;
pub use workload::{drifting_costs, skewed_costs};
