//! Scales, CLI parsing, statistics plumbing and table printing shared by
//! the table/figure binaries.

use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::LoopSig;
use op2_mesh::{AnnulusParams, Csr, Hex3DParams};
use op2_model::components::{chain_components, shape_from_sigs_relaxed, ChainComponents};
use op2_model::Machine;
use op2_partition::{collect_stats, derive_ownership, kway_partition, rib_partition, HaloStats};

/// Problem / cluster scaling for a reproduction run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Scale name for the banner.
    pub name: &'static str,
    /// MG-CFD "8M" mesh at this scale.
    pub hex_8m: Hex3DParams,
    /// MG-CFD "24M" mesh at this scale.
    pub hex_24m: Hex3DParams,
    /// Hydra "8M" passage at this scale.
    pub ann_8m: AnnulusParams,
    /// Hydra "24M" passage at this scale.
    pub ann_24m: AnnulusParams,
    /// MPI ranks per CPU node at this scale (128 at paper scale).
    pub cpu_rpn: usize,
    /// MPI ranks (GPUs) per GPU node (4 at paper scale).
    pub gpu_rpn: usize,
    /// Worker threads for the statistics pipeline.
    pub threads: usize,
}

impl Scale {
    /// ~64k-node meshes, 8 CPU ranks / 2 GPU ranks per node.
    pub fn small() -> Self {
        Scale {
            name: "small",
            hex_8m: Hex3DParams::cube(40),
            hex_24m: Hex3DParams::cube(58),
            ann_8m: AnnulusParams::small(40, 40, 40),
            ann_24m: AnnulusParams::small(58, 58, 58),
            cpu_rpn: 8,
            gpu_rpn: 2,
            threads: 8,
        }
    }

    /// ~1M-node meshes, 32 ranks per node.
    pub fn medium() -> Self {
        Scale {
            name: "medium",
            hex_8m: Hex3DParams::cube(100),
            hex_24m: Hex3DParams::cube(144),
            ann_8m: AnnulusParams::small(100, 100, 100),
            ann_24m: AnnulusParams::small(144, 144, 144),
            cpu_rpn: 32,
            gpu_rpn: 4,
            threads: 8,
        }
    }

    /// The paper's configurations: 8M/24M nodes, 128 CPU ranks or 4
    /// GPUs per node.
    pub fn paper() -> Self {
        Scale {
            name: "paper",
            hex_8m: Hex3DParams::mesh_8m(),
            hex_24m: Hex3DParams::mesh_24m(),
            ann_8m: AnnulusParams::mesh_8m(),
            ann_24m: AnnulusParams::mesh_24m(),
            cpu_rpn: 128,
            gpu_rpn: 4,
            threads: 16,
        }
    }
}

/// Parsed common CLI flags.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Selected scale.
    pub scale: Scale,
    /// Emit CSV rows after the table.
    pub csv: bool,
    /// Restrict node counts (`--nodes 4,16,64`).
    pub nodes: Option<Vec<usize>>,
}

impl Cli {
    /// Parse `std::env::args`.
    pub fn parse() -> Self {
        let mut scale = Scale::small();
        let mut csv = false;
        let mut nodes = None;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = match args.get(i).map(String::as_str) {
                        Some("small") => Scale::small(),
                        Some("medium") => Scale::medium(),
                        Some("paper") => Scale::paper(),
                        other => panic!("--scale must be small|medium|paper, got {other:?}"),
                    };
                }
                "--csv" => csv = true,
                "--nodes" => {
                    i += 1;
                    nodes = Some(
                        args.get(i)
                            .expect("--nodes needs a comma-separated list")
                            .split(',')
                            .map(|s| s.parse().expect("node counts are integers"))
                            .collect(),
                    );
                }
                "--help" | "-h" => {
                    eprintln!("flags: --scale small|medium|paper  --csv  --nodes a,b,c");
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}`"),
            }
            i += 1;
        }
        Cli { scale, csv, nodes }
    }

    /// Node counts to sweep, honouring `--nodes`.
    pub fn node_counts(&self, default: &[usize]) -> Vec<usize> {
        self.nodes.clone().unwrap_or_else(|| default.to_vec())
    }
}

/// Banner printed by every binary.
pub fn banner(what: &str, cli: &Cli) {
    println!("== {what} ==");
    println!(
        "scale: {} (see --scale; `paper` matches the published mesh sizes)",
        cli.scale.name
    );
    println!();
}

/// Halo statistics for an MG-CFD mesh partitioned k-way (the paper uses
/// ParMETIS k-way for MG-CFD). Returns the app (for loop signatures)
/// and the statistics.
pub fn mgcfd_stats(finest: Hex3DParams, ranks: usize, threads: usize) -> (MgCfd, HaloStats) {
    let mut params = MgCfdParams::small(4);
    params.finest = finest;
    params.levels = 1; // chain statistics live on the finest level only
    params.nchains = 1;
    let app = MgCfd::new(params);
    let l0 = &app.levels[0];
    let graph = Csr::node_graph(
        app.dom.map(l0.ids.e2n),
        app.dom.set(l0.ids.nodes).size,
    );
    let base = kway_partition(&graph, ranks, 2);
    let own = derive_ownership(&app.dom, l0.ids.nodes, base, ranks);
    let stats = collect_stats(&app.dom, &own, 2, threads);
    (app, stats)
}

/// Halo statistics for a Hydra passage partitioned with recursive
/// inertial bisection (Hydra's default partitioner in the paper).
pub fn hydra_stats(
    mesh: AnnulusParams,
    ranks: usize,
    depth: usize,
    threads: usize,
) -> (hydra_sim::Hydra, HaloStats) {
    let app = hydra_sim::Hydra::new(hydra_sim::HydraParams { mesh });
    let base = rib_partition(app.mesh.node_coords(), 3, ranks);
    let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, ranks);
    let stats = collect_stats(&app.mesh.dom, &own, depth, threads);
    (app, stats)
}

/// Model components for the MG-CFD synthetic chain of `2 * nchains`
/// loops. `g_update` and `g_flux` are the per-iteration costs of the
/// two kernels.
pub fn synthetic_components(
    app: &MgCfd,
    stats: &HaloStats,
    nchains: usize,
    g_update: f64,
    g_flux: f64,
) -> ChainComponents {
    let chain = app.synthetic_chain_n(nchains).expect("synthetic chain valid");
    let sigs: Vec<LoopSig> = chain.sigs();
    let gs: Vec<f64> = (0..sigs.len())
        .map(|i| if i % 2 == 0 { g_update } else { g_flux })
        .collect();
    // Relaxed shape: the paper's back-end keeps the standard depth-1
    // latency-hiding core for every loop of the chain (its Table 2 CA
    // cores barely shrink), tolerating bounded staleness — match that.
    let shape =
        shape_from_sigs_relaxed(&app.dom, "synthetic", &sigs, &chain.halo_ext, &gs, &|_| 0);
    chain_components(stats, &shape)
}

/// Model components for one Hydra chain (paper extents), with per-loop
/// costs proportional to the chain's share of Hydra's runtime.
pub fn hydra_chain_components(
    app: &hydra_sim::Hydra,
    stats: &HaloStats,
    name: &str,
    mach: &Machine,
) -> ChainComponents {
    let chain = app
        .chain(name, hydra_sim::ExtentMode::Paper)
        .expect("chain valid");
    let sigs = chain.sigs();
    // Relative per-iteration costs: edge loops carry real arithmetic,
    // boundary-set loops are light; vflux is Hydra's most expensive
    // loop (18% of runtime, §4.2).
    let gs: Vec<f64> = sigs
        .iter()
        .map(|s| {
            let set_name = &app.mesh.dom.set(s.set).name;
            let base = mach.g_default;
            match (name, set_name.as_str()) {
                ("vflux", "edges") => 4.0 * base,
                (_, "edges") => 1.5 * base,
                (_, "nodes") => 0.5 * base,
                _ => 0.8 * base, // pedges / bnd / cbnd
            }
        })
        .collect();
    // Paper extents are pinned below the transitive requirement for
    // some chains; the relaxed plan deepens the initial import instead.
    // Coordinates are never modified, hence never exchanged.
    let coords = app.mesh.coords;
    let shape = shape_from_sigs_relaxed(
        &app.mesh.dom,
        name,
        &sigs,
        &chain.halo_ext,
        &gs,
        &|d| if d == coords { usize::MAX } else { 0 },
    );
    chain_components(stats, &shape)
}

/// Pretty-print helpers.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

/// Seconds with engineering units.
pub fn fmt_time(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.3}s")
    } else if t >= 1e-3 {
        format!("{:.3}ms", t * 1e3)
    } else {
        format!("{:.3}us", t * 1e6)
    }
}
