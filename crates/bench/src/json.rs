//! Minimal JSON emission for the machine-readable benchmark reports.
//!
//! The workspace deliberately carries no serde; the report schema is a
//! handful of flat counter objects, so a tiny value tree + escaping
//! writer covers it. [`trace_summary`] converts one [`RankTrace`] into
//! the `BENCH_*.json` per-rank record: transport recovery counters
//! (PR 1), plan-cache hit/miss counters, rebalance counters and the
//! tuner's decisions. [`load_summary`] condenses a whole run's traces
//! into the max/mean per-rank load ratio the rebalance detector
//! triggers on — every `BENCH_*.json` carries it under `load`.

use op2_runtime::{RankTrace, TunerRec};
use std::fmt::Write as _;

/// A JSON value. Numbers are split into signed/unsigned/float variants
/// so counters round-trip exactly.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (the counter case).
    U64(u64),
    /// Signed integer (milli-percent gains).
    I64(i64),
    /// Finite float; non-finite values are emitted as `null`.
    F64(f64),
    /// String (escaped on emission).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (the subset this module emits: objects,
    /// arrays, strings, numbers, booleans, null). Integers without a
    /// fraction/exponent round-trip as [`Json::U64`]/[`Json::I64`];
    /// everything else numeric becomes [`Json::F64`]. Built for the
    /// `--summary` consolidator, which re-reads its sibling
    /// `BENCH_*.json` reports.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any of the three number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialise with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the emitted subset. Positions are
/// byte offsets; the reports are ASCII apart from string payloads,
/// which are decoded with full escape handling.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                c => return Err(format!("expected `,` or `}}`, got `{}`", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("expected `,` or `]`, got `{}`", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or("bad escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            // Surrogates never appear in our reports;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape `\\{}`", c as char)),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("bad utf-8 in string: {e}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("bad number: {e}"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One tuner decision as a JSON object.
pub fn tuner_json(r: &TunerRec) -> Json {
    Json::obj(vec![
        ("chain", Json::Str(r.chain.clone())),
        ("backend", Json::Str(format!("{:?}", r.backend).to_lowercase())),
        ("class", Json::Str(format!("{:?}", r.class))),
        ("t_op2_pred_ns", Json::U64(r.t_op2_pred_ns)),
        ("t_ca_pred_ns", Json::U64(r.t_ca_pred_ns)),
        ("t_measured_ns", Json::U64(r.t_measured_ns)),
        ("gain_milli_pct", Json::I64(r.gain_milli_pct)),
    ])
}

/// Per-rank report record: communication totals, transport recovery
/// counters, plan-cache counters and tuner decisions.
pub fn trace_summary(t: &RankTrace) -> Json {
    let exch = t.exch_total();
    Json::obj(vec![
        ("rank", Json::U64(t.rank as u64)),
        ("total_msgs", Json::U64(t.total_msgs() as u64)),
        ("total_bytes", Json::U64(t.total_bytes() as u64)),
        (
            "comm",
            Json::obj(vec![
                ("retries", Json::U64(t.comm.retries)),
                ("timeouts", Json::U64(t.comm.timeouts)),
                ("corrupt_dropped", Json::U64(t.comm.corrupt_dropped)),
                ("duplicates_dropped", Json::U64(t.comm.duplicates_dropped)),
                ("delayed", Json::U64(t.comm.delayed)),
                ("hangups_seen", Json::U64(t.comm.hangups_seen)),
                ("injected_drops", Json::U64(t.comm.injected_drops)),
                ("injected_corrupt", Json::U64(t.comm.injected_corrupt)),
                ("injected_dups", Json::U64(t.comm.injected_dups)),
                ("retransmits", Json::U64(t.comm.retransmits)),
                ("payload_allocs", Json::U64(t.comm.payload_allocs)),
                ("pack_ns", Json::U64(exch.pack_ns)),
                ("unpack_ns", Json::U64(exch.unpack_ns)),
                ("wait_ns", Json::U64(exch.wait_ns)),
            ]),
        ),
        (
            "plan",
            Json::obj(vec![
                ("hits", Json::U64(t.plan.hits)),
                ("misses", Json::U64(t.plan.misses)),
                ("invalidations", Json::U64(t.plan.invalidations)),
                ("tile_hits", Json::U64(t.plan.tile_hits)),
                ("tile_misses", Json::U64(t.plan.tile_misses)),
                ("color_hits", Json::U64(t.plan.color_hits)),
                ("color_misses", Json::U64(t.plan.color_misses)),
                ("overlap_tiles", Json::U64(t.plan.overlap_tiles)),
                ("registry_hits", Json::U64(t.plan.registry_hits)),
                ("registry_misses", Json::U64(t.plan.registry_misses)),
                ("fused_pieces", Json::U64(t.plan.fused_pieces)),
                ("elided_bytes", Json::U64(t.plan.elided_bytes)),
            ]),
        ),
        (
            "recovery",
            Json::obj(vec![
                ("attempts", Json::U64(t.recovery.attempts as u64)),
                ("checkpoints", Json::U64(t.recovery.checkpoints)),
                ("ckpt_bytes", Json::U64(t.recovery.ckpt_bytes)),
                ("dats_snapshotted", Json::U64(t.recovery.dats_snapshotted)),
                ("dats_skipped", Json::U64(t.recovery.dats_skipped)),
                ("rollbacks", Json::U64(t.recovery.rollbacks)),
                ("restored_bytes", Json::U64(t.recovery.restored_bytes)),
                ("replayed_loops", Json::U64(t.recovery.replayed_loops)),
                ("replayed_chains", Json::U64(t.recovery.replayed_chains)),
                ("escalations", Json::U64(t.recovery.escalations)),
            ]),
        ),
        (
            "rebalance",
            Json::obj(vec![
                ("migrations", Json::U64(t.rebalance.migrations)),
                ("elements_out", Json::U64(t.rebalance.elements_out)),
                ("bytes_out", Json::U64(t.rebalance.bytes_out)),
                ("replans", Json::U64(t.rebalance.replans)),
                (
                    "imbalance_before_milli",
                    Json::U64(t.rebalance.imbalance_before_milli),
                ),
                (
                    "imbalance_after_milli",
                    Json::U64(t.rebalance.imbalance_after_milli),
                ),
                ("replan_ns", Json::U64(t.rebalance.replan_ns)),
            ]),
        ),
        ("threads", threads_json(t)),
        ("tuner", Json::Arr(t.tuner.iter().map(tuner_json).collect())),
    ])
}

/// Per-run load-imbalance summary: each rank's measured loop + chain
/// wall time, and the `max/mean` ratio the rebalance detector triggers
/// on (1.0 = perfectly balanced; unmeasured runs report 1.0).
pub fn load_summary(traces: &[RankTrace]) -> Json {
    let walls: Vec<u64> = traces.iter().map(|t| t.wall_ns()).collect();
    let max = walls.iter().copied().max().unwrap_or(0);
    let mean = if walls.is_empty() {
        0.0
    } else {
        walls.iter().sum::<u64>() as f64 / walls.len() as f64
    };
    let ratio = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    Json::obj(vec![
        (
            "per_rank_wall_ns",
            Json::Arr(walls.iter().map(|&w| Json::U64(w)).collect()),
        ),
        ("max_wall_ns", Json::U64(max)),
        ("mean_wall_ns", Json::F64(mean)),
        ("imbalance_ratio", Json::F64(ratio)),
    ])
}

/// Aggregate of the rank's pooled schedule executions: how many loop
/// ranges / tiled chains ran threaded, with how much parallel slack
/// (chunks, levels) and how much wall time inside the leveled sweeps.
fn threads_json(t: &RankTrace) -> Json {
    let execs = t.threads.len() as u64;
    let tiled_execs = t
        .threads
        .iter()
        .filter(|r| r.kind == op2_runtime::SchedKind::Tiled)
        .count() as u64;
    let n_threads = t.threads.iter().map(|r| r.n_threads as u64).max().unwrap_or(1);
    let chunks: u64 = t.threads.iter().map(|r| r.n_chunks as u64).sum();
    let max_levels = t.threads.iter().map(|r| r.n_levels as u64).max().unwrap_or(0);
    let level_ns: u64 = t
        .threads
        .iter()
        .flat_map(|r| r.level_ns.iter().copied())
        .sum();
    let dataflow_execs = t.threads.iter().filter(|r| r.dataflow).count() as u64;
    let max_crit_path = t.threads.iter().map(|r| r.crit_path as u64).max().unwrap_or(0);
    let idle_ns: u64 = t
        .threads
        .iter()
        .flat_map(|r| r.idle_ns.iter().copied())
        .sum();
    let steals: u64 = t.threads.iter().flat_map(|r| r.steals.iter().copied()).sum();
    let fires: u64 = t.threads.iter().flat_map(|r| r.fires.iter().copied()).sum();
    Json::obj(vec![
        ("execs", Json::U64(execs)),
        ("tiled_execs", Json::U64(tiled_execs)),
        ("dataflow_execs", Json::U64(dataflow_execs)),
        ("n_threads", Json::U64(n_threads)),
        ("chunks", Json::U64(chunks)),
        ("max_levels", Json::U64(max_levels)),
        ("max_crit_path", Json::U64(max_crit_path)),
        ("level_ns", Json::U64(level_ns)),
        ("idle_ns", Json::U64(idle_ns)),
        ("steals", Json::U64(steals)),
        ("fires", Json::U64(fires)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_shapes() {
        let j = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("n", Json::U64(42)),
            ("g", Json::I64(-7)),
            ("x", Json::F64(f64::NAN)),
            ("e", Json::Arr(vec![])),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"n\": 42"));
        assert!(s.contains("\"g\": -7"));
        assert!(s.contains("\"x\": null"));
        assert!(s.contains("\"e\": []"));
    }

    #[test]
    fn trace_summary_carries_all_counter_groups() {
        let mut t = RankTrace {
            rank: 3,
            ..Default::default()
        };
        t.comm.retries = 2;
        t.comm.payload_allocs = 7;
        t.plan.hits = 5;
        t.plan.misses = 1;
        t.plan.color_hits = 4;
        t.plan.overlap_tiles = 6;
        t.loops.push(op2_runtime::LoopRec {
            name: "edge_flux".into(),
            exch: op2_runtime::ExchangeRec {
                pack_ns: 100,
                unpack_ns: 200,
                wait_ns: 300,
                ..Default::default()
            },
            ..Default::default()
        });
        t.threads.push(op2_runtime::ThreadRec {
            name: "edge_flux".into(),
            n_threads: 4,
            n_chunks: 9,
            n_levels: 2,
            level_ns: vec![10, 20],
            ..Default::default()
        });
        t.tuner.push(TunerRec {
            chain: "synthetic".into(),
            gain_milli_pct: 1250,
            ..Default::default()
        });
        t.recovery.attempts = 2;
        t.recovery.checkpoints = 8;
        t.recovery.rollbacks = 1;
        t.recovery.replayed_chains = 3;
        t.rebalance.migrations = 1;
        t.rebalance.elements_out = 12;
        t.rebalance.bytes_out = 576;
        t.rebalance.imbalance_before_milli = 1800;
        let s = trace_summary(&t).pretty();
        assert!(s.contains("\"rank\": 3"));
        assert!(s.contains("\"retries\": 2"));
        assert!(s.contains("\"hits\": 5"));
        assert!(s.contains("\"chain\": \"synthetic\""));
        assert!(s.contains("\"gain_milli_pct\": 1250"));
        assert!(s.contains("\"color_hits\": 4"));
        assert!(s.contains("\"execs\": 1"));
        assert!(s.contains("\"max_levels\": 2"));
        assert!(s.contains("\"level_ns\": 30"));
        assert!(s.contains("\"payload_allocs\": 7"));
        assert!(s.contains("\"overlap_tiles\": 6"));
        assert!(s.contains("\"pack_ns\": 100"));
        assert!(s.contains("\"unpack_ns\": 200"));
        assert!(s.contains("\"wait_ns\": 300"));
        assert!(s.contains("\"attempts\": 2"));
        assert!(s.contains("\"checkpoints\": 8"));
        assert!(s.contains("\"rollbacks\": 1"));
        assert!(s.contains("\"replayed_chains\": 3"));
        assert!(s.contains("\"migrations\": 1"));
        assert!(s.contains("\"elements_out\": 12"));
        assert!(s.contains("\"imbalance_before_milli\": 1800"));
    }

    #[test]
    fn parse_round_trips_emitted_reports() {
        let j = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("wall_ms", Json::F64(12.5)),
            ("iters", Json::U64(3)),
            ("gain", Json::I64(-7)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            ("walls", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            (
                "nested",
                Json::obj(vec![("s", Json::Str("a\"b\\c\nd — π".into()))]),
            ),
        ]);
        let back = Json::parse(&j.pretty()).expect("round trip");
        assert_eq!(back.get("app").map(Json::pretty), Some("\"mg-cfd\"\n".into()));
        assert_eq!(back.get("wall_ms").and_then(Json::as_f64), Some(12.5));
        assert!(matches!(back.get("iters"), Some(Json::U64(3))));
        assert!(matches!(back.get("gain"), Some(Json::I64(-7))));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert!(matches!(back.get("missing"), Some(Json::Null)));
        assert!(matches!(back.get("walls"), Some(Json::Arr(v)) if v.len() == 2));
        let s = back.get("nested").and_then(|n| n.get("s"));
        assert!(matches!(s, Some(Json::Str(x)) if x == "a\"b\\c\nd — π"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_number_variants() {
        assert!(matches!(Json::parse("42"), Ok(Json::U64(42))));
        assert!(matches!(Json::parse("-3"), Ok(Json::I64(-3))));
        assert!(matches!(Json::parse("2.5"), Ok(Json::F64(x)) if x == 2.5));
        assert!(matches!(Json::parse("1e3"), Ok(Json::F64(x)) if x == 1000.0));
        assert!(
            matches!(Json::parse("\"\\u00e9\\u0041\""), Ok(Json::Str(s)) if s == "éA")
        );
    }

    #[test]
    fn load_summary_reports_max_over_mean() {
        let mk = |wall: u64| {
            let mut t = RankTrace::default();
            t.loops.push(op2_runtime::LoopRec {
                wall_ns: wall,
                ..Default::default()
            });
            t
        };
        let traces = vec![mk(100), mk(300)];
        let s = load_summary(&traces).pretty();
        assert!(s.contains("\"max_wall_ns\": 300"));
        assert!(s.contains("\"mean_wall_ns\": 200"));
        assert!(s.contains("\"imbalance_ratio\": 1.5"));

        // Unmeasured traces read as balanced, not as a divide-by-zero.
        let idle = load_summary(&[RankTrace::default(), RankTrace::default()]);
        assert!(idle.pretty().contains("\"imbalance_ratio\": 1"));
    }
}
