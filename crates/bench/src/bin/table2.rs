//! Table 2: MG-CFD on ARCHER2 — model components: OP2 comms
//! `Σ(2dpm¹)` vs CA comms `pmʳ` (bytes), OP2 vs CA core iterations
//! `Σ(Sᶜ)`, OP2 halo iterations `Σ(S¹)` vs CA halo iterations `Σ(Sʰ)`,
//! and the gain% of CA over OP2 — for node counts {4, 16, 64} and loop
//! counts {2, 8, 32}, on both meshes.

use op2_bench::*;
use op2_model::eqs::{gain_percent, t_ca_chain, t_op2_chain};
use op2_model::Machine;

fn main() {
    let cli = Cli::parse();
    banner("Table 2: MG-CFD on ARCHER2 — model components", &cli);
    let mach = Machine::archer2();
    let nodes = cli.node_counts(&[4, 16, 64]);
    let loop_counts = [2usize, 8, 32];
    if cli.csv {
        println!(
            "csv,mesh,nodes,loops,op2_comm_B,op2_Sc,op2_S1,ca_comm_B,ca_Sc,ca_Sh,gain_pct"
        );
    }

    for (mesh_label, mesh) in [("8M", cli.scale.hex_8m), ("24M", cli.scale.hex_24m)] {
        println!(
            "-- {mesh_label} mesh ({} nodes at this scale) --",
            mesh.n_nodes()
        );
        println!(
            "{:>6} {:>5} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10} | {:>8}",
            "nodes",
            "n",
            "OP2comm(B)",
            "S(Sc)",
            "S(S1)",
            "CAcomm(B)",
            "S(Sc)",
            "S(Sh)",
            "gain%"
        );
        for &n_nodes in &nodes {
            let ranks = n_nodes * cli.scale.cpu_rpn;
            if ranks >= mesh.n_nodes() / 8 {
                eprintln!("(skipping {n_nodes} nodes: {ranks} ranks over-decompose the mesh)");
                continue;
            }
            let (app, stats) = mgcfd_stats(mesh, ranks, cli.scale.threads);
            for &n_loops in &loop_counts {
                let comp = synthetic_components(
                    &app,
                    &stats,
                    n_loops / 2,
                    0.6 * mach.g_default,
                    mach.g_default,
                );
                let t_op2 = t_op2_chain(&mach, &comp.op2_loops);
                let t_ca = t_ca_chain(&mach, &comp.ca);
                let gain = gain_percent(t_op2, t_ca);
                println!(
                    "{:>6} {:>5} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10} | {:>8.2}",
                    n_nodes,
                    n_loops,
                    comp.op2_comm_bytes as u64,
                    comp.op2_core,
                    comp.op2_halo,
                    comp.ca_comm_bytes as u64,
                    comp.ca_core,
                    comp.ca_halo,
                    gain
                );
                if cli.csv {
                    println!(
                        "csv,{mesh_label},{n_nodes},{n_loops},{},{},{},{},{},{},{gain:.2}",
                        comp.op2_comm_bytes as u64,
                        comp.op2_core,
                        comp.op2_halo,
                        comp.ca_comm_bytes as u64,
                        comp.ca_core,
                        comp.ca_halo
                    );
                }
            }
        }
        println!();
    }
    println!(
        "Expected shape (paper Table 2): OP2 comms grow linearly with the\n\
         loop count while CA comms stay constant; CA cores are smaller,\n\
         CA halo iterations larger; gain% rises with nodes and loops."
    );
}
