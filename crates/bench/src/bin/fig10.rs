//! Figure 10: MG-CFD synthetic loop-chain performance on ARCHER2 (CPU),
//! 8M (left) and 24M (right) meshes — OP2 vs CA runtimes for loop
//! counts n ∈ {2, 4, 8, 16, 32} across node counts.
//!
//! Reproduction recipe (DESIGN.md §5): the mesh is partitioned k-way at
//! every node count, exact halo statistics are collected, and the
//! paper's analytic model (Eqs 1–4) — driven by those measured
//! statistics and the calibrated ARCHER2 constants — produces the
//! OP2 and CA runtimes the paper plots. The printed value is the time
//! of one execution of the n-loop chain (the paper plots the main-loop
//! cumulative time, a constant multiple).

use op2_bench::*;
use op2_model::eqs::{gain_percent, t_ca_chain, t_op2_chain};
use op2_model::Machine;

fn main() {
    let cli = Cli::parse();
    banner("Figure 10: MG-CFD CA performance on ARCHER2", &cli);
    let mach = Machine::archer2();
    let loop_counts = [2usize, 4, 8, 16, 32];
    let nodes = cli.node_counts(&[1, 2, 4, 8, 16, 32, 64]);
    if cli.csv {
        println!("csv,mesh,nodes,ranks,loops,t_op2,t_ca,gain_pct");
    }

    for (mesh_label, mesh) in [("8M", cli.scale.hex_8m), ("24M", cli.scale.hex_24m)] {
        println!(
            "-- {mesh_label} mesh ({} nodes at this scale) --",
            mesh.n_nodes()
        );
        println!(
            "{:>6} {:>7} | {:>5} | {:>12} {:>12} {:>8}",
            "nodes", "ranks", "n", "T_OP2", "T_CA", "gain%"
        );
        for &n_nodes in &nodes {
            let ranks = n_nodes * cli.scale.cpu_rpn;
            if ranks >= mesh.n_nodes() / 8 {
                continue; // degenerate partitions
            }
            // Statistics depend on the partition only — collect once
            // per node count and reuse across loop counts.
            let (app, stats) = mgcfd_stats(mesh, ranks, cli.scale.threads);
            for &n_loops in &loop_counts {
                let nchains = n_loops / 2;
                let comp = synthetic_components(
                    &app,
                    &stats,
                    nchains,
                    0.6 * mach.g_default,
                    mach.g_default,
                );
                let t_op2 = t_op2_chain(&mach, &comp.op2_loops);
                let t_ca = t_ca_chain(&mach, &comp.ca);
                println!(
                    "{:>6} {:>7} | {:>5} | {:>12} {:>12} {:>8.2}",
                    n_nodes,
                    ranks,
                    n_loops,
                    fmt_time(t_op2),
                    fmt_time(t_ca),
                    gain_percent(t_op2, t_ca)
                );
                if cli.csv {
                    println!(
                        "csv,{mesh_label},{n_nodes},{ranks},{n_loops},{t_op2:.6e},{t_ca:.6e},{:.2}",
                        gain_percent(t_op2, t_ca)
                    );
                }
            }
        }
        println!();
    }
    println!(
        "Expected shape (paper): CA gains grow with node count and loop\n\
         count; at low node counts / short chains CA can lose."
    );
}
