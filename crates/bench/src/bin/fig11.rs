//! Figure 11: MG-CFD synthetic loop-chain performance on the Cirrus
//! V100 cluster — same experiment as Figure 10, GPU machine model
//! (one MPI rank per GPU, host-staged halos, kernel-launch overheads).
//!
//! The paper's observation to reproduce: on GPUs the CA gains appear at
//! *lower* node and loop counts than on the CPU cluster (1.4% already
//! on a single node), because grouping also collapses the PCIe staging
//! events of every exchange.

use op2_bench::*;
use op2_model::eqs::{gain_percent, t_ca_chain, t_op2_chain};
use op2_model::Machine;

fn main() {
    let cli = Cli::parse();
    banner("Figure 11: MG-CFD CA performance on Cirrus (V100 GPUs)", &cli);
    let mach = Machine::cirrus();
    let loop_counts = [2usize, 4, 8, 16, 32];
    let nodes = cli.node_counts(&[1, 2, 4, 8, 16]);
    if cli.csv {
        println!("csv,mesh,nodes,gpus,loops,t_op2,t_ca,gain_pct");
    }

    for (mesh_label, mesh) in [("8M", cli.scale.hex_8m), ("24M", cli.scale.hex_24m)] {
        println!(
            "-- {mesh_label} mesh ({} nodes at this scale) --",
            mesh.n_nodes()
        );
        println!(
            "{:>6} {:>6} | {:>5} | {:>12} {:>12} {:>8}",
            "nodes", "gpus", "n", "T_OP2", "T_CA", "gain%"
        );
        for &n_nodes in &nodes {
            let ranks = n_nodes * cli.scale.gpu_rpn;
            if ranks >= mesh.n_nodes() / 8 {
                continue;
            }
            let (app, stats) = mgcfd_stats(mesh, ranks, cli.scale.threads);
            for &n_loops in &loop_counts {
                let comp = synthetic_components(
                    &app,
                    &stats,
                    n_loops / 2,
                    0.6 * mach.g_default,
                    mach.g_default,
                );
                let t_op2 = t_op2_chain(&mach, &comp.op2_loops);
                let t_ca = t_ca_chain(&mach, &comp.ca);
                println!(
                    "{:>6} {:>6} | {:>5} | {:>12} {:>12} {:>8.2}",
                    n_nodes,
                    ranks,
                    n_loops,
                    fmt_time(t_op2),
                    fmt_time(t_ca),
                    gain_percent(t_op2, t_ca)
                );
                if cli.csv {
                    println!(
                        "csv,{mesh_label},{n_nodes},{ranks},{n_loops},{t_op2:.6e},{t_ca:.6e},{:.2}",
                        gain_percent(t_op2, t_ca)
                    );
                }
            }
        }
        println!();
    }
    println!(
        "Expected shape (paper): gains already at 1 node and low loop\n\
         counts, rising to ~40%+ at the largest configuration."
    );
}
