//! Table 5: Hydra loop-chains on ARCHER2, 8M mesh — model components
//! per chain and node count: OP2 `Σ(2dpm¹)`, `Σ(Sᶜ)`, `Σ(S¹)`; CA
//! `pmʳ`, `Σ(Sᶜ)`, `Σ(Sʰ)`; chain gain%, communication reduction % and
//! computation increase %.

use op2_bench::*;
use op2_model::eqs::{gain_percent, t_ca_chain, t_op2_chain};
use op2_model::profit::{classify, narrative};
use op2_model::Machine;

fn main() {
    let cli = Cli::parse();
    banner("Table 5: Hydra loop-chains on ARCHER2 — 8M mesh components", &cli);
    let mach = Machine::archer2();
    let nodes = cli.node_counts(&[4, 16, 64]);
    let chains = ["weight", "period", "vflux", "gradl", "jacob", "iflux"];
    if cli.csv {
        println!(
            "csv,chain,nodes,op2_comm_B,op2_Sc,op2_S1,ca_comm_B,ca_Sc,ca_Sh,gain_pct,comm_red_pct,comp_inc_pct"
        );
    }

    let mesh = cli.scale.ann_8m;
    println!("(mesh: {} nodes at this scale)\n", mesh.n_nodes());
    println!(
        "{:<9} {:>6} | {:>12} {:>9} {:>9} | {:>12} {:>9} {:>9} | {:>8} {:>9} {:>9}",
        "chain",
        "nodes",
        "OP2comm(B)",
        "S(Sc)",
        "S(S1)",
        "CAcomm(B)",
        "S(Sc)",
        "S(Sh)",
        "gain%",
        "commRed%",
        "compInc%"
    );
    // Statistics depend only on (mesh, ranks): collect once per node
    // count (paper extents need depth 2) and reuse across chains.
    let per_node: Vec<(usize, _, _)> = nodes
        .iter()
        .filter(|&&n| n * cli.scale.cpu_rpn < mesh.n_nodes() / 8)
        .map(|&n| {
            let ranks = n * cli.scale.cpu_rpn;
            let (app, stats) = hydra_stats(mesh, ranks, 2, cli.scale.threads);
            (n, app, stats)
        })
        .collect();
    for chain_name in chains {
        let mut last_verdict = None;
        for (n_nodes, app, stats) in &per_node {
            let n_nodes = *n_nodes;
            let comp = hydra_chain_components(app, stats, chain_name, &mach);
            last_verdict = Some(classify(&mach, &comp));
            let t_op2 = t_op2_chain(&mach, &comp.op2_loops);
            let t_ca = t_ca_chain(&mach, &comp.ca);
            let gain = gain_percent(t_op2, t_ca);
            println!(
                "{:<9} {:>6} | {:>12} {:>9} {:>9} | {:>12} {:>9} {:>9} | {:>8.2} {:>9.2} {:>9.2}",
                chain_name,
                n_nodes,
                comp.op2_comm_bytes as u64,
                comp.op2_core,
                comp.op2_halo,
                comp.ca_comm_bytes as u64,
                comp.ca_core,
                comp.ca_halo,
                gain,
                comp.comm_reduction_pct(),
                comp.comp_increase_pct()
            );
            if cli.csv {
                println!(
                    "csv,{chain_name},{n_nodes},{},{},{},{},{},{},{gain:.2},{:.2},{:.2}",
                    comp.op2_comm_bytes as u64,
                    comp.op2_core,
                    comp.op2_halo,
                    comp.ca_comm_bytes as u64,
                    comp.ca_core,
                    comp.ca_halo,
                    comp.comm_reduction_pct(),
                    comp.comp_increase_pct()
                );
            }
        }
        if let Some(v) = last_verdict {
            println!(
                "  -> {:?}: {} (enable CA: {})",
                v.class,
                narrative(v.class, mach.kind),
                if v.enable_ca { "yes" } else { "no" }
            );
        }
    }
    println!(
        "\nExpected shape (paper Table 5): `period` and `jacob` show large\n\
         communication reductions and positive gains at scale; `gradl`\n\
         increases both communication and computation and loses; `vflux`\n\
         has zero communication reduction on the CPU cluster."
    );
}
