//! Tables 3 & 4: the six OP2-Hydra loop-chains — iteration sets, access
//! modes of the halo-exchanged dats, and halo extensions per loop.
//!
//! Three extent columns are printed side by side:
//!
//! * **paper** — the published Table 3/4 values (what the paper's chain
//!   configuration file pins; used by the `Paper` execution mode);
//! * **alg3** — the literal Algorithm 3 as printed in the paper
//!   ([`op2_core::chain::calc_halo_layers`]);
//! * **safe** — the transitive dependency closure this reproduction's
//!   strict executor requires ([`op2_core::chain::calc_halo_extents`]).
//!
//! Divergences between the columns are analysed in EXPERIMENTS.md.

use hydra_sim::{ExtentMode, Hydra, HydraParams};
use op2_core::chain::{calc_halo_extents, calc_halo_layers};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    println!("== Tables 3 & 4: OP2-Hydra loop-chains and halo extensions ==\n");
    let app = Hydra::new(HydraParams::small(8));
    if csv {
        println!("csv,chain,pos,loop,set,he_paper,he_alg3,he_safe");
    }

    for name in Hydra::chain_names() {
        let chain = app.chain(name, ExtentMode::Safe).expect("chain valid");
        let sigs = chain.sigs();
        let alg3 = calc_halo_layers(&sigs);
        let safe = calc_halo_extents(&sigs);
        let paper = Hydra::paper_extents(name);
        println!(
            "loop-chain: {name} (loop count = {})",
            chain.len()
        );
        println!(
            "  {:<16} {:<8} | {:<30} | {:>5} {:>5} {:>5}",
            "parallel loop", "iter set", "halo-exchanged dats (mode)", "paper", "alg3", "safe"
        );
        for (pos, sig) in sigs.iter().enumerate() {
            let set = &app.mesh.dom.set(sig.set).name;
            let mut dats = Vec::new();
            for d in sig.dats() {
                if let Some((mode, indirect)) = sig.access_of(d) {
                    if indirect {
                        dats.push(format!(
                            "{}:{}",
                            app.mesh.dom.dat(d).name,
                            mode.label()
                        ));
                    }
                }
            }
            let dats = if dats.is_empty() {
                "-".to_string()
            } else {
                dats.join(", ")
            };
            println!(
                "  {:<16} {:<8} | {:<30} | {:>5} {:>5} {:>5}",
                sig.name, set, dats, paper[pos], alg3.per_loop[pos], safe[pos]
            );
            if csv {
                println!(
                    "csv,{name},{pos},{},{set},{},{},{}",
                    sig.name, paper[pos], alg3.per_loop[pos], safe[pos]
                );
            }
        }
        println!();
    }
    println!(
        "vflux / iflux / gradl: all three columns agree with the paper.\n\
         weight / period / jacob: the literal Alg 3 and the transitive\n\
         closure disagree with individual published values — see\n\
         EXPERIMENTS.md for the per-loop discussion. The `Paper` execution\n\
         mode pins the published extents (relaxed chain execution);\n\
         the `Safe` mode uses the transitive closure."
    );
}
