//! `BENCH_runtime.json`: machine-readable runtime-counter report.
//!
//! Runs the MG-CFD solver through the adaptive (tuner + plan-cache)
//! back-end and emits one JSON record per rank: communication totals,
//! transport recovery counters, plan-cache hit/miss/invalidation
//! counters and every tuner decision (backend, class, predicted vs
//! measured times). The CI/regression side can diff these without
//! scraping human-readable tables.
//!
//! Flags: the common `--scale`, plus `--out <path>` (default
//! `BENCH_runtime.json` in the working directory), `--iters N`
//! (default 3 — enough for calibration *and* cached-plan repeats) and
//! `--threads N` (colored-threaded execution per rank; equivalent to
//! setting `OP2_THREADS=N`, and reported per rank under `threads`).

use mg_cfd::{run_auto, MgCfd, MgCfdParams};
use op2_bench::json::{trace_summary, Json};
use op2_model::Machine;
use op2_partition::{build_layouts, derive_ownership, rcb_partition};
use op2_runtime::TunerMode;

fn main() {
    let mut out_path = String::from("BENCH_runtime.json");
    let mut iters = 3usize;
    let mut size = 7usize;
    let mut ranks = 4usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--iters" => {
                i += 1;
                iters = args.get(i).expect("--iters needs a count").parse().unwrap();
            }
            "--size" => {
                i += 1;
                size = args.get(i).expect("--size needs an edge count").parse().unwrap();
            }
            "--ranks" => {
                i += 1;
                ranks = args.get(i).expect("--ranks needs a count").parse().unwrap();
            }
            "--threads" => {
                i += 1;
                let n = args.get(i).expect("--threads needs a count");
                // The rank envs read OP2_THREADS at spawn; routing the
                // flag through the env var keeps one source of truth.
                std::env::set_var("OP2_THREADS", n);
            }
            "--help" | "-h" => {
                eprintln!("flags: --out path  --iters N  --size N  --ranks N  --threads N");
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}`"),
        }
        i += 1;
    }

    let params = MgCfdParams::small(size);
    let mut app = MgCfd::new(params);
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, ranks);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
    let layouts = build_layouts(&app.dom, &own, 2);

    let out = run_auto(
        &mut app,
        &layouts,
        iters,
        &Machine::archer2(),
        TunerMode::from_env(),
        None,
    );

    let report = Json::obj(vec![
        ("app", Json::Str("mg-cfd".into())),
        (
            "backend",
            Json::Str(std::env::var("OP2_TUNER").unwrap_or_else(|_| "auto".into())),
        ),
        ("iters", Json::U64(iters as u64)),
        ("ranks", Json::U64(ranks as u64)),
        (
            "threads",
            Json::U64(op2_runtime::Threading::from_env().n_threads as u64),
        ),
        (
            "block_size",
            Json::U64(op2_runtime::Threading::from_env().block_size as u64),
        ),
        ("rms", Json::F64(out.rms)),
        (
            "per_rank",
            Json::Arr(out.traces.iter().map(trace_summary).collect()),
        ),
    ]);
    std::fs::write(&out_path, report.pretty())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path} ({} ranks, {iters} iters)", out.traces.len());
}
