//! `BENCH_runtime.json`: machine-readable runtime-counter report.
//!
//! Runs the MG-CFD solver through the adaptive (tuner + plan-cache)
//! back-end and emits one JSON record per rank: communication totals,
//! transport recovery counters, plan-cache hit/miss/invalidation
//! counters and every tuner decision (backend, class, predicted vs
//! measured times). The CI/regression side can diff these without
//! scraping human-readable tables.
//!
//! Flags: the common `--scale`, plus `--out <path>` (default
//! `BENCH_runtime.json` in the working directory), `--iters N`
//! (default 3 — enough for calibration *and* cached-plan repeats) and
//! `--threads N` (colored-threaded execution; sets the node-wide
//! `OP2_THREADS`, which the harness splits across ranks, and is
//! reported per rank under `threads`).
//!
//! `--tiled-threads N` runs an *extra* pass through the tiled-threaded
//! executor (CA + sparse tiling with `N` pool threads per rank,
//! `--tiles` tiles) and writes its report next to `--out` with a
//! `_tiled_tN` suffix — e.g. `BENCH_runtime_tiled_t4.json` — so CI can
//! archive the threaded-tiling counters alongside the adaptive run's.
//!
//! `--exchange` runs the halo-exchange engine report: the same solver
//! once through the CA back-end (grouped planned exchanges, persistent
//! pooled buffers, arrival-order unpack) and once through per-loop OP2
//! (per-dat messages), emitting `BENCH_exchange.json` with each mode's
//! pack/unpack/wait wall time and payload allocation counts so the
//! zero-allocation steady state and the grouping win are diffable in CI.
//!
//! `--recovery` runs the self-healing supervisor report: the CA solver
//! unsupervised (baseline), supervised fault-free (isolating the
//! chain-boundary checkpoint overhead), and supervised with an injected
//! mid-chain rank crash (isolating rollback + replay cost), emitting
//! `BENCH_recovery.json` with the wall times, the overhead/replay
//! percentages, the summed `RecoveryRec` counters and the per-rank
//! records — plus the bitwise-identity verdict between the faulted and
//! fault-free results.
//!
//! `--service` runs the resident-service report: the CA solver as
//! repeated jobs on one registered mesh world, emitting
//! `BENCH_service.json` with cold-start vs warm-job latency (the
//! shared plan registry skips all inspection from job 2 on), the
//! registry hit rate, steady-state payload allocation counts, batched
//! vs unbatched throughput of a same-shape burst, and the bitwise
//! verdict between every job's residual and the standalone `run_ca`.
//!
//! `--rebalance` runs the online-rebalancing report: the CA solver once
//! statically and once through `run_ca_rebalanced` with a cost-skewed,
//! trace-triggered migration at the first segment boundary, emitting
//! `BENCH_rebalance.json` with the measured load imbalance before and
//! after the re-shard, the migration traffic (elements, bytes), the
//! replanning cost, and the bitwise verdict between the migrated and
//! the static run's residual.
//!
//! `--fusion` runs the cross-loop fusion report: the MG-CFD fused
//! chain (flux → step_factor → time_step, `adt` elided into the
//! scratch pool) once through the split executor and once fused,
//! emitting `BENCH_fusion.json` with both wall times, the fused-piece
//! and elided-byte totals, the fused-schedule cache hit rate, the
//! steady-state scratch-pool allocation count (zero once warm) and
//! the bitwise verdict between the fused and unfused residuals.
//!
//! `--dataflow` runs the async-executor report: an elongated
//! skewed-cost chain fixture (clustered heavy blocks, dyadic-exact
//! kernels) once through the level-synchronous drain (`OP2_EXEC=levels`)
//! and once through the dependency-counter dataflow drain
//! (`OP2_EXEC=dataflow` with pinning), emitting `BENCH_dataflow.json`
//! with both wall times, the per-worker idle totals (strictly lower
//! under dataflow is the acceptance bar), steal/fire counts, the
//! critical-path depth vs the barrier count, the steady-state
//! steal-queue allocation count (zero once warm) and the bitwise
//! verdict against the sequential reference.
//!
//! `--summary` re-reads every `BENCH_*.json` in the working directory
//! and consolidates the wall-clock headlines (`*_ms` fields, load
//! imbalance, bitwise verdicts) into one `BENCH_summary.json`, so CI
//! archives a single at-a-glance record next to the per-subsystem
//! reports.
//!
//! Every report additionally carries a `load` object — each rank's
//! measured loop + chain wall time and the `max/mean` imbalance ratio
//! the rebalance detector triggers on.

use mg_cfd::{
    register_service_mesh, run_auto, run_ca, run_ca_fused, run_ca_rebalanced, run_ca_service,
    run_ca_supervised, run_ca_tiled_threaded, run_op2, service_job, MgCfd, MgCfdParams,
    RunOutcome,
};
use op2_bench::json::{load_summary, trace_summary, Json};
use op2_core::{seq, AccessMode, Arg, Args, ChainSpec, LoopSpec};
use op2_mesh::{skewed_costs, Quad2D};
use op2_model::Machine;
use op2_partition::{build_layouts, derive_ownership, rcb_partition};
use op2_runtime::{
    run_distributed_with, Boundary, BoundaryKind, ExecMode, FaultPlan, FaultSpec, FuseMode,
    RankTrace, RebalanceConfig, RebalancePolicy, RunOptions, Service, ServiceConfig,
    SuperviseOptions, Threading, TunerMode,
};

/// Skewed-cost edge kernel for the `--dataflow` fixture: the per-edge
/// `cost` dat sets the spin count, so clustered heavy blocks straggle
/// inside each color level. The spin feeds the output (it cannot be
/// optimized away) and every operation is dyadic, so the result is
/// bit-comparable across executors.
fn df_flux(args: &Args<'_>) {
    let w = args.get(0, 0) as usize;
    let mut acc = (args.get(1, 0) - args.get(2, 0)) * 0.5;
    for _ in 0..w {
        acc = acc * 0.5 + 0.25;
    }
    args.inc(3, 0, acc * 0.0078125);
    args.inc(4, 0, -acc * 0.0078125);
}

/// Direct node relaxation between the skewed edge sweeps — a cheap
/// level whose chunks depend on the Inc chunks covering their nodes.
fn df_relax(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) * 0.5 + args.get(1, 0) * 0.25);
    args.set(1, 0, 0.0);
}

fn main() {
    let mut out_path = String::from("BENCH_runtime.json");
    let mut iters = 3usize;
    let mut size = 7usize;
    let mut ranks = 4usize;
    let mut tiled_threads = 0usize;
    let mut tiles = 8usize;
    let mut exchange = false;
    let mut recovery = false;
    let mut service = false;
    let mut rebalance = false;
    let mut fusion = false;
    let mut dataflow = false;
    let mut summary = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--iters" => {
                i += 1;
                iters = args.get(i).expect("--iters needs a count").parse().unwrap();
            }
            "--size" => {
                i += 1;
                size = args.get(i).expect("--size needs an edge count").parse().unwrap();
            }
            "--ranks" => {
                i += 1;
                ranks = args.get(i).expect("--ranks needs a count").parse().unwrap();
            }
            "--threads" => {
                i += 1;
                let n = args.get(i).expect("--threads needs a count");
                // The rank envs read OP2_THREADS at spawn; routing the
                // flag through the env var keeps one source of truth.
                std::env::set_var("OP2_THREADS", n);
            }
            "--tiled-threads" => {
                i += 1;
                tiled_threads = args
                    .get(i)
                    .expect("--tiled-threads needs a count")
                    .parse()
                    .unwrap();
            }
            "--tiles" => {
                i += 1;
                tiles = args.get(i).expect("--tiles needs a count").parse().unwrap();
            }
            "--exchange" => exchange = true,
            "--recovery" => recovery = true,
            "--service" => service = true,
            "--rebalance" => rebalance = true,
            "--fusion" => fusion = true,
            "--dataflow" => dataflow = true,
            "--summary" => summary = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --out path  --iters N  --size N  --ranks N  --threads N  \
                     --tiled-threads N  --tiles N  --exchange  --recovery  --service  \
                     --rebalance  --fusion  --dataflow  --summary"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}`"),
        }
        i += 1;
    }

    let params = MgCfdParams::small(size);
    let mut app = MgCfd::new(params);
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, ranks);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
    let layouts = build_layouts(&app.dom, &own, 2);

    let out = run_auto(
        &mut app,
        &layouts,
        iters,
        &Machine::archer2(),
        TunerMode::from_env(),
        None,
    );

    let report = Json::obj(vec![
        ("app", Json::Str("mg-cfd".into())),
        (
            "backend",
            Json::Str(std::env::var("OP2_TUNER").unwrap_or_else(|_| "auto".into())),
        ),
        ("iters", Json::U64(iters as u64)),
        ("ranks", Json::U64(ranks as u64)),
        (
            "threads",
            Json::U64(op2_runtime::Threading::from_env().n_threads as u64),
        ),
        (
            "block_size",
            Json::U64(op2_runtime::Threading::from_env().block_size as u64),
        ),
        ("rms", Json::F64(out.rms)),
        ("load", load_summary(&out.traces)),
        (
            "per_rank",
            Json::Arr(out.traces.iter().map(trace_summary).collect()),
        ),
    ]);
    std::fs::write(&out_path, report.pretty())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path} ({} ranks, {iters} iters)", out.traces.len());

    if tiled_threads > 0 {
        // Fresh app + layouts: the adaptive pass above mutated the flow
        // field, and the tiled report should stand on its own.
        let mut app = MgCfd::new(params);
        let coords = &app.dom.dat(app.levels[0].ids.coords).data;
        let base = rcb_partition(coords, 3, ranks);
        let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
        let layouts = build_layouts(&app.dom, &own, 2);
        let threading = op2_runtime::Threading::with_threads(tiled_threads);
        let out = run_ca_tiled_threaded(&mut app, &layouts, iters, tiles, threading);

        let tiled_path = out_path
            .strip_suffix(".json")
            .map(|s| format!("{s}_tiled_t{tiled_threads}.json"))
            .unwrap_or_else(|| format!("{out_path}_tiled_t{tiled_threads}"));
        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("backend", Json::Str("tiled-threaded".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            ("threads", Json::U64(tiled_threads as u64)),
            ("tiles", Json::U64(tiles as u64)),
            ("rms", Json::F64(out.rms)),
            ("load", load_summary(&out.traces)),
            (
                "per_rank",
                Json::Arr(out.traces.iter().map(trace_summary).collect()),
            ),
        ]);
        std::fs::write(&tiled_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {tiled_path}: {e}"));
        println!(
            "wrote {tiled_path} ({} ranks, {iters} iters, {tiled_threads} threads, {tiles} tiles)",
            out.traces.len()
        );
    }

    if exchange {
        // Halo-exchange engine report: the same solver through the CA
        // back-end (grouped planned exchanges, pooled buffers,
        // arrival-order unpack) and the per-loop OP2 baseline (per-dat
        // messages), each on a fresh flow field.
        let mut modes: Vec<(&str, RunOutcome)> = Vec::new();
        for mode in ["ca_planned", "op2_per_loop"] {
            let mut app = MgCfd::new(params);
            let coords = &app.dom.dat(app.levels[0].ids.coords).data;
            let base = rcb_partition(coords, 3, ranks);
            let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
            let layouts = build_layouts(&app.dom, &own, 2);
            let out = match mode {
                "ca_planned" => run_ca(&mut app, &layouts, iters),
                _ => run_op2(&mut app, &layouts, iters),
            };
            modes.push((mode, out));
        }
        let exch_path = "BENCH_exchange.json".to_string();
        let mode_json = |out: &RunOutcome| {
            Json::obj(vec![
                ("rms", Json::F64(out.rms)),
                ("load", load_summary(&out.traces)),
                (
                    "per_rank",
                    Json::Arr(out.traces.iter().map(trace_summary).collect()),
                ),
            ])
        };
        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            (
                "modes",
                Json::Obj(
                    modes
                        .iter()
                        .map(|(name, out)| (name.to_string(), mode_json(out)))
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(&exch_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {exch_path}: {e}"));
        println!("wrote {exch_path} ({ranks} ranks, {iters} iters)");
    }

    if recovery {
        // Self-healing supervisor report. Three passes on fresh flow
        // fields: unsupervised CA (baseline), supervised fault-free
        // (checkpoint overhead), supervised with rank 1 crashed at its
        // second chain boundary (rollback + replay cost).
        let fresh = || {
            let app = MgCfd::new(params);
            let coords = &app.dom.dat(app.levels[0].ids.coords).data;
            let base = rcb_partition(coords, 3, ranks);
            let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
            let layouts = build_layouts(&app.dom, &own, 2);
            (app, layouts)
        };
        let timed = |f: &mut dyn FnMut() -> RunOutcome| {
            let t0 = std::time::Instant::now();
            let out = f();
            (out, t0.elapsed().as_secs_f64() * 1e3)
        };

        let (mut app, layouts) = fresh();
        let (baseline, baseline_ms) =
            timed(&mut || run_ca(&mut app, &layouts, iters));

        let (mut app, layouts) = fresh();
        let opts = SuperviseOptions::new(RunOptions::default().checkpoint_every(1));
        let (clean, clean_ms) = timed(&mut || {
            run_ca_supervised(&mut app, &layouts, iters, &opts)
                .expect("fault-free supervised run")
        });

        let (mut app, layouts) = fresh();
        let spec = FaultSpec::default()
            .with_crash_site(1, Boundary::new(BoundaryKind::Chain, 1));
        let opts = SuperviseOptions::new(
            RunOptions::with_faults(FaultPlan::new(spec)).checkpoint_every(1),
        );
        let (faulted, faulted_ms) = timed(&mut || {
            run_ca_supervised(&mut app, &layouts, iters, &opts)
                .expect("supervised recovery from a single crash")
        });

        let sum = |out: &RunOutcome, f: &dyn Fn(&op2_runtime::RecoveryRec) -> u64| {
            out.traces.iter().map(|t| f(&t.recovery)).sum::<u64>()
        };
        let overhead_pct = (clean_ms / baseline_ms - 1.0) * 100.0;
        let replay_ms = faulted_ms - clean_ms;
        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            ("baseline_ms", Json::F64(baseline_ms)),
            ("supervised_ms", Json::F64(clean_ms)),
            ("checkpoint_overhead_pct", Json::F64(overhead_pct)),
            ("faulted_ms", Json::F64(faulted_ms)),
            ("replay_cost_ms", Json::F64(replay_ms)),
            (
                "bitwise_identical",
                Json::Bool(
                    baseline.rms.to_bits() == clean.rms.to_bits()
                        && baseline.rms.to_bits() == faulted.rms.to_bits(),
                ),
            ),
            (
                "totals",
                Json::obj(vec![
                    ("checkpoints", Json::U64(sum(&faulted, &|r| r.checkpoints))),
                    ("ckpt_bytes", Json::U64(sum(&faulted, &|r| r.ckpt_bytes))),
                    (
                        "dats_snapshotted",
                        Json::U64(sum(&faulted, &|r| r.dats_snapshotted)),
                    ),
                    ("dats_skipped", Json::U64(sum(&faulted, &|r| r.dats_skipped))),
                    ("rollbacks", Json::U64(sum(&faulted, &|r| r.rollbacks))),
                    (
                        "restored_bytes",
                        Json::U64(sum(&faulted, &|r| r.restored_bytes)),
                    ),
                    (
                        "replayed_loops",
                        Json::U64(sum(&faulted, &|r| r.replayed_loops)),
                    ),
                    (
                        "replayed_chains",
                        Json::U64(sum(&faulted, &|r| r.replayed_chains)),
                    ),
                ]),
            ),
            ("load", load_summary(&faulted.traces)),
            (
                "per_rank",
                Json::Arr(faulted.traces.iter().map(trace_summary).collect()),
            ),
        ]);
        let rec_path = "BENCH_recovery.json".to_string();
        std::fs::write(&rec_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {rec_path}: {e}"));
        println!(
            "wrote {rec_path} ({ranks} ranks, {iters} iters, overhead {overhead_pct:.1}%, \
             replay {replay_ms:.1}ms)"
        );
    }

    if service {
        // Resident-service report. One mesh world, many CA jobs: the
        // first pays inspection + buffer warm-up (cold start), the
        // second runs on the shared plan registry, the third on fully
        // recycled pools — then a same-shape burst measures batched vs
        // unbatched throughput.
        let app = MgCfd::new(params);
        let coords = &app.dom.dat(app.levels[0].ids.coords).data;
        let base = rcb_partition(coords, 3, ranks);
        let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
        let layouts = build_layouts(&app.dom, &own, 2);

        // The standalone run every service job must match bitwise.
        let mut ref_app = MgCfd::new(params);
        let reference = run_ca(&mut ref_app, &layouts, iters);

        let svc = Service::new(ServiceConfig::default());
        let mesh = register_service_mesh(&svc, &app, layouts);
        let timed_job = |label: &str| {
            let t0 = std::time::Instant::now();
            let out = run_ca_service(&svc, mesh, &app, iters)
                .unwrap_or_else(|e| panic!("{label} service job: {e}"));
            (out, t0.elapsed().as_secs_f64() * 1e3)
        };
        let (cold, cold_ms) = timed_job("cold");
        let (warm, warm_ms) = timed_job("warm");
        let (steady, steady_ms) = timed_job("steady");

        // Same-shape burst, once as single submits and once batched.
        const BURST: usize = 4;
        let job = service_job(&app, iters);
        let burst: Vec<_> = (0..BURST).map(|_| job.clone()).collect();
        let t0 = std::time::Instant::now();
        for j in &burst {
            svc.submit(mesh, j).expect("unbatched burst job");
        }
        let unbatched_s = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        for r in svc.submit_batch(mesh, &burst).expect("burst admitted") {
            r.expect("batched burst job");
        }
        let batched_s = t0.elapsed().as_secs_f64();

        let m = svc.metrics();
        let lookups = m.plan.registry_hits + m.plan.registry_misses;
        let hit_rate = if lookups > 0 {
            m.plan.registry_hits as f64 / lookups as f64
        } else {
            0.0
        };
        let steady_allocs: u64 = steady.traces.iter().map(|t| t.comm.payload_allocs).sum();
        let bitwise = [&cold, &warm, &steady]
            .iter()
            .all(|o| o.rms.to_bits() == reference.rms.to_bits());
        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            ("cold_ms", Json::F64(cold_ms)),
            ("warm_ms", Json::F64(warm_ms)),
            ("steady_ms", Json::F64(steady_ms)),
            ("warm_speedup", Json::F64(cold_ms / warm_ms)),
            ("steady_payload_allocs", Json::U64(steady_allocs)),
            ("bitwise_identical", Json::Bool(bitwise)),
            (
                "registry",
                Json::obj(vec![
                    ("hits", Json::U64(m.plan.registry_hits)),
                    ("misses", Json::U64(m.plan.registry_misses)),
                    ("hit_rate", Json::F64(hit_rate)),
                    ("plans", Json::U64(m.registry_plans)),
                ]),
            ),
            (
                "throughput",
                Json::obj(vec![
                    ("burst_jobs", Json::U64(BURST as u64)),
                    ("unbatched_jobs_per_s", Json::F64(BURST as f64 / unbatched_s)),
                    ("batched_jobs_per_s", Json::F64(BURST as f64 / batched_s)),
                ]),
            ),
            (
                "metrics",
                Json::obj(vec![
                    ("submitted", Json::U64(m.submitted)),
                    ("completed", Json::U64(m.completed)),
                    ("failed", Json::U64(m.failed)),
                    ("rejected", Json::U64(m.rejected)),
                    ("batched", Json::U64(m.batched)),
                    ("warm_jobs", Json::U64(m.warm_jobs)),
                    ("recoveries", Json::U64(m.recoveries)),
                ]),
            ),
            ("load", load_summary(&steady.traces)),
            (
                "per_rank",
                Json::Arr(steady.traces.iter().map(trace_summary).collect()),
            ),
        ]);
        let svc_path = "BENCH_service.json".to_string();
        std::fs::write(&svc_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {svc_path}: {e}"));
        println!(
            "wrote {svc_path} ({ranks} ranks, cold {cold_ms:.1}ms, warm {warm_ms:.1}ms, \
             registry hit rate {:.0}%)",
            hit_rate * 100.0
        );
    }

    if rebalance {
        // Online-rebalancing report. Two passes on fresh flow fields:
        // static CA (the reference) and the rebalanced driver with a
        // trace-triggered (threshold 0), cost-skewed migration at the
        // first segment boundary — the same forced-migration setup the
        // acceptance tests use, so the verdict is deterministic. The
        // mesh size is forced odd: on a perfect even cube the x-skewed
        // weighted re-shard can land on weight-symmetric cut planes and
        // degenerate to a no-op, which would make the report vacuous.
        let reb_params = MgCfdParams::small(size | 1);
        let fresh = || {
            let app = MgCfd::new(reb_params);
            let coords = &app.dom.dat(app.levels[0].ids.coords).data;
            let base = rcb_partition(coords, 3, ranks);
            let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
            let layouts = build_layouts(&app.dom, &own, 2);
            (app, layouts)
        };

        let (mut app, layouts) = fresh();
        let t0 = std::time::Instant::now();
        let baseline = run_ca(&mut app, &layouts, iters);
        let static_ms = t0.elapsed().as_secs_f64() * 1e3;

        let (mut app, layouts) = fresh();
        let coords = &app.dom.dat(app.levels[0].ids.coords).data;
        let seg = iters.div_ceil(2).max(1);
        let policy = RebalancePolicy::every(seg, RebalanceConfig::new(0.0, 8))
            .with_costs(skewed_costs(coords, 3, 0, 8.0));
        let opts = SuperviseOptions::new(RunOptions::default().checkpoint_every(1));
        let t0 = std::time::Instant::now();
        let (out, rec, _) = run_ca_rebalanced(&mut app, &layouts, iters, &opts, &policy)
            .expect("rebalanced run");
        let rebalanced_ms = t0.elapsed().as_secs_f64() * 1e3;

        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            ("static_ms", Json::F64(static_ms)),
            ("rebalanced_ms", Json::F64(rebalanced_ms)),
            ("migrations", Json::U64(rec.migrations)),
            ("migrated_elements", Json::U64(rec.elements_out)),
            ("migrated_bytes", Json::U64(rec.bytes_out)),
            ("replans", Json::U64(rec.replans)),
            (
                "imbalance_before_milli",
                Json::U64(rec.imbalance_before_milli),
            ),
            (
                "imbalance_after_milli",
                Json::U64(rec.imbalance_after_milli),
            ),
            ("replan_ms", Json::F64(rec.replan_ns as f64 / 1e6)),
            (
                "bitwise_identical",
                Json::Bool(baseline.rms.to_bits() == out.rms.to_bits()),
            ),
            ("load", load_summary(&out.traces)),
            (
                "per_rank",
                Json::Arr(out.traces.iter().map(trace_summary).collect()),
            ),
        ]);
        let reb_path = "BENCH_rebalance.json".to_string();
        std::fs::write(&reb_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {reb_path}: {e}"));
        println!(
            "wrote {reb_path} ({ranks} ranks, {} migration(s), {} bytes, replan {:.1}ms)",
            rec.migrations,
            rec.bytes_out,
            rec.replan_ns as f64 / 1e6
        );
    }

    if fusion {
        // Cross-loop fusion report. Two passes on fresh flow fields —
        // the fused chain split (`OP2_FUSE=off`) and fused (`on`) —
        // plus a third instrumented pass that probes the per-thread
        // scratch pool for steady-state allocations.
        let fresh = || {
            let app = MgCfd::new(params);
            let coords = &app.dom.dat(app.levels[0].ids.coords).data;
            let base = rcb_partition(coords, 3, ranks);
            let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
            let layouts = build_layouts(&app.dom, &own, 2);
            (app, layouts)
        };

        let (mut app, layouts) = fresh();
        let t0 = std::time::Instant::now();
        let unfused = run_ca_fused(&mut app, &layouts, iters, FuseMode::Off, None);
        let unfused_ms = t0.elapsed().as_secs_f64() * 1e3;

        let (mut app, layouts) = fresh();
        let t0 = std::time::Instant::now();
        let fused = run_ca_fused(&mut app, &layouts, iters, FuseMode::On, None);
        let fused_ms = t0.elapsed().as_secs_f64() * 1e3;

        let fused_pieces: u64 = fused.traces.iter().map(|t| t.plan.fused_pieces).sum();
        let elided_bytes: u64 = fused.traces.iter().map(|t| t.plan.elided_bytes).sum();
        let (hits, misses) = fused
            .traces
            .iter()
            .fold((0u64, 0u64), |(h, m), t| (h + t.plan.hits, m + t.plan.misses));
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };

        // Scratch-pool steady state: warm two invocations (schedule
        // build + dirty-class settle), then count further pool growth
        // across `iters` more — zero once warm.
        let (mut app, layouts) = fresh();
        let chain = app.fused_chain(0).expect("fused chain valid");
        let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
        let allocs = std::sync::Mutex::new(Vec::new());
        let opts = RunOptions::default().fuse(FuseMode::On);
        let out = run_distributed_with(&mut app.dom, &layouts, &opts, |env| {
            for l in &init {
                op2_runtime::exec::run_loop(env, l)?;
            }
            for _ in 0..2 {
                op2_runtime::exec::run_chain(env, &chain)?;
            }
            let warm = env.sched_allocs();
            for _ in 0..iters {
                op2_runtime::exec::run_chain(env, &chain)?;
            }
            allocs.lock().unwrap().push(env.sched_allocs() - warm);
            Ok(())
        });
        assert!(out.all_ok(), "scratch probe failed: {:?}", out.failures());
        let steady_allocs: u64 = allocs.lock().unwrap().iter().sum();

        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("chain", Json::Str("flux_sf_ts_l0".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            ("unfused_ms", Json::F64(unfused_ms)),
            ("fused_ms", Json::F64(fused_ms)),
            ("fused_speedup", Json::F64(unfused_ms / fused_ms)),
            ("fused_pieces", Json::U64(fused_pieces)),
            ("elided_bytes", Json::U64(elided_bytes)),
            ("steady_scratch_allocs", Json::U64(steady_allocs)),
            (
                "plan_cache",
                Json::obj(vec![
                    ("hits", Json::U64(hits)),
                    ("misses", Json::U64(misses)),
                    ("hit_rate", Json::F64(hit_rate)),
                ]),
            ),
            (
                "bitwise_identical",
                Json::Bool(unfused.rms.to_bits() == fused.rms.to_bits()),
            ),
            ("load", load_summary(&fused.traces)),
            (
                "per_rank",
                Json::Arr(fused.traces.iter().map(trace_summary).collect()),
            ),
        ]);
        let fus_path = "BENCH_fusion.json".to_string();
        std::fs::write(&fus_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {fus_path}: {e}"));
        println!(
            "wrote {fus_path} ({ranks} ranks, {fused_pieces} fused pieces, \
             {elided_bytes} bytes elided, {steady_allocs} steady-state scratch allocs)"
        );
    }

    if dataflow {
        // Async-executor report on the elongated skewed-cost fixture:
        // a 128×6 strip, a 6-loop chain alternating a skewed indirect
        // edge sweep with a direct node relaxation, heavy spin counts
        // clustered into contiguous block runs. Level barriers make
        // every worker wait out the heavy blocks; the dataflow drain
        // lets finished workers fire ready chunks from later levels.
        const NX: usize = 128;
        const NY: usize = 6;
        const SWEEPS: usize = 3;
        const HEAVY: f64 = 8000.0;
        const LIGHT: f64 = 50.0;
        let threads = 4usize;
        let threading = Threading {
            n_threads: threads,
            block_size: 8,
            auto_block: false,
        };

        let m = Quad2D::generate(NX, NY);
        let mut dom = m.dom;
        let n_nodes = dom.set(m.nodes).size;
        let n_edges = dom.set(m.edges).size;
        let vals: Vec<f64> = (0..n_nodes).map(|i| ((i * 13 + 7) % 17) as f64).collect();
        // Heavy cost in clustered runs (blocks 0..8 of every 64-edge
        // span) so whole chunks straggle rather than single elements.
        let costs: Vec<f64> = (0..n_edges)
            .map(|i| if (i / 64) % 8 == 0 { HEAVY } else { LIGHT })
            .collect();
        let val = dom.decl_dat("val", m.nodes, 1, vals);
        let res = dom.decl_dat_zeros("res", m.nodes, 1);
        let cost = dom.decl_dat("cost", m.edges, 1, costs);
        let mut loops = Vec::with_capacity(2 * SWEEPS);
        for _ in 0..SWEEPS {
            loops.push(LoopSpec::new(
                "df_flux",
                m.edges,
                vec![
                    Arg::dat_direct(cost, AccessMode::Read),
                    Arg::dat_indirect(val, m.e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(val, m.e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(res, m.e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(res, m.e2n, 1, AccessMode::Inc),
                ],
                df_flux,
            ));
            loops.push(LoopSpec::new(
                "df_relax",
                m.nodes,
                vec![
                    Arg::dat_direct(val, AccessMode::Rw),
                    Arg::dat_direct(res, AccessMode::Rw),
                ],
                df_relax,
            ));
        }
        let chain = ChainSpec::new("skewed_dataflow", loops, None, &[]).unwrap();
        let base = rcb_partition(&dom.dat(m.coords).data, 2, 1);
        let own = derive_ownership(&dom, m.nodes, base, 1);
        // The SWEEPS read-write sweeps ladder the chain's halo extent;
        // on one rank the extra layers are empty but must be declared.
        let layouts = build_layouts(&dom, &own, 2 * SWEEPS);

        // Sequential reference bits (val + res after every iteration).
        let seq_bits = {
            let mut d = dom.clone();
            for _ in 0..2 + iters {
                for l in &chain.loops {
                    seq::run_loop(&mut d, l);
                }
            }
            [val, res].map(|id| d.dat(id).data.iter().map(|x| x.to_bits()).collect::<Vec<u64>>())
        };

        // One pass per executor: two warm-up invocations (plan + DAG
        // build, scratch sizing), then `iters` timed steady-state
        // invocations with the steal-queue allocation watermark taken
        // across them.
        let run_exec = |exec: ExecMode, pin: bool| {
            let mut d = dom.clone();
            let opts = RunOptions::default()
                .threading(threading)
                .exec(exec)
                .thread_pin(pin);
            let steady = std::sync::Mutex::new((0u64, 0f64));
            let out = run_distributed_with(&mut d, &layouts, &opts, |env| {
                for _ in 0..2 {
                    op2_runtime::exec::run_chain(env, &chain)?;
                }
                let warm = env.threads.dataflow.allocs();
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    op2_runtime::exec::run_chain(env, &chain)?;
                }
                let wall = t0.elapsed().as_secs_f64() * 1e3;
                let mut s = steady.lock().unwrap();
                s.0 += env.threads.dataflow.allocs() - warm;
                s.1 = s.1.max(wall);
                Ok(())
            });
            assert!(out.all_ok(), "dataflow fixture failed: {:?}", out.failures());
            let bits =
                [val, res].map(|id| d.dat(id).data.iter().map(|x| x.to_bits()).collect::<Vec<u64>>());
            let (allocs, wall_ms) = *steady.lock().unwrap();
            (out.traces, bits, wall_ms, allocs)
        };
        let (lv_traces, lv_bits, lv_ms, _) = run_exec(ExecMode::Levels, false);
        let (df_traces, df_bits, df_ms, df_allocs) = run_exec(ExecMode::Dataflow, true);

        let per_worker = |traces: &[RankTrace], f: &dyn Fn(&op2_runtime::ThreadRec) -> &[u64]| {
            let mut acc = vec![0u64; threads];
            for t in traces {
                for r in &t.threads {
                    for (w, &v) in f(r).iter().enumerate() {
                        acc[w] += v;
                    }
                }
            }
            acc
        };
        let lv_idle = per_worker(&lv_traces, &|r| &r.idle_ns);
        let df_idle = per_worker(&df_traces, &|r| &r.idle_ns);
        let df_steals = per_worker(&df_traces, &|r| &r.steals);
        let df_fires = per_worker(&df_traces, &|r| &r.fires);
        let lv_idle_total: u64 = lv_idle.iter().sum();
        let df_idle_total: u64 = df_idle.iter().sum();
        let barrier_levels = lv_traces
            .iter()
            .flat_map(|t| t.threads.iter().map(|r| r.n_levels as u64))
            .max()
            .unwrap_or(0);
        let crit_path = df_traces
            .iter()
            .flat_map(|t| t.threads.iter().map(|r| r.crit_path as u64))
            .max()
            .unwrap_or(0);
        let bitwise = lv_bits == seq_bits && df_bits == seq_bits;
        let idle_reduction_pct = if lv_idle_total > 0 {
            (1.0 - df_idle_total as f64 / lv_idle_total as f64) * 100.0
        } else {
            0.0
        };

        let u64s = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::U64(x)).collect());
        let report = Json::obj(vec![
            ("app", Json::Str("skewed-dataflow-fixture".into())),
            (
                "fixture",
                Json::obj(vec![
                    ("nx", Json::U64(NX as u64)),
                    ("ny", Json::U64(NY as u64)),
                    ("edges", Json::U64(n_edges as u64)),
                    ("chain_loops", Json::U64(2 * SWEEPS as u64)),
                    ("heavy_spin", Json::U64(HEAVY as u64)),
                    ("light_spin", Json::U64(LIGHT as u64)),
                ]),
            ),
            ("iters", Json::U64(iters as u64)),
            ("threads", Json::U64(threads as u64)),
            ("levels_ms", Json::F64(lv_ms)),
            ("dataflow_ms", Json::F64(df_ms)),
            (
                "levels",
                Json::obj(vec![
                    ("wall_ms", Json::F64(lv_ms)),
                    ("idle_ns_total", Json::U64(lv_idle_total)),
                    ("per_worker_idle_ns", u64s(&lv_idle)),
                    ("barrier_levels", Json::U64(barrier_levels)),
                ]),
            ),
            (
                "dataflow",
                Json::obj(vec![
                    ("wall_ms", Json::F64(df_ms)),
                    ("idle_ns_total", Json::U64(df_idle_total)),
                    ("per_worker_idle_ns", u64s(&df_idle)),
                    ("steals", u64s(&df_steals)),
                    ("fires", u64s(&df_fires)),
                    ("crit_path", Json::U64(crit_path)),
                    ("pinned", Json::Bool(true)),
                ]),
            ),
            ("idle_reduction_pct", Json::F64(idle_reduction_pct)),
            ("idle_reduced", Json::Bool(df_idle_total < lv_idle_total)),
            ("steady_steal_queue_allocs", Json::U64(df_allocs)),
            ("bitwise_identical", Json::Bool(bitwise)),
        ]);
        let df_path = "BENCH_dataflow.json".to_string();
        std::fs::write(&df_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {df_path}: {e}"));
        println!(
            "wrote {df_path} (levels {lv_ms:.1}ms vs dataflow {df_ms:.1}ms, \
             idle {lv_idle_total}ns -> {df_idle_total}ns ({idle_reduction_pct:.0}% less), \
             {} steals, {df_allocs} steady steal-queue allocs, bitwise {bitwise})",
            df_steals.iter().sum::<u64>()
        );
    }

    if summary {
        // Consolidate every sibling BENCH_*.json (written by earlier
        // arms or CI steps) into one wall-clock headline record.
        let mut names: Vec<String> = std::fs::read_dir(".")
            .expect("reading working directory")
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_summary.json"
            })
            .collect();
        names.sort();
        let mut files = Vec::new();
        let mut all_bitwise = true;
        let mut verdicts = 0u64;
        for name in &names {
            let text = std::fs::read_to_string(name)
                .unwrap_or_else(|e| panic!("reading {name}: {e}"));
            let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
            let mut rec: Vec<(String, Json)> = Vec::new();
            if let Json::Obj(fields) = &doc {
                for (k, v) in fields {
                    let headline = k == "app"
                        || k == "backend"
                        || k == "rms"
                        || k.ends_with("_ms")
                        || k.ends_with("_pct")
                        || k.ends_with("_speedup");
                    if headline {
                        rec.push((k.clone(), v.clone()));
                    }
                }
            }
            if let Some(r) = doc.get("load").and_then(|l| l.get("imbalance_ratio")) {
                rec.push(("imbalance_ratio".into(), r.clone()));
            }
            if let Some(b) = doc.get("bitwise_identical").and_then(Json::as_bool) {
                verdicts += 1;
                all_bitwise &= b;
                rec.push(("bitwise_identical".into(), Json::Bool(b)));
            }
            files.push((name.clone(), Json::Obj(rec)));
        }
        let report = Json::obj(vec![
            ("reports", Json::U64(names.len() as u64)),
            ("bitwise_verdicts", Json::U64(verdicts)),
            ("all_bitwise_identical", Json::Bool(all_bitwise)),
            ("files", Json::Obj(files)),
        ]);
        let sum_path = "BENCH_summary.json".to_string();
        std::fs::write(&sum_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {sum_path}: {e}"));
        println!(
            "wrote {sum_path} ({} reports, {verdicts} bitwise verdicts, all identical: {all_bitwise})",
            names.len()
        );
    }
}
