//! `BENCH_runtime.json`: machine-readable runtime-counter report.
//!
//! Runs the MG-CFD solver through the adaptive (tuner + plan-cache)
//! back-end and emits one JSON record per rank: communication totals,
//! transport recovery counters, plan-cache hit/miss/invalidation
//! counters and every tuner decision (backend, class, predicted vs
//! measured times). The CI/regression side can diff these without
//! scraping human-readable tables.
//!
//! Flags: the common `--scale`, plus `--out <path>` (default
//! `BENCH_runtime.json` in the working directory), `--iters N`
//! (default 3 — enough for calibration *and* cached-plan repeats) and
//! `--threads N` (colored-threaded execution; sets the node-wide
//! `OP2_THREADS`, which the harness splits across ranks, and is
//! reported per rank under `threads`).
//!
//! `--tiled-threads N` runs an *extra* pass through the tiled-threaded
//! executor (CA + sparse tiling with `N` pool threads per rank,
//! `--tiles` tiles) and writes its report next to `--out` with a
//! `_tiled_tN` suffix — e.g. `BENCH_runtime_tiled_t4.json` — so CI can
//! archive the threaded-tiling counters alongside the adaptive run's.
//!
//! `--exchange` runs the halo-exchange engine report: the same solver
//! once through the CA back-end (grouped planned exchanges, persistent
//! pooled buffers, arrival-order unpack) and once through per-loop OP2
//! (per-dat messages), emitting `BENCH_exchange.json` with each mode's
//! pack/unpack/wait wall time and payload allocation counts so the
//! zero-allocation steady state and the grouping win are diffable in CI.

use mg_cfd::{run_auto, run_ca, run_ca_tiled_threaded, run_op2, MgCfd, MgCfdParams, RunOutcome};
use op2_bench::json::{trace_summary, Json};
use op2_model::Machine;
use op2_partition::{build_layouts, derive_ownership, rcb_partition};
use op2_runtime::TunerMode;

fn main() {
    let mut out_path = String::from("BENCH_runtime.json");
    let mut iters = 3usize;
    let mut size = 7usize;
    let mut ranks = 4usize;
    let mut tiled_threads = 0usize;
    let mut tiles = 8usize;
    let mut exchange = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--iters" => {
                i += 1;
                iters = args.get(i).expect("--iters needs a count").parse().unwrap();
            }
            "--size" => {
                i += 1;
                size = args.get(i).expect("--size needs an edge count").parse().unwrap();
            }
            "--ranks" => {
                i += 1;
                ranks = args.get(i).expect("--ranks needs a count").parse().unwrap();
            }
            "--threads" => {
                i += 1;
                let n = args.get(i).expect("--threads needs a count");
                // The rank envs read OP2_THREADS at spawn; routing the
                // flag through the env var keeps one source of truth.
                std::env::set_var("OP2_THREADS", n);
            }
            "--tiled-threads" => {
                i += 1;
                tiled_threads = args
                    .get(i)
                    .expect("--tiled-threads needs a count")
                    .parse()
                    .unwrap();
            }
            "--tiles" => {
                i += 1;
                tiles = args.get(i).expect("--tiles needs a count").parse().unwrap();
            }
            "--exchange" => exchange = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --out path  --iters N  --size N  --ranks N  --threads N  \
                     --tiled-threads N  --tiles N  --exchange"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}`"),
        }
        i += 1;
    }

    let params = MgCfdParams::small(size);
    let mut app = MgCfd::new(params);
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, ranks);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
    let layouts = build_layouts(&app.dom, &own, 2);

    let out = run_auto(
        &mut app,
        &layouts,
        iters,
        &Machine::archer2(),
        TunerMode::from_env(),
        None,
    );

    let report = Json::obj(vec![
        ("app", Json::Str("mg-cfd".into())),
        (
            "backend",
            Json::Str(std::env::var("OP2_TUNER").unwrap_or_else(|_| "auto".into())),
        ),
        ("iters", Json::U64(iters as u64)),
        ("ranks", Json::U64(ranks as u64)),
        (
            "threads",
            Json::U64(op2_runtime::Threading::from_env().n_threads as u64),
        ),
        (
            "block_size",
            Json::U64(op2_runtime::Threading::from_env().block_size as u64),
        ),
        ("rms", Json::F64(out.rms)),
        (
            "per_rank",
            Json::Arr(out.traces.iter().map(trace_summary).collect()),
        ),
    ]);
    std::fs::write(&out_path, report.pretty())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path} ({} ranks, {iters} iters)", out.traces.len());

    if tiled_threads > 0 {
        // Fresh app + layouts: the adaptive pass above mutated the flow
        // field, and the tiled report should stand on its own.
        let mut app = MgCfd::new(params);
        let coords = &app.dom.dat(app.levels[0].ids.coords).data;
        let base = rcb_partition(coords, 3, ranks);
        let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
        let layouts = build_layouts(&app.dom, &own, 2);
        let threading = op2_runtime::Threading::with_threads(tiled_threads);
        let out = run_ca_tiled_threaded(&mut app, &layouts, iters, tiles, threading);

        let tiled_path = out_path
            .strip_suffix(".json")
            .map(|s| format!("{s}_tiled_t{tiled_threads}.json"))
            .unwrap_or_else(|| format!("{out_path}_tiled_t{tiled_threads}"));
        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("backend", Json::Str("tiled-threaded".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            ("threads", Json::U64(tiled_threads as u64)),
            ("tiles", Json::U64(tiles as u64)),
            ("rms", Json::F64(out.rms)),
            (
                "per_rank",
                Json::Arr(out.traces.iter().map(trace_summary).collect()),
            ),
        ]);
        std::fs::write(&tiled_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {tiled_path}: {e}"));
        println!(
            "wrote {tiled_path} ({} ranks, {iters} iters, {tiled_threads} threads, {tiles} tiles)",
            out.traces.len()
        );
    }

    if exchange {
        // Halo-exchange engine report: the same solver through the CA
        // back-end (grouped planned exchanges, pooled buffers,
        // arrival-order unpack) and the per-loop OP2 baseline (per-dat
        // messages), each on a fresh flow field.
        let mut modes: Vec<(&str, RunOutcome)> = Vec::new();
        for mode in ["ca_planned", "op2_per_loop"] {
            let mut app = MgCfd::new(params);
            let coords = &app.dom.dat(app.levels[0].ids.coords).data;
            let base = rcb_partition(coords, 3, ranks);
            let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
            let layouts = build_layouts(&app.dom, &own, 2);
            let out = match mode {
                "ca_planned" => run_ca(&mut app, &layouts, iters),
                _ => run_op2(&mut app, &layouts, iters),
            };
            modes.push((mode, out));
        }
        let exch_path = "BENCH_exchange.json".to_string();
        let mode_json = |out: &RunOutcome| {
            Json::obj(vec![
                ("rms", Json::F64(out.rms)),
                (
                    "per_rank",
                    Json::Arr(out.traces.iter().map(trace_summary).collect()),
                ),
            ])
        };
        let report = Json::obj(vec![
            ("app", Json::Str("mg-cfd".into())),
            ("iters", Json::U64(iters as u64)),
            ("ranks", Json::U64(ranks as u64)),
            (
                "modes",
                Json::Obj(
                    modes
                        .iter()
                        .map(|(name, out)| (name.to_string(), mode_json(out)))
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(&exch_path, report.pretty())
            .unwrap_or_else(|e| panic!("writing {exch_path}: {e}"));
        println!("wrote {exch_path} ({ranks} ranks, {iters} iters)");
    }
}
