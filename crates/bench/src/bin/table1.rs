//! Table 1: systems specifications — the two benchmarked machines, as
//! published and as calibrated for the virtual-time model.

use op2_model::Machine;

fn row(label: &str, a: &str, c: &str) {
    println!("{label:<28} | {a:<38} | {c:<38}");
}

fn main() {
    println!("== Table 1: Systems Specifications ==\n");
    row("System", "ARCHER2 (HPE Cray EX)", "Cirrus (SGI/HPE 8600 GPU cluster)");
    row("", "--------------------------------------", "--------------------------------------");
    row(
        "Processor",
        "AMD EPYC 7742 @ 2.25 GHz",
        "Intel Xeon Gold 6248 + NVIDIA V100-SXM2-16GB",
    );
    row("(procs x cores)/node", "2 x 64", "2 x 20 + 4 x GPUs");
    row("Mem/node", "256 GB", "384 GB + 16 GB/GPU");
    row(
        "Interconnect",
        "HPE Cray Slingshot 2x100 Gb/s",
        "Infiniband FDR, 54.5 Gb/s",
    );
    row("MPI ranks/node (paper runs)", "128", "4 (one per GPU)");

    println!("\n-- Calibrated model constants (see op2-model::machine) --\n");
    for m in [Machine::archer2(), Machine::cirrus(), Machine::cirrus_gpudirect()] {
        println!("{}", m.name);
        println!("  kind:              {:?}", m.kind);
        println!("  ranks/node:        {}", m.ranks_per_node);
        println!("  latency L:         {:.2e} s/message", m.latency);
        println!("  bandwidth B:       {:.2e} B/s per rank", m.bandwidth);
        println!("  pack rate:         {:.2e} B/s", m.pack_rate);
        println!("  g (default):       {:.2e} s/iteration", m.g_default);
        if m.pcie_latency > 0.0 {
            println!("  PCIe event:        {:.2e} s", m.pcie_latency);
            println!("  PCIe bandwidth:    {:.2e} B/s", m.pcie_bandwidth);
            println!("  kernel launch:     {:.2e} s", m.kernel_launch);
        }
        if m.gpu_direct {
            println!("  GPUDirect:         transfers skip the host but do not overlap compute (\u{a7}3.3)");
        }
        println!();
    }
    println!(
        "Absolute seconds are not the reproduction target (DESIGN.md §2);\n\
         the constants put compute/latency/bandwidth ratios in realistic\n\
         ranges so the model's crossovers land where the paper's do."
    );
}
