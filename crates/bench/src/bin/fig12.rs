//! Figure 12: Hydra loop-chain performance on ARCHER2 (CPU), 8M and
//! 24M meshes — cumulative time of each chain over 20 iterations of the
//! time-marching loop, OP2 vs CA, across node counts.

use op2_bench::*;
use op2_model::eqs::{gain_percent, t_ca_chain, t_op2_chain};
use op2_model::Machine;

/// Iterations of the main time-marching loop the paper accumulates.
const ITERS: f64 = 20.0;

fn main() {
    let cli = Cli::parse();
    banner("Figure 12: Hydra CA performance on ARCHER2", &cli);
    let mach = Machine::archer2();
    let nodes = cli.node_counts(&[2, 4, 8, 16, 32, 64, 128]);
    let chains = ["weight", "period", "vflux", "gradl", "jacob", "iflux"];
    if cli.csv {
        println!("csv,mesh,chain,nodes,ranks,t_op2,t_ca,gain_pct");
    }

    for (mesh_label, mesh) in [("8M", cli.scale.ann_8m), ("24M", cli.scale.ann_24m)] {
        println!(
            "-- {mesh_label} mesh ({} nodes at this scale) --",
            mesh.n_nodes()
        );
        let per_node: Vec<(usize, _, _)> = nodes
            .iter()
            .filter(|&&n| n * cli.scale.cpu_rpn < mesh.n_nodes() / 8)
            .map(|&n| {
                let ranks = n * cli.scale.cpu_rpn;
                let (app, stats) = hydra_stats(mesh, ranks, 2, cli.scale.threads);
                (n, app, stats)
            })
            .collect();
        for chain_name in chains {
            println!("chain: {chain_name}");
            println!(
                "  {:>6} {:>7} | {:>12} {:>12} {:>8}",
                "nodes", "ranks", "T_OP2(20it)", "T_CA(20it)", "gain%"
            );
            for (n_nodes, app, stats) in &per_node {
                let ranks = n_nodes * cli.scale.cpu_rpn;
                let comp = hydra_chain_components(app, stats, chain_name, &mach);
                // weight/period run once (setup); the others 20x. The
                // gain% is scale-invariant either way.
                let mult = if matches!(chain_name, "weight" | "period") {
                    1.0
                } else {
                    ITERS
                };
                let t_op2 = mult * t_op2_chain(&mach, &comp.op2_loops);
                let t_ca = mult * t_ca_chain(&mach, &comp.ca);
                println!(
                    "  {:>6} {:>7} | {:>12} {:>12} {:>8.2}",
                    n_nodes,
                    ranks,
                    fmt_time(t_op2),
                    fmt_time(t_ca),
                    gain_percent(t_op2, t_ca)
                );
                if cli.csv {
                    println!(
                        "csv,{mesh_label},{chain_name},{n_nodes},{ranks},{t_op2:.6e},{t_ca:.6e},{:.2}",
                        gain_percent(t_op2, t_ca)
                    );
                }
            }
        }
        println!();
    }
    println!(
        "Expected shape (paper): period and jacob gain most (40%+ at 64\n\
         nodes, 8M); weight gains only on the smaller mesh; gradl\n\
         degrades; vflux/iflux roughly break even on the CPU cluster."
    );
}
