//! `op2-serve`: the resident mesh-compute server, end to end.
//!
//! Boots a [`Service`] from the `OP2_SERVE_*` environment (admission
//! limit, batching), registers the MG-CFD mesh world **once**, and
//! multiplexes `--jobs N` CA simulation jobs over it — the smallest
//! driver exercising the DESIGN.md §14 path: shared plan registry
//! (job 2 onward performs zero inspection), recycled transport pools
//! (steady-state jobs perform zero payload allocations), per-job trace
//! isolation, and same-shape batching with `--batch`.
//!
//! Per job it prints the latency, the warm/batched flags and the
//! plan/transport counters; at exit, the service's cumulative metrics.
//!
//! Flags: `--jobs N` (default 4), `--iters N`, `--size N`, `--ranks N`,
//! `--batch` (submit all jobs as one same-shape batch).

use mg_cfd::{register_service_mesh, service_job, MgCfd, MgCfdParams};
use op2_partition::{build_layouts, derive_ownership, rcb_partition};
use op2_runtime::{JobOutcome, Service};

fn main() {
    let mut jobs = 4usize;
    let mut iters = 3usize;
    let mut size = 7usize;
    let mut ranks = 4usize;
    let mut batch = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = args.get(i).expect("--jobs needs a count").parse().unwrap();
            }
            "--iters" => {
                i += 1;
                iters = args.get(i).expect("--iters needs a count").parse().unwrap();
            }
            "--size" => {
                i += 1;
                size = args.get(i).expect("--size needs an edge count").parse().unwrap();
            }
            "--ranks" => {
                i += 1;
                ranks = args.get(i).expect("--ranks needs a count").parse().unwrap();
            }
            "--batch" => batch = true,
            "--help" | "-h" => {
                eprintln!("flags: --jobs N  --iters N  --size N  --ranks N  --batch");
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}`"),
        }
        i += 1;
    }

    let svc = Service::from_env().unwrap_or_else(|e| panic!("OP2_SERVE_* environment: {e}"));
    let app = MgCfd::new(MgCfdParams::small(size));
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, ranks);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, ranks);
    let layouts = build_layouts(&app.dom, &own, 2);
    let mesh = register_service_mesh(&svc, &app, layouts);
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    println!(
        "op2-serve: mesh {mesh:#018x} registered ({ranks} ranks); \
         {jobs} jobs x {iters} iters{}",
        if batch { ", batched" } else { "" }
    );

    let job = service_job(&app, iters);
    println!(
        "{:>4}  {:>10}  {:>5}  {:>7}  {:>9}  {:>9}  {:>7}  rms",
        "job", "latency", "warm", "batched", "inspects", "reg hits", "allocs"
    );
    let report = |out: &JobOutcome, ms: f64| {
        let plan = out.trace.plan_total();
        let rms = (out.gbls[0][0][0] / n_fine).sqrt();
        println!(
            "{:>4}  {:>8.1}ms  {:>5}  {:>7}  {:>9}  {:>9}  {:>7}  {rms:.12e}",
            out.job,
            ms,
            out.trace.warm,
            out.trace.batched,
            plan.misses,
            plan.registry_hits,
            out.trace.payload_allocs(),
        );
    };

    if batch {
        let burst: Vec<_> = (0..jobs).map(|_| job.clone()).collect();
        let t0 = std::time::Instant::now();
        let outcomes = svc.submit_batch(mesh, &burst).expect("batch admitted");
        let ms = t0.elapsed().as_secs_f64() * 1e3 / jobs as f64;
        for r in &outcomes {
            report(r.as_ref().expect("batched job"), ms);
        }
    } else {
        for _ in 0..jobs {
            let t0 = std::time::Instant::now();
            let out = svc.submit(mesh, &job).expect("job");
            report(&out, t0.elapsed().as_secs_f64() * 1e3);
        }
    }

    let m = svc.metrics();
    println!(
        "service: {} submitted, {} completed ({} warm, {} batched), {} failed, \
         {} rejected, {} recoveries; registry holds {} plans \
         ({} hits / {} misses)",
        m.submitted,
        m.completed,
        m.warm_jobs,
        m.batched,
        m.failed,
        m.rejected,
        m.recoveries,
        m.registry_plans,
        m.plan.registry_hits,
        m.plan.registry_misses,
    );
}
