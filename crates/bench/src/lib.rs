//! Shared harness for the paper-reproduction benchmark binaries.
//!
//! Every binary regenerates one table or figure of the paper. Because
//! the full 8M/24M-node configurations partition millions of elements
//! across thousands of ranks (minutes of inspection per configuration),
//! each binary takes a `--scale` flag:
//!
//! * `--scale small` (default) — ~64k/186k-node meshes, 8 ranks/node:
//!   runs in seconds, same qualitative shapes;
//! * `--scale medium` — ~1M/2.9M nodes, 32 ranks/node;
//! * `--scale paper` — the full 8M/24M nodes at 128 ranks/node (CPU) or
//!   4 ranks/node (GPU), matching the paper's configurations.
//!
//! `--csv` emits machine-readable rows after the human-readable table.

pub mod harness;
pub mod json;

pub use harness::*;
