//! Ablation: the Figure 6(b) restructuring (contiguous, renumbered
//! local ranges) vs scattered element ordering.
//!
//! The CA layout renumbers each rank's elements so every execution
//! region is a contiguous range over cache-friendly indices. This bench
//! isolates the locality effect: the same edge-flux kernel over the
//! same mesh, with (a) the generator's coherent numbering and (b) a
//! randomly shuffled numbering — the difference is what restructuring
//! buys per sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::seq;
use op2_mesh::shuffle::shuffle_set;
use std::hint::black_box;

fn app(shuffled: bool) -> (MgCfd, op2_core::LoopSpec, op2_core::LoopSpec) {
    let mut params = MgCfdParams::small(24);
    params.levels = 1;
    let mut app = MgCfd::new(params);
    if shuffled {
        let nodes = app.levels[0].ids.nodes;
        let edges = app.levels[0].ids.edges;
        shuffle_set(&mut app.dom, nodes, 99);
        shuffle_set(&mut app.dom, edges, 101);
    }
    let init = app.init_loop(0);
    seq::run_loop(&mut app.dom, &init);
    let flux = app.flux_loop(0);
    // time_step consumes (and zeroes) the flux each iteration so the
    // benchmarked state stays bounded — otherwise the accumulator
    // drifts into inf/NaN territory and FP behaviour, not memory
    // layout, dominates the comparison.
    let step = app.time_step_loop(0);
    (app, flux, step)
}

fn bench_renumber(c: &mut Criterion) {
    let mut group = c.benchmark_group("flux_sweep_ordering");
    let (mut coherent, flux_c, step_c) = app(false);
    group.bench_function("renumbered_contiguous", |b| {
        b.iter(|| {
            seq::run_loop(black_box(&mut coherent.dom), &flux_c);
            seq::run_loop(black_box(&mut coherent.dom), &step_c);
        })
    });
    let (mut scattered, flux_s, step_s) = app(true);
    group.bench_function("scattered", |b| {
        b.iter(|| {
            seq::run_loop(black_box(&mut scattered.dom), &flux_s);
            seq::run_loop(black_box(&mut scattered.dom), &step_s);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_renumber
}
criterion_main!(benches);
