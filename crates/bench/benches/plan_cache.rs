//! Inspector amortization: cold-plan vs cached-plan `run_chain`.
//!
//! The planned chain executor splits inspection (halo-layer analysis,
//! import depths, pack index lists, message layout) from execution and
//! caches the result. This bench measures what that buys per
//! invocation on the synthetic MG-CFD `update`/`edge_flux` chain:
//!
//! * `cold` — the plan cache's layout epoch is bumped before every
//!   invocation, so each repetition pays the full inspector;
//! * `cached` — plans persist across repetitions, so after the warmup
//!   invocations every repetition replays cached pack lists;
//! * `unplanned` — the pre-subsystem inline-analysis executor, the
//!   baseline the plan path must beat once amortized.
//!
//! (cold − cached) per iteration ≈ the amortized inspector cost the
//! cache saves on every repeat invocation.

use criterion::{criterion_group, criterion_main, Criterion};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::ChainSpec;
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::exec::{run_chain, run_chain_unplanned, run_loop};
use op2_runtime::{run_distributed, RankEnv, RuntimeError};
use std::hint::black_box;

struct Fixture {
    app: MgCfd,
    layouts: Vec<RankLayout>,
    chain: ChainSpec,
}

fn fixture(nchains: usize) -> Fixture {
    let mut params = MgCfdParams::small(10);
    params.levels = 1;
    params.nchains = nchains;
    let app = MgCfd::new(params);
    let chain = app.synthetic_chain().expect("synthetic chain valid");
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, 4);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 4);
    let layouts = build_layouts(&app.dom, &own, 2);
    Fixture {
        app,
        layouts,
        chain,
    }
}

/// Run `reps` chain invocations per rank under `body`, after an init
/// loop that fills the flow field.
fn run_reps(
    fix: &mut Fixture,
    reps: usize,
    body: impl Fn(&mut RankEnv<'_>, &ChainSpec) -> Result<(), RuntimeError> + Sync,
) {
    let init = fix.app.init_loop(0);
    let chain = fix.chain.clone();
    let out = run_distributed(&mut fix.app.dom, &fix.layouts, |env| {
        run_loop(env, &init)?;
        for _ in 0..reps {
            body(env, &chain)?;
        }
        Ok(())
    });
    assert!(out.all_ok());
}

fn bench_plan_amortization(c: &mut Criterion) {
    const REPS: usize = 8;
    let mut g = c.benchmark_group("plan_cache");
    g.throughput(criterion::Throughput::Elements(REPS as u64));

    for nchains in [1usize, 4] {
        let n_loops = 2 * nchains;
        g.bench_function(format!("cold_{n_loops}loops"), |b| {
            let mut fix = fixture(nchains);
            b.iter(|| {
                run_reps(&mut fix, REPS, |env, chain| {
                    // Invalidate before every invocation: every rep
                    // pays the full inspector.
                    env.plans.bump_epoch();
                    run_chain(env, black_box(chain))
                });
            })
        });
        g.bench_function(format!("cached_{n_loops}loops"), |b| {
            let mut fix = fixture(nchains);
            b.iter(|| {
                run_reps(&mut fix, REPS, |env, chain| {
                    run_chain(env, black_box(chain))
                });
            })
        });
        g.bench_function(format!("unplanned_{n_loops}loops"), |b| {
            let mut fix = fixture(nchains);
            b.iter(|| {
                run_reps(&mut fix, REPS, |env, chain| {
                    run_chain_unplanned(env, black_box(chain))
                });
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_plan_amortization
}
criterion_main!(benches);
