//! Micro-benchmarks of the runtime's building blocks.
//!
//! `flux_kernel_per_iter` doubles as the calibration run for the model
//! constant `g` (seconds per edge-kernel iteration) — compare its
//! result against `Machine::archer2().g_default`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::chain::{calc_halo_extents, calc_halo_layers};
use op2_core::seq;
use op2_mesh::{Hex3D, Hex3DParams};
use op2_partition::rings::{compute_rings, find_seeds, MapAdj};
use op2_partition::{build_layouts, collect_stats, derive_ownership, rcb_partition};
use std::hint::black_box;

fn bench_flux_kernel(c: &mut Criterion) {
    let mut params = MgCfdParams::small(24);
    params.levels = 1;
    let mut app = MgCfd::new(params);
    let init = app.init_loop(0);
    seq::run_loop(&mut app.dom, &init);
    let flux = app.flux_loop(0);
    let n_edges = app.dom.set(app.levels[0].ids.edges).size;
    let mut g = c.benchmark_group("seq_kernels");
    g.throughput(criterion::Throughput::Elements(n_edges as u64));
    g.bench_function("flux_kernel_per_iter", |b| {
        b.iter(|| {
            seq::run_loop(black_box(&mut app.dom), black_box(&flux));
        })
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    // A long synthetic chain to stress the dependency analyses.
    let mut params = MgCfdParams::small(4);
    params.levels = 1;
    params.nchains = 16;
    let app = MgCfd::new(params);
    let chain = app.synthetic_chain().unwrap();
    let sigs = chain.sigs();
    c.bench_function("calc_halo_layers_32loops", |b| {
        b.iter(|| calc_halo_layers(black_box(&sigs)))
    });
    c.bench_function("calc_halo_extents_32loops", |b| {
        b.iter(|| calc_halo_extents(black_box(&sigs)))
    });
}

fn bench_inspection(c: &mut Criterion) {
    let m = Hex3D::generate(Hex3DParams::cube(16));
    let base = rcb_partition(m.node_coords(), 3, 8);
    let own = derive_ownership(&m.dom, m.nodes, base, 8);

    c.bench_function("rings_one_rank_16cube_8parts", |b| {
        let adj = MapAdj::build(&m.dom);
        let seeds = find_seeds(&m.dom, &own);
        b.iter(|| compute_rings(&m.dom, &adj, &own, &seeds, 0, 2, 2))
    });
    c.bench_function("build_layouts_16cube_8parts", |b| {
        b.iter(|| build_layouts(black_box(&m.dom), black_box(&own), 2))
    });
    for threads in [1usize, 4] {
        c.bench_with_input(
            BenchmarkId::new("collect_stats_16cube_8parts", threads),
            &threads,
            |b, &t| b.iter(|| collect_stats(&m.dom, &own, 2, t)),
        );
    }
}

fn bench_partition_inputs(c: &mut Criterion) {
    let m = Hex3D::generate(Hex3DParams::cube(24));
    c.bench_function("rcb_24cube_16parts", |b| {
        b.iter(|| rcb_partition(black_box(m.node_coords()), 3, 16))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_flux_kernel, bench_analysis, bench_inspection, bench_partition_inputs
}
criterion_main!(benches);
