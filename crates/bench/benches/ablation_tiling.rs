//! Ablation: shared-memory sparse tiling (§2.2's cache-level CA) vs
//! plain loop-by-loop sweeps.
//!
//! A long synthetic chain over a mesh whose working set exceeds cache
//! is executed (a) loop by loop — every sweep streams all dats from
//! memory — and (b) tile by tile with the Luporini growth schedule —
//! each tile's slice stays resident across the whole chain. The speedup
//! is the memory-traffic reduction the paper's shared-memory level
//! targets. Tile-count sweep included: too few tiles ≈ no locality
//! gain, too many ≈ scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::tiling::{build_tile_plan, run_chain_tiled, seed_blocks};
use op2_core::{seq, ChainSpec};

fn setup(n: usize, nchains: usize) -> (MgCfd, ChainSpec) {
    let mut params = MgCfdParams::small(n);
    params.levels = 1;
    params.nchains = nchains;
    let mut app = MgCfd::new(params);
    let init = app.init_loop(0);
    seq::run_loop(&mut app.dom, &init);
    let write_pres = app.write_pres_loop();
    seq::run_loop(&mut app.dom, &write_pres);
    let chain = app.synthetic_chain().unwrap();
    (app, chain)
}

fn bench_tiling(c: &mut Criterion) {
    // ~40^3 nodes x (2+2+2 components x 8B) ≈ 10 MB working set for the
    // chain dats — past L2 on most parts. Every variant gets a fresh
    // app so all of them accumulate over identical numeric state.
    let mut group = c.benchmark_group("chain_8loops_40cube");
    group.sample_size(10);
    {
        let (mut app, chain) = setup(40, 4);
        group.bench_function("plain_sweeps", |b| {
            b.iter(|| {
                for l in &chain.loops {
                    seq::run_loop(&mut app.dom, l);
                }
            })
        });
    }
    for n_tiles in [4usize, 16, 64, 256] {
        let (mut app, chain) = setup(40, 4);
        let n_edges = app.dom.set(app.levels[0].ids.edges).size;
        let seed = seed_blocks(n_edges, n_tiles);
        let plan = build_tile_plan(&app.dom, &chain.sigs(), &seed);
        group.bench_with_input(
            BenchmarkId::new("sparse_tiled", n_tiles),
            &n_tiles,
            |b, _| {
                b.iter(|| {
                    run_chain_tiled(&mut app.dom, &chain, &plan);
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tiling
}
criterion_main!(benches);
