//! Ablation: one grouped message per neighbour (Figure 8) vs one
//! message per (dat, neighbour).
//!
//! Measures wall-clock time of the halo-exchange round alone — post the
//! sends, receive, unpack — over the in-process transport, on a real
//! 4-rank partition with five node dats (the vflux working set). The
//! grouped variant sends 1 message per neighbour; the per-dat variant
//! sends 5. The gap is the per-message overhead the paper's CA back-end
//! eliminates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use op2_core::DatId;
use op2_mesh::{Hex3D, Hex3DParams};
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::run_distributed;

fn setup(n: usize, nparts: usize) -> (Hex3D, Vec<RankLayout>, Vec<DatId>) {
    let mut m = Hex3D::generate(Hex3DParams::cube(n));
    let dats: Vec<DatId> = (0..5)
        .map(|i| m.dom.decl_dat_zeros(&format!("d{i}"), m.nodes, if i == 0 { 5 } else { 1 }))
        .collect();
    let base = rcb_partition(m.node_coords(), 3, nparts);
    let own = derive_ownership(&m.dom, m.nodes, base, nparts);
    let layouts = build_layouts(&m.dom, &own, 2);
    (m, layouts, dats)
}

fn bench_grouping(c: &mut Criterion) {
    let (mut mesh, layouts, dats) = setup(16, 4);
    let rounds = 50usize;
    let mut group = c.benchmark_group("exchange_round");
    for (label, grouped) in [("per_dat", false), ("grouped", true)] {
        group.bench_with_input(BenchmarkId::new(label, rounds), &grouped, |b, &grouped| {
            b.iter(|| {
                let spec: Vec<(DatId, u8)> = dats.iter().map(|&d| (d, 1)).collect();
                run_distributed(&mut mesh.dom, &layouts, |env| {
                    for _ in 0..rounds {
                        // Force staleness so the exchange is real.
                        for &(d, _) in &spec {
                            env.valid[d.idx()] = 0;
                        }
                        let mut rec = env.exchange(&spec, grouped);
                        env.exchange_wait(&spec, grouped, &mut rec)?;
                    }
                    Ok(env.comm.sent_msgs)
                })
            })
        });
    }
    group.finish();

    // Print the message-count difference once for the report.
    let spec: Vec<(DatId, u8)> = dats.iter().map(|&d| (d, 1)).collect();
    for grouped in [false, true] {
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            for &(d, _) in &spec {
                env.valid[d.idx()] = 0;
            }
            let mut rec = env.exchange(&spec, grouped);
            env.exchange_wait(&spec, grouped, &mut rec)?;
            Ok(rec.n_msgs)
        });
        let total: usize = out.unwrap_results().into_iter().sum();
        eprintln!("grouping={grouped}: {total} messages per round (all ranks)");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grouping
}
criterion_main!(benches);
