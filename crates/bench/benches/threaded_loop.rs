//! Colored-threaded execution: sequential vs block-colored pool runs of
//! the synthetic MG-CFD chain at 1/2/4/8 threads per rank.
//!
//! The threaded executor splits each loop's iteration range into fixed
//! blocks, colors blocks so no two same-color blocks touch the same
//! `OP_INC` target, and fans each color bucket across a `std::thread`
//! pool. The levelized, order-preserving coloring keeps results bitwise
//! identical to the sequential executor, so the *only* question this
//! bench answers is throughput:
//!
//! * `seq` — single-threaded reference (`Threading::single()`);
//! * `threads_N` — the same chain with an N-thread pool and a block
//!   size small enough that every rank has many blocks per color.
//!
//! Caveat: on a single-core host (like the CI container, `nproc` = 1)
//! the pool adds pure overhead — the N-thread variants measure the
//! dispatch/sync cost, not speedup. On a multi-core host the expected
//! shape is `seq / threads_4 > 1.5` for the chain sizes used here.

use criterion::{criterion_group, criterion_main, Criterion};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::ChainSpec;
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::exec::{run_chain, run_loop};
use op2_runtime::{run_distributed_with, RankEnv, RunOptions, RuntimeError, Threading};
use std::hint::black_box;

struct Fixture {
    app: MgCfd,
    layouts: Vec<RankLayout>,
    chain: ChainSpec,
}

fn fixture() -> Fixture {
    let mut params = MgCfdParams::small(12);
    params.levels = 1;
    params.nchains = 2;
    let app = MgCfd::new(params);
    let chain = app.synthetic_chain().expect("synthetic chain valid");
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, 2);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 2);
    let layouts = build_layouts(&app.dom, &own, 2);
    Fixture {
        app,
        layouts,
        chain,
    }
}

/// Run `reps` chain invocations per rank with the given threading, after
/// an init loop that fills the flow field.
fn run_reps(fix: &mut Fixture, reps: usize, threading: Threading) {
    let init = fix.app.init_loop(0);
    let chain = fix.chain.clone();
    let opts = RunOptions::default().threading(threading);
    let body = |env: &mut RankEnv<'_>| -> Result<(), RuntimeError> {
        run_loop(env, &init)?;
        for _ in 0..reps {
            run_chain(env, black_box(&chain))?;
        }
        Ok(())
    };
    let out = run_distributed_with(&mut fix.app.dom, &fix.layouts, &opts, body);
    assert!(out.all_ok());
}

fn bench_threaded_loop(c: &mut Criterion) {
    const REPS: usize = 8;
    let mut g = c.benchmark_group("threaded_loop");
    g.throughput(criterion::Throughput::Elements(REPS as u64));

    g.bench_function("seq", |b| {
        let mut fix = fixture();
        b.iter(|| run_reps(&mut fix, REPS, Threading::single()));
    });
    for n_threads in [2usize, 4, 8] {
        g.bench_function(format!("threads_{n_threads}"), |b| {
            let mut fix = fixture();
            let threading = Threading {
                n_threads,
                block_size: 64,
                auto_block: false,
            };
            b.iter(|| run_reps(&mut fix, REPS, threading));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_threaded_loop
}
criterion_main!(benches);
