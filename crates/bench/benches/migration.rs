//! Migration cost: how expensive is a live re-shard?
//!
//! The online rebalancing subsystem (DESIGN.md §15) pays three
//! distinguishable costs when the imbalance detector trips: the
//! weighted re-shard itself, the migration *plan* (ownership diff +
//! ring/halo/grouped-message layout rebuild), and the *ship* (dat
//! slices + renumbering tables over the fault-tolerant transport, then
//! applied to the domain). This bench times each on a 3D mesh with a
//! strongly skewed cost field — the same forced-migration setup the
//! acceptance tests and `bench_report --rebalance` use — and prints the
//! migration volume once on stderr.

use criterion::{criterion_group, criterion_main, Criterion};
use op2_mesh::{skewed_costs, Hex3D, Hex3DParams};
use op2_partition::{
    build_layouts, derive_ownership, ownership_from_layouts, plan_migration, rcb_partition,
    rcb_partition_weighted,
};
use op2_runtime::{rebalance, RunOptions};
use std::hint::black_box;

fn bench_migration(c: &mut Criterion) {
    // Elongated in x so the RCB cut planes cross the skew axis — on a
    // perfect cube the first cuts can land on weight-symmetric axes and
    // the weighted re-shard degenerates to a no-op.
    let m = Hex3D::generate(Hex3DParams {
        nx: 24,
        ny: 12,
        nz: 12,
    });
    let nparts = 4;
    let dims = 3;
    let coords = m.node_coords();
    let base = rcb_partition(coords, dims, nparts);
    let own = derive_ownership(&m.dom, m.nodes, base, nparts);
    let layouts = build_layouts(&m.dom, &own, 2);
    let costs = skewed_costs(coords, dims, 0, 8.0);

    let mut group = c.benchmark_group("migration_24x12x12_4parts");
    group.bench_function("weighted_reshard", |b| {
        b.iter(|| rcb_partition_weighted(black_box(coords), dims, black_box(&costs), nparts))
    });
    let new_base = rcb_partition_weighted(coords, dims, &costs, nparts);
    group.bench_function("plan", |b| {
        b.iter(|| {
            let old = ownership_from_layouts(&m.dom, &layouts);
            plan_migration(black_box(&m.dom), m.nodes, &old, new_base.clone(), 2)
        })
    });
    group.bench_function("ship", |b| {
        // The full executor: re-shard, diff, rebuild layouts, ship the
        // moved slices over the transport and apply them. The domain is
        // cloned per iteration so every pass migrates from the same
        // starting ownership.
        b.iter(|| {
            let mut dom = m.dom.clone();
            rebalance(
                &mut dom,
                m.nodes,
                m.coords,
                dims,
                black_box(&layouts),
                &costs,
                1800,
                &RunOptions::default(),
            )
            .expect("migration failed")
            .expect("skewed costs must move elements")
        })
    });
    group.finish();

    // Volume report (once): what the skewed re-shard actually moves.
    let mut dom = m.dom.clone();
    let out = rebalance(
        &mut dom,
        m.nodes,
        m.coords,
        dims,
        &layouts,
        &costs,
        1800,
        &RunOptions::default(),
    )
    .expect("migration failed")
    .expect("skewed costs must move elements");
    eprintln!(
        "migration: {} elements, {} bytes, replan {:.2}ms, imbalance {} -> {} milli",
        out.rec.elements_out,
        out.rec.bytes_out,
        out.rec.replan_ns as f64 / 1e6,
        out.rec.imbalance_before_milli,
        out.rec.imbalance_after_milli
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_migration
}
criterion_main!(benches);
