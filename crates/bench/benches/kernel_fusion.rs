//! Cross-loop fusion: split vs fused execution of the MG-CFD chain.
//!
//! The fused executor runs every kernel of a fusion group back-to-back
//! per element, keeping the elided `adt` intermediate in a per-worker
//! scratch slot instead of round-tripping it through memory (DESIGN.md
//! §16). This bench measures what that buys per invocation on the
//! MG-CFD flux → step_factor → time_step chain:
//!
//! * `split` — the default split executor: one pass per loop,
//!   exchange/compute overlap preserved, `adt` materialized;
//! * `fused` — whole-chain fused schedule: step_factor and time_step
//!   interleave per node, `adt` never touches memory;
//!
//! each at 1 pool thread (direct lowering) and 4 pool threads (colored
//! lowering). The fused schedule is cached after the first invocation,
//! so steady-state repetitions isolate the execution-shape difference.

use criterion::{criterion_group, criterion_main, Criterion};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::ChainSpec;
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::exec::{run_chain, run_loop};
use op2_runtime::{run_distributed_with, FuseMode, RunOptions, Threading};
use std::hint::black_box;

struct Fixture {
    app: MgCfd,
    layouts: Vec<RankLayout>,
    chain: ChainSpec,
}

fn fixture() -> Fixture {
    let mut params = MgCfdParams::small(10);
    params.levels = 1;
    let app = MgCfd::new(params);
    let chain = app.fused_chain(0).expect("fused chain valid");
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, 4);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 4);
    let layouts = build_layouts(&app.dom, &own, 2);
    Fixture {
        app,
        layouts,
        chain,
    }
}

/// Run `reps` chain invocations per rank under `fuse`/`threads`, after
/// an init loop that fills the flow field.
fn run_reps(fix: &mut Fixture, reps: usize, fuse: FuseMode, threads: usize) {
    let init = fix.app.init_loop(0);
    let chain = fix.chain.clone();
    let opts = RunOptions::default()
        .fuse(fuse)
        .threading(Threading::with_threads(threads));
    let out = run_distributed_with(&mut fix.app.dom, &fix.layouts, &opts, |env| {
        run_loop(env, &init)?;
        for _ in 0..reps {
            run_chain(env, black_box(&chain))?;
        }
        Ok(())
    });
    assert!(out.all_ok());
}

fn bench_kernel_fusion(c: &mut Criterion) {
    const REPS: usize = 8;
    let mut g = c.benchmark_group("kernel_fusion");
    g.throughput(criterion::Throughput::Elements(REPS as u64));

    for threads in [1usize, 4] {
        for (label, fuse) in [("split", FuseMode::Off), ("fused", FuseMode::On)] {
            g.bench_function(format!("{label}_t{threads}"), |b| {
                let mut fix = fixture();
                b.iter(|| run_reps(&mut fix, REPS, fuse, threads));
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel_fusion
}
criterion_main!(benches);
