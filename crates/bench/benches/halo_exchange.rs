//! Halo-exchange engine micro-benchmarks.
//!
//! Three angles on the persistent communication engine:
//!
//! * `buffer_pool` — borrow/return against the per-peer pool vs a fresh
//!   heap allocation per message: the steady-state cost the pooled
//!   engine removes from every send.
//! * `ping_pong` — pack/send/recv/unpack throughput of the transport
//!   itself at several payload sizes, with buffers circulating through
//!   the pools (zero allocations after warm-up).
//! * `executor` — the real planned CA chain round (grouped message per
//!   neighbour, pooled buffers, arrival-order unpack) vs the flattened
//!   per-loop path (one message per dat per neighbour) on a 4-rank
//!   synthetic MG-CFD chain.
//!
//! The machine-readable counterpart is `bench_report --exchange`, which
//! emits `BENCH_exchange.json` with the traced pack/unpack/wait times
//! and allocation counters of the same two executor modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_core::ChainSpec;
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::exec::{run_chain, run_loop};
use op2_runtime::{CommWorld, RankEnv, RuntimeError};
use std::hint::black_box;

fn bench_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    for n_f64s in [512usize, 8192] {
        g.throughput(Throughput::Bytes((n_f64s * 8) as u64));
        g.bench_with_input(BenchmarkId::new("pooled", n_f64s), &n_f64s, |b, &n| {
            let mut rc = CommWorld::new(1).into_ranks().remove(0);
            rc.ensure_buf(0, n);
            b.iter(|| {
                let buf = rc.take_buf(0, n);
                rc.recycle(0, black_box(buf));
            })
        });
        g.bench_with_input(BenchmarkId::new("fresh_alloc", n_f64s), &n_f64s, |b, &n| {
            b.iter(|| {
                let buf: Vec<f64> = Vec::with_capacity(n);
                black_box(buf);
            })
        });
    }
    g.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("ping_pong");
    for n_f64s in [512usize, 8192] {
        // One round moves the payload out and back: 2·n·8 bytes.
        g.throughput(Throughput::Bytes((2 * n_f64s * 8) as u64));
        g.bench_with_input(BenchmarkId::new("pooled", n_f64s), &n_f64s, |b, &n| {
            let mut ranks = CommWorld::new(2).into_ranks();
            let mut r1 = ranks.remove(1);
            let mut r0 = ranks.remove(0);
            r0.ensure_buf(1, n);
            let mut tag = 0u64;
            b.iter(|| {
                tag += 2;
                let mut buf = r0.take_buf(1, n);
                buf.resize(n, 1.0);
                r0.isend(1, tag, buf);
                let data = r1.recv(0, tag).expect("ping");
                r1.isend(0, tag + 1, data);
                let back = r0.recv(1, tag + 1).expect("pong");
                r0.recycle(1, black_box(back));
            })
        });
        g.bench_with_input(BenchmarkId::new("fresh_alloc", n_f64s), &n_f64s, |b, &n| {
            let mut ranks = CommWorld::new(2).into_ranks();
            let mut r1 = ranks.remove(1);
            let mut r0 = ranks.remove(0);
            let mut tag = 0u64;
            b.iter(|| {
                tag += 2;
                let buf = vec![1.0f64; n];
                r0.isend(1, tag, buf);
                let data = r1.recv(0, tag).expect("ping");
                r1.isend(0, tag + 1, data);
                let back = r0.recv(1, tag + 1).expect("pong");
                black_box(back);
            })
        });
    }
    g.finish();
}

struct Fixture {
    app: MgCfd,
    layouts: Vec<RankLayout>,
    chain: ChainSpec,
}

fn fixture() -> Fixture {
    let mut params = MgCfdParams::small(10);
    params.levels = 1;
    params.nchains = 2;
    let app = MgCfd::new(params);
    let chain = app.synthetic_chain().expect("synthetic chain valid");
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, 4);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 4);
    let layouts = build_layouts(&app.dom, &own, 2);
    Fixture {
        app,
        layouts,
        chain,
    }
}

fn run_reps(
    fix: &mut Fixture,
    reps: usize,
    body: impl Fn(&mut RankEnv<'_>, &ChainSpec) -> Result<(), RuntimeError> + Sync,
) {
    let init = fix.app.init_loop(0);
    let chain = fix.chain.clone();
    let out = op2_runtime::run_distributed(&mut fix.app.dom, &fix.layouts, |env| {
        run_loop(env, &init)?;
        for _ in 0..reps {
            body(env, &chain)?;
        }
        Ok(())
    });
    assert!(out.all_ok());
}

fn bench_executor(c: &mut Criterion) {
    const REPS: usize = 8;
    let mut g = c.benchmark_group("exchange_executor");
    g.throughput(Throughput::Elements(REPS as u64));
    g.bench_function("grouped_planned", |b| {
        let mut fix = fixture();
        b.iter(|| {
            run_reps(&mut fix, REPS, |env, chain| run_chain(env, black_box(chain)));
        })
    });
    g.bench_function("per_loop", |b| {
        let mut fix = fixture();
        b.iter(|| {
            run_reps(&mut fix, REPS, |env, chain| {
                for spec in &chain.loops {
                    run_loop(env, spec)?;
                }
                Ok(())
            });
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_buffer_pool, bench_ping_pong, bench_executor
}
criterion_main!(benches);
