//! Resident-service throughput: what keeping the world alive buys.
//!
//! A standalone `run_ca` pays mesh-world boot, chain inspection and
//! transport warm-up on every invocation; a resident [`Service`] pays
//! them once per mesh and amortizes them across every later job via
//! the shared plan registry and recycled payload pools. Measured here
//! on the MG-CFD CA job:
//!
//! * `cold_submit` — a fresh service per repetition: boot + mesh
//!   registration + full inspection, the per-invocation cost a
//!   standalone run pays (the cold-start baseline);
//! * `warm_submit` — one shared warmed service: every repetition is a
//!   registry-backed, pool-recycling job (zero inspection, zero
//!   payload allocation) — the steady-state latency;
//! * `warm_batch4` — four same-shape jobs per repetition submitted as
//!   one batch on the warmed service, the back-to-back grouping path.
//!
//! (cold − warm) per job ≈ the boot + inspection cost the resident
//! world saves every tenant after the first.

use criterion::{criterion_group, criterion_main, Criterion};
use mg_cfd::{register_service_mesh, run_ca_service, service_job, MgCfd, MgCfdParams};
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::{Service, ServiceConfig};
use std::hint::black_box;

const ITERS: usize = 2;

fn fixture() -> (MgCfd, Vec<RankLayout>) {
    let app = MgCfd::new(MgCfdParams::small(8));
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, 4);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 4);
    let layouts = build_layouts(&app.dom, &own, 2);
    (app, layouts)
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_throughput");

    g.bench_function("cold_submit", |b| {
        let (app, layouts) = fixture();
        b.iter(|| {
            let svc = Service::new(ServiceConfig::default());
            let mesh = register_service_mesh(&svc, &app, layouts.clone());
            let out = run_ca_service(&svc, mesh, &app, ITERS).expect("cold job");
            black_box(out.rms)
        })
    });

    g.bench_function("warm_submit", |b| {
        let (app, layouts) = fixture();
        let svc = Service::new(ServiceConfig::default());
        let mesh = register_service_mesh(&svc, &app, layouts);
        // Two warm-up jobs: job 2 fills the registry, job 3 reaches the
        // zero-allocation pool steady state the repetitions measure.
        for _ in 0..2 {
            run_ca_service(&svc, mesh, &app, ITERS).expect("warm-up job");
        }
        b.iter(|| {
            let out = run_ca_service(&svc, mesh, &app, ITERS).expect("warm job");
            black_box(out.rms)
        })
    });

    g.bench_function("warm_batch4", |b| {
        let (app, layouts) = fixture();
        let svc = Service::new(ServiceConfig::default());
        let mesh = register_service_mesh(&svc, &app, layouts);
        for _ in 0..2 {
            run_ca_service(&svc, mesh, &app, ITERS).expect("warm-up job");
        }
        let burst: Vec<_> = (0..4).map(|_| service_job(&app, ITERS)).collect();
        b.iter(|| {
            for r in svc.submit_batch(mesh, black_box(&burst)).expect("batch") {
                black_box(r.expect("batched job").job);
            }
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_service_throughput
}
criterion_main!(benches);
