//! Partitioner comparison: speed here, cut quality on stderr.
//!
//! The paper uses ParMETIS k-way for MG-CFD ("best partitions per
//! process") and recursive inertial bisection for Hydra. This bench
//! times our three partitioners on the same mesh and prints their edge
//! cuts and resulting halo sizes — the quantities that feed straight
//! into `m¹`/`mʳ` and hence every result table.

use criterion::{criterion_group, criterion_main, Criterion};
use op2_mesh::{Csr, Hex3D, Hex3DParams};
use op2_partition::partitioner::cut_edges;
use op2_partition::{
    collect_stats, derive_ownership, kway_partition, rcb_partition, rib_partition,
};
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let m = Hex3D::generate(Hex3DParams::cube(20));
    let nparts = 16;
    let graph = Csr::node_graph(m.dom.map(m.e2n), m.dom.set(m.nodes).size);

    let mut group = c.benchmark_group("partition_20cube_16parts");
    group.bench_function("rcb", |b| {
        b.iter(|| rcb_partition(black_box(m.node_coords()), 3, nparts))
    });
    group.bench_function("rib", |b| {
        b.iter(|| rib_partition(black_box(m.node_coords()), 3, nparts))
    });
    group.bench_function("kway", |b| {
        b.iter(|| kway_partition(black_box(&graph), nparts, 3))
    });
    group.finish();

    // Quality report (once): cut edges and max ring-1 halo.
    for (name, owner) in [
        ("rcb", rcb_partition(m.node_coords(), 3, nparts)),
        ("rib", rib_partition(m.node_coords(), 3, nparts)),
        ("kway", kway_partition(&graph, nparts, 3)),
    ] {
        let cut = cut_edges(&m.dom.map(m.e2n).values, &owner);
        let own = derive_ownership(&m.dom, m.nodes, owner, nparts);
        let stats = collect_stats(&m.dom, &own, 1, 4);
        let max_ring1 = stats
            .per_rank
            .iter()
            .map(|r| r.import_levels[m.nodes.idx()][0])
            .max()
            .unwrap_or(0);
        eprintln!(
            "{name}: cut = {cut} edges, p = {}, max node ring-1 = {max_ring1}",
            stats.max_neighbors()
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitioners
}
criterion_main!(benches);
