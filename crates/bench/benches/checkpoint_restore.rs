//! Checkpoint/restore micro-costs: what the self-healing runtime pays
//! per snapshot and per rollback.
//!
//! Single-rank MG-CFD fixture with checkpointing attached manually
//! (auto-cadence disabled), four scenarios:
//!
//! * `iterate_only` — one solver iteration per rep, no snapshots: the
//!   baseline the take costs sit on top of;
//! * `take_dirty` — one solver iteration then `ckpt_take` per rep: the
//!   incremental snapshot copies only the iteration's write-set;
//! * `take_clean` — back-to-back `ckpt_take` with nothing mutated:
//!   every dat is version-clean and shares the previous epoch's buffer
//!   (`Arc` bump, no copy) — the dirty-tracking fast path;
//! * `rewind` — `ckpt_rewind` per rep: restore latency back to the
//!   newest checkpoint (full dat copy-back).

use criterion::{criterion_group, criterion_main, Criterion};
use mg_cfd::{MgCfd, MgCfdParams};
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::exec::{run_chain, run_loop};
use op2_runtime::{run_distributed, CheckpointConfig, RankEnv, RankState, RuntimeError};
use std::hint::black_box;
use std::sync::{Arc, Mutex};

struct Fixture {
    app: MgCfd,
    layouts: Vec<RankLayout>,
}

fn fixture() -> Fixture {
    let mut params = MgCfdParams::small(10);
    params.levels = 1;
    let app = MgCfd::new(params);
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, 1);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 1);
    let layouts = build_layouts(&app.dom, &own, 2);
    Fixture { app, layouts }
}

/// Run `body` REPS times on a fresh single-rank env with checkpointing
/// attached (manual takes only — the cadence is effectively infinite).
fn run_reps(
    fix: &mut Fixture,
    reps: usize,
    body: impl Fn(&mut RankEnv<'_>, &mut dyn FnMut(&mut RankEnv<'_>) -> Result<(), RuntimeError>) + Sync,
) {
    let init = fix.app.init_loop(0);
    let iteration = fix.app.iteration(true);
    let slot = Arc::new(Mutex::new(RankState::new()));
    let slot_ref = &slot;
    let out = run_distributed(&mut fix.app.dom, &fix.layouts, |env| {
        env.ckpt_attach(CheckpointConfig::new(u64::MAX), Arc::clone(slot_ref));
        run_loop(env, &init)?;
        let mut step = |env: &mut RankEnv<'_>| -> Result<(), RuntimeError> {
            for s in &iteration {
                match s {
                    mg_cfd::Step::Loop(l) => {
                        run_loop(env, l)?;
                    }
                    mg_cfd::Step::Chain(c) => run_chain(env, c)?,
                }
            }
            Ok(())
        };
        for _ in 0..reps {
            body(env, &mut step);
        }
        Ok(())
    });
    assert!(out.all_ok());
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    const REPS: usize = 8;
    let mut g = c.benchmark_group("checkpoint_restore");
    g.throughput(criterion::Throughput::Elements(REPS as u64));

    g.bench_function("iterate_only", |b| {
        let mut fix = fixture();
        b.iter(|| {
            run_reps(&mut fix, REPS, |env, step| {
                step(env).unwrap();
            });
        })
    });
    g.bench_function("take_dirty", |b| {
        let mut fix = fixture();
        b.iter(|| {
            run_reps(&mut fix, REPS, |env, step| {
                step(env).unwrap();
                black_box(env.ckpt_take());
            });
        })
    });
    g.bench_function("take_clean", |b| {
        let mut fix = fixture();
        b.iter(|| {
            run_reps(&mut fix, REPS, |env, _step| {
                // Nothing mutated since the previous take: every dat is
                // version-clean and the snapshot is Arc reuse.
                black_box(env.ckpt_take());
            });
        })
    });
    g.bench_function("rewind", |b| {
        let mut fix = fixture();
        b.iter(|| {
            run_reps(&mut fix, REPS, |env, _step| {
                assert!(black_box(env.ckpt_rewind()));
            });
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_checkpoint_restore
}
criterion_main!(benches);
