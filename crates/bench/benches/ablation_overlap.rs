//! Ablation: latency hiding (Alg 1's core-first ordering) on vs off.
//!
//! The overlapped executor posts the sends, runs the core while the
//! messages are in flight, waits, then runs the boundary. The
//! non-overlapped variant waits immediately and only then executes
//! everything. On the in-process transport the absolute gap is small
//! (messages fly at memcpy speed), but the ordering machinery itself —
//! prefix cores, range splitting — is exercised and costed.

use criterion::{criterion_group, criterion_main, Criterion};
use op2_core::{AccessMode, Arg, Args, DatId, LoopSpec};
use op2_mesh::{Hex3D, Hex3DParams};
use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2_runtime::exec::{exchange_list, run_loop, standalone_extent};
use op2_runtime::run_distributed;

fn flux_kernel(args: &Args<'_>) {
    let d = args.get(2, 0) - args.get(3, 0);
    args.inc(0, 0, d * 0.5);
    args.inc(1, 0, -d * 0.5);
}

fn setup(nparts: usize) -> (Hex3D, Vec<RankLayout>, LoopSpec, DatId) {
    let mut m = Hex3D::generate(Hex3DParams::cube(18));
    let src = {
        let n = m.dom.set(m.nodes).size;
        let vals: Vec<f64> = (0..n).map(|i| (i % 31) as f64).collect();
        m.dom.decl_dat("src", m.nodes, 1, vals)
    };
    let dst = m.dom.decl_dat_zeros("dst", m.nodes, 1);
    let flux = LoopSpec::new(
        "flux",
        m.edges,
        vec![
            Arg::dat_indirect(dst, m.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(dst, m.e2n, 1, AccessMode::Inc),
            Arg::dat_indirect(src, m.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(src, m.e2n, 1, AccessMode::Read),
        ],
        flux_kernel,
    );
    let base = rcb_partition(m.node_coords(), 3, nparts);
    let own = derive_ownership(&m.dom, m.nodes, base, nparts);
    let layouts = build_layouts(&m.dom, &own, 2);
    (m, layouts, flux, src)
}

fn bench_overlap(c: &mut Criterion) {
    let rounds = 20usize;
    let mut group = c.benchmark_group("loop_execution");

    let (mut mesh, layouts, flux, src) = setup(4);
    group.bench_function("overlapped_alg1", |b| {
        b.iter(|| {
            run_distributed(&mut mesh.dom, &layouts, |env| {
                for _ in 0..rounds {
                    env.valid[src.idx()] = 0; // keep the exchange live
                    run_loop(env, &flux)?;
                }
                Ok(())
            })
        })
    });

    let (mut mesh2, layouts2, flux2, src2) = setup(4);
    group.bench_function("no_overlap", |b| {
        b.iter(|| {
            run_distributed(&mut mesh2.dom, &layouts2, |env| {
                for _ in 0..rounds {
                    env.valid[src2.idx()] = 0;
                    // Wait first, then execute everything — no hiding.
                    let ext = standalone_extent(&flux2);
                    let exch = exchange_list(env, &flux2, ext);
                    let mut rec = env.exchange(&exch, false);
                    env.exchange_wait(&exch, false, &mut rec)?;
                    let end = env.layout.sets[flux2.set.idx()].exec_end(ext);
                    let mut gbls = Vec::new();
                    env.exec_range(&flux2, 0, end, &mut gbls);
                }
                Ok(())
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_overlap
}
criterion_main!(benches);
