//! Machine presets — Table 1 of the paper, as calibrated constants.
//!
//! Absolute seconds are not the reproduction target (our substrate is a
//! simulator, DESIGN.md §2); what matters is that the *ratios* the model
//! is sensitive to — compute-per-iteration vs per-message latency vs
//! per-byte cost — sit in realistic ranges so crossovers land where the
//! paper's do. Sources for the orders of magnitude:
//!
//! * ARCHER2: HPE Cray EX, 2×64-core EPYC 7742 per node (128 MPI ranks
//!   per node in the paper's runs), Slingshot 2×100 Gb/s per node. With
//!   128 ranks sharing the NIC, the effective per-rank stream is a few
//!   hundred MB/s; MPI small-message latency ~2 µs.
//! * Cirrus: 4×V100 per node, one MPI rank per GPU, FDR InfiniBand
//!   54.5 Gb/s per node (~1.7 GB/s per GPU share). Halo staging goes
//!   over PCIe (the paper's pipeline does not use GPUDirect), adding a
//!   per-event latency and a ~12 GB/s copy stream; kernels cost a
//!   launch overhead but iterate far faster than a CPU core.

/// CPU or GPU flavour of a machine — selects which equation variant the
/// model applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// MPI ranks on CPU cores (Eq 1/3 as printed).
    Cpu,
    /// One MPI rank per GPU; host-staged halos (Eq 1/3 with `Λ`, PCIe
    /// staging and launch overheads).
    Gpu,
}

/// Calibrated machine description.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Display name (tables print it).
    pub name: &'static str,
    /// CPU or GPU equations.
    pub kind: MachineKind,
    /// MPI ranks per node (128 on ARCHER2, 4 GPUs on Cirrus).
    pub ranks_per_node: usize,
    /// Network message latency `L` in seconds (per message).
    pub latency: f64,
    /// Effective per-rank network bandwidth `B` in bytes/s.
    pub bandwidth: f64,
    /// Pack/unpack memory stream rate in bytes/s (Eq 3's `c` is
    /// `bytes / pack_rate` per neighbour).
    pub pack_rate: f64,
    /// Default compute cost per loop iteration `g` in seconds (loops may
    /// override with their own `g`).
    pub g_default: f64,
    /// GPU-only: per staging *event* latency over PCIe (s).
    pub pcie_latency: f64,
    /// GPU-only: PCIe copy bandwidth (bytes/s).
    pub pcie_bandwidth: f64,
    /// GPU-only: kernel launch overhead per kernel (s).
    pub kernel_launch: f64,
    /// GPU-only: use GPUDirect semantics — no host staging events, but
    /// transfers do not overlap with compute kernels (the paper found
    /// exactly this and chose the staged pipeline instead, §3.3).
    pub gpu_direct: bool,
}

impl Machine {
    /// ARCHER2-like HPE Cray EX preset.
    pub fn archer2() -> Self {
        Machine {
            name: "ARCHER2 (HPE Cray EX, 2x AMD EPYC 7742/node)",
            kind: MachineKind::Cpu,
            ranks_per_node: 128,
            latency: 2.0e-6,
            bandwidth: 2.0e8, // ~200 MB/s effective per rank at full node occupancy
            pack_rate: 4.0e9,
            g_default: 5.0e-8, // ~50 ns per FV edge kernel iteration
            pcie_latency: 0.0,
            pcie_bandwidth: f64::INFINITY,
            kernel_launch: 0.0,
            gpu_direct: false,
        }
    }

    /// Cirrus-like SGI/HPE 8600 V100 cluster preset.
    pub fn cirrus() -> Self {
        Machine {
            name: "Cirrus (SGI/HPE 8600, 4x NVIDIA V100/node)",
            kind: MachineKind::Gpu,
            ranks_per_node: 4,
            latency: 3.0e-6,
            bandwidth: 1.7e9, // FDR 54.5 Gb/s / 4 GPUs
            pack_rate: 2.0e10,
            g_default: 6.0e-10, // V100 throughput per edge iteration
            pcie_latency: 1.0e-5,
            pcie_bandwidth: 1.2e10,
            kernel_launch: 8.0e-6,
            gpu_direct: false,
        }
    }

    /// Cirrus with GPUDirect instead of the staged pipeline: transfers
    /// skip the host (no PCIe staging events) but, as the paper
    /// observed, "in many cases did not run simultaneously with the
    /// computing kernels" — so communication does not overlap compute.
    pub fn cirrus_gpudirect() -> Self {
        Machine {
            name: "Cirrus (GPUDirect, no compute overlap)",
            gpu_direct: true,
            ..Self::cirrus()
        }
    }

    /// Ranks for a node count on this machine.
    pub fn ranks(&self, nodes: usize) -> usize {
        nodes * self.ranks_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let a = Machine::archer2();
        assert_eq!(a.kind, MachineKind::Cpu);
        assert_eq!(a.ranks(4), 512);
        assert!(a.latency > 0.0 && a.bandwidth > 0.0 && a.g_default > 0.0);

        let c = Machine::cirrus();
        assert_eq!(c.kind, MachineKind::Gpu);
        assert_eq!(c.ranks(16), 64);
        // GPUs iterate much faster but pay staging overheads.
        assert!(c.g_default < a.g_default / 10.0);
        assert!(c.pcie_latency > 0.0 && c.kernel_launch > 0.0);
    }
}
