//! # op2-model
//!
//! The analytic performance model of §3.2 of the paper (Eqs 1–4), plus
//! machine presets for the two benchmarked systems and the glue that
//! turns measured halo statistics into model inputs.
//!
//! * [`machine`] — Table 1 as code: an ARCHER2-like CPU cluster (128
//!   ranks/node, Slingshot-class network) and a Cirrus-like V100 cluster
//!   (4 GPU ranks/node, FDR InfiniBand, PCIe staging);
//! * [`eqs`] — the equations themselves: Eq 1 (standard OP2 loop with
//!   latency hiding), Eq 2 (chain as sum of loops), Eq 3 (CA chain with
//!   one grouped message), Eq 4 (grouped message size), and their GPU
//!   extensions (larger effective latency `Λ`, PCIe staging per
//!   exchange event, kernel-launch overhead);
//! * [`components`] — computes, from [`op2_partition::HaloStats`] and a
//!   chain's access descriptors, exactly the columns of Tables 2 and 5:
//!   `Σ(2dpm¹)`, `Σ(Sᶜ)`, `Σ(S¹)` for OP2 and `pmʳ`, `Σ(Sᶜ)`, `Σ(Sʰ)`
//!   for CA, plus gain/comm-reduction/comp-increase percentages;
//! * [`scaling`] — surface/volume extrapolation of partition statistics
//!   across mesh sizes and rank counts, for quick sweeps without
//!   re-partitioning;
//! * [`profit`] — the §3.2/§5 profitability judgement: classify a chain
//!   as communication-reducing / grouping-only / communication-increasing
//!   and recommend whether to enable CA on a given machine.

pub mod components;
pub mod eqs;
pub mod machine;
pub mod profit;
pub mod scaling;

pub use components::{chain_components, shape_from_sigs, shape_from_sigs_relaxed, ChainComponents, LoopShape};
pub use eqs::{t_ca_chain, t_op2_chain, t_op2_loop, CaChainInput, LoopInput};
pub use machine::{Machine, MachineKind};
pub use profit::{
    choose_threaded_backend, classify, classify_exec, classify_fused, classify_threaded,
    classify_threaded_tiled, threaded_g, ChainClass, ExecProfit, FusedProfit, Profitability,
    ThreadedBackend, COLOR_SYNC_S, DEP_HANDOFF_S, MEM_S_PER_BYTE,
};
pub use scaling::extrapolate_components;
