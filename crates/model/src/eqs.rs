//! Equations 1–4 of the paper, plus their GPU extensions (§3.3).
//!
//! CPU forms, as printed:
//!
//! ```text
//! (1) T_op2,l = MAX[ g_l·S_l^c , 2·d_l·p_l·(L + m_l^1/B) ] + g_l·S_l^1
//! (2) T_op2,L = Σ_l T_op2,l
//! (3) T_ca,L  = MAX[ Σ_l g_l·S_l^c , p·(L + m^r/B + c) ] + Σ_l g_l·S_l^h
//! (4) m^r     = Σ_l Σ_d (S_d^{eeh,h_l} + S_d^{enh,h_l}) · δ
//! ```
//!
//! GPU forms (§3.3): the latency `L` becomes `Λ` (network latency plus a
//! PCIe staging event each way), every exchange additionally streams its
//! bytes over PCIe, and every executed kernel segment pays a launch
//! overhead. CA benefits twice on GPUs — fewer messages *and* fewer
//! staging events — which is exactly why the paper sees gains at lower
//! node counts on Cirrus than on ARCHER2.

use crate::machine::{Machine, MachineKind};

/// Inputs of Eq 1 for one loop.
#[derive(Debug, Clone, Copy)]
pub struct LoopInput {
    /// Compute cost per iteration `g_l` (seconds).
    pub g: f64,
    /// Core iterations `S_l^c` (overlapped with communication).
    pub s_core: usize,
    /// Post-exchange iterations `S_l^1` (boundary + execute halo).
    pub s_halo: usize,
    /// Dats exchanged `d_l`.
    pub d: usize,
    /// Max neighbours per rank `p_l`.
    pub p: usize,
    /// Max per-dat message size in bytes `m_l^1`.
    pub m1_bytes: usize,
}

/// Inputs of Eq 3 for one chain.
#[derive(Debug, Clone)]
pub struct CaChainInput {
    /// Per loop: (g, shrunk core `S_l^c`, halo region `S_l^h`).
    pub loops: Vec<(f64, usize, usize)>,
    /// Max neighbours per rank `p`.
    pub p: usize,
    /// Grouped message size in bytes `m^r` (max over neighbours).
    pub m_r_bytes: usize,
    /// Measured pack cost in seconds per byte, replacing the machine's
    /// constant `c` term (`1 / pack_rate`) when available. The runtime
    /// tuner fills this from the traced pack timings of real exchanges.
    pub pack_s_per_byte: Option<f64>,
}

/// Eq 1 (CPU) / its §3.3 extension (GPU): runtime of one standard OP2
/// loop with latency hiding.
pub fn t_op2_loop(mach: &Machine, l: &LoopInput) -> f64 {
    let compute_core = l.g * l.s_core as f64;
    let compute_halo = l.g * l.s_halo as f64;
    match mach.kind {
        MachineKind::Cpu => {
            let comm =
                2.0 * l.d as f64 * l.p as f64 * (mach.latency + l.m1_bytes as f64 / mach.bandwidth);
            compute_core.max(comm) + compute_halo
        }
        MachineKind::Gpu => {
            let n_msgs = 2.0 * l.d as f64 * l.p as f64;
            let comm = n_msgs * (mach.latency + l.m1_bytes as f64 / mach.bandwidth);
            if mach.gpu_direct {
                // GPUDirect: no host staging, but (as the paper observed,
                // §3.3) the transfers do not run concurrently with the
                // computing kernels — no latency hiding.
                return compute_core + comm + compute_halo + 2.0 * mach.kernel_launch;
            }
            // Staged pipeline: halos cross PCIe both ways around the
            // sends/receives; Λ = L + per-event staging; full overlap
            // with the core kernel.
            let staged_bytes = n_msgs * l.m1_bytes as f64;
            let staging = if l.d > 0 {
                2.0 * mach.pcie_latency + 2.0 * staged_bytes / mach.pcie_bandwidth
            } else {
                0.0
            };
            // Two kernel segments (core, halo) per loop.
            compute_core.max(comm + staging) + compute_halo + 2.0 * mach.kernel_launch
        }
    }
}

/// Eq 2: a chain executed as standard per-loop OP2.
pub fn t_op2_chain(mach: &Machine, loops: &[LoopInput]) -> f64 {
    loops.iter().map(|l| t_op2_loop(mach, l)).sum()
}

/// Eq 3 (CPU) / its §3.3 extension (GPU): runtime of a chain under the
/// CA back-end with a single grouped exchange.
pub fn t_ca_chain(mach: &Machine, c: &CaChainInput) -> f64 {
    let compute_core: f64 = c.loops.iter().map(|&(g, s, _)| g * s as f64).sum();
    let compute_halo: f64 = c.loops.iter().map(|&(g, _, s)| g * s as f64).sum();
    let pack = c.m_r_bytes as f64 * c.pack_s_per_byte.unwrap_or(1.0 / mach.pack_rate);
    match mach.kind {
        MachineKind::Cpu => {
            let comm = c.p as f64 * (mach.latency + c.m_r_bytes as f64 / mach.bandwidth + pack);
            compute_core.max(comm) + compute_halo
        }
        MachineKind::Gpu => {
            let comm = c.p as f64 * (mach.latency + c.m_r_bytes as f64 / mach.bandwidth + pack);
            if mach.gpu_direct {
                return compute_core
                    + comm
                    + compute_halo
                    + 2.0 * c.loops.len() as f64 * mach.kernel_launch;
            }
            let staged_bytes = c.p as f64 * c.m_r_bytes as f64;
            let staging = if c.m_r_bytes > 0 {
                2.0 * mach.pcie_latency + 2.0 * staged_bytes / mach.pcie_bandwidth
            } else {
                0.0
            };
            // Two kernel segments per loop (core, halo).
            compute_core.max(comm + staging)
                + compute_halo
                + 2.0 * c.loops.len() as f64 * mach.kernel_launch
        }
    }
}

/// Percentage gain of CA over OP2: `(T_op2 − T_ca) / T_op2 · 100`.
pub fn gain_percent(t_op2: f64, t_ca: f64) -> f64 {
    if t_op2 <= 0.0 {
        0.0
    } else {
        (t_op2 - t_ca) / t_op2 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn loop_in(g: f64, s_core: usize, s_halo: usize, d: usize, p: usize, m1: usize) -> LoopInput {
        LoopInput {
            g,
            s_core,
            s_halo,
            d,
            p,
            m1_bytes: m1,
        }
    }

    /// With huge cores, the loop is compute-bound and comm is hidden.
    #[test]
    fn compute_bound_loop_hides_comm() {
        let m = Machine::archer2();
        let l = loop_in(m.g_default, 10_000_000, 1000, 2, 8, 1000);
        let t = t_op2_loop(&m, &l);
        let compute_only = m.g_default * 10_001_000.0;
        assert!((t - compute_only).abs() / compute_only < 1e-12);
    }

    /// With tiny cores, comm latency dominates Eq 1's MAX.
    #[test]
    fn latency_bound_loop() {
        let m = Machine::archer2();
        let l = loop_in(m.g_default, 10, 10, 3, 12, 100);
        let t = t_op2_loop(&m, &l);
        let comm = 2.0 * 3.0 * 12.0 * (m.latency + 100.0 / m.bandwidth);
        assert!(t >= comm);
        assert!((t - (comm + m.g_default * 10.0)).abs() < 1e-12);
    }

    /// Eq 2 is the plain sum of Eq 1.
    #[test]
    fn chain_sum_equals_loops() {
        let m = Machine::archer2();
        let ls = [
            loop_in(1e-8, 100, 10, 1, 4, 64),
            loop_in(2e-8, 200, 20, 2, 4, 128),
        ];
        let total = t_op2_chain(&m, &ls);
        let manual: f64 = ls.iter().map(|l| t_op2_loop(&m, l)).sum();
        assert_eq!(total, manual);
    }

    /// In the latency-dominated regime, CA (1 message/neighbour) beats
    /// per-loop OP2 (2·d·p messages per loop) — the paper's headline.
    #[test]
    fn ca_wins_when_latency_dominates() {
        let m = Machine::archer2();
        let n = 16; // 16-loop chain
        let per_loop: Vec<LoopInput> =
            (0..n).map(|_| loop_in(m.g_default, 50, 30, 2, 8, 256)).collect();
        let t_op2 = t_op2_chain(&m, &per_loop);
        let ca = CaChainInput {
            loops: (0..n).map(|_| (m.g_default, 40, 90)).collect(),
            p: 8,
            m_r_bytes: 1024,
            pack_s_per_byte: None,
        };
        let t_ca = t_ca_chain(&m, &ca);
        assert!(
            t_ca < t_op2,
            "CA should win latency-dominated: {t_ca} vs {t_op2}"
        );
        assert!(gain_percent(t_op2, t_ca) > 0.0);
    }

    /// In the compute-dominated regime with heavy redundant work, CA
    /// loses — the paper's cautionary result (e.g. gradl).
    #[test]
    fn ca_loses_when_redundant_compute_dominates() {
        let m = Machine::archer2();
        let per_loop = vec![
            loop_in(m.g_default, 1_000_000, 2000, 1, 4, 512),
            loop_in(m.g_default, 1_000_000, 2000, 1, 4, 512),
        ];
        let t_op2 = t_op2_chain(&m, &per_loop);
        let ca = CaChainInput {
            loops: vec![
                (m.g_default, 990_000, 400_000),
                (m.g_default, 990_000, 400_000),
            ],
            p: 4,
            m_r_bytes: 2048,
            pack_s_per_byte: None,
        };
        let t_ca = t_ca_chain(&m, &ca);
        assert!(t_ca > t_op2, "CA should lose compute-bound: {t_ca} vs {t_op2}");
        assert!(gain_percent(t_op2, t_ca) < 0.0);
    }

    /// The staged pipeline beats GPUDirect whenever the core is big
    /// enough to hide the transfers — the §3.3 design decision.
    #[test]
    fn pipeline_beats_gpudirect_on_large_cores() {
        let staged = Machine::cirrus();
        let direct = Machine::cirrus_gpudirect();
        let l = loop_in(staged.g_default, 5_000_000, 20_000, 3, 6, 50_000);
        let t_staged = t_op2_loop(&staged, &l);
        let t_direct = t_op2_loop(&direct, &l);
        assert!(
            t_staged < t_direct,
            "staged {t_staged} should beat GPUDirect {t_direct} with a big core"
        );
    }

    /// On the GPU machine, grouping pays even with zero message-count
    /// reduction, because staging events collapse (vflux behaviour).
    #[test]
    fn gpu_gains_from_fewer_staging_events() {
        let m = Machine::cirrus();
        let n = 2;
        let per_loop: Vec<LoopInput> =
            (0..n).map(|_| loop_in(m.g_default, 20_000, 3000, 3, 6, 40_000)).collect();
        let t_op2 = t_op2_chain(&m, &per_loop);
        // Same total bytes and similar halo work — only grouped.
        let ca = CaChainInput {
            loops: (0..n).map(|_| (m.g_default, 18_000, 5000)).collect(),
            p: 6,
            m_r_bytes: 240_000,
            pack_s_per_byte: None,
        };
        let t_ca = t_ca_chain(&m, &ca);
        assert!(t_ca < t_op2, "GPU grouping should win: {t_ca} vs {t_op2}");
    }
}
