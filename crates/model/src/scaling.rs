//! Surface/volume extrapolation of chain components.
//!
//! Partition statistics obey simple geometric laws for 3D meshes split
//! into compact parts: per-rank volumes (owned and core counts) scale
//! with `N/P`, while surfaces (halo rings, message sizes) scale with
//! `(N/P)^{2/3}`. This lets a components table measured at one
//! configuration be swept across node counts or mesh sizes without
//! re-partitioning — useful for quick what-if exploration (the paper
//! figures shipped in `op2-bench` re-measure for every configuration;
//! `model_explorer` uses this module).

use crate::components::ChainComponents;
use crate::eqs::{CaChainInput, LoopInput};

/// Scale `comp`, measured at `n0` elements on `p0` ranks, to a
/// configuration of `n1` elements on `p1` ranks.
pub fn extrapolate_components(
    comp: &ChainComponents,
    n0: usize,
    p0: usize,
    n1: usize,
    p1: usize,
) -> ChainComponents {
    let vol_ratio = (n1 as f64 / p1 as f64) / (n0 as f64 / p0 as f64);
    let surf_ratio = vol_ratio.powf(2.0 / 3.0);
    let vol = |x: usize| ((x as f64) * vol_ratio).round().max(0.0) as usize;
    let surf = |x: usize| ((x as f64) * surf_ratio).round().max(0.0) as usize;

    let op2_loops: Vec<LoopInput> = comp
        .op2_loops
        .iter()
        .map(|l| LoopInput {
            g: l.g,
            s_core: vol(l.s_core),
            s_halo: surf(l.s_halo),
            d: l.d,
            p: l.p,
            m1_bytes: surf(l.m1_bytes),
        })
        .collect();
    let ca = CaChainInput {
        loops: comp
            .ca
            .loops
            .iter()
            .map(|&(g, c, h)| (g, vol(c), surf(h)))
            .collect(),
        p: comp.ca.p,
        m_r_bytes: surf(comp.ca.m_r_bytes),
        pack_s_per_byte: None,
    };
    ChainComponents {
        op2_comm_bytes: comp.op2_comm_bytes * surf_ratio,
        op2_core: vol(comp.op2_core),
        op2_halo: surf(comp.op2_halo),
        ca_comm_bytes: comp.ca_comm_bytes * surf_ratio,
        ca_core: vol(comp.ca_core),
        ca_halo: surf(comp.ca_halo),
        op2_loops,
        ca,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChainComponents {
        ChainComponents {
            op2_loops: vec![LoopInput {
                g: 1e-8,
                s_core: 8000,
                s_halo: 400,
                d: 2,
                p: 6,
                m1_bytes: 3200,
            }],
            ca: CaChainInput {
                loops: vec![(1e-8, 7000, 1200)],
                p: 6,
                m_r_bytes: 6400,
                pack_s_per_byte: None,
            },
            op2_comm_bytes: 2.0 * 2.0 * 6.0 * 3200.0,
            op2_core: 8000,
            op2_halo: 400,
            ca_comm_bytes: 6.0 * 6400.0,
            ca_core: 7000,
            ca_halo: 1200,
        }
    }

    #[test]
    fn identity_scaling_is_noop() {
        let c = sample();
        let s = extrapolate_components(&c, 1_000_000, 64, 1_000_000, 64);
        assert_eq!(s.op2_core, c.op2_core);
        assert_eq!(s.ca.m_r_bytes, c.ca.m_r_bytes);
    }

    #[test]
    fn doubling_ranks_halves_volume_terms() {
        let c = sample();
        let s = extrapolate_components(&c, 1_000_000, 64, 1_000_000, 128);
        assert_eq!(s.op2_core, c.op2_core / 2);
        // Surface terms shrink by 2^(2/3) ≈ 1.587.
        let expect = (c.ca.m_r_bytes as f64 / 2f64.powf(2.0 / 3.0)).round() as usize;
        assert_eq!(s.ca.m_r_bytes, expect);
    }

    #[test]
    fn tripling_mesh_grows_both() {
        let c = sample();
        let s = extrapolate_components(&c, 8_000_000, 512, 24_000_000, 512);
        assert!(s.op2_core > c.op2_core * 2);
        assert!(s.op2_halo > c.op2_halo && s.op2_halo < c.op2_halo * 3);
    }
}
