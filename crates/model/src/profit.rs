//! Profitability classification — the §3.2 / §5 insights as code.
//!
//! The paper's concluding analysis sorts loop-chains into qualitative
//! classes (its Table 5 discussion): chains that *reduce communication*
//! beyond their computation increase win, hardest at scale; chains that
//! only *group* messages break even on CPUs but win on GPUs (staging
//! collapse); chains that *increase* both communication and computation
//! degrade. [`classify`] reproduces that judgement from a chain's
//! measured components and a machine, with the contributing factors
//! spelled out.

use crate::components::ChainComponents;
use crate::eqs::{gain_percent, t_ca_chain, t_op2_chain};
use crate::machine::{Machine, MachineKind};

/// Qualitative class of a chain under CA — the §4.2 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainClass {
    /// Communication shrinks and computation growth is affordable
    /// (period, jacob): recommend CA, gains grow with scale.
    CommunicationReducing,
    /// Bytes unchanged, messages (and GPU staging events) grouped
    /// (vflux, iflux): near-neutral on CPU clusters, profitable on GPU
    /// clusters.
    GroupingOnly,
    /// Communication *and* computation increase (gradl): CA degrades;
    /// execute the loops individually.
    CommunicationIncreasing,
}

/// The verdict for one (chain, machine) pair.
#[derive(Debug, Clone)]
pub struct Profitability {
    /// Qualitative class.
    pub class: ChainClass,
    /// Modelled gain% of CA over OP2 on this machine.
    pub gain_pct: f64,
    /// Communication reduction % (bytes).
    pub comm_reduction_pct: f64,
    /// Computation increase % (iterations).
    pub comp_increase_pct: f64,
    /// Whether the model recommends enabling CA for this chain here —
    /// the decision the paper says "would be the challenge in real-world
    /// applications" (§5).
    pub enable_ca: bool,
}

/// Classify a chain's components on a machine.
pub fn classify(mach: &Machine, comp: &ChainComponents) -> Profitability {
    let comm_red = comp.comm_reduction_pct();
    let comp_inc = comp.comp_increase_pct();
    let class = if comm_red < -1.0 {
        ChainClass::CommunicationIncreasing
    } else if comm_red <= 1.0 {
        ChainClass::GroupingOnly
    } else {
        ChainClass::CommunicationReducing
    };
    let t_op2 = t_op2_chain(mach, &comp.op2_loops);
    let t_ca = t_ca_chain(mach, &comp.ca);
    let gain = gain_percent(t_op2, t_ca);
    Profitability {
        class,
        gain_pct: gain,
        comm_reduction_pct: comm_red,
        comp_increase_pct: comp_inc,
        enable_ca: gain > 0.0,
    }
}

/// Default per-color synchronisation cost of the threaded executor
/// (seconds): one pool barrier — dispatch, cursor drain, latch — per
/// color. Calibrated to the in-process `std::thread` pool; real MPI+X
/// runs would measure it.
pub const COLOR_SYNC_S: f64 = 5e-6;

/// Effective per-iteration cost with `threads`-way colored execution:
/// `g/t` for the compute (perfect intra-color scaling, the model's
/// idealisation) plus the coloring overhead amortised over the loop —
/// `n_colors` pool barriers of `color_sync_s` spread across `iters`
/// iterations. With 1 thread or no iterations this is `g` unchanged.
pub fn threaded_g(
    g: f64,
    threads: usize,
    n_colors: usize,
    color_sync_s: f64,
    iters: usize,
) -> f64 {
    if threads <= 1 || iters == 0 {
        return g;
    }
    g / threads as f64 + n_colors as f64 * color_sync_s / iters as f64
}

/// [`classify`] with every loop's `g` replaced by its `threads`-way
/// [`threaded_g`]: compute shrinks, communication terms are untouched —
/// so threading *raises* the relative weight of communication, which is
/// exactly why CA becomes profitable earlier on threaded ranks.
pub fn classify_threaded(
    mach: &Machine,
    comp: &ChainComponents,
    threads: usize,
    n_colors: usize,
    color_sync_s: f64,
) -> Profitability {
    classify(mach, &comp.with_threads(threads, n_colors, color_sync_s))
}

/// [`classify`] for the **threaded-tiled** CA executor: compute shrinks
/// `threads`-way exactly as in [`classify_threaded`], but the barrier
/// count is the tile plan's *level* count — the tiled chain executor
/// pays one pool round per conflict level for the **whole chain**, not
/// `n_colors` rounds per loop. The cache-locality benefit of tiling
/// (the reason §2.2 exists) is deliberately unmodelled, so this is a
/// conservative lower bound on tiling's advantage.
pub fn classify_threaded_tiled(
    mach: &Machine,
    comp: &ChainComponents,
    threads: usize,
    n_tile_levels: usize,
    color_sync_s: f64,
) -> Profitability {
    let n_loops = comp.ca.loops.len().max(1);
    // with_threads amortises `n` barriers per *loop*; the tiled executor
    // pays `n_tile_levels` per *chain*, so spread them across the loops.
    let per_loop = n_tile_levels.div_ceil(n_loops);
    classify(mach, &comp.with_threads(threads, per_loop, color_sync_s))
}

/// Which pool-backed executor a threaded rank should run a CA-approved
/// chain on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadedBackend {
    /// [Alg 2] chain executor, each loop colored-blocked on the pool.
    Colored,
    /// The §2.2 sparse-tiled chain executor with same-level tiles run
    /// concurrently on the pool.
    Tiled,
}

/// Choose between the colored and tiled pool executors for one chain on
/// a threaded rank, by comparing total synchronisation cost: the colored
/// path pays `n_colors` pool barriers per loop (`n_loops · n_colors`
/// total), the tiled path pays one barrier per tile conflict level
/// (`n_tile_levels` total) for the whole chain. Compute cost is
/// identical under the model (`g/t` either way) and tiling's locality
/// benefit is unmodelled, so the barrier totals decide — ties go to
/// `Tiled` (strictly fewer barriers plus the unmodelled locality win).
pub fn choose_threaded_backend(
    threads: usize,
    n_loops: usize,
    n_colors: usize,
    n_tile_levels: usize,
) -> ThreadedBackend {
    if threads <= 1 {
        // No pool: barrier counts are irrelevant; keep the default path.
        return ThreadedBackend::Colored;
    }
    if n_tile_levels <= n_loops.max(1) * n_colors {
        ThreadedBackend::Tiled
    } else {
        ThreadedBackend::Colored
    }
}

/// Default sequential memory-traffic cost (seconds per byte) of a
/// streamed dat access on the reference machine — the calibration the
/// fusion profit arm prices elided intermediate traffic with. Roughly
/// 10 GB/s effective per-core streaming bandwidth; the bench harness can
/// substitute a measured value.
pub const MEM_S_PER_BYTE: f64 = 1e-10;

/// The fusion profit arm's verdict for one chain (see [`classify_fused`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedProfit {
    /// Modelled wall-time gain (seconds) of the fused execution:
    /// elided-intermediate memory traffic priced at `mem_s_per_byte`,
    /// minus the exchange/compute overlap the fused executor forgoes.
    pub gain_s: f64,
    /// Whether the model recommends the fused executor.
    pub fuse: bool,
}

/// The fused-vs-unfused profit arm (`OP2_FUSE=auto`). The fused chain
/// executor saves the intermediate dats' round-trips to memory
/// (`elided_bytes`, priced at `mem_s_per_byte` seconds/byte) but runs
/// the whole chain *after* the halo wait, forgoing the per-loop
/// executor's exchange/compute overlap (`overlap_loss_s` — typically the
/// exchanged payload priced at the same bandwidth, a conservative bound
/// on the latency the unfused core phase could hide). Fusion is
/// recommended only when it actually elides traffic **and** the saved
/// traffic outweighs the lost overlap — a chain that fuses without
/// elision has nothing to win and still gives up the overlap.
pub fn classify_fused(elided_bytes: u64, overlap_loss_s: f64, mem_s_per_byte: f64) -> FusedProfit {
    let gain_s = elided_bytes as f64 * mem_s_per_byte - overlap_loss_s;
    FusedProfit {
        gain_s,
        fuse: elided_bytes > 0 && gain_s > 0.0,
    }
}

/// Default per-dependency hand-off cost of the dataflow executor
/// (seconds): one atomic counter decrement plus a queue push when it
/// reaches zero — two orders of magnitude cheaper than a pool barrier
/// ([`COLOR_SYNC_S`]), which is the whole point of replacing barriers
/// with counters.
pub const DEP_HANDOFF_S: f64 = 5e-8;

/// The dataflow-vs-levels profit arm's verdict for one lowered schedule
/// (see [`classify_exec`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecProfit {
    /// Modelled synchronisation cost of the level-synchronous drain:
    /// one pool barrier per level.
    pub levels_s: f64,
    /// Modelled synchronisation cost of the dataflow drain: one
    /// fork/join round for the whole schedule plus per-chunk dependency
    /// hand-offs along the critical path.
    pub dataflow_s: f64,
    /// `levels_s - dataflow_s` — positive when dataflow wins.
    pub gain_s: f64,
    /// Whether the model recommends the dataflow executor.
    pub dataflow: bool,
}

/// The dataflow-vs-levels profit arm (`OP2_EXEC=auto`). The
/// level-synchronous drain pays one pool barrier (`sync_s`, measured per
/// rank by `measure_sync_s`) per level — every chunk waits for the
/// slowest chunk of the previous level. The dataflow drain pays a single
/// fork/join round for the whole schedule plus a dependency hand-off
/// (`DEP_HANDOFF_S`) per critical-path step; chunks off the critical
/// path fire as their counters drain, costing no wall time. Compute is
/// identical either way (same chunks, same kernels), so the
/// synchronisation totals decide. With one thread there is nothing to
/// synchronise and the levels path (plain sequential walk) wins by
/// definition.
pub fn classify_exec(
    threads: usize,
    n_levels: usize,
    crit_path: usize,
    sync_s: f64,
) -> ExecProfit {
    let levels_s = n_levels as f64 * sync_s;
    let dataflow_s = sync_s + crit_path as f64 * DEP_HANDOFF_S;
    let gain_s = levels_s - dataflow_s;
    ExecProfit {
        levels_s,
        dataflow_s,
        gain_s,
        dataflow: threads > 1 && gain_s > 0.0,
    }
}

/// The paper's narrative for a class on a machine kind, for reports.
pub fn narrative(class: ChainClass, kind: MachineKind) -> &'static str {
    match (class, kind) {
        (ChainClass::CommunicationReducing, _) => {
            "reduces communication beyond its computation increase: CA gains, \
             growing with node count (period/jacob behaviour)"
        }
        (ChainClass::GroupingOnly, MachineKind::Cpu) => {
            "groups messages without shrinking bytes: near break-even on CPU \
             clusters (vflux/iflux behaviour)"
        }
        (ChainClass::GroupingOnly, MachineKind::Gpu) => {
            "groups messages and collapses host-device staging events: gains \
             on GPU clusters even with zero byte reduction (vflux/iflux)"
        }
        (ChainClass::CommunicationIncreasing, _) => {
            "increases both communication and computation: CA degrades; run \
             the loops individually (gradl behaviour)"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqs::{CaChainInput, LoopInput};

    fn comp(op2_bytes: f64, ca_bytes: f64, op2_iters: usize, ca_iters: usize) -> ChainComponents {
        // Two loops, d = 2 dats, p = 8 neighbours. Keep the eq inputs
        // consistent with the byte columns: the 2·d·p messages of each
        // of the 2 loops together carry `op2_bytes / p` per neighbour
        // (m¹ is the mean per-message size), and the single grouped
        // message carries `ca_bytes / p`.
        let (d, p, n_loops) = (2usize, 8usize, 2.0);
        ChainComponents {
            op2_loops: vec![
                LoopInput {
                    g: 5e-8,
                    s_core: op2_iters,
                    s_halo: op2_iters / 10,
                    d,
                    p,
                    m1_bytes: (op2_bytes / (n_loops * 2.0 * d as f64 * p as f64)) as usize,
                };
                2
            ],
            ca: CaChainInput {
                loops: vec![(5e-8, ca_iters, ca_iters / 3); 2],
                p,
                m_r_bytes: (ca_bytes / p as f64) as usize,
                pack_s_per_byte: None,
            },
            op2_comm_bytes: op2_bytes,
            op2_core: 2 * op2_iters,
            op2_halo: op2_iters / 5,
            ca_comm_bytes: ca_bytes,
            ca_core: 2 * ca_iters,
            ca_halo: 2 * ca_iters / 3,
        }
    }

    #[test]
    fn classes_follow_byte_ratios() {
        let m = Machine::archer2();
        let reducing = classify(&m, &comp(1_000_000.0, 300_000.0, 5000, 4800));
        assert_eq!(reducing.class, ChainClass::CommunicationReducing);

        let grouping = classify(&m, &comp(1_000_000.0, 1_000_000.0, 5000, 4800));
        assert_eq!(grouping.class, ChainClass::GroupingOnly);

        let increasing = classify(&m, &comp(1_000_000.0, 1_400_000.0, 5000, 4800));
        assert_eq!(increasing.class, ChainClass::CommunicationIncreasing);
        assert!(increasing.comm_reduction_pct < 0.0);
    }

    #[test]
    fn grouping_only_wins_on_gpu_not_cpu() {
        // Latency-light CPU regime: bytes dominate, grouping alone is
        // near-neutral; the GPU staging collapse tips it positive.
        let c = comp(4_000_000.0, 4_000_000.0, 3000, 3000);
        let cpu = classify(&Machine::archer2(), &c);
        let gpu = classify(&Machine::cirrus(), &c);
        assert!(gpu.gain_pct > cpu.gain_pct);
    }

    #[test]
    fn threaded_tiled_amortises_levels_across_the_chain() {
        let m = Machine::archer2();
        let c = comp(1_000_000.0, 300_000.0, 5000, 4800);
        // Few tile levels → barely any barrier cost: the tiled arm's
        // gain must be at least the colored arm's with many colors.
        let tiled = classify_threaded_tiled(&m, &c, 4, 4, COLOR_SYNC_S);
        let colored = classify_threaded(&m, &c, 4, 64, COLOR_SYNC_S);
        assert!(tiled.gain_pct >= colored.gain_pct);
    }

    #[test]
    fn backend_choice_follows_barrier_totals() {
        use ThreadedBackend::*;
        // 2 loops × 8 colors = 16 barriers colored; 5 tile levels wins.
        assert_eq!(choose_threaded_backend(4, 2, 8, 5), Tiled);
        // 40 tile levels loses to 16 colored barriers.
        assert_eq!(choose_threaded_backend(4, 2, 8, 40), Colored);
        // Ties go to tiled (unmodelled locality win).
        assert_eq!(choose_threaded_backend(4, 2, 8, 16), Tiled);
        // Single-threaded: no pool, colored path (i.e. plain CA).
        assert_eq!(choose_threaded_backend(1, 2, 8, 1), Colored);
    }

    #[test]
    fn narratives_cover_all_classes() {
        for class in [
            ChainClass::CommunicationReducing,
            ChainClass::GroupingOnly,
            ChainClass::CommunicationIncreasing,
        ] {
            for kind in [MachineKind::Cpu, MachineKind::Gpu] {
                assert!(!narrative(class, kind).is_empty());
            }
        }
    }

    /// The fused-vs-unfused arm: fuse exactly when elided traffic is
    /// non-zero and its modeled saving beats the forfeited overlap.
    #[test]
    fn fused_arm_weighs_elision_against_overlap() {
        let win = classify_fused(1 << 20, 0.0, MEM_S_PER_BYTE);
        assert!(win.fuse);
        assert!(win.gain_s > 0.0);

        // Nothing elided ⇒ never fuse, even with zero overlap at stake.
        assert!(!classify_fused(0, 0.0, MEM_S_PER_BYTE).fuse);

        // The overlap given up outweighs the saving ⇒ keep the split.
        let lose = classify_fused(1 << 10, 1e-3, MEM_S_PER_BYTE);
        assert!(!lose.fuse);
        assert!(lose.gain_s < 0.0);

        // Break-even sits at elided_bytes · s/B == overlap loss.
        let edge = classify_fused(1 << 20, (1 << 20) as f64 * MEM_S_PER_BYTE, MEM_S_PER_BYTE);
        assert!(!edge.fuse);
    }

    #[test]
    fn exec_arm_weighs_barriers_against_handoffs() {
        // A deep schedule (many levels, shallow critical path relative
        // to the barrier bill) is where dataflow wins: 100 barriers vs
        // one round plus 100 hand-offs.
        let win = classify_exec(4, 100, 100, COLOR_SYNC_S);
        assert!(win.dataflow);
        assert!(win.gain_s > 0.0);
        assert!((win.levels_s - 100.0 * COLOR_SYNC_S).abs() < 1e-12);

        // One level ⇒ one barrier either way; dataflow only adds
        // hand-offs.
        let flat = classify_exec(4, 1, 1, COLOR_SYNC_S);
        assert!(!flat.dataflow);
        assert!(flat.gain_s < 0.0);

        // A single thread never prefers dataflow — nothing to overlap.
        assert!(!classify_exec(1, 100, 100, COLOR_SYNC_S).dataflow);

        // Free barriers (sync_s = 0) leave nothing to save.
        assert!(!classify_exec(4, 100, 100, 0.0).dataflow);
    }
}
