//! From measured halo statistics to model inputs — the columns of
//! Tables 2 and 5.
//!
//! A [`ChainShape`] is the machine-independent description of a chain:
//! per loop, its iteration set, per-iteration cost `g`, the dats the OP2
//! baseline would exchange before it, and its CA halo extent; plus the
//! grouped-import plan. [`shape_from_sigs`] derives one from access
//! descriptors (simulating OP2's dirty bits for the baseline and using
//! the Alg 2 inspection for CA). [`chain_components`] then combines a
//! shape with [`HaloStats`] into the exact quantities the paper tables
//! report — taking, like the paper's model, the **maximum over ranks**
//! for each component (the critical path).

use crate::eqs::{CaChainInput, LoopInput};
use op2_core::chain::{core_depths, import_depths, import_depths_relaxed, produced_validity, read_requirement};
use op2_core::{Domain, LoopSig};
use op2_partition::HaloStats;

/// One loop of a chain, digested for the model.
#[derive(Debug, Clone)]
pub struct LoopShape {
    /// Loop name.
    pub name: String,
    /// Iteration-set index.
    pub set: usize,
    /// Per-iteration compute cost (seconds).
    pub g: f64,
    /// Halo extent under standard OP2 (1 when the loop indirectly
    /// modifies data, else 0).
    pub op2_extent: usize,
    /// Dats the OP2 baseline exchanges before this loop:
    /// (set index, element bytes).
    pub op2_exch: Vec<(usize, usize)>,
    /// CA halo extent (`HE_l`).
    pub extent: usize,
    /// Latency-hiding core depth (see
    /// [`op2_core::chain::core_depths`]); 1 in relaxed/paper mode.
    pub core_depth: usize,
}

/// A chain digested for the model.
#[derive(Debug, Clone)]
pub struct ChainShape {
    /// Chain name.
    pub name: String,
    /// Constituent loops, in program order.
    pub loops: Vec<LoopShape>,
    /// Grouped-import plan: (set index, element bytes, depth).
    pub ca_imports: Vec<(usize, usize, usize)>,
}

/// Derive a [`ChainShape`] from loop signatures.
///
/// `entry_validity` gives each dat's halo validity at chain entry (0 =
/// dirty, `usize::MAX` = never modified, e.g. coordinates). `g_per_loop`
/// supplies per-iteration costs.
pub fn shape_from_sigs(
    dom: &Domain,
    name: &str,
    sigs: &[LoopSig],
    extents: &[usize],
    g_per_loop: &[f64],
    entry_validity: &dyn Fn(op2_core::DatId) -> usize,
) -> ChainShape {
    shape_from_sigs_mode(dom, name, sigs, extents, g_per_loop, entry_validity, false)
}

/// [`shape_from_sigs`] for chains with *pinned* (e.g. published) extents
/// executed in relaxed mode: the grouped-import plan deepens instead of
/// rejecting reads beyond in-chain validity.
pub fn shape_from_sigs_relaxed(
    dom: &Domain,
    name: &str,
    sigs: &[LoopSig],
    extents: &[usize],
    g_per_loop: &[f64],
    entry_validity: &dyn Fn(op2_core::DatId) -> usize,
) -> ChainShape {
    shape_from_sigs_mode(dom, name, sigs, extents, g_per_loop, entry_validity, true)
}

fn shape_from_sigs_mode(
    dom: &Domain,
    name: &str,
    sigs: &[LoopSig],
    extents: &[usize],
    g_per_loop: &[f64],
    entry_validity: &dyn Fn(op2_core::DatId) -> usize,
    relaxed: bool,
) -> ChainShape {
    assert_eq!(sigs.len(), extents.len());
    assert_eq!(sigs.len(), g_per_loop.len());

    // CA grouped-import plan from the Alg 2 inspection.
    let raw = if relaxed {
        import_depths_relaxed(sigs, extents, entry_validity)
    } else {
        import_depths(sigs, extents, entry_validity)
    };
    let ca_imports: Vec<(usize, usize, usize)> = raw
        .into_iter()
        .map(|(d, t)| {
            let dd = dom.dat(d);
            (dd.set.idx(), dd.elem_bytes(), t)
        })
        .collect();

    let cdepth = if relaxed {
        vec![1usize; sigs.len()]
    } else {
        core_depths(sigs)
    };

    // OP2 baseline: simulate the conservative dirty bits loop by loop.
    let mut valid: Vec<(op2_core::DatId, usize)> = Vec::new();
    let valid_of = |valid: &[(op2_core::DatId, usize)], d| {
        valid
            .iter()
            .find(|(x, _)| *x == d)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| entry_validity(d))
    };
    let mut loops = Vec::with_capacity(sigs.len());
    for ((sig, &ext), &g) in sigs.iter().zip(extents).zip(g_per_loop) {
        let op2_extent = usize::from(sig.args.iter().any(|a| a.is_indirect() && a.mode().modifies()));
        let mut op2_exch = Vec::new();
        for d in sig.dats() {
            let Some((mode, indirect)) = sig.access_of(d) else {
                continue;
            };
            let req = read_requirement(mode, indirect, op2_extent);
            if req > valid_of(&valid, d) {
                let dd = dom.dat(d);
                op2_exch.push((dd.set.idx(), dd.elem_bytes()));
                match valid.iter_mut().find(|(x, _)| *x == d) {
                    Some(e) => e.1 = req,
                    None => valid.push((d, req)),
                }
            }
            if let Some(v) = produced_validity(mode, indirect, op2_extent) {
                // OP2's single dirty bit: direct writes also dirty.
                let v = if indirect { v } else { 0 };
                match valid.iter_mut().find(|(x, _)| *x == d) {
                    Some(e) => e.1 = v,
                    None => valid.push((d, v)),
                }
            }
        }
        loops.push(LoopShape {
            name: sig.name.clone(),
            set: sig.set.idx(),
            g,
            op2_extent,
            op2_exch,
            extent: ext,
            core_depth: cdepth[loops.len()],
        });
    }
    ChainShape {
        name: name.to_string(),
        loops,
        ca_imports,
    }
}

/// The Table 2 / Table 5 numbers for one configuration.
#[derive(Debug, Clone)]
pub struct ChainComponents {
    /// Ready-to-evaluate Eq 1 inputs, one per loop.
    pub op2_loops: Vec<LoopInput>,
    /// Ready-to-evaluate Eq 3 input.
    pub ca: CaChainInput,
    /// `Σ(2·d·p·m¹)` in bytes — the paper's "OP2 comms" column.
    pub op2_comm_bytes: f64,
    /// `Σ(Sᶜ)` over loops (max over ranks).
    pub op2_core: usize,
    /// `Σ(S¹)` over loops (max over ranks).
    pub op2_halo: usize,
    /// `p·mʳ` in bytes — the paper's "CA comms" column.
    pub ca_comm_bytes: f64,
    /// CA `Σ(Sᶜ)` (shrinking cores; max over ranks).
    pub ca_core: usize,
    /// CA `Σ(Sʰ)` (max over ranks).
    pub ca_halo: usize,
}

impl ChainComponents {
    /// Communication reduction percentage (Table 5).
    pub fn comm_reduction_pct(&self) -> f64 {
        if self.op2_comm_bytes <= 0.0 {
            0.0
        } else {
            (self.op2_comm_bytes - self.ca_comm_bytes) / self.op2_comm_bytes * 100.0
        }
    }

    /// Computation increase percentage (Table 5): growth of the total
    /// iteration count due to redundant halo execution.
    pub fn comp_increase_pct(&self) -> f64 {
        let op2 = (self.op2_core + self.op2_halo) as f64;
        let ca = (self.ca_core + self.ca_halo) as f64;
        if op2 <= 0.0 {
            0.0
        } else {
            (ca - op2) / op2 * 100.0
        }
    }

    /// These components with every loop's `g` replaced by the effective
    /// `threads`-way cost ([`crate::profit::threaded_g`]), each loop
    /// amortising `n_colors` per-color barriers over its own iteration
    /// count. Communication terms are untouched — threading shrinks only
    /// the compute side of Eqs 1–3.
    pub fn with_threads(
        &self,
        threads: usize,
        n_colors: usize,
        color_sync_s: f64,
    ) -> ChainComponents {
        let mut out = self.clone();
        for l in &mut out.op2_loops {
            let iters = l.s_core + l.s_halo;
            l.g = crate::profit::threaded_g(l.g, threads, n_colors, color_sync_s, iters);
        }
        for (g, core, halo) in &mut out.ca.loops {
            *g = crate::profit::threaded_g(*g, threads, n_colors, color_sync_s, *core + *halo);
        }
        out
    }

    /// These components with Eq 3's pack term `c` replaced by a
    /// *measured* per-byte pack cost (seconds/byte) — the runtime feeds
    /// the traced pack wall-time of real exchanges here, so the CA
    /// decision prices the engine actually running (pooled buffers,
    /// threaded pack) instead of the machine's baked-in `pack_rate`.
    pub fn with_pack_cost(&self, s_per_byte: f64) -> ChainComponents {
        let mut out = self.clone();
        out.ca.pack_s_per_byte = Some(s_per_byte);
        out
    }
}

/// Combine a chain shape with measured halo statistics, taking the
/// maximum over ranks per component (critical path, as the paper does).
pub fn chain_components(stats: &HaloStats, shape: &ChainShape) -> ChainComponents {
    let p = stats.max_neighbors();

    // Per-loop OP2 inputs.
    let mut op2_loops = Vec::with_capacity(shape.loops.len());
    let mut op2_comm_bytes = 0.0;
    let mut op2_core_total = 0usize;
    let mut op2_halo_total = 0usize;
    for l in &shape.loops {
        // Max over ranks of this loop's core / halo sizes.
        let mut s_core = 0usize;
        let mut s_halo = 0usize;
        for r in &stats.per_rank {
            let core = r.core_prefix[l.set][1];
            let halo = r.owned[l.set] - core
                + if l.op2_extent >= 1 {
                    r.import_levels[l.set][0]
                } else {
                    0
                };
            s_core = s_core.max(core);
            s_halo = s_halo.max(halo);
        }
        // Per-dat level-1 message bytes. Eq 1 charges 2·d·p messages of
        // size m¹ each — one for the eeh part and one for the enh part
        // of each dat's halo. Our ring-1 segments hold both parts
        // combined, so a single *message* carries about half of a dat's
        // ring-1 bytes; the byte-volume column gets the full total.
        // Taking m¹ as the combined size would double-count OP2's bytes
        // and let CA "win" on volume even for chains with zero
        // communication reduction (vflux), contradicting the paper's
        // Table 5.
        let mut loop_bytes = 0usize;
        for r in &stats.per_rank {
            for &nbr in r.neighbors.keys() {
                let mut total = 0usize;
                for &(set, bytes) in &l.op2_exch {
                    total += r.recv_elems(nbr, set, 1) * bytes;
                }
                loop_bytes = loop_bytes.max(total);
            }
        }
        let d = l.op2_exch.len();
        // Mean per-message size: the 2·d messages together carry
        // `loop_bytes` (each dat's ring-1 halo split into its eeh and
        // enh parts), so 2·d·p·(L + m¹/B) totals exactly 2·d·p·L of
        // latency and p·loop_bytes/B of volume — the same volume the
        // paper's Table 5 reports (its vflux row has *equal* OP2 and CA
        // byte columns; a max-size m¹ would overcount mixed-size dats).
        let m1 = if d == 0 { 0 } else { loop_bytes.div_ceil(2 * d) };
        op2_comm_bytes += p as f64 * loop_bytes as f64;
        op2_core_total += s_core;
        op2_halo_total += s_halo;
        op2_loops.push(LoopInput {
            g: l.g,
            s_core,
            s_halo,
            d,
            p,
            m1_bytes: m1,
        });
    }

    // CA: shrinking cores, deeper halos, one grouped message.
    let mut ca_loops = Vec::with_capacity(shape.loops.len());
    let mut ca_core_total = 0usize;
    let mut ca_halo_total = 0usize;
    for l in shape.loops.iter() {
        let mut s_core = 0usize;
        let mut s_halo = 0usize;
        for r in &stats.per_rank {
            let k = l.core_depth.min(r.core_prefix[l.set].len() - 1);
            let core = r.core_prefix[l.set][k];
            let rings: usize = r.import_levels[l.set].iter().take(l.extent).sum();
            let halo = r.owned[l.set] - core + rings;
            s_core = s_core.max(core);
            s_halo = s_halo.max(halo);
        }
        ca_core_total += s_core;
        ca_halo_total += s_halo;
        ca_loops.push((l.g, s_core, s_halo));
    }
    let mut m_r = 0usize;
    for r in &stats.per_rank {
        for &nbr in r.neighbors.keys() {
            let total: usize = shape
                .ca_imports
                .iter()
                .map(|&(set, bytes, depth)| r.recv_elems(nbr, set, depth) * bytes)
                .sum();
            m_r = m_r.max(total);
        }
    }

    ChainComponents {
        op2_loops,
        ca: CaChainInput {
            loops: ca_loops,
            p,
            m_r_bytes: m_r,
            pack_s_per_byte: None,
        },
        op2_comm_bytes,
        op2_core: op2_core_total,
        op2_halo: op2_halo_total,
        ca_comm_bytes: p as f64 * m_r as f64,
        ca_core: ca_core_total,
        ca_halo: ca_halo_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_core::{AccessMode, Arg};
    use op2_mesh::{Hex3D, Hex3DParams};
    use op2_partition::{collect_stats, derive_ownership, rcb_partition};

    #[test]
    fn shape_and_components_roundtrip() {
        let mut mesh = Hex3D::generate(Hex3DParams::cube(8));
        let res = mesh.dom.decl_dat_zeros("res", mesh.nodes, 2);
        let pres = mesh.dom.decl_dat_zeros("pres", mesh.nodes, 2);
        let flux = mesh.dom.decl_dat_zeros("flux", mesh.nodes, 2);
        let sigs = vec![
            LoopSig {
                name: "update".into(),
                set: mesh.edges,
                args: vec![
                    Arg::dat_indirect(res, mesh.e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(res, mesh.e2n, 1, AccessMode::Inc),
                    Arg::dat_indirect(pres, mesh.e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(pres, mesh.e2n, 1, AccessMode::Read),
                ],
            },
            LoopSig {
                name: "edge_flux".into(),
                set: mesh.edges,
                args: vec![
                    Arg::dat_indirect(res, mesh.e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(res, mesh.e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(flux, mesh.e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(flux, mesh.e2n, 1, AccessMode::Inc),
                ],
            },
        ];
        let extents = op2_core::chain::calc_halo_extents(&sigs);
        assert_eq!(extents, vec![2, 1]);

        // pres dirty at entry (modified each outer iteration), res dirty.
        let shape = shape_from_sigs(
            &mesh.dom,
            "sync",
            &sigs,
            &extents,
            &[5e-8, 5e-8],
            &|_| 0,
        );
        // OP2 baseline: update exchanges pres (read, dirty); edge_flux
        // exchanges res (dirtied by update).
        assert_eq!(shape.loops[0].op2_exch.len(), 1);
        assert_eq!(shape.loops[1].op2_exch.len(), 1);
        // CA grouped import: pres to depth 2 (read at extent 2), res to
        // depth 1 (INC priors at extent 2 → 1).
        assert_eq!(shape.ca_imports.len(), 2);

        let base = rcb_partition(mesh.node_coords(), 3, 4);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 4);
        let stats = collect_stats(&mesh.dom, &own, 2, 2);
        let comp = chain_components(&stats, &shape);

        // CA executes strictly more iterations (redundant halos) and
        // communicates strictly less than 2·d·p per-loop messages here.
        assert!(comp.ca_core + comp.ca_halo >= comp.op2_core + comp.op2_halo);
        assert!(comp.ca_comm_bytes > 0.0);
        assert!(comp.op2_comm_bytes > 0.0);
        assert!(comp.comp_increase_pct() >= 0.0);
        // Eq inputs are populated consistently.
        assert_eq!(comp.op2_loops.len(), 2);
        assert_eq!(comp.ca.loops.len(), 2);
        assert!(comp.ca.m_r_bytes > 0);
    }
}
