//! # op2-gpu
//!
//! The simulated GPU-cluster back-end (§3.3 of the paper).
//!
//! The paper extends the CA back-end to clusters of GPUs: one MPI rank
//! per GPU, halos staged to the host over PCIe (their pipeline does
//! *not* use GPUDirect), a single grouped message per neighbour under
//! CA, and kernels launched per execution segment. We cannot ship CUDA
//! (repro band: "CUDA bindings immature"), so per DESIGN.md the device
//! is simulated:
//!
//! * [`device`] — a device-memory model: allocations are tracked
//!   against a configurable capacity (a V100 has 16 GB; oversubscribing
//!   is an error exactly as `cudaMalloc` would fail), and every
//!   host↔device transfer is counted with its byte volume;
//! * [`exec`] — GPU variants of Alg 1 / Alg 2: numerically identical to
//!   the CPU executors (the "device arrays" are the rank's local
//!   buffers, so every code path of pack → D2H → MPI → H2D → unpack and
//!   the per-segment kernel launches is exercised and counted);
//! * [`time`] — converts a GPU execution trace plus a
//!   [`op2_model::Machine`] GPU preset into modelled seconds, following
//!   the §3.3 recipe: `L → Λ` (PCIe event latency), per-byte staging
//!   cost, kernel-launch overhead.

pub mod device;
pub mod exec;
pub mod time;

pub use device::{GpuDevice, TransferStats};
pub use exec::{gpu_place, run_chain_gpu, run_loop_gpu};
pub use time::{chain_time, chain_time_gpu, loop_time, loop_time_gpu};
