//! Simulated device memory and transfer accounting.

use std::fmt;

/// Why a device operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Allocation would exceed the device capacity.
    OutOfMemory {
        /// Requested bytes.
        requested: usize,
        /// Bytes still free.
        free: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, free } => {
                write!(f, "device out of memory: requested {requested} B, free {free} B")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Host↔device traffic counters — the inputs of the GPU time model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Host→device copy events.
    pub h2d_events: usize,
    /// Host→device bytes.
    pub h2d_bytes: usize,
    /// Device→host copy events.
    pub d2h_events: usize,
    /// Device→host bytes.
    pub d2h_bytes: usize,
    /// Kernel launches.
    pub launches: usize,
}

impl TransferStats {
    /// Accumulate another record.
    pub fn add(&mut self, o: &TransferStats) {
        self.h2d_events += o.h2d_events;
        self.h2d_bytes += o.h2d_bytes;
        self.d2h_events += o.d2h_events;
        self.d2h_bytes += o.d2h_bytes;
        self.launches += o.launches;
    }
}

/// One rank's GPU: capacity-checked allocations plus transfer counters.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    /// Total device memory in bytes (16 GB on the paper's V100s).
    pub capacity: usize,
    /// Bytes currently allocated.
    pub allocated: usize,
    /// Traffic counters.
    pub xfer: TransferStats,
}

impl GpuDevice {
    /// A device with the given capacity.
    pub fn new(capacity: usize) -> Self {
        GpuDevice {
            capacity,
            allocated: 0,
            xfer: TransferStats::default(),
        }
    }

    /// The paper's V100-SXM2-16GB.
    pub fn v100() -> Self {
        Self::new(16 * (1 << 30))
    }

    /// Account an allocation of `bytes` (a dat buffer moved on-device).
    pub fn alloc(&mut self, bytes: usize) -> Result<(), DeviceError> {
        let free = self.capacity - self.allocated;
        if bytes > free {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                free,
            });
        }
        self.allocated += bytes;
        Ok(())
    }

    /// Release `bytes`.
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.allocated);
        self.allocated -= bytes;
    }

    /// Record a host→device copy.
    pub fn h2d(&mut self, bytes: usize) {
        if bytes > 0 {
            self.xfer.h2d_events += 1;
            self.xfer.h2d_bytes += bytes;
        }
    }

    /// Record a device→host copy.
    pub fn d2h(&mut self, bytes: usize) {
        if bytes > 0 {
            self.xfer.d2h_events += 1;
            self.xfer.d2h_bytes += bytes;
        }
    }

    /// Record a kernel launch (empty segments launch nothing).
    pub fn launch(&mut self, iters: usize) {
        if iters > 0 {
            self.xfer.launches += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut d = GpuDevice::new(100);
        d.alloc(60).unwrap();
        d.alloc(40).unwrap();
        let err = d.alloc(1).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                requested: 1,
                free: 0
            }
        );
        d.free(50);
        d.alloc(30).unwrap();
        assert_eq!(d.allocated, 80);
    }

    #[test]
    fn transfers_counted() {
        let mut d = GpuDevice::v100();
        d.h2d(1024);
        d.h2d(0); // zero-byte copies are elided, like a real pipeline
        d.d2h(512);
        d.launch(100);
        d.launch(0);
        assert_eq!(d.xfer.h2d_events, 1);
        assert_eq!(d.xfer.h2d_bytes, 1024);
        assert_eq!(d.xfer.d2h_events, 1);
        assert_eq!(d.xfer.launches, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = TransferStats {
            h2d_events: 1,
            h2d_bytes: 10,
            d2h_events: 2,
            d2h_bytes: 20,
            launches: 3,
        };
        a.add(&a.clone());
        assert_eq!(a.h2d_events, 2);
        assert_eq!(a.d2h_bytes, 40);
        assert_eq!(a.launches, 6);
    }
}
