//! GPU variants of the two executors.
//!
//! The rank's local dat buffers play the role of device global memory
//! (numerics are identical to the CPU path — the paper's CUDA kernels
//! compute the same values), while a [`GpuDevice`] records what a real
//! pipeline would move and launch:
//!
//! * [`gpu_place`] accounts the initial allocation and upload of every
//!   dat buffer, failing when the working set exceeds device memory —
//!   the same hard wall the paper's 16 GB V100s impose;
//! * on loop/chain entry, packed halo bytes are staged **device→host**
//!   before the MPI sends (the paper's pipeline copies over PCIe; no
//!   GPUDirect);
//! * received bytes are staged **host→device** after the waits;
//! * every non-empty execution segment (core / halo, per loop) is a
//!   kernel launch.
//!
//! Under CA the per-loop staging events collapse into one pair per
//! chain — the mechanism behind the paper's observation that GPU
//! clusters profit from chaining even when no bytes are saved (vflux,
//! iflux).

use crate::device::GpuDevice;
use op2_core::seq::LoopResult;
use op2_core::{ChainSpec, DatId, LoopSpec};
use op2_runtime::exec::{run_chain_hooked, run_loop_hooked, ExecHooks};
use op2_runtime::{RankEnv, RuntimeError};

/// Place a rank's working set on a device: accounts one allocation plus
/// the initial host→device upload for every dat buffer.
///
/// # Panics
/// Panics when the working set exceeds device capacity.
pub fn gpu_place(env: &RankEnv<'_>, dev: &mut GpuDevice) {
    let mut upload = 0usize;
    for (didx, buf) in env.dats.iter().enumerate() {
        let bytes = buf.len() * std::mem::size_of::<f64>();
        dev.alloc(bytes).unwrap_or_else(|e| {
            panic!(
                "rank {}: dat `{}` does not fit on device: {e}",
                env.rank,
                env.dom.dat(DatId(didx as u32)).name
            )
        });
        upload += bytes;
    }
    dev.h2d(upload);
}

struct DeviceHooks<'d> {
    dev: &'d mut GpuDevice,
}

impl ExecHooks for DeviceHooks<'_> {
    fn stage_out(&mut self, bytes: usize) {
        self.dev.d2h(bytes);
    }
    fn stage_in(&mut self, bytes: usize) {
        self.dev.h2d(bytes);
    }
    fn launch(&mut self, iters: usize) {
        self.dev.launch(iters);
    }
}

/// Algorithm 1 on the simulated GPU cluster.
pub fn run_loop_gpu(
    env: &mut RankEnv<'_>,
    dev: &mut GpuDevice,
    spec: &LoopSpec,
) -> Result<LoopResult, RuntimeError> {
    let mut hooks = DeviceHooks { dev };
    run_loop_hooked(env, spec, &mut hooks)
}

/// Algorithm 2 (CA) on the simulated GPU cluster.
///
/// Runs through the planned chain path, so repeat invocations reuse the
/// cached [`op2_runtime::ChainPlan`] — in particular the per-neighbour
/// pack index lists — instead of re-inspecting; only the staged byte
/// counts are re-accounted against the device.
pub fn run_chain_gpu(
    env: &mut RankEnv<'_>,
    dev: &mut GpuDevice,
    chain: &ChainSpec,
) -> Result<(), RuntimeError> {
    let mut hooks = DeviceHooks { dev };
    run_chain_hooked(env, chain, &mut hooks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TransferStats;
    use op2_core::{AccessMode, Arg, Args, ChainSpec, LoopSpec};
    use op2_mesh::Quad2D;
    use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
    use op2_runtime::run_distributed;

    fn count_kernel(args: &Args<'_>) {
        args.inc(0, 0, 1.0);
        args.inc(1, 0, 1.0);
    }

    fn consume_kernel(args: &Args<'_>) {
        args.inc(2, 0, args.get(0, 0));
        args.inc(3, 0, args.get(1, 0));
    }

    struct Setup {
        mesh: Quad2D,
        layouts: Vec<RankLayout>,
        produce: LoopSpec,
        consume: LoopSpec,
    }

    fn setup(nparts: usize) -> Setup {
        let mut mesh = Quad2D::generate(8, 8);
        let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
        let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );
        let consume = LoopSpec::new(
            "consume",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, nparts);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, nparts);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        Setup {
            mesh,
            layouts,
            produce,
            consume,
        }
    }

    /// GPU execution is numerically identical to the sequential
    /// reference, and CA collapses staging events: exactly one D2H and
    /// one H2D per chain (plus the initial upload) instead of per loop.
    /// The standalone `dirty` loop first invalidates `a`'s halos so the
    /// chain genuinely has to import (freshly gathered dats are valid
    /// and would otherwise need no exchange at all).
    #[test]
    fn gpu_chain_matches_and_stages_once() {
        let Setup {
            mut mesh,
            layouts,
            produce,
            consume,
        } = setup(4);
        let a = mesh.dom.dat_by_name("a").unwrap();
        let b = mesh.dom.dat_by_name("b").unwrap();
        // Chain: read `a` (dirtied by the standalone produce) while
        // incrementing `b`, then read `b` back into `a`.
        fn read_a_inc_b(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) + 1.0);
            args.inc(3, 0, args.get(1, 0) + 1.0);
        }
        fn read_b_inc_a(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        let l1 = LoopSpec::new(
            "read_a_inc_b",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
            ],
            read_a_inc_b,
        );
        let l2 = LoopSpec::new(
            "read_b_inc_a",
            mesh.edges,
            vec![
                Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
            ],
            read_b_inc_a,
        );
        let chain = ChainSpec::new("pc", vec![l1.clone(), l2.clone()], None, &[]).unwrap();
        assert_eq!(chain.halo_ext, vec![2, 1]);

        let mut seq_dom = mesh.dom.clone();
        op2_core::seq::run_loop(&mut seq_dom, &produce);
        op2_core::seq::run_loop(&mut seq_dom, &l1);
        op2_core::seq::run_loop(&mut seq_dom, &l2);

        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut dev = GpuDevice::v100();
            gpu_place(env, &mut dev);
            run_loop_gpu(env, &mut dev, &produce)?; // dirties `a`
            let after_init = dev.xfer;
            run_chain_gpu(env, &mut dev, &chain)?;
            Ok((after_init, dev.xfer))
        });
        let _ = consume;
        assert_eq!(mesh.dom.dat(a).data, seq_dom.dat(a).data);
        assert_eq!(mesh.dom.dat(b).data, seq_dom.dat(b).data);
        for (r, (before, after)) in out.unwrap_results().iter().enumerate() {
            if layouts[r].neighbors.is_empty() {
                continue;
            }
            // The chain added exactly one staged-out send...
            assert_eq!(after.d2h_events - before.d2h_events, 1, "rank {r}");
            // ...one staged-in receive...
            assert_eq!(after.h2d_events - before.h2d_events, 1, "rank {r}");
            // ...and at most 2 segments per loop.
            let launches = after.launches - before.launches;
            assert!((2..=4).contains(&launches), "rank {r}: {launches}");
        }
    }

    /// The same program as standard per-loop OP2 stages per loop —
    /// strictly more staging events than the CA chain.
    #[test]
    fn per_loop_execution_stages_more() {
        let Setup {
            mut mesh,
            layouts,
            produce,
            consume,
        } = setup(4);
        let chain =
            ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[]).unwrap();

        let op2_events = {
            let mut dom = mesh.dom.clone();
            let out = run_distributed(&mut dom, &layouts, |env| {
                let mut dev = GpuDevice::v100();
                gpu_place(env, &mut dev);
                run_loop_gpu(env, &mut dev, &produce)?;
                run_loop_gpu(env, &mut dev, &consume)?;
                Ok(dev.xfer)
            });
            out.unwrap_results()
        };
        let ca_events = {
            let out = run_distributed(&mut mesh.dom, &layouts, |env| {
                let mut dev = GpuDevice::v100();
                gpu_place(env, &mut dev);
                run_chain_gpu(env, &mut dev, &chain)?;
                Ok(dev.xfer)
            });
            out.unwrap_results()
        };
        for (r, (op2, ca)) in op2_events.iter().zip(&ca_events).enumerate() {
            if layouts[r].neighbors.is_empty() {
                continue;
            }
            assert!(
                op2.d2h_events + op2.h2d_events > ca.d2h_events + ca.h2d_events,
                "rank {r}: OP2 {op2:?} vs CA {ca:?}"
            );
        }
    }

    /// Device capacity gates the per-rank working set. The panic is
    /// contained by the harness and reported as that rank's failure
    /// instead of tearing down the whole run.
    #[test]
    fn oversized_working_set_is_contained() {
        let Setup {
            mut mesh, layouts, ..
        } = setup(1);
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut dev = GpuDevice::new(64); // absurdly small device
            gpu_place(env, &mut dev);
            Ok(())
        });
        assert!(!out.all_ok());
        match &out.results[0] {
            Err(op2_runtime::RankFailure::Panicked { rank: 0, message }) => {
                assert!(message.contains("does not fit on device"), "{message}");
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
    }

    /// Repeated GPU chain invocations reuse the cached plan (and its
    /// pack index lists): the trace shows cache hits, not re-inspection.
    #[test]
    fn gpu_chains_hit_the_plan_cache() {
        let Setup {
            mut mesh,
            layouts,
            produce,
            consume,
        } = setup(4);
        let chain =
            ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[]).unwrap();
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut dev = GpuDevice::v100();
            gpu_place(env, &mut dev);
            for _ in 0..4 {
                run_chain_gpu(env, &mut dev, &chain)?;
            }
            Ok(())
        });
        assert!(out.all_ok());
        for t in &out.traces {
            assert!(
                t.plan.hits >= 1,
                "rank {}: expected plan reuse, {:?}",
                t.rank,
                t.plan
            );
            assert!(t.plan.misses <= 2, "rank {}: {:?}", t.rank, t.plan);
        }
    }

    /// Transfer stats accumulate across loops.
    #[test]
    fn stats_accumulate_over_program() {
        let Setup {
            mut mesh,
            layouts,
            produce,
            consume,
        } = setup(2);
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut dev = GpuDevice::v100();
            gpu_place(env, &mut dev);
            let mut total = TransferStats::default();
            for _ in 0..3 {
                run_loop_gpu(env, &mut dev, &produce)?;
                run_loop_gpu(env, &mut dev, &consume)?;
            }
            total.add(&dev.xfer);
            Ok(total)
        });
        for (r, xfer) in out.unwrap_results().iter().enumerate() {
            // Initial upload + 3 iterations × exchanges for consume.
            assert!(xfer.h2d_events >= 1, "rank {r}");
            assert!(xfer.launches >= 6, "rank {r}");
        }
    }
}
