//! Modelled cluster time from measured execution traces.
//!
//! The executors measure *what happened* (iterations, messages, bytes);
//! combining a trace record with a [`Machine`] preset yields modelled
//! seconds — Eq 1/3 for CPU presets, their §3.3 extensions for GPU
//! presets (the quantity Figures 11 and 13 plot). Using measured traces
//! (rather than [`op2_model::components`] statistics) means examples and
//! ablation benches can model exactly the run they just executed.
//!
//! This module lives in `op2-gpu` because it is the one crate that sees
//! both the runtime's trace types and the model; [`loop_time`] /
//! [`chain_time`] accept either machine kind.

use op2_model::eqs::{t_ca_chain, t_op2_loop, CaChainInput, LoopInput};
use op2_model::machine::{Machine, MachineKind};
use op2_runtime::trace::{ChainRec, LoopRec};

/// Modelled time of one standard (Alg 1) loop execution on either
/// machine kind. `g` is the per-iteration kernel cost (use
/// `mach.g_default` unless the loop was calibrated separately).
pub fn loop_time(mach: &Machine, rec: &LoopRec, g: f64) -> f64 {
    t_op2_loop(
        mach,
        &LoopInput {
            g,
            s_core: rec.core_iters,
            s_halo: rec.halo_iters,
            d: rec.d_exchanged,
            p: rec.exch.n_neighbors,
            m1_bytes: rec.exch.max_msg_bytes,
        },
    )
}

/// Modelled time of one CA (Alg 2) chain execution on either machine
/// kind. `gs` supplies per-loop kernel costs (length must match).
pub fn chain_time(mach: &Machine, rec: &ChainRec, gs: &[f64]) -> f64 {
    assert_eq!(gs.len(), rec.per_loop.len());
    t_ca_chain(
        mach,
        &CaChainInput {
            loops: rec
                .per_loop
                .iter()
                .zip(gs)
                .map(|(&(c, h), &g)| (g, c, h))
                .collect(),
            p: rec.exch.n_neighbors,
            m_r_bytes: rec.exch.max_msg_bytes,
            pack_s_per_byte: None,
        },
    )
}

/// [`loop_time`] restricted to GPU presets (asserted in debug builds).
pub fn loop_time_gpu(mach: &Machine, rec: &LoopRec, g: f64) -> f64 {
    debug_assert_eq!(mach.kind, MachineKind::Gpu);
    loop_time(mach, rec, g)
}

/// [`chain_time`] restricted to GPU presets (asserted in debug builds).
pub fn chain_time_gpu(mach: &Machine, rec: &ChainRec, gs: &[f64]) -> f64 {
    debug_assert_eq!(mach.kind, MachineKind::Gpu);
    chain_time(mach, rec, gs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_runtime::trace::ExchangeRec;

    #[test]
    fn chain_time_beats_per_loop_time_when_latency_bound() {
        let mach = Machine::cirrus();
        let g = mach.g_default;
        // Eight identical small loops, each exchanging 2 dats.
        let loop_rec = LoopRec {
            name: "l".into(),
            core_iters: 2000,
            halo_iters: 500,
            d_exchanged: 2,
            exch: ExchangeRec {
                n_msgs: 12,
                bytes: 48_000,
                max_msg_bytes: 4000,
                n_neighbors: 6,
                packed_elems: 6000,
                ..Default::default()
            },
            wall_ns: 0,
        };
        let t_op2: f64 = (0..8).map(|_| loop_time_gpu(&mach, &loop_rec, g)).sum();
        let chain_rec = ChainRec {
            name: "c".into(),
            per_loop: (0..8).map(|_| (1800, 1200)).collect(),
            d_exchanged: 2,
            depth: 2,
            exch: ExchangeRec {
                n_msgs: 6,
                bytes: 96_000,
                max_msg_bytes: 16_000,
                n_neighbors: 6,
                packed_elems: 12_000,
                ..Default::default()
            },
            stale_reads: 0,
            wall_ns: 0,
        };
        let t_ca = chain_time_gpu(&mach, &chain_rec, &[g; 8]);
        assert!(t_ca < t_op2, "{t_ca} vs {t_op2}");
    }

    /// The kind-generic helpers accept CPU presets too — same record,
    /// different equations: the CPU loop pays no staging or launches.
    #[test]
    fn cpu_kind_accepted_and_cheaper_on_overheads() {
        let cpu = Machine::archer2();
        let rec = LoopRec {
            name: "l".into(),
            core_iters: 100,
            halo_iters: 10,
            d_exchanged: 0, // no exchange: pure compute
            exch: ExchangeRec::default(),
            wall_ns: 0,
        };
        let t_cpu = loop_time(&cpu, &rec, cpu.g_default);
        // Pure compute: exactly g * (core + halo).
        let expect = cpu.g_default * 110.0;
        assert!((t_cpu - expect).abs() < 1e-15);
        // GPU adds two kernel launches even without communication.
        let gpu = Machine::cirrus();
        let t_gpu = loop_time(&gpu, &rec, gpu.g_default);
        assert!(t_gpu >= 2.0 * gpu.kernel_launch);
    }

    #[test]
    #[should_panic]
    fn g_count_mismatch_panics() {
        let mach = Machine::cirrus();
        let rec = ChainRec {
            per_loop: vec![(1, 1), (1, 1)],
            ..Default::default()
        };
        chain_time_gpu(&mach, &rec, &[1e-9]);
    }
}
