//! MG-CFD user kernels.
//!
//! Node-centred compressible Euler: five conserved variables per node
//! (density ρ, momentum ρu⃗, energy ρE), fluxes accumulated over dual
//! edges. The arithmetic follows the shape (operation mix, operand
//! counts) of MG-CFD's kernels; constants are chosen so a few dozen
//! time-marching iterations stay bounded on the synthetic meshes. The
//! reproduction's claims are about communication structure, not
//! aerodynamic accuracy — but the kernels are genuine indirect
//! gather/scatter CFD arithmetic, not placeholders.
//!
//! Argument layouts are documented per kernel; executors resolve them
//! from the access descriptors in [`crate::app`].

use op2_core::Args;

/// Number of conserved flow variables.
pub const NVAR: usize = 5;
/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;
/// Pseudo time-step scale.
pub const CFL: f64 = 0.05;
/// Freestream state (ρ, ρu, ρv, ρw, ρE).
pub const FREESTREAM: [f64; NVAR] = [1.0, 0.3, 0.0, 0.0, 2.5];

/// Pressure from conserved variables.
#[inline]
pub fn pressure(q: &[f64; NVAR]) -> f64 {
    let rho = q[0].max(1e-12);
    let ke = (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / (2.0 * rho);
    (GAMMA - 1.0) * (q[4] - ke)
}

/// `init_state` — nodes, direct: `q` WRITE. Sets freestream everywhere
/// with a small smooth perturbation from the node coordinates (`x`
/// READ) so fluxes are non-trivial.
pub fn init_state(args: &Args<'_>) {
    let xx = args.get(1, 0);
    let y = args.get(1, 1);
    let z = args.get(1, 2);
    let bump = 0.01 * ((0.37 * xx).sin() + (0.23 * y).cos() + (0.11 * z).sin());
    for (v, &free) in FREESTREAM.iter().enumerate() {
        args.set(0, v, free * (1.0 + bump));
    }
}

/// `compute_step_factor` — nodes, direct: `q` READ, `adt` WRITE. The
/// local pseudo time step from the acoustic speed.
pub fn compute_step_factor(args: &Args<'_>) {
    let mut q = [0.0; NVAR];
    args.load(0, &mut q);
    let rho = q[0].max(1e-12);
    let p = pressure(&q).max(1e-12);
    let c = (GAMMA * p / rho).sqrt();
    let speed = ((q[1] * q[1] + q[2] * q[2] + q[3] * q[3]).sqrt() / rho) + c;
    args.set(1, 0, CFL / speed.max(1e-12));
}

/// `compute_flux_edge` — edges, the hot loop: `q` READ at both nodes
/// (args 0, 1), `flux` INC at both nodes (args 2, 3). An approximate
/// Riemann-style symmetric flux difference.
pub fn compute_flux_edge(args: &Args<'_>) {
    let mut qa = [0.0; NVAR];
    let mut qb = [0.0; NVAR];
    args.load(0, &mut qa);
    args.load(1, &mut qb);
    let pa = pressure(&qa);
    let pb = pressure(&qb);
    // Characteristic smoothing factor from both states.
    let rho_a = qa[0].max(1e-12);
    let rho_b = qb[0].max(1e-12);
    let ca = (GAMMA * pa.max(1e-12) / rho_a).sqrt();
    let cb = (GAMMA * pb.max(1e-12) / rho_b).sqrt();
    let lambda = 0.5 * (ca + cb)
        + 0.5 * ((qa[1] / rho_a - qb[1] / rho_b).abs()
            + (qa[2] / rho_a - qb[2] / rho_b).abs()
            + (qa[3] / rho_a - qb[3] / rho_b).abs());
    for v in 0..NVAR {
        // Central flux with scalar dissipation: conservative (what
        // leaves a is gained by b).
        let mut f = 0.5 * (qa[v] + qb[v]) * 0.1 - lambda * (qb[v] - qa[v]);
        if (1..=3).contains(&v) {
            // Pressure contribution to the momentum components.
            f += 0.05 * (pa - pb);
        }
        args.inc(2, v, -f * 0.01);
        args.inc(3, v, f * 0.01);
    }
}

/// `boundary_flux` — boundary elements: `q` READ at the wall node
/// (arg 0, via `b2n`), `flux` INC at it (arg 1). A weak farfield
/// condition pulling the state back to freestream.
pub fn boundary_flux(args: &Args<'_>) {
    let mut q = [0.0; NVAR];
    args.load(0, &mut q);
    for v in 0..NVAR {
        args.inc(1, v, 0.01 * (FREESTREAM[v] - q[v]));
    }
}

/// `time_step` — nodes, direct: `q` RW, `adt` READ, `flux` RW
/// (consumed and cleared). Forward-Euler pseudo-time update.
pub fn time_step(args: &Args<'_>) {
    let dt = args.get(1, 0);
    for v in 0..NVAR {
        let q = args.get(0, v);
        let f = args.get(2, v);
        args.set(0, v, q + dt * f);
        args.set(2, v, 0.0);
    }
}

/// `restrict` — fine nodes: `flux_fine` READ direct (arg 0),
/// `flux_coarse` INC via the multigrid map (arg 1). Residual
/// restriction.
pub fn restrict(args: &Args<'_>) {
    for v in 0..NVAR {
        args.inc(1, v, 0.125 * args.get(0, v));
    }
}

/// `prolong` — fine nodes: `q_fine` RW direct (arg 0), `q_coarse` READ
/// via the multigrid map (arg 1), blending the coarse correction in.
pub fn prolong(args: &Args<'_>) {
    for v in 0..NVAR {
        let qf = args.get(0, v);
        let qc = args.get(1, v);
        args.set(0, v, qf + 0.05 * (qc - qf));
    }
}

/// `rms_residual` — nodes, direct: `flux` READ, gbl INC (sum of
/// squares). The convergence check — a global reduction, i.e. a chain
/// terminator.
pub fn rms_residual(args: &Args<'_>) {
    let mut s = 0.0;
    for v in 0..NVAR {
        let f = args.get(0, v);
        s += f * f;
    }
    args.inc(1, 0, s);
}

/// `calc_dt_min` — nodes, direct: `adt` READ, gbl MIN. The global
/// time-step bound (OP2's `OP_MIN` reduction — a synchronisation point).
pub fn calc_dt_min(args: &Args<'_>) {
    args.reduce_min(1, 0, args.get(0, 0));
}

// --- The synthetic loop-chain pair of §4.1.1. ---

/// `update` — edges: `dres` INC at both nodes (args 0, 1), `dpres` READ
/// at both nodes (args 2, 3). Mirrors Figure 2's first loop: dirties
/// `dres` each repetition.
pub fn update(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) - args.get(2, 1));
    args.inc(0, 1, args.get(3, 0) - args.get(3, 1));
    args.inc(1, 0, args.get(3, 1) - args.get(3, 0));
    args.inc(1, 1, args.get(2, 1) - args.get(2, 0));
}

/// `edge_flux` — edges: `dres` READ at both nodes (args 0, 1), `dflux`
/// INC at both nodes (args 2, 3). A structural replica of
/// `compute_flux_edge`'s access pattern (the most expensive loop in
/// MG-CFD), reading the dat the preceding `update` dirtied — the target
/// pattern for sparse tiling (§4.1.1).
pub fn edge_flux(args: &Args<'_>) {
    let r0 = args.get(0, 0);
    let r1 = args.get(0, 1);
    let s0 = args.get(1, 0);
    let s1 = args.get(1, 1);
    args.inc(2, 0, r0 * 0.4 - r1 * 0.1);
    args.inc(2, 1, s1 * 0.3 - r0 * 0.2);
    args.inc(3, 0, s1 * 0.3 - r1 * 0.2);
    args.inc(3, 1, r0 * 0.4 - s0 * 0.1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_core::kernel::ArgSlot;
    use op2_core::AccessMode;

    fn slots(bufs: &mut [(&mut [f64], AccessMode)]) -> Vec<ArgSlot> {
        bufs.iter_mut()
            .map(|(b, m)| ArgSlot {
                ptr: b.as_mut_ptr(),
                dim: b.len() as u32,
                mode: *m,
            })
            .collect()
    }

    #[test]
    fn pressure_of_freestream_positive() {
        let p = pressure(&FREESTREAM);
        assert!(p > 0.0, "freestream pressure {p}");
    }

    #[test]
    fn flux_edge_is_conservative_in_mass() {
        // The mass component (v=0) carries no pressure term: what one
        // node gains the other loses exactly.
        let mut qa = FREESTREAM;
        let mut qb = FREESTREAM;
        qb[0] = 1.1;
        let mut fa = [0.0; NVAR];
        let mut fb = [0.0; NVAR];
        {
            let mut bufs: [(&mut [f64], AccessMode); 4] = [
                (&mut qa, AccessMode::Read),
                (&mut qb, AccessMode::Read),
                (&mut fa, AccessMode::Inc),
                (&mut fb, AccessMode::Inc),
            ];
            let s = slots(&mut bufs);
            compute_flux_edge(&Args::new(&s));
        }
        assert!((fa[0] + fb[0]).abs() < 1e-14, "mass not conserved");
        assert!(fa[0] != 0.0, "flux must be non-trivial");
    }

    #[test]
    fn step_factor_positive_and_finite() {
        let mut q = FREESTREAM;
        let mut adt = [0.0];
        let mut bufs: [(&mut [f64], AccessMode); 2] = [
            (&mut q, AccessMode::Read),
            (&mut adt, AccessMode::Write),
        ];
        let s = slots(&mut bufs);
        compute_step_factor(&Args::new(&s));
        assert!(adt[0] > 0.0 && adt[0].is_finite());
    }

    #[test]
    fn time_step_consumes_flux() {
        let mut q = FREESTREAM;
        let mut adt = [0.5];
        let mut flux = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut bufs: [(&mut [f64], AccessMode); 3] = [
            (&mut q, AccessMode::Rw),
            (&mut adt, AccessMode::Read),
            (&mut flux, AccessMode::Rw),
        ];
        let s = slots(&mut bufs);
        time_step(&Args::new(&s));
        assert_eq!(q[0], FREESTREAM[0] + 0.5);
        assert!(flux.iter().all(|&f| f == 0.0), "flux must be cleared");
    }

    #[test]
    fn update_matches_figure2() {
        // Hand-roll Figure 2's arithmetic for one edge.
        let mut res1 = [0.0, 0.0];
        let mut res2 = [0.0, 0.0];
        let mut p1 = [3.0, 1.0];
        let mut p2 = [5.0, 2.0];
        let mut bufs: [(&mut [f64], AccessMode); 4] = [
            (&mut res1, AccessMode::Inc),
            (&mut res2, AccessMode::Inc),
            (&mut p1, AccessMode::Read),
            (&mut p2, AccessMode::Read),
        ];
        let s = slots(&mut bufs);
        update(&Args::new(&s));
        assert_eq!(res1, [3.0 - 1.0, 5.0 - 2.0]);
        assert_eq!(res2, [2.0 - 5.0, 1.0 - 3.0]);
    }
}
