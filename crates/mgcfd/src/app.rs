//! MG-CFD application assembly: meshes, dats, loops, chains.

use crate::kernels;
use op2_core::{
    AccessMode, Arg, ChainSpec, DatId, Domain, GblDecl, LoopSpec, MapId, Result,
};
use op2_mesh::hex3d::{Hex3D, Hex3DIds, Hex3DParams};
use op2_mesh::multigrid::{coarsen, mg_node_map};

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgCfdParams {
    /// Finest grid dimensions.
    pub finest: Hex3DParams,
    /// Multigrid levels (1 = no multigrid).
    pub levels: usize,
    /// Synthetic loop-chain repetitions (§4.1.1): the chain holds
    /// `2 * nchains` loops.
    pub nchains: usize,
}

impl MgCfdParams {
    /// A small test/demo configuration.
    pub fn small(n: usize) -> Self {
        MgCfdParams {
            finest: Hex3DParams::cube(n),
            levels: 2,
            nchains: 2,
        }
    }
}

/// Per-level mesh ids and flow dats.
#[derive(Debug, Clone, Copy)]
pub struct LevelData {
    /// Mesh sets/maps of this level.
    pub ids: Hex3DIds,
    /// Conserved variables (dim 5).
    pub q: DatId,
    /// Local pseudo time step (dim 1).
    pub adt: DatId,
    /// Flux accumulator / residual (dim 5).
    pub flux: DatId,
}

/// One step of the application program: a plain loop or a CA chain.
#[derive(Debug, Clone)]
pub enum Step {
    /// Execute as a standard OP2 loop (Alg 1 when distributed).
    Loop(LoopSpec),
    /// Execute as a CA loop-chain (Alg 2 when distributed; flattened to
    /// loops for the OP2 baseline).
    Chain(ChainSpec),
}

/// The assembled application.
pub struct MgCfd {
    /// The combined multigrid domain.
    pub dom: Domain,
    /// Levels, finest first.
    pub levels: Vec<LevelData>,
    /// Fine→coarse node maps, `mg[i]`: level `i` → level `i+1`.
    pub mg: Vec<MapId>,
    /// Synthetic chain dats on the finest nodes (all dim 2).
    pub dres: DatId,
    /// See [`MgCfd::dres`].
    pub dpres: DatId,
    /// See [`MgCfd::dres`].
    pub dflux: DatId,
    /// Construction parameters.
    pub params: MgCfdParams,
}

impl MgCfd {
    /// Generate meshes and declare every dat.
    pub fn new(params: MgCfdParams) -> Self {
        assert!(params.levels >= 1);
        assert!(params.nchains >= 1);
        let mut dom = Domain::new();
        let mut levels = Vec::with_capacity(params.levels);
        let mut p = params.finest;
        let mut grid_params = Vec::with_capacity(params.levels);
        for l in 0..params.levels {
            let suffix = if l == 0 { String::new() } else { format!("_l{l}") };
            let ids = Hex3D::generate_level(&mut dom, p, &suffix);
            let q = dom.decl_dat_zeros(&format!("q{suffix}"), ids.nodes, kernels::NVAR);
            let adt = dom.decl_dat_zeros(&format!("adt{suffix}"), ids.nodes, 1);
            let flux = dom.decl_dat_zeros(&format!("flux{suffix}"), ids.nodes, kernels::NVAR);
            levels.push(LevelData { ids, q, adt, flux });
            grid_params.push(p);
            p = coarsen(p);
        }
        let mut mg = Vec::with_capacity(params.levels.saturating_sub(1));
        for l in 0..params.levels - 1 {
            mg.push(mg_node_map(
                &mut dom,
                &format!("mg_{l}_{}", l + 1),
                grid_params[l],
                levels[l].ids.nodes,
                levels[l + 1].ids.nodes,
            ));
        }
        let fine_nodes = levels[0].ids.nodes;
        let dres = dom.decl_dat_zeros("dres", fine_nodes, 2);
        let dpres = dom.decl_dat_zeros("dpres", fine_nodes, 2);
        let dflux = dom.decl_dat_zeros("dflux", fine_nodes, 2);
        MgCfd {
            dom,
            levels,
            mg,
            dres,
            dpres,
            dflux,
            params,
        }
    }

    /// `init_state` over a level's nodes.
    pub fn init_loop(&self, level: usize) -> LoopSpec {
        let l = &self.levels[level];
        LoopSpec::new(
            &format!("init_state_l{level}"),
            l.ids.nodes,
            vec![
                Arg::dat_direct(l.q, AccessMode::Write),
                Arg::dat_direct(l.ids.coords, AccessMode::Read),
            ],
            kernels::init_state,
        )
    }

    /// `compute_step_factor` over a level's nodes.
    pub fn step_factor_loop(&self, level: usize) -> LoopSpec {
        let l = &self.levels[level];
        LoopSpec::new(
            &format!("compute_step_factor_l{level}"),
            l.ids.nodes,
            vec![
                Arg::dat_direct(l.q, AccessMode::Read),
                Arg::dat_direct(l.adt, AccessMode::Write),
            ],
            kernels::compute_step_factor,
        )
    }

    /// `compute_flux_edge` over a level's edges — the hot loop.
    pub fn flux_loop(&self, level: usize) -> LoopSpec {
        let l = &self.levels[level];
        LoopSpec::new(
            &format!("compute_flux_edge_l{level}"),
            l.ids.edges,
            vec![
                Arg::dat_indirect(l.q, l.ids.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(l.q, l.ids.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(l.flux, l.ids.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(l.flux, l.ids.e2n, 1, AccessMode::Inc),
            ],
            kernels::compute_flux_edge,
        )
    }

    /// `boundary_flux` over a level's boundary elements.
    pub fn boundary_loop(&self, level: usize) -> LoopSpec {
        let l = &self.levels[level];
        LoopSpec::new(
            &format!("boundary_flux_l{level}"),
            l.ids.bnodes,
            vec![
                Arg::dat_indirect(l.q, l.ids.b2n, 0, AccessMode::Read),
                Arg::dat_indirect(l.flux, l.ids.b2n, 0, AccessMode::Inc),
            ],
            kernels::boundary_flux,
        )
    }

    /// `time_step` over a level's nodes.
    pub fn time_step_loop(&self, level: usize) -> LoopSpec {
        let l = &self.levels[level];
        LoopSpec::new(
            &format!("time_step_l{level}"),
            l.ids.nodes,
            vec![
                Arg::dat_direct(l.q, AccessMode::Rw),
                Arg::dat_direct(l.adt, AccessMode::Read),
                Arg::dat_direct(l.flux, AccessMode::Rw),
            ],
            kernels::time_step,
        )
    }

    /// `restrict` residuals from `level` to `level + 1`.
    pub fn restrict_loop(&self, level: usize) -> LoopSpec {
        let fine = &self.levels[level];
        let coarse = &self.levels[level + 1];
        LoopSpec::new(
            &format!("restrict_l{level}"),
            fine.ids.nodes,
            vec![
                Arg::dat_direct(fine.flux, AccessMode::Read),
                Arg::dat_indirect(coarse.flux, self.mg[level], 0, AccessMode::Inc),
            ],
            kernels::restrict,
        )
    }

    /// `prolong` corrections from `level + 1` back to `level`.
    pub fn prolong_loop(&self, level: usize) -> LoopSpec {
        let fine = &self.levels[level];
        let coarse = &self.levels[level + 1];
        LoopSpec::new(
            &format!("prolong_l{level}"),
            fine.ids.nodes,
            vec![
                Arg::dat_direct(fine.q, AccessMode::Rw),
                Arg::dat_indirect(coarse.q, self.mg[level], 0, AccessMode::Read),
            ],
            kernels::prolong,
        )
    }

    /// `rms_flow` over the finest nodes — a global reduction over the
    /// flow state (the residual dat is consumed by `time_step`, so the
    /// convergence monitor reads `q`, like MG-CFD's solution norm).
    pub fn rms_loop(&self) -> LoopSpec {
        let l = &self.levels[0];
        LoopSpec::with_gbls(
            "rms_flow",
            l.ids.nodes,
            vec![
                Arg::dat_direct(l.q, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            kernels::rms_residual,
        )
    }

    /// `calc_dt_min` over the finest nodes — a global MIN reduction
    /// (the stable time-step bound; OP2's `OP_MIN`).
    pub fn dt_min_loop(&self) -> LoopSpec {
        let l = &self.levels[0];
        LoopSpec::with_gbls(
            "calc_dt_min",
            l.ids.nodes,
            vec![
                Arg::dat_direct(l.adt, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::min_reduction(1)],
            kernels::calc_dt_min,
        )
    }

    /// The synthetic `update` loop (§4.1.1): INC `dres`, READ `dpres`.
    pub fn update_loop(&self) -> LoopSpec {
        let ids = &self.levels[0].ids;
        LoopSpec::new(
            "update",
            ids.edges,
            vec![
                Arg::dat_indirect(self.dres, ids.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(self.dres, ids.e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(self.dpres, ids.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.dpres, ids.e2n, 1, AccessMode::Read),
            ],
            kernels::update,
        )
    }

    /// The synthetic `edge_flux` loop (§4.1.1): READ `dres`, INC
    /// `dflux` — a structural replica of `compute_flux_edge`.
    pub fn edge_flux_loop(&self) -> LoopSpec {
        let ids = &self.levels[0].ids;
        LoopSpec::new(
            "edge_flux",
            ids.edges,
            vec![
                Arg::dat_indirect(self.dres, ids.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(self.dres, ids.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(self.dflux, ids.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(self.dflux, ids.e2n, 1, AccessMode::Inc),
            ],
            kernels::edge_flux,
        )
    }

    /// Refresh `dpres` from the flow state each outer iteration (direct
    /// write) — keeps it dirty so every chain execution genuinely
    /// exchanges two dats, the configuration §4.1.2 studies.
    pub fn write_pres_loop(&self) -> LoopSpec {
        fn write_pres(args: &op2_core::Args<'_>) {
            let mut q = [0.0; kernels::NVAR];
            args.load(1, &mut q);
            let p = kernels::pressure(&q);
            args.set(0, 0, p);
            args.set(0, 1, q[0]);
        }
        let l = &self.levels[0];
        LoopSpec::new(
            "write_pres",
            l.ids.nodes,
            vec![
                Arg::dat_direct(self.dpres, AccessMode::Write),
                Arg::dat_direct(l.q, AccessMode::Read),
            ],
            write_pres,
        )
    }

    /// The synthetic chain: `[update, edge_flux] × nchains` as one
    /// loop-chain. Its halo extents alternate `[2, 1, 2, 1, …]`, so
    /// `r = 2` regardless of length — exactly the paper's setup.
    pub fn synthetic_chain(&self) -> Result<ChainSpec> {
        self.synthetic_chain_n(self.params.nchains)
    }

    /// The synthetic chain with an explicit repetition count (used by
    /// the benchmark harness to sweep loop counts over one mesh).
    pub fn synthetic_chain_n(&self, nchains: usize) -> Result<ChainSpec> {
        assert!(nchains >= 1);
        let mut loops = Vec::with_capacity(2 * nchains);
        for _ in 0..nchains {
            loops.push(self.update_loop());
            loops.push(self.edge_flux_loop());
        }
        ChainSpec::new("synthetic", loops, None, &[])
    }

    /// The fusable produce→consume chain of one level's node update:
    /// `compute_flux_edge` (edges — its own schedule region), then
    /// `compute_step_factor` (writes `adt` from `q`) and `time_step`
    /// (consumes `adt`, updates `q`/`flux`) — two node-direct loops the
    /// fusion analysis merges into one per-element group. `adt` is
    /// declared chain-local ([`ChainSpec::with_scratch`]): its every
    /// access is the group's direct Write→Read pair, so the fused
    /// executor keeps it in per-worker scratch and never touches its
    /// memory (contents unspecified after the chain).
    pub fn fused_chain(&self, level: usize) -> Result<ChainSpec> {
        let l = &self.levels[level];
        let chain = ChainSpec::new(
            &format!("flux_sf_ts_l{level}"),
            vec![
                self.flux_loop(level),
                self.step_factor_loop(level),
                self.time_step_loop(level),
            ],
            None,
            &[],
        )?;
        Ok(chain.with_scratch(&[l.adt]))
    }

    /// One time-marching iteration of the full program: solver V-cycle,
    /// pressure refresh, synthetic chain. With `ca = false` the chain is
    /// flattened into standard loops (the OP2 baseline).
    pub fn iteration(&self, ca: bool) -> Vec<Step> {
        let mut steps = Vec::new();
        steps.push(Step::Loop(self.step_factor_loop(0)));
        steps.push(Step::Loop(self.flux_loop(0)));
        steps.push(Step::Loop(self.boundary_loop(0)));
        // V-cycle down.
        for l in 0..self.params.levels - 1 {
            steps.push(Step::Loop(self.restrict_loop(l)));
            steps.push(Step::Loop(self.flux_loop(l + 1)));
        }
        // Coarse updates + prolongation back up.
        for l in (0..self.params.levels - 1).rev() {
            steps.push(Step::Loop(self.step_factor_loop(l + 1)));
            steps.push(Step::Loop(self.time_step_loop(l + 1)));
            steps.push(Step::Loop(self.prolong_loop(l)));
        }
        steps.push(Step::Loop(self.time_step_loop(0)));
        steps.push(Step::Loop(self.write_pres_loop()));
        let chain = self.synthetic_chain().expect("synthetic chain is valid");
        if ca {
            steps.push(Step::Chain(chain));
        } else {
            for l in chain.loops {
                steps.push(Step::Loop(l));
            }
        }
        steps
    }

    /// Validate every loop of one iteration against the domain.
    pub fn validate(&self) -> Result<()> {
        for step in self.iteration(false) {
            match step {
                Step::Loop(l) => l.validate(&self.dom)?,
                Step::Chain(c) => {
                    for l in &c.loops {
                        l.validate(&self.dom)?;
                    }
                }
            }
        }
        self.init_loop(0).validate(&self.dom)?;
        self.rms_loop().validate(&self.dom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        let app = MgCfd::new(MgCfdParams::small(6));
        app.validate().unwrap();
        assert_eq!(app.levels.len(), 2);
        assert_eq!(app.mg.len(), 1);
        // Coarse level is 3³ + clamps.
        assert!(app.dom.set(app.levels[1].ids.nodes).size < app.dom.set(app.levels[0].ids.nodes).size);
    }

    #[test]
    fn synthetic_chain_extents_alternate() {
        let mut p = MgCfdParams::small(5);
        p.nchains = 4;
        let app = MgCfd::new(p);
        let chain = app.synthetic_chain().unwrap();
        assert_eq!(chain.len(), 8);
        assert_eq!(chain.halo_ext, vec![2, 1, 2, 1, 2, 1, 2, 1]);
        assert_eq!(chain.max_halo_layers(), 2);
    }

    #[test]
    fn chain_imports_two_dats_constant_in_length() {
        // The grouped import is {dpres: 2, dres: 1} for any nchains —
        // the paper's "op_dats exchanged remains constant at 2".
        for nchains in [1, 4, 16] {
            let mut p = MgCfdParams::small(5);
            p.nchains = nchains;
            let app = MgCfd::new(p);
            let chain = app.synthetic_chain().unwrap();
            let sigs = chain.sigs();
            let imports =
                op2_core::chain::import_depths(&sigs, &chain.halo_ext, &|_| 0usize);
            let mut named: Vec<(String, usize)> = imports
                .into_iter()
                .map(|(d, t)| (app.dom.dat(d).name.clone(), t))
                .collect();
            named.sort();
            assert_eq!(
                named,
                vec![("dpres".to_string(), 2), ("dres".to_string(), 1)],
                "nchains = {nchains}"
            );
        }
    }

    #[test]
    fn dt_min_reduction_positive_and_minimal() {
        let mut app = MgCfd::new(MgCfdParams::small(5));
        let init = app.init_loop(0);
        let sf = app.step_factor_loop(0);
        let dt = app.dt_min_loop();
        dt.validate(&app.dom).unwrap();
        op2_core::seq::run_loop(&mut app.dom, &init);
        op2_core::seq::run_loop(&mut app.dom, &sf);
        let r = op2_core::seq::run_loop(&mut app.dom, &dt);
        let got = r.gbls[0][0];
        let expect = app
            .dom
            .dat(app.levels[0].adt)
            .data
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(got, expect);
        assert!(got.is_finite() && got > 0.0);
    }

    #[test]
    fn iteration_program_shape() {
        let app = MgCfd::new(MgCfdParams::small(5));
        let op2 = app.iteration(false);
        let ca = app.iteration(true);
        // CA replaces 2*nchains loops with one chain step.
        assert_eq!(op2.len(), ca.len() + 2 * app.params.nchains - 1);
        assert!(matches!(ca.last(), Some(Step::Chain(_))));
    }
}
