//! MG-CFD command-line driver.
//!
//! ```text
//! cargo run --release -p mg-cfd --bin mgcfd -- \
//!     --n 20 --levels 2 --nchains 4 --ranks 4 --iters 5 --backend ca
//! ```
//!
//! Backends: `seq` (reference), `op2` (Alg 1 per loop), `ca` (Alg 2 for
//! the synthetic chain), `tiled` (Alg 2 + intra-rank sparse tiling of
//! the chain, `--tiles` per rank; `OP2_THREADS` fans same-level tiles
//! across each rank's pool). Prints the final flow norm, per-backend
//! message statistics and the chain's execution plan.

use mg_cfd::{run_ca, run_ca_tiled, run_op2, run_sequential, MgCfd, MgCfdParams};
use op2_mesh::Hex3DParams;
use op2_partition::{build_layouts, derive_ownership, rcb_partition};

struct Opts {
    n: usize,
    levels: usize,
    nchains: usize,
    ranks: usize,
    iters: usize,
    tiles: usize,
    backend: String,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        n: 16,
        levels: 2,
        nchains: 4,
        ranks: 4,
        iters: 5,
        tiles: 8,
        backend: "ca".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = || {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--n" => o.n = val().parse().expect("--n"),
            "--levels" => o.levels = val().parse().expect("--levels"),
            "--nchains" => o.nchains = val().parse().expect("--nchains"),
            "--ranks" => o.ranks = val().parse().expect("--ranks"),
            "--iters" => o.iters = val().parse().expect("--iters"),
            "--tiles" => o.tiles = val().parse().expect("--tiles"),
            "--backend" => o.backend = val(),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --n <grid> --levels <mg levels> --nchains <pairs> \
                     --ranks <n> --iters <n> --tiles <n> --backend seq|op2|ca|tiled"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}`"),
        }
        i += 2;
    }
    o
}

fn main() {
    let o = parse_opts();
    let params = MgCfdParams {
        finest: Hex3DParams::cube(o.n),
        levels: o.levels,
        nchains: o.nchains,
    };
    let mut app = MgCfd::new(params);
    println!(
        "MG-CFD: {} nodes / {} edges on the finest of {} levels; \
         {}-loop synthetic chain; backend = {}",
        app.dom.set(app.levels[0].ids.nodes).size,
        app.dom.set(app.levels[0].ids.edges).size,
        o.levels,
        2 * o.nchains,
        o.backend
    );
    let chain = app.synthetic_chain().expect("chain valid");
    print!("{}", chain.describe(&app.dom));

    let outcome = match o.backend.as_str() {
        "seq" => run_sequential(&mut app, o.iters),
        "op2" | "ca" | "tiled" => {
            let coords = &app.dom.dat(app.levels[0].ids.coords).data;
            let base = rcb_partition(coords, 3, o.ranks);
            let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, o.ranks);
            let layouts = build_layouts(&app.dom, &own, 2);
            match o.backend.as_str() {
                "op2" => run_op2(&mut app, &layouts, o.iters),
                "ca" => run_ca(&mut app, &layouts, o.iters),
                _ => run_ca_tiled(&mut app, &layouts, o.iters, o.tiles),
            }
        }
        other => panic!("unknown backend `{other}` (seq|op2|ca|tiled)"),
    };

    println!("final flow norm after {} iterations: {:.6}", o.iters, outcome.rms);
    if !outcome.traces.is_empty() {
        let msgs: usize = outcome.traces.iter().map(|t| t.total_msgs()).sum();
        let bytes: usize = outcome.traces.iter().map(|t| t.total_bytes()).sum();
        println!("messages: {msgs}, bytes exchanged: {bytes}");
    }
}
