//! # mg-cfd
//!
//! A reproduction of **MG-CFD** (Owenson et al. 2020): the 3D
//! unstructured multigrid finite-volume CFD mini-app the paper uses for
//! its synthetic loop-chain experiments (§4.1). MG-CFD extends the
//! Rodinia CFD solver: an inviscid, compressible Euler solver,
//! node-centred over an unstructured mesh, with geometric multigrid
//! accelerating convergence.
//!
//! Structure of this crate:
//!
//! * [`kernels`] — the solver's user kernels (flux, time step,
//!   multigrid restriction/prolongation) plus the paper's synthetic
//!   `update` / `edge_flux` pair;
//! * [`app`] — mesh + dats + loop program assembly, the multigrid
//!   V-cycle, and the synthetic loop-chain construction with the
//!   `nchains` parameter of §4.1.1 (a `[update, edge_flux]` pair
//!   repeated, forming a single 2·nchains-loop chain with r = 2);
//! * [`run`] — sequential and distributed drivers (OP2 baseline and CA
//!   back-end) used by tests, examples and benchmarks.
//!
//! The NASA Rotor 37 meshes are replaced by [`op2_mesh::Hex3D`] grids of
//! the same node counts (see DESIGN.md for the substitution argument).

pub mod app;
pub mod kernels;
pub mod run;

pub use app::{MgCfd, MgCfdParams, Step};
pub use run::{
    register_service_mesh, run_auto, run_ca, run_ca_dataflow, run_ca_fused, run_ca_rebalanced,
    run_ca_service, run_ca_supervised, run_ca_threaded, run_ca_tiled, run_ca_tiled_threaded,
    run_op2, run_sequential, run_tuned, service_job, RunOutcome,
};
