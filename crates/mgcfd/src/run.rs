//! Drivers: sequential reference, OP2 baseline, CA back-end, and the
//! model-driven adaptive back-end ([`run_auto`] / [`run_tuned`]).

use crate::app::{MgCfd, Step};
use op2_core::seq;
use op2_model::Machine;
use op2_partition::RankLayout;
use op2_runtime::exec::{run_chain, run_loop};
use op2_runtime::{
    run_distributed, run_distributed_with, run_supervised, run_supervised_with_state, ExecMode,
    FuseMode, Job, JobStep, RankState, RankTrace, RebalancePolicy, RebalanceRec, RunOptions,
    RuntimeError, Service, ServiceError, SuperviseOptions, Threading, Tuner, TunerMode,
};
use std::sync::{Arc, Mutex};

/// Outcome of a driver run: final RMS residual plus (for distributed
/// runs) the per-rank traces.
#[derive(Debug)]
pub struct RunOutcome {
    /// √(Σ flux² / n) at the last iteration.
    pub rms: f64,
    /// Per-rank traces (empty for sequential runs).
    pub traces: Vec<RankTrace>,
}

/// Run `iters` time-marching iterations sequentially (the reference all
/// back-ends are tested against).
pub fn run_sequential(app: &mut MgCfd, iters: usize) -> RunOutcome {
    let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
    let iteration = app.iteration(false);
    let rms_spec = app.rms_loop();
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    for l in &init {
        seq::run_loop(&mut app.dom, l);
    }
    let mut rms = 0.0;
    for _ in 0..iters {
        for step in &iteration {
            match step {
                Step::Loop(l) => {
                    seq::run_loop(&mut app.dom, l);
                }
                Step::Chain(c) => {
                    for l in &c.loops {
                        seq::run_loop(&mut app.dom, l);
                    }
                }
            }
        }
        let r = seq::run_loop(&mut app.dom, &rms_spec);
        rms = (r.gbls[0][0] / n_fine).sqrt();
    }
    RunOutcome {
        rms,
        traces: Vec::new(),
    }
}

fn run_dist(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    ca: bool,
    opts: &RunOptions,
) -> RunOutcome {
    let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
    let program: Vec<Vec<Step>> = (0..iters).map(|_| app.iteration(ca)).collect();
    let rms_spec = app.rms_loop();
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    let out = run_distributed_with(&mut app.dom, layouts, opts, |env| {
        for l in &init {
            run_loop(env, l)?;
        }
        let mut rms = 0.0;
        for iteration in &program {
            for step in iteration {
                match step {
                    Step::Loop(l) => {
                        run_loop(env, l)?;
                    }
                    Step::Chain(c) => run_chain(env, c)?,
                }
            }
            let r = run_loop(env, &rms_spec)?;
            rms = (r.gbls[0][0] / n_fine).sqrt();
        }
        Ok(rms)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let rms = match &results[0] {
        Ok(r) => *r,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { rms, traces }
}

/// Run distributed with the standard OP2 back-end (Alg 1 per loop).
pub fn run_op2(app: &mut MgCfd, layouts: &[RankLayout], iters: usize) -> RunOutcome {
    run_dist(app, layouts, iters, false, &RunOptions::default())
}

/// Run distributed with the CA back-end (Alg 2 for the synthetic
/// chain, Alg 1 for everything else — the paper's mixed execution).
pub fn run_ca(app: &mut MgCfd, layouts: &[RankLayout], iters: usize) -> RunOutcome {
    run_dist(app, layouts, iters, true, &RunOptions::default())
}

/// [`run_ca`] under the self-healing supervisor: the CA iteration runs
/// with chain-boundary checkpointing attached; a rank that dies
/// mid-chain (or a straggler that trips its receive deadline) triggers
/// coordinated rollback to the last globally consistent epoch and a
/// bitwise-deterministic replay, bounded by the recovery budget in
/// `opts`. Returns [`RuntimeError::RecoveryExhausted`] when the budget
/// runs out.
pub fn run_ca_supervised(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    opts: &SuperviseOptions,
) -> Result<RunOutcome, RuntimeError> {
    let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
    let program: Vec<Vec<Step>> = (0..iters).map(|_| app.iteration(true)).collect();
    let rms_spec = app.rms_loop();
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    let out = run_supervised(&mut app.dom, layouts, opts, |env| {
        for l in &init {
            run_loop(env, l)?;
        }
        let mut rms = 0.0;
        for iteration in &program {
            for step in iteration {
                match step {
                    Step::Loop(l) => {
                        run_loop(env, l)?;
                    }
                    Step::Chain(c) => run_chain(env, c)?,
                }
            }
            let r = run_loop(env, &rms_spec)?;
            rms = (r.gbls[0][0] / n_fine).sqrt();
        }
        Ok(rms)
    })?;
    let op2_runtime::DistOutcome { traces, results } = out;
    let rms = match &results[0] {
        Ok(r) => *r,
        Err(f) => panic!("supervised run reported success with a failed rank: {f}"),
    };
    Ok(RunOutcome { rms, traces })
}

/// [`run_ca_supervised`] with **online rebalancing**: the iteration
/// sequence is split into segments of `policy.segment_iters`; each
/// segment runs under supervision over shared per-rank state slots, and
/// at every segment boundary the windowed imbalance detector inspects
/// the segment's measured per-rank wall times. When it trips, the base
/// set is re-sharded from per-element costs (measured, or
/// `policy.costs`), the moved elements' dat slices and renumbering
/// tables ship over the transport, the carried state is epoch-fenced
/// ([`op2_runtime::fence_slots`] — old-layout checkpoints dropped, plan
/// caches bumped, thread contexts discarded), and the remaining
/// segments run on the new layouts.
///
/// The instruction stream each env executes is [`run_ca`]'s (init loops
/// first, then per iteration the CA steps plus the RMS loop), and the
/// migration machinery is value-preserving: for exact (integer-valued)
/// arithmetic a migrated run is **bitwise identical** to a
/// never-migrated [`run_ca`] — at any thread count, and with a crash +
/// rollback straddling the migration (`policy.post_migration_faults`).
/// For rounding kernels like MG-CFD's the RMS stays bit-identical,
/// while a handful of partition-boundary dat entries may differ by
/// ~1 ULP: indirect `Inc` contributions accumulate core-first /
/// halo-after, an order the (now different) owner assignment decides —
/// the same low-bit drift any two *static* partitions exhibit (see
/// `tests/rebalance.rs` and DESIGN.md §15).
///
/// Returns the outcome (final segment's traces), the aggregate
/// [`RebalanceRec`], and the layouts the run finished on.
pub fn run_ca_rebalanced(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    opts: &SuperviseOptions,
    policy: &RebalancePolicy,
) -> Result<(RunOutcome, RebalanceRec, Vec<RankLayout>), RuntimeError> {
    let nparts = layouts.len();
    let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
    let rms_spec = app.rms_loop();
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    let base_set = app.levels[0].ids.nodes;
    let coords = app.levels[0].ids.coords;

    let slots: Vec<Arc<Mutex<RankState>>> = (0..nparts)
        .map(|_| Arc::new(Mutex::new(RankState::new())))
        .collect();
    let mut cur = layouts.to_vec();
    let seg_len = if policy.segment_iters == 0 {
        iters.max(1)
    } else {
        policy.segment_iters
    };
    let mut done = 0usize;
    let mut migrations = 0usize;
    let mut post_migration = false;
    let mut rec = RebalanceRec::default();
    let mut rms = 0.0;
    let mut traces = Vec::new();
    while done < iters || done == 0 {
        let seg = seg_len.min(iters - done);
        let first = done == 0;
        let program: Vec<Vec<Step>> = (0..seg).map(|_| app.iteration(true)).collect();
        let mut sopts = opts.clone();
        if post_migration {
            // The chaos hook: faults aimed at the first segment that
            // runs on the migrated layout.
            sopts.run.faults = policy.post_migration_faults.clone();
            post_migration = false;
        }
        let out = run_supervised_with_state(&mut app.dom, &cur, &sopts, &slots, |env| {
            if first {
                for l in &init {
                    run_loop(env, l)?;
                }
            }
            let mut rms = 0.0;
            for iteration in &program {
                for step in iteration {
                    match step {
                        Step::Loop(l) => {
                            run_loop(env, l)?;
                        }
                        Step::Chain(c) => run_chain(env, c)?,
                    }
                }
                let r = run_loop(env, &rms_spec)?;
                rms = (r.gbls[0][0] / n_fine).sqrt();
            }
            Ok(rms)
        })?;
        let op2_runtime::DistOutcome { traces: t, results } = out;
        if seg > 0 {
            rms = match &results[0] {
                Ok(r) => *r,
                Err(f) => panic!("supervised run reported success with a failed rank: {f}"),
            };
        }
        traces = t;
        done += seg;
        if done >= iters {
            break;
        }
        if policy.max_migrations != 0 && migrations >= policy.max_migrations {
            continue;
        }
        if let Some(est) = op2_runtime::detect(&traces, &policy.cfg) {
            let costs = match &policy.costs {
                Some(c) => c.clone(),
                None => op2_runtime::element_costs(&app.dom, base_set, &cur, &est),
            };
            let mut ship_opts = opts.run.clone();
            ship_opts.faults = None; // migration traffic is not a fault target
            if let Some(outcome) = op2_runtime::rebalance(
                &mut app.dom,
                base_set,
                coords,
                3,
                &cur,
                &costs,
                est.imbalance_milli(),
                &ship_opts,
            )? {
                op2_runtime::fence_slots(&slots);
                cur = outcome.layouts;
                rec.add(&outcome.rec);
                migrations += 1;
                post_migration = true;
            }
        }
    }
    Ok((RunOutcome { rms, traces }, rec, cur))
}

/// Describe `iters` CA iterations of this app as a service [`Job`]:
/// the per-level init loops as setup, the CA iteration as the repeated
/// step list, and the (pure, reduction-only) RMS loop as the finish
/// step whose global lands in the job outcome. The instruction stream
/// is the one [`run_ca`] executes, so results are bitwise identical.
pub fn service_job(app: &MgCfd, iters: usize) -> Job {
    let setup = (0..app.params.levels)
        .map(|l| JobStep::Loop(app.init_loop(l)))
        .collect();
    let steps = app
        .iteration(true)
        .into_iter()
        .map(|s| match s {
            Step::Loop(l) => JobStep::Loop(l),
            Step::Chain(c) => JobStep::Chain(c),
        })
        .collect();
    Job::new("mgcfd-ca", steps, iters)
        .setup(setup)
        .finish(vec![JobStep::Loop(app.rms_loop())])
}

/// Register this app's domain as a resident service world; jobs built
/// by [`service_job`] submit against the returned mesh signature.
pub fn register_service_mesh(svc: &Service, app: &MgCfd, layouts: Vec<RankLayout>) -> u64 {
    svc.register_mesh(app.dom.clone(), layouts)
}

/// [`run_ca`] through a resident [`Service`]: submit one CA job against
/// a mesh registered with [`register_service_mesh`]. The second call on
/// the same service re-uses the shared plan registry and warmed buffer
/// pools — zero inspection, zero payload allocation — while producing
/// the same RMS residual, bitwise.
pub fn run_ca_service(
    svc: &Service,
    mesh: u64,
    app: &MgCfd,
    iters: usize,
) -> Result<RunOutcome, ServiceError> {
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    let out = svc.submit(mesh, &service_job(app, iters))?;
    let rms = (out.gbls[0][0][0] / n_fine).sqrt();
    Ok(RunOutcome {
        rms,
        traces: out.trace.ranks,
    })
}

/// [`run_ca`] with intra-rank colored threading: every rank executes
/// its kernels on `threading.n_threads` pool threads. The levelized
/// block coloring keeps results **bitwise identical** to [`run_ca`] at
/// any thread count (the hybrid MPI+threads execution of the paper's
/// back-ends, minus nondeterminism).
pub fn run_ca_threaded(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    threading: Threading,
) -> RunOutcome {
    run_dist(
        app,
        layouts,
        iters,
        true,
        &RunOptions::default().threading(threading),
    )
}

/// [`run_ca_threaded`] under an explicit schedule drain policy
/// (`OP2_EXEC`) and first-touch chunk pinning (`OP2_THREAD_PIN`):
/// `ExecMode::Dataflow` drains every lowered schedule through the
/// per-chunk dependency-counter executor (owner-first deques, LIFO
/// steal-from-richest) instead of one pool barrier per level;
/// `ExecMode::Auto` lets the profit arm pick per schedule. Bitwise
/// identical to [`run_ca`] at any thread count under either drain — the
/// chunk DAG orders every conflicting pair in sequential order.
pub fn run_ca_dataflow(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    threading: Threading,
    exec: ExecMode,
    pin: bool,
) -> RunOutcome {
    run_dist(
        app,
        layouts,
        iters,
        true,
        &RunOptions::default()
            .threading(threading)
            .exec(exec)
            .thread_pin(pin),
    )
}

/// Run the fusable flux→step-factor→time-step chain
/// ([`MgCfd::fused_chain`]) for `iters` iterations under the given
/// [`FuseMode`]: `Off` executes the chain loop-by-loop (Alg 2), `On`
/// through the fused whole-chain schedule — the two node-direct loops
/// interleaved per element with `adt` elided into per-worker scratch —
/// and `Auto` lets the calibrated profit arm pick. Bitwise identical
/// across modes and thread counts by the fusion legality rules; the
/// traces' plan stats carry the fused-piece and elided-byte counters.
pub fn run_ca_fused(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    fuse: FuseMode,
    threading: Option<Threading>,
) -> RunOutcome {
    let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
    let chain = app.fused_chain(0).expect("fused chain is valid");
    let rms_spec = app.rms_loop();
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    let mut opts = RunOptions::default().fuse(fuse);
    if let Some(t) = threading {
        opts = opts.threading(t);
    }
    let out = run_distributed_with(&mut app.dom, layouts, &opts, |env| {
        for l in &init {
            run_loop(env, l)?;
        }
        let mut rms = 0.0;
        for _ in 0..iters {
            run_chain(env, &chain)?;
            let r = run_loop(env, &rms_spec)?;
            rms = (r.gbls[0][0] / n_fine).sqrt();
        }
        Ok(rms)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let rms = match &results[0] {
        Ok(r) => *r,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { rms, traces }
}

/// Run distributed with the CA back-end *plus* intra-rank sparse tiling
/// of the synthetic chain (`n_tiles` per rank) — both CA levels of the
/// paper combined (MPI rank = outer tile, §2.2 inner tiles).
pub fn run_ca_tiled(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    n_tiles: usize,
) -> RunOutcome {
    run_ca_tiled_with(app, layouts, iters, n_tiles, &RunOptions::default())
}

/// [`run_ca_tiled`] with `threading.n_threads` pool threads per rank:
/// same-level (provably conflict-free) tiles of the chain's leveled
/// schedule run concurrently, **bitwise identical** to the sequential
/// tiled executor at any thread count — all three communication-avoiding
/// layers of the paper at once (grouped exchange, sparse tiling,
/// intra-rank threading).
pub fn run_ca_tiled_threaded(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    n_tiles: usize,
    threading: Threading,
) -> RunOutcome {
    run_ca_tiled_with(
        app,
        layouts,
        iters,
        n_tiles,
        &RunOptions::default().threading(threading),
    )
}

fn run_ca_tiled_with(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    n_tiles: usize,
    opts: &RunOptions,
) -> RunOutcome {
    let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
    let program: Vec<Vec<Step>> = (0..iters).map(|_| app.iteration(true)).collect();
    let rms_spec = app.rms_loop();
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    let out = run_distributed_with(&mut app.dom, layouts, opts, |env| {
        for l in &init {
            run_loop(env, l)?;
        }
        let mut rms = 0.0;
        for iteration in &program {
            for step in iteration {
                match step {
                    Step::Loop(l) => {
                        run_loop(env, l)?;
                    }
                    Step::Chain(c) => {
                        op2_runtime::exec::run_chain_tiled(env, c, n_tiles)?
                    }
                }
            }
            let r = run_loop(env, &rms_spec)?;
            rms = (r.gbls[0][0] / n_fine).sqrt();
        }
        Ok(rms)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let rms = match &results[0] {
        Ok(r) => *r,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { rms, traces }
}

/// Run distributed with the **adaptive** back-end: every chain goes
/// through a per-rank [`Tuner`] that measures the first invocation
/// (flattened Alg 1), classifies the chain with the §3.2 model on
/// `mach`, and dispatches repeats to the winning backend. Decisions are
/// rank-agreed (allreduced components) and recorded in the traces'
/// `tuner` lists. `fixed_g` pins the per-iteration cost for
/// deterministic decisions (tests); pass `None` to measure.
pub fn run_auto(
    app: &mut MgCfd,
    layouts: &[RankLayout],
    iters: usize,
    mach: &Machine,
    mode: TunerMode,
    fixed_g: Option<f64>,
) -> RunOutcome {
    let init: Vec<_> = (0..app.params.levels).map(|l| app.init_loop(l)).collect();
    let program: Vec<Vec<Step>> = (0..iters).map(|_| app.iteration(true)).collect();
    let rms_spec = app.rms_loop();
    let n_fine = app.dom.set(app.levels[0].ids.nodes).size as f64;
    let out = run_distributed(&mut app.dom, layouts, |env| {
        let mut tuner = Tuner::new(mach.clone(), mode);
        if let Some(g) = fixed_g {
            tuner = tuner.with_fixed_g(g);
        }
        for l in &init {
            run_loop(env, l)?;
        }
        let mut rms = 0.0;
        for iteration in &program {
            for step in iteration {
                match step {
                    Step::Loop(l) => {
                        run_loop(env, l)?;
                    }
                    Step::Chain(c) => tuner.run_chain(env, c)?,
                }
            }
            let r = run_loop(env, &rms_spec)?;
            rms = (r.gbls[0][0] / n_fine).sqrt();
        }
        Ok(rms)
    });
    let op2_runtime::DistOutcome { traces, results } = out;
    let rms = match &results[0] {
        Ok(r) => *r,
        Err(f) => panic!("{f}"),
    };
    RunOutcome { rms, traces }
}

/// [`run_auto`] with the deployment defaults: an ARCHER2-like machine
/// model, measured per-iteration costs, and the dispatch policy taken
/// from the `OP2_TUNER` env var (`auto|op2|ca|tiled`, default `auto`).
pub fn run_tuned(app: &mut MgCfd, layouts: &[RankLayout], iters: usize) -> RunOutcome {
    run_auto(
        app,
        layouts,
        iters,
        &Machine::archer2(),
        TunerMode::from_env(),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::MgCfdParams;
    use op2_partition::{build_layouts, derive_ownership, rcb_partition};

    fn layouts_for(app: &MgCfd, nparts: usize) -> Vec<RankLayout> {
        let coords = &app.dom.dat(app.levels[0].ids.coords).data;
        let base = rcb_partition(coords, 3, nparts);
        let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, nparts);
        build_layouts(&app.dom, &own, 2)
    }

    fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let scale = x.abs().max(y.abs()).max(1e-30);
                (x - y).abs() / scale
            })
            .fold(0.0, f64::max)
    }

    /// All three back-ends agree on the final flow state within
    /// floating-point reassociation noise.
    #[test]
    fn op2_and_ca_match_sequential() {
        let params = MgCfdParams::small(7);
        let iters = 3;

        let mut seq_app = MgCfd::new(params);
        let seq_out = run_sequential(&mut seq_app, iters);

        let mut op2_app = MgCfd::new(params);
        let l = layouts_for(&op2_app, 4);
        let op2_out = run_op2(&mut op2_app, &l, iters);

        let mut ca_app = MgCfd::new(params);
        let l2 = layouts_for(&ca_app, 4);
        let ca_out = run_ca(&mut ca_app, &l2, iters);

        for dat in [seq_app.levels[0].q, seq_app.dres, seq_app.dflux] {
            let e1 = max_rel_err(&seq_app.dom.dat(dat).data, &op2_app.dom.dat(dat).data);
            let e2 = max_rel_err(&seq_app.dom.dat(dat).data, &ca_app.dom.dat(dat).data);
            assert!(e1 < 1e-11, "OP2 diverged on {}: {e1}", seq_app.dom.dat(dat).name);
            assert!(e2 < 1e-11, "CA diverged on {}: {e2}", seq_app.dom.dat(dat).name);
        }
        assert!((seq_out.rms - op2_out.rms).abs() <= 1e-11 * seq_out.rms.abs().max(1.0));
        assert!((seq_out.rms - ca_out.rms).abs() <= 1e-11 * seq_out.rms.abs().max(1.0));
        assert!(seq_out.rms.is_finite() && seq_out.rms > 0.0);
    }

    /// CA sends fewer, larger messages than the OP2 baseline for the
    /// synthetic chain — the paper's central measurement.
    #[test]
    fn ca_reduces_message_count() {
        let mut params = MgCfdParams::small(7);
        params.nchains = 8; // 16-loop chain
        let iters = 2;

        let mut op2_app = MgCfd::new(params);
        let l = layouts_for(&op2_app, 4);
        let op2_out = run_op2(&mut op2_app, &l, iters);

        let mut ca_app = MgCfd::new(params);
        let l2 = layouts_for(&ca_app, 4);
        let ca_out = run_ca(&mut ca_app, &l2, iters);

        #[allow(clippy::needless_range_loop)]
        for rank in 0..4 {
            // Messages attributable to the synthetic loops:
            let op2_msgs: usize = op2_out.traces[rank]
                .loops
                .iter()
                .filter(|r| r.name == "update" || r.name == "edge_flux")
                .map(|r| r.exch.n_msgs)
                .sum();
            let ca_msgs: usize = ca_out.traces[rank]
                .chains
                .iter()
                .map(|c| c.exch.n_msgs)
                .sum();
            if l[rank].neighbors.is_empty() {
                continue;
            }
            assert!(
                ca_msgs < op2_msgs,
                "rank {rank}: CA {ca_msgs} msgs vs OP2 {op2_msgs}"
            );
        }
    }

    /// Both CA levels combined (distributed chain + intra-rank tiles)
    /// still match the reference.
    #[test]
    fn tiled_ca_matches_sequential() {
        let params = MgCfdParams::small(7);
        let iters = 2;
        let mut seq_app = MgCfd::new(params);
        let reference = run_sequential(&mut seq_app, iters);
        for n_tiles in [1, 4] {
            let mut app = MgCfd::new(params);
            let layouts = layouts_for(&app, 4);
            let out = run_ca_tiled(&mut app, &layouts, iters, n_tiles);
            let err = (reference.rms - out.rms).abs() / reference.rms.abs().max(1e-30);
            assert!(err < 1e-10, "n_tiles {n_tiles}: {err}");
        }
    }

    /// The adaptive back-end matches the sequential reference and makes
    /// the identical decision on every rank.
    #[test]
    fn tuned_matches_sequential_with_identical_decisions() {
        let params = MgCfdParams::small(7);
        let iters = 3;
        let mut seq_app = MgCfd::new(params);
        let reference = run_sequential(&mut seq_app, iters);

        let mut app = MgCfd::new(params);
        let layouts = layouts_for(&app, 4);
        let out = run_auto(
            &mut app,
            &layouts,
            iters,
            &op2_model::Machine::archer2(),
            TunerMode::Auto,
            Some(5e-8),
        );
        let err = (reference.rms - out.rms).abs() / reference.rms.abs().max(1e-30);
        assert!(err < 1e-10, "adaptive back-end diverged: {err}");

        // Everything but the per-rank measured wall clock is rank-agreed.
        let agreed = |t: &RankTrace| -> Vec<_> {
            t.tuner
                .iter()
                .map(|r| op2_runtime::TunerRec {
                    t_measured_ns: 0,
                    ..r.clone()
                })
                .collect()
        };
        let first = agreed(&out.traces[0]);
        assert!(!first.is_empty(), "calibration must record a decision");
        for t in &out.traces[1..] {
            assert_eq!(agreed(t), first, "rank {} decided differently", t.rank);
        }
    }

    /// Acceptance criterion: on the synthetic `update`/`edge_flux` chain
    /// fixture, the tuner's online (allreduced, layout-derived) decision
    /// matches `profit::classify` evaluated offline on the same
    /// partition's `HaloStats` — and repeat dispatches hit the plan
    /// cache when the chain executor is chosen.
    #[test]
    fn tuner_decision_matches_offline_classify() {
        use op2_model::{chain_components, classify, shape_from_sigs, Machine};
        use op2_partition::collect_stats;
        use op2_runtime::Backend;

        const G: f64 = 5e-8;
        let mut params = MgCfdParams::small(7);
        params.nchains = 4;
        let mut app = MgCfd::new(params);
        let chain = app
            .iteration(true)
            .into_iter()
            .find_map(|s| match s {
                Step::Chain(c) => Some(c),
                _ => None,
            })
            .expect("the synthetic chain");

        let coords = &app.dom.dat(app.levels[0].ids.coords).data;
        let base = rcb_partition(coords, 3, 4);
        let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 4);
        let stats = collect_stats(&app.dom, &own, 2, 2);
        let layouts = build_layouts(&app.dom, &own, 2);

        // Offline judgement, same entry state (chain dats dirty).
        let g = vec![G; chain.len()];
        let shape = shape_from_sigs(
            &app.dom,
            &chain.name,
            &chain.sigs(),
            &chain.halo_ext,
            &g,
            &|_| 0,
        );
        let prof = classify(&Machine::archer2(), &chain_components(&stats, &shape));
        let expected = if prof.enable_ca {
            Backend::Ca
        } else {
            Backend::Op2
        };

        let chain_ref = &chain;
        let out = op2_runtime::run_distributed(&mut app.dom, &layouts, |env| {
            let mut tuner =
                Tuner::new(Machine::archer2(), TunerMode::Auto).with_fixed_g(G);
            for sig in chain_ref.sigs() {
                for d in sig.dats() {
                    env.valid[d.idx()] = 0;
                }
            }
            for _ in 0..4 {
                tuner.run_chain(env, chain_ref)?;
            }
            Ok(tuner.decision(chain_ref).expect("calibrated"))
        });
        for t in &out.traces {
            assert_eq!(t.tuner.len(), 1);
            assert_eq!(t.tuner[0].backend, expected, "rank {}", t.rank);
            assert_eq!(
                t.tuner[0].class,
                prof.class.into(),
                "rank {} class mismatch",
                t.rank
            );
            if expected == Backend::Ca {
                assert!(
                    t.plan.hits >= 1,
                    "rank {}: repeat dispatches must hit the plan cache, {:?}",
                    t.rank,
                    t.plan
                );
            }
        }
        for decided in out.unwrap_results() {
            assert_eq!(decided, expected);
        }
    }

    /// Acceptance criterion of the threaded subsystem on the full app:
    /// the CA back-end with 2 and 4 pool threads per rank is **bitwise
    /// identical** to the single-threaded CA run — every dat, every bit,
    /// thanks to the order-preserving block coloring. A tiny block size
    /// forces real multi-color schedules.
    #[test]
    fn threaded_ca_bitwise_equals_single_threaded() {
        let params = MgCfdParams::small(7);
        let iters = 2;

        let mut ref_app = MgCfd::new(params);
        let l0 = layouts_for(&ref_app, 4);
        let reference = run_ca(&mut ref_app, &l0, iters);

        for n_threads in [2usize, 4] {
            let mut app = MgCfd::new(params);
            let layouts = layouts_for(&app, 4);
            let threading = Threading {
                n_threads,
                block_size: 16,
                auto_block: false,
            };
            let out = run_ca_threaded(&mut app, &layouts, iters, threading);
            assert_eq!(
                out.rms.to_bits(),
                reference.rms.to_bits(),
                "{n_threads} threads: rms diverged"
            );
            for d in 0..app.dom.n_dats() {
                let id = op2_core::DatId(d as u32);
                let got = &app.dom.dat(id).data;
                let want = &ref_app.dom.dat(id).data;
                assert_eq!(
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{n_threads} threads: dat `{}` diverged",
                    app.dom.dat(id).name
                );
            }
            // The threaded executor actually ran (trace proof), and its
            // schedule metadata is rank-deterministic.
            for t in &out.traces {
                assert!(
                    !t.threads.is_empty(),
                    "rank {}: no threaded executions recorded",
                    t.rank
                );
                for rec in &t.threads {
                    assert_eq!(rec.n_threads, n_threads);
                    assert_eq!(rec.level_ns.len(), rec.n_levels);
                }
            }
        }
    }

    /// The threaded tiled executor on the full app: CA + sparse tiling
    /// with 2 and 4 pool threads per rank is **bitwise identical** to
    /// the sequential tiled run — same-level tiles are provably
    /// conflict-free and conflicting tiles stay level-ordered, so thread
    /// count is invisible in the results. The trace must prove the
    /// pool actually ran tiled schedules.
    #[test]
    fn tiled_threaded_bitwise_equals_tiled_sequential() {
        let params = MgCfdParams::small(10);
        let (iters, n_tiles) = (2, 8);

        let mut ref_app = MgCfd::new(params);
        let l0 = layouts_for(&ref_app, 2);
        let reference = run_ca_tiled(&mut ref_app, &l0, iters, n_tiles);

        for n_threads in [2usize, 4] {
            let mut app = MgCfd::new(params);
            let layouts = layouts_for(&app, 2);
            let out = run_ca_tiled_threaded(
                &mut app,
                &layouts,
                iters,
                n_tiles,
                Threading::with_threads(n_threads),
            );
            assert_eq!(
                out.rms.to_bits(),
                reference.rms.to_bits(),
                "{n_threads} threads: rms diverged"
            );
            for d in 0..app.dom.n_dats() {
                let id = op2_core::DatId(d as u32);
                assert_eq!(
                    app.dom.dat(id).data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    ref_app.dom.dat(id).data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{n_threads} threads: dat `{}` diverged",
                    app.dom.dat(id).name
                );
            }
            for t in &out.traces {
                let tiled: Vec<_> = t
                    .threads
                    .iter()
                    .filter(|r| r.kind == op2_runtime::SchedKind::Tiled)
                    .collect();
                assert!(
                    !tiled.is_empty(),
                    "rank {}: no tiled pool executions recorded",
                    t.rank
                );
                for rec in tiled {
                    assert_eq!(rec.n_threads, n_threads);
                    assert_eq!(rec.level_ns.len(), rec.n_levels);
                    assert_eq!(rec.block_size, 0, "tiled schedules chunk by tile");
                }
            }
        }
    }

    /// Resident-service execution matches [`run_ca`] bitwise, and the
    /// second job on the same mesh is fully warm: zero chain
    /// inspections (plan-registry hits instead) and zero payload-pool
    /// allocations (carried buffers).
    #[test]
    fn service_jobs_match_run_ca_and_warm_up() {
        let params = MgCfdParams::small(7);
        let iters = 2;

        let mut ref_app = MgCfd::new(params);
        let l0 = layouts_for(&ref_app, 4);
        let reference = run_ca(&mut ref_app, &l0, iters);

        let app = MgCfd::new(params);
        let layouts = layouts_for(&app, 4);
        let svc = Service::new(op2_runtime::ServiceConfig::default());
        let mesh = register_service_mesh(&svc, &app, layouts);

        let cold = run_ca_service(&svc, mesh, &app, iters).unwrap();
        let warm = run_ca_service(&svc, mesh, &app, iters).unwrap();
        let steady = run_ca_service(&svc, mesh, &app, iters).unwrap();
        assert_eq!(cold.rms.to_bits(), reference.rms.to_bits());
        assert_eq!(warm.rms.to_bits(), reference.rms.to_bits());
        assert_eq!(steady.rms.to_bits(), reference.rms.to_bits());

        // Second job: zero inspection — every plan from the registry.
        let mut plan = op2_runtime::PlanStats::default();
        for t in &warm.traces {
            plan.add(&t.plan);
        }
        assert_eq!(plan.misses, 0, "warm job must skip inspection: {plan:?}");
        assert!(plan.registry_hits >= 1, "expected registry hits: {plan:?}");

        // Steady state (pair pools rebalanced over the first jobs): zero
        // payload heap allocations.
        let payload_allocs: u64 = steady.traces.iter().map(|t| t.comm.payload_allocs).sum();
        assert_eq!(payload_allocs, 0, "steady-state job must recycle payload pools");

        let m = svc.metrics();
        assert_eq!(m.completed, 3);
        assert_eq!(m.warm_jobs, 2);
        assert!(m.registry_plans >= 1);
    }

    /// The solver converges (RMS falls) over a few iterations, i.e. the
    /// physics loops do something sensible.
    #[test]
    fn solver_residual_is_stable() {
        let mut app = MgCfd::new(MgCfdParams::small(6));
        let out1 = run_sequential(&mut app, 1);
        let mut app5 = MgCfd::new(MgCfdParams::small(6));
        let out5 = run_sequential(&mut app5, 5);
        assert!(out1.rms.is_finite() && out5.rms.is_finite());
        assert!(out5.rms > 0.0);
        // No blow-up: the flow norm stays within two orders of magnitude.
        assert!(out5.rms < out1.rms * 100.0);
    }
}
