//! Chain-boundary checkpointing: the state capture/restore half of the
//! self-healing runtime (the failure detection and restart policy live
//! in [`crate::supervise`]).
//!
//! ## Consistency model
//!
//! A *unit* is one executor invocation — a [`crate::exec::run_loop`] or
//! a `run_chain*` call. Units execute in the same order on every rank
//! (the SPMD invariant the whole runtime is built on), so "after unit
//! `k`" names a globally consistent cut: no messages are in flight
//! between units, every rank's validity/tag state at that cut is a pure
//! function of the program prefix. Checkpoints are taken at chain
//! boundaries (every [`CheckpointConfig::every`] completed chains, plus
//! a baseline at attempt start), tagged with a monotonically increasing
//! *epoch* that is identical across ranks for the same cut — which is
//! what lets the supervisor roll every rank back to the newest epoch
//! that exists everywhere and get a consistent world.
//!
//! ## What a checkpoint holds
//!
//! The rank's full dat payloads (incrementally: a dat whose version
//! counter has not moved since the previous checkpoint shares that
//! checkpoint's `Arc` instead of being re-copied — the dirty-tracking
//! version counters are bumped by every mutation site: loop/chain
//! write-sets and exchange unpacks), the validity depths, the tag
//! sequence, and the boundary counters. Restoring a checkpoint rewinds
//! all of them, so a replayed program re-derives bitwise-identical
//! traffic and results.
//!
//! ## Replay journal
//!
//! Completed units are journaled ([`UnitRecord`]), loops with their
//! bit-exact global-argument results. After a restore, units before the
//! checkpoint's cut are *skipped*: the executor returns the journaled
//! result without touching dats, communicating, or crossing fault
//! boundaries. Replay is therefore free of side effects and cannot
//! diverge from the original execution.

use crate::env::RankEnv;
use crate::error::ConfigError;
use crate::plan::PlanCache;
use crate::threads::{ThreadCtx, Threading};
use crate::trace::RecoveryRec;
use std::sync::{Arc, Mutex, MutexGuard};

/// Checkpoint cadence configuration (`RunOptions::checkpoint` /
/// `OP2_CKPT_EVERY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Take a checkpoint every `every` completed chains (≥ 1). The
    /// attempt-start baseline is always taken regardless.
    pub every: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig { every: 1 }
    }
}

impl CheckpointConfig {
    /// Checkpoint every `every` chains.
    pub fn new(every: u64) -> Self {
        assert!(every >= 1, "checkpoint cadence must be at least 1");
        CheckpointConfig { every }
    }

    /// Parse a raw `OP2_CKPT_EVERY` value (`None` = unset = every
    /// chain) through the centralized knob path
    /// ([`crate::env::parse_knob`]). Pure — no environment access.
    pub fn parse(raw: Option<&str>) -> Result<Self, ConfigError> {
        Ok(crate::env::parse_knob(
            raw,
            |s| s.parse::<u64>().ok().filter(|&n| n >= 1),
            |value| ConfigError::CkptEvery { value },
        )?
        .map_or_else(CheckpointConfig::default, CheckpointConfig::new))
    }

    /// Read `OP2_CKPT_EVERY` (unset = every chain). Malformed values
    /// are a typed [`ConfigError`], reported once at startup.
    pub fn try_from_env() -> Result<Self, ConfigError> {
        Self::parse(std::env::var("OP2_CKPT_EVERY").ok().as_deref())
    }
}

/// One completed unit in the replay journal.
#[derive(Debug, Clone)]
pub(crate) enum UnitRecord {
    /// A `run_loop` completion, with its bit-exact global-argument
    /// results (reductions included — replay must not re-reduce).
    Loop(Vec<Vec<f64>>),
    /// A `run_chain*` completion (chains carry no result values).
    Chain,
}

/// One epoch-tagged snapshot of a rank's restorable state.
#[derive(Debug, Clone)]
pub(crate) struct Checkpoint {
    /// Globally consistent epoch (identical across ranks for the same
    /// program cut): 0 = attempt-start baseline.
    pub(crate) epoch: u64,
    /// Units completed at the cut this checkpoint captures.
    pub(crate) units_done: usize,
    /// Full dat payloads. Shared (`Arc`) with the previous checkpoint
    /// for dats whose version counter did not move — the incremental
    /// half of the snapshot.
    dats: Vec<Arc<Vec<f64>>>,
    /// Halo validity depths at the cut.
    valid: Vec<u8>,
    /// Tag sequence at the cut (restored so replayed traffic reuses the
    /// original tags, keeping ranks in lockstep).
    tag_seq: u64,
    /// Boundary counters at the cut (restored so fault-plan coordinates
    /// keep their meaning across a rollback).
    boundaries: [u64; 3],
    /// Per-dat version counters at the cut.
    dat_vers: Vec<u64>,
    /// Layout epoch this checkpoint's dat payloads belong to. A
    /// migration ([`crate::rebalance`]) bumps the rank's layout epoch
    /// and discards foreign-layout checkpoints — restoring one would
    /// resurrect an index space that no longer exists.
    pub(crate) layout_epoch: u64,
}

/// The persistent per-rank recovery state, owned by the supervisor and
/// shared with each attempt's [`RankEnv`] via `Arc<Mutex<..>>` — it
/// must outlive rank threads (including panicked ones), which is why it
/// does not live in the env itself.
#[derive(Default)]
pub struct RankState {
    /// Epoch-ordered checkpoints (the supervisor truncates above the
    /// rollback epoch).
    pub(crate) checkpoints: Vec<Checkpoint>,
    /// Completed units, journal-ordered.
    pub(crate) journal: Vec<UnitRecord>,
    /// Cumulative recovery counters across attempts; sealed into
    /// [`crate::trace::RankTrace::recovery`] at the end of each attempt.
    pub(crate) rec: RecoveryRec,
    /// Plan cache carried across attempts (calibrations survive
    /// restarts untouched).
    pub(crate) plans: Option<PlanCache>,
    /// Threading context (worker pool + schedule cache) carried across
    /// attempts.
    pub(crate) threads: Option<ThreadCtx>,
    /// Per-peer payload buffer pools carried across attempts, so the
    /// re-established transport starts warm.
    pub(crate) pools: Option<Vec<Vec<Vec<f64>>>>,
    /// Set by the supervisor after a rollback: the next attach must
    /// restore from the newest checkpoint instead of taking a baseline.
    pub(crate) restore: bool,
    /// The rank's current layout epoch, bumped by every migration
    /// ([`crate::rebalance::fence_slots`]). Checkpoints record the epoch
    /// they were taken under; restore asserts the epochs match, so a
    /// crash-recovery rollback that straddles a migration can only ever
    /// land on post-migration state.
    pub(crate) layout_epoch: u64,
}

impl std::fmt::Debug for RankState {
    // Manual: ThreadCtx (a live worker pool) is not Debug.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankState")
            .field("checkpoints", &self.checkpoints.len())
            .field("journal", &self.journal.len())
            .field("rec", &self.rec)
            .field("restore", &self.restore)
            .finish_non_exhaustive()
    }
}

impl RankState {
    /// Fresh state for one rank of a supervised run.
    pub fn new() -> Self {
        RankState::default()
    }

    /// Epoch of the newest checkpoint, if any (supervisor-side view for
    /// the rollback epoch agreement).
    pub(crate) fn last_epoch(&self) -> Option<u64> {
        self.checkpoints.last().map(|c| c.epoch)
    }

    /// Discard checkpoints that belong to a different layout epoch than
    /// the rank's current one. Called by the rebalance fence after a
    /// migration and defensively by the supervisor before agreeing on a
    /// rollback epoch — pre-migration snapshots describe index spaces
    /// that no longer exist and must never be restored.
    pub(crate) fn drop_foreign_layouts(&mut self) {
        let cur = self.layout_epoch;
        self.checkpoints.retain(|c| c.layout_epoch == cur);
    }
}

/// Poison-resilient lock: a rank that panicked while holding the state
/// lock (it never does — all holds are short straight-line copies — but
/// belt and braces) must not wedge the supervisor.
fn lock(state: &Arc<Mutex<RankState>>) -> MutexGuard<'_, RankState> {
    state.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-env checkpoint context: configuration, the shared persistent
/// state, and the live position/version tracking. Inert (all hooks
/// no-ops) unless [`RankEnv::ckpt_attach`] was called.
#[derive(Debug, Default)]
pub struct CheckpointCtx {
    cfg: Option<CheckpointConfig>,
    shared: Option<Arc<Mutex<RankState>>>,
    /// Units completed (or skipped) so far this attempt.
    units_done: usize,
    /// Units to serve from the journal before executing live (the
    /// restored checkpoint's cut; 0 when starting fresh).
    replay_until: usize,
    /// Chains completed since the last snapshot.
    since_snapshot: u64,
    /// Per-dat version counters: bumped by every mutation site, so an
    /// incremental snapshot knows which dats are clean.
    dat_vers: Vec<u64>,
}

impl CheckpointCtx {
    /// The inert context every env starts with.
    pub(crate) fn inert() -> Self {
        CheckpointCtx::default()
    }

    /// Whether checkpointing is live on this env.
    pub fn active(&self) -> bool {
        self.shared.is_some()
    }

    /// Dirty-tracking hook: dat `d`'s payload was (or is about to be)
    /// mutated. No-op when inert (the version vector is empty).
    #[inline]
    pub(crate) fn note_write(&mut self, d: usize) {
        if let Some(v) = self.dat_vers.get_mut(d) {
            *v += 1;
        }
    }
}

impl RankEnv<'_> {
    /// Attach this env to a supervised run's persistent state: install
    /// carried-over plan cache / thread context / transport buffer
    /// pools, then either restore the newest checkpoint (after a
    /// rollback) or take the attempt-start baseline.
    pub fn ckpt_attach(&mut self, cfg: CheckpointConfig, shared: Arc<Mutex<RankState>>) {
        self.ckpt = CheckpointCtx {
            cfg: Some(cfg),
            shared: Some(Arc::clone(&shared)),
            units_done: 0,
            replay_until: 0,
            since_snapshot: 0,
            dat_vers: vec![1; self.dats.len()],
        };
        let take_baseline = {
            let mut st = lock(&shared);
            if let Some(plans) = st.plans.take() {
                self.plans = plans;
            }
            if let Some(mut threads) = st.threads.take() {
                // The carried context keeps its pool and schedule cache;
                // the configuration is this attempt's (the harness set
                // it before the program ran).
                threads.opts = self.threads.opts;
                self.threads = threads;
            }
            if let Some(pools) = st.pools.take() {
                self.comm.install_pool(pools);
            }
            if st.restore {
                st.restore = false;
                let ck = st
                    .checkpoints
                    .last()
                    .expect("rollback targeted a rank with no checkpoint");
                assert_eq!(
                    ck.layout_epoch, st.layout_epoch,
                    "rank {}: restoring a checkpoint from a different layout epoch",
                    self.rank
                );
                let mut restored = 0u64;
                for (d, buf) in self.dats.iter_mut().enumerate() {
                    buf.clone_from(&ck.dats[d]);
                    restored += (buf.len() * 8) as u64;
                }
                self.valid = ck.valid.clone();
                self.tag_seq = ck.tag_seq;
                self.boundaries = ck.boundaries;
                self.ckpt.replay_until = ck.units_done;
                self.ckpt.dat_vers = ck.dat_vers.clone();
                st.rec.restored_bytes += restored;
                false
            } else {
                true
            }
        };
        if take_baseline {
            self.ckpt_take();
        }
    }

    /// Snapshot the rank's restorable state into a new epoch-tagged
    /// checkpoint. Incremental: dats whose version counter has not
    /// moved since the previous checkpoint share its buffers instead of
    /// being re-copied. Returns the bytes actually copied (0 when
    /// checkpointing is inert).
    pub fn ckpt_take(&mut self) -> usize {
        let Some(shared) = self.ckpt.shared.clone() else {
            return 0;
        };
        let mut st = lock(&shared);
        let mut dats = Vec::with_capacity(self.dats.len());
        let mut bytes = 0usize;
        let mut snapped = 0u64;
        let mut skipped = 0u64;
        for (d, buf) in self.dats.iter().enumerate() {
            let clean = st
                .checkpoints
                .last()
                .is_some_and(|p| p.dat_vers[d] == self.ckpt.dat_vers[d]);
            if clean {
                dats.push(Arc::clone(&st.checkpoints.last().unwrap().dats[d]));
                skipped += 1;
            } else {
                bytes += buf.len() * 8;
                snapped += 1;
                dats.push(Arc::new(buf.clone()));
            }
        }
        let epoch = st.last_epoch().map_or(0, |e| e + 1);
        let layout_epoch = st.layout_epoch;
        st.checkpoints.push(Checkpoint {
            epoch,
            units_done: self.ckpt.units_done,
            dats,
            valid: self.valid.clone(),
            tag_seq: self.tag_seq,
            boundaries: self.boundaries,
            dat_vers: self.ckpt.dat_vers.clone(),
            layout_epoch,
        });
        st.rec.checkpoints += 1;
        st.rec.ckpt_bytes += bytes as u64;
        st.rec.dats_snapshotted += snapped;
        st.rec.dats_skipped += skipped;
        bytes
    }

    /// Rewind this env to its newest checkpoint in place (the
    /// single-rank restore path, used by benches and tests; supervised
    /// rollbacks go through [`RankState::restore`] and a fresh attach
    /// instead). Returns false when there is nothing to restore.
    pub fn ckpt_rewind(&mut self) -> bool {
        let Some(shared) = self.ckpt.shared.clone() else {
            return false;
        };
        let mut st = lock(&shared);
        let Some(ck) = st.checkpoints.last() else {
            return false;
        };
        let cut = ck.units_done;
        let mut restored = 0u64;
        for (d, buf) in self.dats.iter_mut().enumerate() {
            buf.clone_from(&ck.dats[d]);
            restored += (buf.len() * 8) as u64;
        }
        self.valid = ck.valid.clone();
        self.tag_seq = ck.tag_seq;
        self.boundaries = ck.boundaries;
        self.ckpt.units_done = 0;
        self.ckpt.replay_until = cut;
        self.ckpt.since_snapshot = 0;
        self.ckpt.dat_vers = ck.dat_vers.clone();
        st.journal.truncate(cut);
        st.rec.rollbacks += 1;
        st.rec.restored_bytes += restored;
        true
    }

    /// Executor hook: if the next unit is inside the replay window,
    /// serve the journaled loop result (no execution, no communication,
    /// no boundary crossing) and advance. `None` = execute live.
    pub(crate) fn ckpt_skip_loop(&mut self) -> Option<Vec<Vec<f64>>> {
        if self.ckpt.units_done >= self.ckpt.replay_until {
            return None;
        }
        let shared = self.ckpt.shared.as_ref()?;
        let mut st = lock(shared);
        match st.journal.get(self.ckpt.units_done) {
            Some(UnitRecord::Loop(gbls)) => {
                let gbls = gbls.clone();
                st.rec.replayed_loops += 1;
                drop(st);
                self.ckpt.units_done += 1;
                Some(gbls)
            }
            other => panic!(
                "rank {}: replay journal out of sync at unit {}: expected a loop, found {:?}",
                self.rank, self.ckpt.units_done, other
            ),
        }
    }

    /// Chain-side twin of [`RankEnv::ckpt_skip_loop`]: true = the chain
    /// was served from the journal and must not execute.
    pub(crate) fn ckpt_skip_chain(&mut self) -> bool {
        if self.ckpt.units_done >= self.ckpt.replay_until {
            return false;
        }
        let Some(shared) = self.ckpt.shared.as_ref() else {
            return false;
        };
        let mut st = lock(shared);
        match st.journal.get(self.ckpt.units_done) {
            Some(UnitRecord::Chain) => {
                st.rec.replayed_chains += 1;
                drop(st);
                self.ckpt.units_done += 1;
                true
            }
            other => panic!(
                "rank {}: replay journal out of sync at unit {}: expected a chain, found {:?}",
                self.rank, self.ckpt.units_done, other
            ),
        }
    }

    /// Executor hook: a loop unit completed live. Journals its result.
    pub(crate) fn ckpt_loop_done(&mut self, gbls: &[Vec<f64>]) {
        if !self.ckpt.active() {
            return;
        }
        let shared = self.ckpt.shared.clone().expect("active implies shared");
        let mut st = lock(&shared);
        st.journal.truncate(self.ckpt.units_done);
        st.journal.push(UnitRecord::Loop(gbls.to_vec()));
        drop(st);
        self.ckpt.units_done += 1;
    }

    /// Executor hook: a chain unit completed live. Journals it and
    /// takes a snapshot when the cadence comes due.
    pub(crate) fn ckpt_chain_done(&mut self) {
        if !self.ckpt.active() {
            return;
        }
        let shared = self.ckpt.shared.clone().expect("active implies shared");
        let mut st = lock(&shared);
        st.journal.truncate(self.ckpt.units_done);
        st.journal.push(UnitRecord::Chain);
        drop(st);
        self.ckpt.units_done += 1;
        self.ckpt.since_snapshot += 1;
        let every = self.ckpt.cfg.map_or(u64::MAX, |c| c.every);
        if self.ckpt.since_snapshot >= every {
            self.ckpt.since_snapshot = 0;
            self.ckpt_take();
        }
    }

    /// End-of-attempt hook (harness side, runs for failed attempts
    /// too): seal the cumulative recovery counters into the trace and
    /// stash the carryable state (plan cache, thread context, buffer
    /// pools) back into the shared slot for the next attempt. Detaches
    /// the env.
    pub(crate) fn ckpt_seal(&mut self) {
        let Some(shared) = self.ckpt.shared.take() else {
            return;
        };
        let mut st = lock(&shared);
        st.rec.attempts += 1;
        self.trace.recovery = st.rec;
        st.plans = Some(std::mem::take(&mut self.plans));
        st.threads = Some(std::mem::replace(
            &mut self.threads,
            ThreadCtx::new(Threading::single()),
        ));
        st.pools = Some(self.comm.take_pool());
    }
}
