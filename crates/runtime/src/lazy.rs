//! Lazy execution with automatic loop-chain detection.
//!
//! The paper's future-work list (§5) names "further automating the
//! code-gen process with lazy evaluation", citing the OPS approach
//! [Reguly et al. 2018]: instead of the programmer (or a configuration
//! file) naming chains, the runtime *queues* parallel-loop invocations
//! and materialises chains on its own, flushing when
//!
//! * a loop carries a global reduction (a synchronisation point — the
//!   loop-chain definition's hard boundary);
//! * chaining the next loop would push the required halo depth beyond
//!   what the layouts were built with;
//! * the host program needs results (an explicit [`LazyExec::flush`],
//!   e.g. before reading dats back); or
//! * the queue reaches a configurable length bound.
//!
//! Queued loops flush as a single Alg 2 chain when at least two are
//! pending (and the analysis finds anything to gain); a lone loop runs
//! as plain Alg 1. All ranks make identical decisions because the
//! analysis is a pure function of the (identical) loop stream.

use crate::env::RankEnv;
use crate::error::RuntimeError;
use crate::exec::{run_chain, run_loop};
use op2_core::chain::calc_halo_extents;
use op2_core::seq::LoopResult;
use op2_core::{ChainSpec, LoopSig, LoopSpec};

/// Deferred-execution queue. One per rank; identical decisions on every
/// rank by construction.
pub struct LazyExec {
    queue: Vec<LoopSpec>,
    /// Deepest halo the layouts support.
    max_depth: usize,
    /// Flush when this many loops are pending (bounds analysis cost).
    max_chain_len: usize,
    /// Chains flushed so far (for inspection/tests).
    pub chains_formed: usize,
    /// Loops that ran standalone.
    pub singles_run: usize,
}

impl LazyExec {
    /// A queue for layouts built with halo depth `max_depth`.
    pub fn new(max_depth: usize, max_chain_len: usize) -> Self {
        assert!(max_chain_len >= 1);
        LazyExec {
            queue: Vec::new(),
            max_depth,
            max_chain_len,
            chains_formed: 0,
            singles_run: 0,
        }
    }

    /// Queue a loop. Reductions force an immediate flush-and-run (their
    /// result is needed synchronously, and they terminate any chain);
    /// other loops defer until a flush condition triggers.
    pub fn enqueue(
        &mut self,
        env: &mut RankEnv<'_>,
        spec: &LoopSpec,
    ) -> Result<Option<LoopResult>, RuntimeError> {
        if spec.has_reduction() {
            self.flush(env)?;
            self.singles_run += 1;
            return run_loop(env, spec).map(Some);
        }
        // Would appending this loop exceed the supported halo depth?
        let mut sigs: Vec<LoopSig> = self.queue.iter().map(|l| l.sig()).collect();
        sigs.push(spec.sig());
        let extents = calc_halo_extents(&sigs);
        if extents.iter().any(|&e| e > self.max_depth) {
            self.flush(env)?;
        }
        self.queue.push(spec.clone());
        if self.queue.len() >= self.max_chain_len {
            self.flush(env)?;
        }
        Ok(None)
    }

    /// Execute everything pending: one loop runs standalone, several run
    /// as an automatically formed chain.
    ///
    /// Chains go through [`run_chain`]'s planned path: the chain's
    /// signature hashes only its structure (not the `ChainSpec` identity),
    /// so repeated flushes of the same loop sequence in the same
    /// dirty-state class reuse one cached [`crate::plan::ChainPlan`] —
    /// the inspection cost of automatic chaining amortises exactly like
    /// a hand-named chain's.
    pub fn flush(&mut self, env: &mut RankEnv<'_>) -> Result<(), RuntimeError> {
        match self.queue.len() {
            0 => {}
            1 => {
                let spec = self.queue.pop().expect("len checked");
                run_loop(env, &spec)?;
                self.singles_run += 1;
            }
            _ => {
                let loops = std::mem::take(&mut self.queue);
                let chain = ChainSpec::new("lazy", loops, None, &[])
                    .expect("queued loops form a valid chain");
                debug_assert!(chain.max_halo_layers() <= self.max_depth);
                run_chain(env, &chain)?;
                self.chains_formed += 1;
            }
        }
        Ok(())
    }

    /// Pending loop count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_distributed;
    use op2_core::{seq, AccessMode, Arg, Args, GblDecl};
    use op2_mesh::Quad2D;
    use op2_partition::{build_layouts, derive_ownership, rcb_partition};

    fn produce_kernel(args: &Args<'_>) {
        args.inc(0, 0, args.get(2, 0) + 1.0);
        args.inc(1, 0, args.get(3, 0) + 1.0);
    }
    fn consume_kernel(args: &Args<'_>) {
        args.inc(2, 0, args.get(0, 0));
        args.inc(3, 0, args.get(1, 0));
    }
    fn sum_kernel(args: &Args<'_>) {
        args.inc(1, 0, args.get(0, 0));
    }

    struct Fix {
        mesh: Quad2D,
        produce: LoopSpec,
        consume: LoopSpec,
        reduce: LoopSpec,
        dats: Vec<op2_core::DatId>,
    }

    fn fix() -> Fix {
        let mut mesh = Quad2D::generate(9, 9);
        let n = mesh.dom.set(mesh.nodes).size;
        let seed: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64).collect();
        let s = mesh.dom.decl_dat("s", mesh.nodes, 1, seed);
        let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
        let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(s, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(s, mesh.e2n, 1, AccessMode::Read),
            ],
            produce_kernel,
        );
        let consume = LoopSpec::new(
            "consume",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        let reduce = LoopSpec::with_gbls(
            "reduce",
            mesh.nodes,
            vec![Arg::dat_direct(b, AccessMode::Read), Arg::gbl(0, AccessMode::Inc)],
            vec![GblDecl::reduction(1)],
            sum_kernel,
        );
        Fix {
            mesh,
            produce,
            consume,
            reduce,
            dats: vec![s, a, b],
        }
    }

    /// Lazy execution forms a chain out of consecutive compatible loops
    /// and still matches the sequential reference exactly.
    #[test]
    fn auto_chains_and_matches() {
        let f = fix();
        let mut mesh = f.mesh;
        let mut seq_dom = mesh.dom.clone();
        seq::run_loop(&mut seq_dom, &f.produce);
        seq::run_loop(&mut seq_dom, &f.consume);
        let seq_red = seq::run_loop(&mut seq_dom, &f.reduce);

        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 4);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 4);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut lazy = LazyExec::new(2, 8);
            lazy.enqueue(env, &f.produce)?;
            lazy.enqueue(env, &f.consume)?;
            let red = lazy.enqueue(env, &f.reduce)?.expect("reduction runs eagerly");
            assert_eq!(lazy.pending(), 0);
            Ok((lazy.chains_formed, lazy.singles_run, red))
        });
        for &d in &f.dats {
            assert_eq!(seq_dom.dat(d).data, mesh.dom.dat(d).data);
        }
        for (chains, singles, red) in out.unwrap_results() {
            assert_eq!(chains, 1, "produce+consume must fuse");
            assert_eq!(singles, 1, "the reduction runs standalone");
            assert_eq!(red.gbls[0], seq_red.gbls[0]);
        }
    }

    /// Depth pressure forces a flush: with layouts built to depth 2, a
    /// produce→consume ladder of 3 dependent loops cannot fuse whole.
    #[test]
    fn flushes_on_depth_pressure() {
        let f = fix();
        let mut mesh = f.mesh;
        // ladder: produce(a<-s), consume(b<-a), then a loop reading b
        // into a third dat — depth would reach 3.
        let c = mesh.dom.decl_dat_zeros("c", mesh.nodes, 1);
        fn third_kernel(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        let third = LoopSpec::new(
            "third",
            mesh.edges,
            vec![
                Arg::dat_indirect(f.dats[2], mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(f.dats[2], mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(c, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(c, mesh.e2n, 1, AccessMode::Inc),
            ],
            third_kernel,
        );

        let mut seq_dom = mesh.dom.clone();
        for l in [&f.produce, &f.consume, &third] {
            seq::run_loop(&mut seq_dom, l);
        }

        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 4);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 4);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut lazy = LazyExec::new(2, 8);
            lazy.enqueue(env, &f.produce)?;
            lazy.enqueue(env, &f.consume)?;
            lazy.enqueue(env, &third)?; // depth 3 > 2: must flush first
            lazy.flush(env)?;
            Ok((lazy.chains_formed, lazy.singles_run))
        });
        for &d in &f.dats {
            assert_eq!(seq_dom.dat(d).data, mesh.dom.dat(d).data);
        }
        assert_eq!(seq_dom.dat(c).data, mesh.dom.dat(c).data);
        for (chains, singles) in out.unwrap_results() {
            // produce+consume fused; third ran alone (or vice versa,
            // depending on where the split lands — but exactly one
            // chain and one single).
            assert_eq!(chains, 1);
            assert_eq!(singles, 1);
        }
    }

    /// The queue-length bound flushes eagerly.
    #[test]
    fn flushes_on_queue_bound() {
        let f = fix();
        let mut mesh = f.mesh;
        let mut seq_dom = mesh.dom.clone();
        for _ in 0..4 {
            seq::run_loop(&mut seq_dom, &f.produce);
        }
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 2);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 2);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut lazy = LazyExec::new(2, 2);
            for _ in 0..4 {
                lazy.enqueue(env, &f.produce)?;
            }
            lazy.flush(env)?;
            Ok(lazy.chains_formed)
        });
        assert_eq!(seq_dom.dat(f.dats[1]).data, mesh.dom.dat(f.dats[1]).data);
        for chains in out.unwrap_results() {
            assert_eq!(chains, 2, "4 loops at bound 2 → two chains");
        }
    }

    /// Repeated flushes of the same auto-formed chain reuse one cached
    /// plan: flush 1 misses (fresh-gather validity class), flush 2
    /// misses (post-chain validity class), every later flush hits —
    /// the freshly created `ChainSpec` per flush doesn't matter because
    /// plans are keyed by structure hash.
    #[test]
    fn repeated_flushes_hit_the_plan_cache() {
        let f = fix();
        let mut mesh = f.mesh;
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 2);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 2);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut lazy = LazyExec::new(2, 8);
            for _ in 0..4 {
                lazy.enqueue(env, &f.produce)?;
                lazy.enqueue(env, &f.consume)?;
                lazy.flush(env)?;
            }
            Ok(())
        });
        for t in &out.traces {
            assert_eq!(t.plan.misses, 2, "rank {}: {:?}", t.rank, t.plan);
            assert_eq!(t.plan.hits, 2, "rank {}: {:?}", t.rank, t.plan);
        }
        out.unwrap_results();
    }
}
