//! # op2-runtime
//!
//! The distributed-memory back-ends of the reproduction:
//!
//! * [`comm`] — an in-process message-passing substrate standing in for
//!   MPI (per DESIGN.md: each rank is an OS thread; `isend` is
//!   non-blocking over an unbounded channel; receives match FIFO order
//!   per peer, which suffices because all ranks execute the same loop
//!   program). Every message is counted and sized — the quantities the
//!   paper's model and tables are built from.
//! * [`mod@env`] — per-rank state: local dat buffers in layout order, halo
//!   *validity depths* (the multi-level generalisation of OP2's dirty
//!   bit), pack/unpack of exchange segments, and global reductions.
//! * [`exec`] — the two execution algorithms: [`exec::run_loop`] is
//!   Alg 1 (per-loop halo exchange with latency hiding) and
//!   [`exec::run_chain`] is Alg 2 (one grouped, multi-level exchange per
//!   chain, cores of all loops overlapped with it, halo layers executed
//!   after).
//! * [`trace`] — instrumentation records: message counts, bytes, core
//!   and halo iteration counts per loop and per chain.
//! * [`harness`] — `run_distributed`: spawns one thread per rank,
//!   gathers dats in, scatters owned data back out, and returns the
//!   traces.
//! * [`lazy`] — deferred execution with *automatic* chain detection:
//!   the paper's §5 future-work item (lazy evaluation à la OPS),
//!   implemented here as a queue that fuses compatible loops into Alg 2
//!   chains and flushes on reductions, depth pressure or length bounds.
//! * [`plan`] — the inspector–executor plan subsystem: cached
//!   [`plan::ChainPlan`]s (import depths, core/execute ranges, pack
//!   index lists, tile schedules) keyed by chain signature and
//!   dirty-state class, with layout-epoch invalidation.
//! * [`threads`] — intra-rank threading: each rank owns a persistent
//!   worker pool that executes any lowered [`op2_core::Schedule`]
//!   (colored loop ranges and leveled tile plans alike) level by level,
//!   bitwise identical to sequential execution (`OP2_THREADS`).
//! * [`tuner`] — model-driven adaptive dispatch: feeds measured loop
//!   weights and layout-derived halo components into `op2-model`'s §3.2
//!   equations and picks standard (Alg 1) / CA (Alg 2) / tiled execution
//!   per chain online, recording each decision in the trace.
//! * [`checkpoint`] — chain-boundary checkpointing: epoch-tagged,
//!   incremental (dirty-tracked) in-memory snapshots of each rank's dat
//!   state, plus the unit journal that makes replay bit-exact.
//! * [`supervise`] — the self-healing driver: failure classification
//!   (dead rank vs straggler), coordinated rollback to the last globally
//!   consistent epoch, world restart with carried plan caches and buffer
//!   pools, and a bounded recovery budget degrading into
//!   [`RuntimeError::RecoveryExhausted`].
//! * [`service`] — the resident mesh-compute server: boot a world once
//!   (ranks, thread pools, warmed transports), register meshes, and
//!   multiplex many supervised jobs over them with a shared plan
//!   registry, bounded admission, same-shape batching, and per-job
//!   trace/crash isolation.
//! * [`rebalance`] — online rebalancing: a windowed imbalance detector
//!   over the measured per-unit wall times, cost-weighted re-sharding
//!   through `op2-partition`'s migration planner, a migration executor
//!   shipping dat slices and renumbering tables over the fault-tolerant
//!   transport, and the layout-epoch fence that keeps plan caches,
//!   registries and checkpoints coherent across the switch
//!   (`OP2_REBALANCE_THRESHOLD`, `OP2_REBALANCE_WINDOW`).

// Index-based loops over parallel arrays are the dominant idiom in this
// crate's mesh/partition kernels; iterator-zip rewrites obscure which
// array drives the bound without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod comm;
pub mod env;
pub mod error;
pub mod exec;
pub mod fault;
pub mod harness;
pub mod lazy;
pub mod plan;
pub mod rebalance;
pub mod service;
pub mod supervise;
pub mod threads;
pub mod trace;
pub mod tuner;

pub use checkpoint::{CheckpointConfig, CheckpointCtx, RankState};
pub use comm::{CommConfig, CommCounters, CommError, CommWorld, RankComm};
pub use env::{ExecMode, FuseMode, RankEnv};
pub use error::{ConfigError, RankFailure, RuntimeError};
pub use exec::{
    run_chain, run_chain_fused, run_chain_relaxed, run_chain_tiled, run_chain_unplanned,
    run_chain_unplanned_relaxed, run_loop, ExecHooks, NoHooks,
};
pub use fault::{Boundary, BoundaryAction, BoundaryKind, CrashSite, FaultPlan, FaultSpec};
pub use harness::{run_distributed, run_distributed_with, DistOutcome, RunOptions};
pub use lazy::LazyExec;
pub use env::{env_knob, parse_knob, parse_thread_pin, thread_pin_from_env};
pub use plan::{
    chain_signature, dirty_class, loop_signature, mesh_signature, plan_for, ChainPlan, FusedChain,
    FusedKey, PlanCache, PlanRegistry, PlanStats,
};
pub use service::{
    exec_job_program, Job, JobOutcome, JobStep, JobTrace, Service, ServiceConfig, ServiceError,
    ServiceMetrics,
};
pub use rebalance::{
    detect, element_costs, fence_slots, rebalance, ship_migration, LoadEstimate, RebalanceConfig,
    RebalanceOutcome, RebalancePolicy,
};
pub use supervise::{run_supervised, run_supervised_with_state, SuperviseOptions};
pub use threads::{
    chunk_owner, measure_sync_s, run_dag, run_schedule_dataflow, run_schedule_pooled,
    run_schedule_pooled_ctx, DataflowScratch, ExecStats, ThreadCtx, ThreadPool, Threading,
};
pub use trace::{
    ChainRec, ClassRec, ExchangeRec, LoopRec, RankTrace, RebalanceRec, RecoveryRec, SchedKind,
    ThreadRec, TunerRec,
};
pub use tuner::{Backend, Tuner, TunerMode};
