//! Intra-rank threaded execution: configuration, worker pool, coloring
//! cache.
//!
//! Each rank (already an OS thread under the harness) can spread its
//! kernel iterations over a pool of worker threads, executing a loop's
//! block coloring ([`op2_core::par`]) color by color: within a color,
//! blocks are claimed from a shared cursor; between colors the pool
//! barriers. The levelized coloring preserves per-element update order,
//! so results are bitwise identical to sequential execution for every
//! thread count.
//!
//! Pools are process-global, keyed by thread count: ranks requesting the
//! same `n_threads` share one pool (their color rounds serialize on it,
//! which is semantically transparent). Workers park on their channel
//! between rounds — no spinning.
//!
//! Control surface: [`Threading::from_env`] reads `OP2_THREADS`
//! (`1`/unset = sequential, `0`/`auto` = hardware parallelism, `N` =
//! exactly N) and `OP2_BLOCK_SIZE`; programmatic control goes through
//! [`crate::harness::RunOptions`].

use op2_core::par::BlockColoring;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// Default iterations per coloring block: big enough to amortize the
/// per-block claim, small enough to load-balance the tail.
pub const DEFAULT_BLOCK_SIZE: usize = 256;

/// Threading configuration for one rank's kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threading {
    /// Threads executing each colored loop (1 = sequential, the
    /// pre-subsystem behaviour).
    pub n_threads: usize,
    /// Iterations per coloring block.
    pub block_size: usize,
}

impl Threading {
    /// Sequential execution (no pool involvement at all).
    pub fn single() -> Threading {
        Threading {
            n_threads: 1,
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }

    /// `n_threads` with the default block size.
    pub fn with_threads(n_threads: usize) -> Threading {
        assert!(n_threads >= 1, "n_threads must be at least 1");
        Threading {
            n_threads,
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }

    /// Read `OP2_THREADS` (unset/`1` = sequential, `0`/`auto` = hardware
    /// parallelism, `N` = exactly N threads) and `OP2_BLOCK_SIZE`
    /// (unset = [`DEFAULT_BLOCK_SIZE`]). Panics on malformed values — a
    /// silent fallback would mask a typo'd override.
    pub fn from_env() -> Threading {
        let n_threads = match std::env::var("OP2_THREADS") {
            Err(_) => 1,
            Ok(v) => match v.as_str() {
                "" | "1" => 1,
                "0" | "auto" => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
                other => other.parse::<usize>().unwrap_or_else(|_| {
                    panic!("OP2_THREADS must be auto|0|N, got `{other}`")
                }),
            },
        };
        let block_size = match std::env::var("OP2_BLOCK_SIZE") {
            Err(_) => DEFAULT_BLOCK_SIZE,
            Ok(v) => {
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| panic!("OP2_BLOCK_SIZE must be a positive integer, got `{v}`"));
                assert!(n >= 1, "OP2_BLOCK_SIZE must be at least 1");
                n
            }
        };
        Threading {
            n_threads: n_threads.max(1),
            block_size,
        }
    }

    /// True when execution actually fans out (more than one thread).
    pub fn active(&self) -> bool {
        self.n_threads > 1
    }
}

impl Default for Threading {
    /// Environment-derived: `OP2_THREADS` unset means sequential, so the
    /// default is zero behaviour change.
    fn default() -> Threading {
        Threading::from_env()
    }
}

/// One dispatched round of work: `n_tasks` tasks claimed from a shared
/// cursor by every participant (workers + the caller).
struct Round {
    /// The task body, lifetime-erased: the caller blocks in
    /// [`ThreadPool::run`] until every participant finishes, so the
    /// referent outlives all use.
    task: *const (dyn Fn(usize) + Sync),
    cursor: AtomicUsize,
    n_tasks: usize,
    /// Workers still running this round; the caller waits for zero.
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

struct RoundPtr(*const Round);
// SAFETY: the Round lives on the caller's stack for the full duration of
// the round (the caller blocks until `pending` hits zero), and all
// mutation goes through atomics / the latch mutex.
unsafe impl Send for RoundPtr {}

enum Msg {
    Run(RoundPtr),
    Shutdown,
}

/// A persistent pool of `n_threads - 1` parked workers; the calling
/// thread is the final participant of every round.
pub struct ThreadPool {
    senders: Vec<mpsc::Sender<Msg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
}

impl ThreadPool {
    /// Spawn a pool where rounds run on `n_threads` threads total
    /// (`n_threads - 1` workers plus the caller).
    pub fn new(n_threads: usize) -> ThreadPool {
        assert!(n_threads >= 1);
        let mut senders = Vec::with_capacity(n_threads - 1);
        let mut handles = Vec::with_capacity(n_threads - 1);
        for w in 1..n_threads {
            let (tx, rx) = mpsc::channel::<Msg>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("op2-worker-{w}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn pool worker"),
            );
        }
        ThreadPool {
            senders,
            handles,
            n_threads,
        }
    }

    /// Total participants per round.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Execute `task(i)` for every `i in 0..n_tasks`, spread over the
    /// pool plus the calling thread; returns when all tasks finished.
    /// Tasks within a round may run concurrently in any order — callers
    /// pass one coloring color per round, so concurrency is safe and
    /// order within the round is immaterial.
    ///
    /// Propagates panics: if any participant's task panics, `run`
    /// finishes the round (other participants keep draining) and then
    /// panics on the calling thread.
    pub fn run(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        // SAFETY: lifetime erasure only — `run` does not return until
        // every participant is done with the pointer.
        let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let round = Round {
            task,
            cursor: AtomicUsize::new(0),
            n_tasks,
            pending: Mutex::new(self.senders.len()),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        };
        for tx in &self.senders {
            tx.send(Msg::Run(RoundPtr(&round)))
                .expect("pool worker alive");
        }
        // The caller participates too.
        let caller = catch_unwind(AssertUnwindSafe(|| drain(&round)));
        // Wait out the workers before the Round leaves the stack.
        let mut pending = round.pending.lock().expect("round latch poisoned");
        while *pending > 0 {
            pending = round.done.wait(pending).expect("round latch poisoned");
        }
        drop(pending);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if round.panicked.load(Ordering::SeqCst) {
            panic!("a pool worker panicked during colored execution");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim-and-run until the round's cursor runs dry.
fn drain(round: &Round) {
    // SAFETY: see `Round::task`.
    let task = unsafe { &*round.task };
    loop {
        let i = round.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= round.n_tasks {
            break;
        }
        task(i);
    }
}

fn worker_loop(rx: mpsc::Receiver<Msg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Run(ptr) => {
                // SAFETY: the sender blocks until we signal `pending`.
                let round = unsafe { &*ptr.0 };
                if catch_unwind(AssertUnwindSafe(|| drain(round))).is_err() {
                    round.panicked.store(true, Ordering::SeqCst);
                }
                let mut pending = round.pending.lock().expect("round latch poisoned");
                *pending -= 1;
                if *pending == 0 {
                    round.done.notify_all();
                }
            }
            Msg::Shutdown => break,
        }
    }
}

/// Process-global pool registry: one pool per thread count, created on
/// first request and kept for the process lifetime (workers park on
/// their channels between rounds).
pub fn shared_pool(n_threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().expect("pool registry poisoned");
    Arc::clone(
        pools
            .entry(n_threads)
            .or_insert_with(|| Arc::new(ThreadPool::new(n_threads))),
    )
}

/// Per-rank threading state: the configuration plus a cache of block
/// colorings for the *standalone* (Alg 1) loop path, keyed by (loop
/// signature, range, block size). Chain loops cache their colorings in
/// the [`crate::plan::ChainPlan`] instead, alongside the other
/// inspector products.
pub struct ThreadCtx {
    /// Active configuration.
    pub opts: Threading,
    colorings: HashMap<(u64, usize, usize, usize), Arc<BlockColoring>>,
    /// Colorings built by the standalone path (inspector work).
    pub color_builds: u64,
    /// Colorings served from the standalone cache.
    pub color_reuses: u64,
}

impl ThreadCtx {
    /// Fresh context with the given configuration.
    pub fn new(opts: Threading) -> ThreadCtx {
        ThreadCtx {
            opts,
            colorings: HashMap::new(),
            color_builds: 0,
            color_reuses: 0,
        }
    }

    /// Cached coloring for `(loop signature, start, end, block_size)`.
    pub fn cached(&mut self, key: (u64, usize, usize, usize)) -> Option<Arc<BlockColoring>> {
        let hit = self.colorings.get(&key).cloned();
        if hit.is_some() {
            self.color_reuses += 1;
        }
        hit
    }

    /// Store a freshly built coloring.
    pub fn store(&mut self, key: (u64, usize, usize, usize), bc: Arc<BlockColoring>) {
        self.color_builds += 1;
        self.colorings.insert(key, bc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_task_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_reusable_across_rounds() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(57, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 570);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let total = AtomicUsize::new(0);
        pool.run(13, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 13);
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = ThreadPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                if i == 33 {
                    panic!("task 33 exploded");
                }
            });
        }));
        assert!(res.is_err());
        // The pool survives a panicked round.
        let total = AtomicUsize::new(0);
        pool.run(8, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn shared_pools_keyed_by_thread_count() {
        let a = shared_pool(2);
        let b = shared_pool(2);
        let c = shared_pool(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.n_threads(), 3);
    }

    #[test]
    fn threading_default_without_env_is_sequential() {
        // The test runner does not set OP2_THREADS.
        if std::env::var("OP2_THREADS").is_err() {
            assert_eq!(Threading::default().n_threads, 1);
            assert!(!Threading::default().active());
        }
    }

    #[test]
    fn thread_ctx_caches_by_key() {
        let mut ctx = ThreadCtx::new(Threading::with_threads(2));
        let key = (42u64, 0usize, 100usize, 16usize);
        assert!(ctx.cached(key).is_none());
        let bc = Arc::new(op2_core::par::color_blocks_raw(0, 100, 16, &[], &[]));
        ctx.store(key, Arc::clone(&bc));
        assert!(Arc::ptr_eq(&ctx.cached(key).unwrap(), &bc));
        assert_eq!((ctx.color_builds, ctx.color_reuses), (1, 1));
    }
}
