//! Intra-rank threaded execution: configuration, worker pool, schedule
//! cache.
//!
//! Each rank (already an OS thread under the harness) can spread its
//! kernel iterations over a pool of worker threads by executing a
//! lowered [`Schedule`] level by level: within a level, chunks are
//! claimed from a shared cursor; between levels the pool barriers.
//! Order-preserving lowerings (the levelized block coloring, the leveled
//! tile plan) keep results bitwise identical to sequential execution for
//! every thread count — see [`op2_core::schedule`].
//!
//! Each rank **owns** its pool ([`ThreadCtx::pool`]), created lazily at
//! the rank's configured width; the harness divides `OP2_THREADS` across
//! in-process ranks ([`Threading::split_across`]) so many threaded ranks
//! do not oversubscribe the node. Workers park on their channel between
//! rounds — no spinning.
//!
//! Control surface: [`Threading::from_env`] reads `OP2_THREADS`
//! (`1`/unset = sequential, `0`/`auto` = hardware parallelism, `N` =
//! exactly N) and `OP2_BLOCK_SIZE` (`auto` = per-loop adaptive sizing
//! from the measured conflict degree); programmatic control goes through
//! [`crate::harness::RunOptions`].

use crate::error::ConfigError;
use op2_core::dag::ChunkDag;
use op2_core::schedule::{run_chunk, BoundLoop, SchedCtx, Schedule};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Default iterations per coloring block: big enough to amortize the
/// per-block claim, small enough to load-balance the tail.
pub const DEFAULT_BLOCK_SIZE: usize = 256;

/// Threading configuration for one rank's kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threading {
    /// Threads executing each colored loop (1 = sequential, the
    /// pre-subsystem behaviour).
    pub n_threads: usize,
    /// Iterations per coloring block (ignored when `auto_block` is set).
    pub block_size: usize,
    /// Pick per-loop block sizes from the measured conflict degree
    /// ([`op2_core::par::adaptive_block_size`]) instead of `block_size`.
    pub auto_block: bool,
}

impl Threading {
    /// Sequential execution (no pool involvement at all).
    pub fn single() -> Threading {
        Threading {
            n_threads: 1,
            block_size: DEFAULT_BLOCK_SIZE,
            auto_block: false,
        }
    }

    /// `n_threads` with the default block size.
    pub fn with_threads(n_threads: usize) -> Threading {
        assert!(n_threads >= 1, "n_threads must be at least 1");
        Threading {
            n_threads,
            block_size: DEFAULT_BLOCK_SIZE,
            auto_block: false,
        }
    }

    /// Parse the raw `OP2_THREADS` / `OP2_BLOCK_SIZE` values (`None` =
    /// variable unset). Pure — no environment access — so the harness
    /// can validate configuration once at startup and tests can cover
    /// every malformed shape without mutating process state.
    pub fn parse(threads: Option<&str>, block: Option<&str>) -> Result<Threading, ConfigError> {
        let n_threads = match threads {
            None | Some("") | Some("1") => 1,
            Some("0") | Some("auto") => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(other) => match other.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    return Err(ConfigError::Threads {
                        value: other.to_string(),
                    })
                }
            },
        };
        let (block_size, auto_block) = match block {
            None => (DEFAULT_BLOCK_SIZE, false),
            Some("auto") => (DEFAULT_BLOCK_SIZE, true),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => (n, false),
                _ => {
                    return Err(ConfigError::BlockSize {
                        value: v.to_string(),
                    })
                }
            },
        };
        Ok(Threading {
            n_threads,
            block_size,
            auto_block,
        })
    }

    /// Read `OP2_THREADS` (unset/`1` = sequential, `0`/`auto` = hardware
    /// parallelism, `N` = exactly N threads) and `OP2_BLOCK_SIZE`
    /// (unset = [`DEFAULT_BLOCK_SIZE`], `auto` = adaptive per-loop
    /// sizing). Returns a typed [`ConfigError`] on malformed values —
    /// the harness reports it once at startup instead of panicking
    /// inside a rank thread.
    pub fn try_from_env() -> Result<Threading, ConfigError> {
        let threads = std::env::var("OP2_THREADS").ok();
        let block = std::env::var("OP2_BLOCK_SIZE").ok();
        Threading::parse(threads.as_deref(), block.as_deref())
    }

    /// [`Threading::try_from_env`], panicking on malformed values — the
    /// legacy entry point kept for contexts with no error channel (a
    /// silent fallback would mask a typo'd override).
    pub fn from_env() -> Threading {
        Threading::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// True when execution actually fans out (more than one thread).
    pub fn active(&self) -> bool {
        self.n_threads > 1
    }

    /// Divide this budget across `ranks` in-process ranks: each rank's
    /// pool gets `n_threads / ranks` workers (at least 1), so co-located
    /// threaded ranks stop oversubscribing the node's cores. Explicit
    /// per-rank configurations ([`crate::harness::RunOptions::threading`])
    /// bypass this.
    pub fn split_across(mut self, ranks: usize) -> Threading {
        assert!(ranks >= 1);
        self.n_threads = (self.n_threads / ranks).max(1);
        self
    }
}

impl Default for Threading {
    /// Environment-derived: `OP2_THREADS` unset means sequential, so the
    /// default is zero behaviour change.
    fn default() -> Threading {
        Threading::from_env()
    }
}

/// One dispatched round of work: `n_tasks` tasks claimed from a shared
/// cursor by every participant (workers + the caller).
struct Round {
    /// The task body, lifetime-erased: the caller blocks in
    /// [`ThreadPool::run`] until every participant finishes, so the
    /// referent outlives all use. Called as `task(worker, i)` — the
    /// stable participant index lets fused execution hand each worker
    /// its own reusable [`SchedCtx`].
    task: *const (dyn Fn(usize, usize) + Sync),
    cursor: AtomicUsize,
    n_tasks: usize,
    /// Workers still running this round; the caller waits for zero.
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

struct RoundPtr(*const Round);
// SAFETY: the Round lives on the caller's stack for the full duration of
// the round (the caller blocks until `pending` hits zero), and all
// mutation goes through atomics / the latch mutex.
unsafe impl Send for RoundPtr {}

enum Msg {
    Run(RoundPtr),
    Shutdown,
}

/// A persistent pool of `n_threads - 1` parked workers; the calling
/// thread is the final participant of every round.
pub struct ThreadPool {
    senders: Vec<mpsc::Sender<Msg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
}

impl ThreadPool {
    /// Spawn a pool where rounds run on `n_threads` threads total
    /// (`n_threads - 1` workers plus the caller).
    pub fn new(n_threads: usize) -> ThreadPool {
        assert!(n_threads >= 1);
        let mut senders = Vec::with_capacity(n_threads - 1);
        let mut handles = Vec::with_capacity(n_threads - 1);
        for w in 1..n_threads {
            let (tx, rx) = mpsc::channel::<Msg>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("op2-worker-{w}"))
                    .spawn(move || worker_loop(rx, w))
                    .expect("spawn pool worker"),
            );
        }
        ThreadPool {
            senders,
            handles,
            n_threads,
        }
    }

    /// Total participants per round.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Execute `task(i)` for every `i in 0..n_tasks`, spread over the
    /// pool plus the calling thread; returns when all tasks finished.
    /// Tasks within a round may run concurrently in any order — callers
    /// pass one coloring color per round, so concurrency is safe and
    /// order within the round is immaterial.
    ///
    /// Propagates panics: if any participant's task panics, `run`
    /// finishes the round (other participants keep draining) and then
    /// panics on the calling thread.
    pub fn run(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.run_indexed(n_tasks, &|_, i| task(i));
    }

    /// [`ThreadPool::run`] with participant identity: `task(worker, i)`
    /// where `worker` is a stable index in `0..n_threads` (0 = the
    /// caller) unique to one concurrent participant. Fused schedule
    /// execution uses it to give every participant its own scratch
    /// context without locking.
    pub fn run_indexed(&self, n_tasks: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        // SAFETY: lifetime erasure only — `run_indexed` does not return
        // until every participant is done with the pointer.
        let task: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(task) };
        let round = Round {
            task,
            cursor: AtomicUsize::new(0),
            n_tasks,
            pending: Mutex::new(self.senders.len()),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        };
        for tx in &self.senders {
            tx.send(Msg::Run(RoundPtr(&round)))
                .expect("pool worker alive");
        }
        // The caller participates too, as worker 0.
        let caller = catch_unwind(AssertUnwindSafe(|| drain(&round, 0)));
        // Wait out the workers before the Round leaves the stack.
        let mut pending = round.pending.lock().expect("round latch poisoned");
        while *pending > 0 {
            pending = round.done.wait(pending).expect("round latch poisoned");
        }
        drop(pending);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if round.panicked.load(Ordering::SeqCst) {
            panic!("a pool worker panicked during colored execution");
        }
    }

    /// Split `0..total` into one even contiguous span per pool thread
    /// and run `task(lo, hi)` for each non-empty span — the fork/join
    /// shape of the threaded pack/unpack engine. Contiguous disjoint
    /// spans give callers race freedom for slice copies without any
    /// per-item claiming.
    pub fn run_spans(&self, total: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        let n = self.n_threads;
        self.run(n, &|t| {
            let lo = total * t / n;
            let hi = total * (t + 1) / n;
            if lo < hi {
                task(lo, hi);
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim-and-run until the round's cursor runs dry.
fn drain(round: &Round, worker: usize) {
    // SAFETY: see `Round::task`.
    let task = unsafe { &*round.task };
    loop {
        let i = round.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= round.n_tasks {
            break;
        }
        task(worker, i);
    }
}

fn worker_loop(rx: mpsc::Receiver<Msg>, worker: usize) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Run(ptr) => {
                // SAFETY: the sender blocks until we signal `pending`.
                let round = unsafe { &*ptr.0 };
                if catch_unwind(AssertUnwindSafe(|| drain(round, worker))).is_err() {
                    round.panicked.store(true, Ordering::SeqCst);
                }
                let mut pending = round.pending.lock().expect("round latch poisoned");
                *pending -= 1;
                if *pending == 0 {
                    round.done.notify_all();
                }
            }
            Msg::Shutdown => break,
        }
    }
}

/// What one pooled schedule execution measured — the per-level walls the
/// trace always recorded, plus the per-worker busy/idle split and the
/// dataflow executor's steal/fire counters (zero under the leveled
/// walk). `idle_ns[w]` is uniform across both executors: total wall
/// minus worker `w`'s summed chunk-execution time, so barrier waiting
/// under levels and spin/steal waiting under dataflow are measured with
/// the same ruler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Wall-clock nanoseconds per level (dataflow runs have a single
    /// barrier-free "level": the whole drain).
    pub level_ns: Vec<u64>,
    /// Total wall-clock nanoseconds of the execution.
    pub total_ns: u64,
    /// Per-worker idle nanoseconds (`total_ns` − busy).
    pub idle_ns: Vec<u64>,
    /// Per-worker successful steals (always 0 under levels).
    pub steals: Vec<u64>,
    /// Per-worker chunks executed.
    pub fires: Vec<u64>,
    /// Serial depth of the execution: the DAG's critical path under
    /// dataflow, the level count under the leveled walk.
    pub crit_path: usize,
    /// Which executor ran.
    pub dataflow: bool,
}

/// Execute a lowered [`Schedule`] on a pool, level by level: within a
/// level, chunks are claimed from the round cursor; the pool barriers
/// between levels. Returns the per-level walls and per-worker
/// busy/idle counters ([`ExecStats`]).
///
/// With an order-preserving lowering, results are bitwise identical to
/// [`op2_core::schedule::run_schedule`] for any pool width.
pub fn run_schedule_pooled(pool: &ThreadPool, bound: &[BoundLoop], sched: &Schedule) -> ExecStats {
    let mut ctxs: Vec<SchedCtx> = Vec::new();
    run_schedule_pooled_ctx(pool, bound, sched, &mut ctxs)
}

/// One reusable [`SchedCtx`] per pool participant; each worker touches
/// only its own slot, identified by the stable index
/// [`ThreadPool::run_indexed`] hands out.
struct CtxSlab<'a>(&'a [UnsafeCell<SchedCtx>]);
// SAFETY: disjoint access — worker `w` dereferences only slot `w`, and
// participant indices are unique within a round.
unsafe impl Sync for CtxSlab<'_> {}

impl CtxSlab<'_> {
    fn slot(&self, w: usize) -> *mut SchedCtx {
        self.0[w].get()
    }
}

/// [`run_schedule_pooled`] with caller-owned per-worker contexts, so
/// repeated executions of a (fused) schedule reuse the scratch pools and
/// slot buffers instead of reallocating: zero heap allocations at steady
/// state. `ctxs` is grown to the pool width on entry and every context
/// is prepared against `(bound, sched)` before the first round.
pub fn run_schedule_pooled_ctx(
    pool: &ThreadPool,
    bound: &[BoundLoop],
    sched: &Schedule,
    ctxs: &mut Vec<SchedCtx>,
) -> ExecStats {
    debug_assert_eq!(bound.len(), sched.n_loops);
    let w_count = pool.n_threads();
    if ctxs.len() < w_count {
        ctxs.resize_with(w_count, SchedCtx::new);
    }
    for ctx in ctxs.iter_mut() {
        ctx.prepare(bound, sched);
    }
    // SAFETY: `UnsafeCell<SchedCtx>` has the same layout as `SchedCtx`
    // (repr(transparent)) and we hold the slice exclusively.
    let slab = CtxSlab(unsafe {
        &*(ctxs.as_mut_slice() as *mut [SchedCtx] as *const [UnsafeCell<SchedCtx>])
    });
    let busy: Vec<AtomicU64> = (0..w_count).map(|_| AtomicU64::new(0)).collect();
    let fires: Vec<AtomicU64> = (0..w_count).map(|_| AtomicU64::new(0)).collect();
    let mut level_ns = Vec::with_capacity(sched.levels.len());
    let t0 = Instant::now();
    for level in &sched.levels {
        let l0 = Instant::now();
        pool.run_indexed(level.chunks.len(), &|w, ci| {
            // SAFETY: see `CtxSlab` — worker `w` owns slot `w`.
            let ctx = unsafe { &mut *slab.slot(w) };
            let c0 = Instant::now();
            run_chunk(bound, sched, &level.chunks[ci], ctx);
            busy[w].fetch_add(c0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            fires[w].fetch_add(1, Ordering::Relaxed);
        });
        level_ns.push(l0.elapsed().as_nanos() as u64);
    }
    let total_ns = t0.elapsed().as_nanos() as u64;
    ExecStats {
        level_ns,
        total_ns,
        idle_ns: busy
            .iter()
            .map(|b| total_ns.saturating_sub(b.load(Ordering::Relaxed)))
            .collect(),
        steals: vec![0; w_count],
        fires: fires.iter().map(|f| f.load(Ordering::Relaxed)).collect(),
        crit_path: sched.n_levels(),
        dataflow: false,
    }
}

/// Reusable state of the dataflow executor: the per-chunk dependency
/// counters and the per-worker owner-first steal stacks, persisted in
/// [`ThreadCtx`] across executions so the steady state performs **zero
/// heap allocations in the steal queues** — every growth is counted in
/// [`DataflowScratch::allocs`], which the bench and tests assert flat.
#[derive(Default)]
pub struct DataflowScratch {
    /// Live firing counters, re-armed from [`ChunkDag::deps`] per run.
    deps: Vec<AtomicU32>,
    /// One LIFO stack per worker: the owner pushes and pops at the tail
    /// (hot end); thieves pop the tail of the *richest* victim.
    queues: Vec<Mutex<Vec<u32>>>,
    /// Racy size hints for the steal-victim scan (exact under the lock).
    sizes: Vec<AtomicUsize>,
    busy: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
    fires: Vec<AtomicU64>,
    allocs: u64,
}

impl DataflowScratch {
    /// Heap allocations (or capacity growths) the dep counters and steal
    /// queues have performed so far — flat across repeat executions of
    /// warmed shapes.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Size for `workers` workers over `n_chunks` chunks, counting every
    /// growth; clears all queues and counters.
    fn prepare(&mut self, workers: usize, n_chunks: usize) {
        if self.deps.len() < n_chunks {
            self.allocs += 1;
            self.deps.resize_with(n_chunks, || AtomicU32::new(0));
        }
        if self.queues.len() < workers {
            self.allocs += 1;
            self.queues.resize_with(workers, || Mutex::new(Vec::new()));
            self.sizes.resize_with(workers, || AtomicUsize::new(0));
            self.busy.resize_with(workers, || AtomicU64::new(0));
            self.steals.resize_with(workers, || AtomicU64::new(0));
            self.fires.resize_with(workers, || AtomicU64::new(0));
        }
        for w in 0..workers {
            let mut q = self.queues[w].lock().expect("steal queue poisoned");
            q.clear();
            let cap = q.capacity();
            if cap < n_chunks {
                self.allocs += 1;
                q.reserve_exact(n_chunks - cap);
            }
            self.sizes[w].store(0, Ordering::Relaxed);
            self.busy[w].store(0, Ordering::Relaxed);
            self.steals[w].store(0, Ordering::Relaxed);
            self.fires[w].store(0, Ordering::Relaxed);
        }
    }

    /// Pop owner-first: the worker's own tail, else the tail of the
    /// richest victim (counted as a steal).
    fn pop(&self, me: usize, workers: usize) -> Option<u32> {
        {
            let mut q = self.queues[me].lock().expect("steal queue poisoned");
            if let Some(c) = q.pop() {
                self.sizes[me].store(q.len(), Ordering::Release);
                return Some(c);
            }
        }
        let mut best = usize::MAX;
        let mut best_size = 0usize;
        for v in 0..workers {
            if v == me {
                continue;
            }
            let s = self.sizes[v].load(Ordering::Acquire);
            if s > best_size {
                best_size = s;
                best = v;
            }
        }
        if best != usize::MAX {
            let mut q = self.queues[best].lock().expect("steal queue poisoned");
            if let Some(c) = q.pop() {
                self.sizes[best].store(q.len(), Ordering::Release);
                self.steals[me].fetch_add(1, Ordering::Relaxed);
                return Some(c);
            }
        }
        None
    }

    /// Push a ready chunk onto its owner's stack.
    fn push(&self, owner: usize, c: u32) {
        let mut q = self.queues[owner].lock().expect("steal queue poisoned");
        q.push(c);
        self.sizes[owner].store(q.len(), Ordering::Release);
    }
}

/// Which worker owns chunk `c` — where it is seeded when its counter
/// hits zero. With `pin`, chunk ids (level-major, ascending iteration
/// ranges) map to contiguous per-worker ranges, so across repeated
/// executions each worker keeps first-touching the same dat pages and
/// they stay hot in its cache/NUMA node. Without `pin`, round-robin
/// spreads ready chunks for load balance.
#[inline]
pub fn chunk_owner(c: usize, workers: usize, n_chunks: usize, pin: bool) -> usize {
    if pin {
        c * workers / n_chunks.max(1)
    } else {
        c % workers
    }
}

/// Drain a [`ChunkDag`] on the pool: every chunk fires the moment its
/// dependency counter reaches zero — no level barriers. Ready chunks go
/// to their owner's LIFO stack; idle workers steal from the richest
/// victim. `task(worker, chunk)` runs each chunk; `worker` is a unique
/// instance id in `0..n_threads` (at most one live instance per id, so
/// it can index per-worker scratch).
///
/// Determinism: the DAG orders every conflicting chunk pair in
/// sequential order (see [`ChunkDag::build`]), so any queue/steal order
/// yields the sequential per-element update sequence — results are
/// bitwise identical to the leveled walk and to sequential execution.
///
/// Panic containment: a panicking chunk aborts the drain (counters are
/// left undecremented, spinning workers are released) and the panic
/// re-raises on the caller via the pool's round machinery.
pub fn run_dag(
    pool: &ThreadPool,
    dag: &ChunkDag,
    pin: bool,
    scratch: &mut DataflowScratch,
    task: &(dyn Fn(usize, usize) + Sync),
) -> ExecStats {
    let w_count = pool.n_threads();
    let n = dag.n_chunks;
    scratch.prepare(w_count, n);
    if n == 0 {
        return ExecStats {
            crit_path: dag.crit_path as usize,
            dataflow: true,
            idle_ns: vec![0; w_count],
            steals: vec![0; w_count],
            fires: vec![0; w_count],
            ..ExecStats::default()
        };
    }
    for (i, &d) in dag.deps.iter().enumerate() {
        scratch.deps[i].store(d, Ordering::Relaxed);
    }
    // Seed roots in reverse so each owner's LIFO stack pops them in
    // ascending chunk-id order (the sequential front of the DAG first).
    for &r in dag.roots.iter().rev() {
        scratch.push(chunk_owner(r as usize, w_count, n, pin), r);
    }
    let remaining = AtomicUsize::new(n);
    let aborted = AtomicBool::new(false);
    let scratch_ref: &DataflowScratch = scratch;
    let t0 = Instant::now();
    pool.run_indexed(w_count, &|_, me| {
        // `me` is the claimed instance id, not the participant index:
        // the round cursor may hand one participant several instances
        // (which then run serially), and queue/scratch identity must be
        // unique per concurrent drainer.
        loop {
            match scratch_ref.pop(me, w_count) {
                Some(c) => {
                    let c0 = Instant::now();
                    let ran = catch_unwind(AssertUnwindSafe(|| task(me, c as usize)));
                    scratch_ref.busy[me].fetch_add(c0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    scratch_ref.fires[me].fetch_add(1, Ordering::Relaxed);
                    if let Err(payload) = ran {
                        aborted.store(true, Ordering::SeqCst);
                        remaining.store(0, Ordering::SeqCst);
                        resume_unwind(payload);
                    }
                    for &s in &dag.succs[c as usize] {
                        // AcqRel: the final decrement synchronizes with
                        // every predecessor's, so the chunk that fires
                        // `s` (possibly on another worker, via the queue
                        // mutex) sees all predecessors' data writes.
                        if scratch_ref.deps[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                            scratch_ref.push(chunk_owner(s as usize, w_count, n, pin), s);
                        }
                    }
                    remaining.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    // `aborted` is checked separately: a completion
                    // racing the abort's `store(0)` can wrap `remaining`
                    // past zero.
                    if aborted.load(Ordering::SeqCst) || remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    });
    let total_ns = t0.elapsed().as_nanos() as u64;
    let load = |v: &[AtomicU64]| -> Vec<u64> {
        v[..w_count]
            .iter()
            .map(|x| x.load(Ordering::Relaxed))
            .collect()
    };
    ExecStats {
        level_ns: vec![total_ns],
        total_ns,
        idle_ns: load(&scratch.busy)
            .into_iter()
            .map(|b| total_ns.saturating_sub(b))
            .collect(),
        steals: load(&scratch.steals),
        fires: load(&scratch.fires),
        crit_path: dag.crit_path as usize,
        dataflow: true,
    }
}

/// [`run_schedule_pooled_ctx`]'s dataflow twin: drain `sched`'s chunks
/// in [`ChunkDag`] dependency order on the pool, with per-worker
/// contexts for scratch reuse. Bitwise identical to the leveled walk
/// (and to sequential execution) for order-preserving lowerings at any
/// pool width.
pub fn run_schedule_dataflow(
    pool: &ThreadPool,
    bound: &[BoundLoop],
    sched: &Schedule,
    dag: &ChunkDag,
    pin: bool,
    ctxs: &mut Vec<SchedCtx>,
    scratch: &mut DataflowScratch,
) -> ExecStats {
    debug_assert_eq!(bound.len(), sched.n_loops);
    debug_assert_eq!(dag.n_chunks, sched.n_chunks());
    let w_count = pool.n_threads();
    if ctxs.len() < w_count {
        ctxs.resize_with(w_count, SchedCtx::new);
    }
    for ctx in ctxs.iter_mut() {
        ctx.prepare(bound, sched);
    }
    // SAFETY: see `run_schedule_pooled_ctx`; instance ids are unique per
    // round, so slot access stays disjoint.
    let slab = CtxSlab(unsafe {
        &*(ctxs.as_mut_slice() as *mut [SchedCtx] as *const [UnsafeCell<SchedCtx>])
    });
    run_dag(pool, dag, pin, scratch, &|w, c| {
        let (li, ci) = dag.locs[c];
        // SAFETY: see `CtxSlab` — instance `w` owns slot `w`.
        let ctx = unsafe { &mut *slab.slot(w) };
        run_chunk(
            bound,
            sched,
            &sched.levels[li as usize].chunks[ci as usize],
            ctx,
        );
    })
}

/// Measure the per-level synchronization cost of a pool: the mean
/// wall-clock seconds of an empty round (dispatch + claim + barrier),
/// averaged over `rounds` after a short warm-up. Feeds the profit
/// model's barrier term in place of its compile-time constant
/// ([`op2_model::profit::COLOR_SYNC_S`]); returns `0.0` for
/// single-thread pools, whose rounds run inline.
pub fn measure_sync_s(pool: &ThreadPool, rounds: usize) -> f64 {
    assert!(rounds >= 1);
    if pool.n_threads() <= 1 {
        return 0.0;
    }
    for _ in 0..4 {
        pool.run(pool.n_threads(), &|_| {});
    }
    let t0 = Instant::now();
    for _ in 0..rounds {
        pool.run(pool.n_threads(), &|_| {});
    }
    t0.elapsed().as_secs_f64() / rounds as f64
}

/// Per-rank threading state: the configuration, the rank's **owned**
/// worker pool (created lazily at the configured width — ranks no longer
/// share process-global pools), and a cache of lowered schedules for the
/// *standalone* (Alg 1) loop path, keyed by (loop signature, range,
/// block size). Chain loops cache their schedules in the
/// [`crate::plan::ChainPlan`] instead, alongside the other inspector
/// products.
pub struct ThreadCtx {
    /// Active configuration.
    pub opts: Threading,
    pool: Option<Arc<ThreadPool>>,
    schedules: HashMap<(u64, usize, usize, usize), Arc<Schedule>>,
    /// Per-worker execution contexts, reused across every schedule run
    /// on this rank so fused scratch pools stop allocating once warm.
    pub sched_ctxs: Vec<SchedCtx>,
    /// Reusable dataflow executor state (dependency counters, steal
    /// queues) — zero allocations once warmed to the largest shape.
    pub dataflow: DataflowScratch,
    /// Chunk DAGs for standalone-loop schedules, keyed by the cached
    /// schedule's [`Arc`] identity (chain schedules cache theirs in the
    /// [`crate::plan::ChainPlan`]). Each entry pins its schedule `Arc`
    /// so a key can never be reused by a reallocation while it is live.
    dags: HashMap<usize, (Arc<Schedule>, Arc<ChunkDag>)>,
    /// Measured per-round pool synchronization cost (seconds), cached by
    /// [`ThreadCtx::sync_cost`] for the dataflow-vs-levels profit arm.
    pub sync_s: Option<f64>,
    /// Schedules built by the standalone path (inspector work).
    pub color_builds: u64,
    /// Schedules served from the standalone cache.
    pub color_reuses: u64,
}

impl ThreadCtx {
    /// Fresh context with the given configuration.
    pub fn new(opts: Threading) -> ThreadCtx {
        ThreadCtx {
            opts,
            pool: None,
            schedules: HashMap::new(),
            sched_ctxs: Vec::new(),
            dataflow: DataflowScratch::default(),
            dags: HashMap::new(),
            sync_s: None,
            color_builds: 0,
            color_reuses: 0,
        }
    }

    /// The pool's measured per-round synchronization cost, measured once
    /// ([`measure_sync_s`]) and cached — the barrier price the
    /// `OP2_EXEC=auto` profit arm weighs level counts with.
    pub fn sync_cost(&mut self) -> f64 {
        if let Some(s) = self.sync_s {
            return s;
        }
        let pool = self.pool();
        let s = measure_sync_s(&pool, 8);
        self.sync_s = Some(s);
        s
    }

    /// Cached chunk DAG for a standalone-loop schedule (keyed by the
    /// schedule's allocation identity, which the entry itself pins).
    pub fn dag_cached(&self, sched: &Arc<Schedule>) -> Option<Arc<ChunkDag>> {
        self.dags
            .get(&(Arc::as_ptr(sched) as usize))
            .map(|(_, d)| Arc::clone(d))
    }

    /// Store a freshly built chunk DAG (pinning the schedule so the
    /// identity key stays unique).
    pub fn store_dag(&mut self, sched: &Arc<Schedule>, dag: Arc<ChunkDag>) {
        self.dags
            .insert(Arc::as_ptr(sched) as usize, (Arc::clone(sched), dag));
    }

    /// The rank's own pool, created on first use at `opts.n_threads`
    /// width. If the configuration narrows or widens afterwards (the
    /// tuner suspends threading during calibration by swapping `opts`),
    /// the existing pool is kept — width changes only apply before first
    /// use.
    pub fn pool(&mut self) -> Arc<ThreadPool> {
        let width = self.opts.n_threads;
        Arc::clone(
            self.pool
                .get_or_insert_with(|| Arc::new(ThreadPool::new(width))),
        )
    }

    /// Cached schedule for `(loop signature, start, end, block_size)`.
    pub fn cached(&mut self, key: (u64, usize, usize, usize)) -> Option<Arc<Schedule>> {
        let hit = self.schedules.get(&key).cloned();
        if hit.is_some() {
            self.color_reuses += 1;
        }
        hit
    }

    /// Store a freshly lowered schedule.
    pub fn store(&mut self, key: (u64, usize, usize, usize), sched: Arc<Schedule>) {
        self.color_builds += 1;
        self.schedules.insert(key, sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_task_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_spans_partitions_exactly() {
        let pool = ThreadPool::new(3);
        for total in [0usize, 1, 2, 3, 7, 1000] {
            let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            pool.run_spans(total, &|lo, hi| {
                assert!(lo < hi && hi <= total);
                for h in &hits[lo..hi] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "total={total}"
            );
        }
    }

    #[test]
    fn pool_reusable_across_rounds() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(57, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 570);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let total = AtomicUsize::new(0);
        pool.run(13, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 13);
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = ThreadPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                if i == 33 {
                    panic!("task 33 exploded");
                }
            });
        }));
        assert!(res.is_err());
        // The pool survives a panicked round.
        let total = AtomicUsize::new(0);
        pool.run(8, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn threading_default_without_env_is_sequential() {
        // The test runner does not set OP2_THREADS.
        if std::env::var("OP2_THREADS").is_err() {
            assert_eq!(Threading::default().n_threads, 1);
            assert!(!Threading::default().active());
        }
    }

    #[test]
    fn parse_accepts_valid_shapes() {
        assert_eq!(Threading::parse(None, None).unwrap(), Threading::single());
        assert_eq!(Threading::parse(Some("1"), None).unwrap().n_threads, 1);
        assert_eq!(Threading::parse(Some("3"), None).unwrap().n_threads, 3);
        assert!(Threading::parse(Some("auto"), None).unwrap().n_threads >= 1);
        let t = Threading::parse(None, Some("64")).unwrap();
        assert_eq!((t.block_size, t.auto_block), (64, false));
        let t = Threading::parse(None, Some("auto")).unwrap();
        assert!(t.auto_block);
    }

    #[test]
    fn parse_rejects_malformed_values_typed() {
        assert_eq!(
            Threading::parse(Some("lots"), None),
            Err(ConfigError::Threads {
                value: "lots".into()
            })
        );
        assert_eq!(
            Threading::parse(None, Some("-4")),
            Err(ConfigError::BlockSize { value: "-4".into() })
        );
        assert_eq!(
            Threading::parse(None, Some("0")),
            Err(ConfigError::BlockSize { value: "0".into() })
        );
    }

    #[test]
    fn split_across_divides_with_floor_of_one() {
        let t = Threading::with_threads(8);
        assert_eq!(t.split_across(2).n_threads, 4);
        assert_eq!(t.split_across(3).n_threads, 2);
        assert_eq!(t.split_across(16).n_threads, 1);
        assert_eq!(Threading::single().split_across(4).n_threads, 1);
    }

    #[test]
    fn thread_ctx_owns_one_pool() {
        let mut ctx = ThreadCtx::new(Threading::with_threads(2));
        let a = ctx.pool();
        let b = ctx.pool();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.n_threads(), 2);
        let mut other = ThreadCtx::new(Threading::with_threads(2));
        assert!(!Arc::ptr_eq(&a, &other.pool()));
    }

    #[test]
    fn thread_ctx_caches_by_key() {
        let mut ctx = ThreadCtx::new(Threading::with_threads(2));
        let key = (42u64, 0usize, 100usize, 16usize);
        assert!(ctx.cached(key).is_none());
        let sched = Arc::new(Schedule::range(0, 100));
        ctx.store(key, Arc::clone(&sched));
        assert!(Arc::ptr_eq(&ctx.cached(key).unwrap(), &sched));
        assert_eq!((ctx.color_builds, ctx.color_reuses), (1, 1));
    }

    #[test]
    fn pooled_schedule_matches_sequential_walk() {
        use op2_core::{seq, AccessMode, Arg, Args, Domain, LoopSpec};
        fn flux(args: &Args<'_>) {
            let a = args.get(2, 0);
            let b = args.get(3, 0);
            args.inc(0, 0, (b - a) * 0.123456789);
            args.inc(1, 0, (a - b) * 0.987654321);
        }
        let build = || {
            let mut dom = Domain::new();
            let nodes = dom.decl_set("nodes", 129);
            let edges = dom.decl_set("edges", 128);
            let vals: Vec<u32> = (0..128u32).flat_map(|i| [i, i + 1]).collect();
            let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
            let pres: Vec<f64> = (0..129).map(|i| (i as f64 * 0.7).sin()).collect();
            let p = dom.decl_dat("pres", nodes, 1, pres);
            let r = dom.decl_dat_zeros("res", nodes, 1);
            let spec = LoopSpec::new(
                "flux",
                edges,
                vec![
                    Arg::dat_indirect(r, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(r, e2n, 1, AccessMode::Inc),
                    Arg::dat_indirect(p, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(p, e2n, 1, AccessMode::Read),
                ],
                flux,
            );
            (dom, spec, r)
        };
        let (mut ref_dom, spec, r) = build();
        seq::run_loop(&mut ref_dom, &spec);
        let reference = ref_dom.dat(r).data.clone();

        for n_threads in [1usize, 2, 4] {
            let (mut dom, spec, r) = build();
            let bc = op2_core::color_blocks(&dom, &spec.sig(), 8);
            let sched = Schedule::from_block_coloring(&bc);
            let mut gbls: Vec<Vec<f64>> = Vec::new();
            let bound = BoundLoop::bind(&mut dom, &spec, &mut gbls);
            let pool = ThreadPool::new(n_threads);
            let stats = run_schedule_pooled(&pool, std::slice::from_ref(&bound), &sched);
            assert_eq!(stats.level_ns.len(), sched.n_levels());
            assert!(!stats.dataflow);
            assert_eq!(stats.fires.iter().sum::<u64>() as usize, sched.n_chunks());
            assert_eq!(dom.dat(r).data, reference, "n_threads={n_threads}");
        }
    }

    #[test]
    fn measured_sync_is_positive_for_real_pools() {
        let pool = ThreadPool::new(2);
        let s = measure_sync_s(&pool, 16);
        assert!(s > 0.0);
        let inline = ThreadPool::new(1);
        assert_eq!(measure_sync_s(&inline, 16), 0.0);
    }

    /// Build a path-graph loop's colored schedule and its chunk DAG —
    /// consecutive blocks conflict, so the DAG has real edges at every
    /// block size.
    fn path_dag(n_nodes: usize, block: usize) -> (Schedule, op2_core::ChunkDag) {
        use op2_core::{AccessMode, Arg, Args, Domain, LoopSpec};
        fn noop(_: &Args<'_>) {}
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n_nodes);
        let edges = dom.decl_set("edges", n_nodes - 1);
        let vals: Vec<u32> = (0..n_nodes as u32 - 1).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let r = dom.decl_dat_zeros("res", nodes, 1);
        let spec = LoopSpec::new(
            "flux",
            edges,
            vec![
                Arg::dat_indirect(r, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(r, e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        let bc = op2_core::color_blocks(&dom, &spec.sig(), block);
        let sched = Schedule::from_block_coloring(&bc);
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        let acc = op2_core::dag_accesses(dom.maps(), &[spec.sig()]);
        let dag = op2_core::ChunkDag::build(&sched, &set_sizes, &acc);
        (sched, dag)
    }

    mod dataflow_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Steal-queue invariants: every chunk fires exactly once,
            /// and never before every predecessor completed (the
            /// dependency counter reached zero).
            #[test]
            fn dag_drain_fires_each_chunk_once_after_deps(
                n_nodes in 17usize..160,
                block in 1usize..24,
                workers in 1usize..5,
                pin in proptest::bool::ANY,
            ) {
                let (_sched, dag) = path_dag(n_nodes, block);
                let mut preds: Vec<Vec<u32>> = vec![Vec::new(); dag.n_chunks];
                for (p, ss) in dag.succs.iter().enumerate() {
                    for &s in ss {
                        preds[s as usize].push(p as u32);
                    }
                }
                let fired: Vec<AtomicUsize> =
                    (0..dag.n_chunks).map(|_| AtomicUsize::new(0)).collect();
                let done: Vec<AtomicBool> =
                    (0..dag.n_chunks).map(|_| AtomicBool::new(false)).collect();
                let pool = ThreadPool::new(workers);
                let mut scratch = DataflowScratch::default();
                let stats = run_dag(&pool, &dag, pin, &mut scratch, &|_, c| {
                    for &p in &preds[c] {
                        assert!(
                            done[p as usize].load(Ordering::SeqCst),
                            "chunk {c} fired before predecessor {p}"
                        );
                    }
                    fired[c].fetch_add(1, Ordering::SeqCst);
                    done[c].store(true, Ordering::SeqCst);
                });
                prop_assert!(fired.iter().all(|f| f.load(Ordering::SeqCst) == 1));
                prop_assert_eq!(stats.fires.iter().sum::<u64>() as usize, dag.n_chunks);
                prop_assert!(stats.dataflow);
                prop_assert_eq!(stats.crit_path as u32, dag.crit_path);
                if workers == 1 {
                    prop_assert_eq!(stats.steals.iter().sum::<u64>(), 0);
                }
            }

            /// Without contention (one worker) there is nothing to
            /// steal: the drain follows the owner's LIFO stack exactly —
            /// roots in ascending order, each chunk's newly readied
            /// successors before any older root.
            #[test]
            fn single_worker_order_is_owner_lifo(
                n_nodes in 17usize..160,
                block in 1usize..24,
                pin in proptest::bool::ANY,
            ) {
                let (_sched, dag) = path_dag(n_nodes, block);
                // Reference: the executor's exact pop discipline, serial.
                let mut stack: Vec<u32> = dag.roots.iter().rev().copied().collect();
                let mut deps = dag.deps.clone();
                let mut expect = Vec::with_capacity(dag.n_chunks);
                while let Some(c) = stack.pop() {
                    expect.push(c as usize);
                    for &s in &dag.succs[c as usize] {
                        deps[s as usize] -= 1;
                        if deps[s as usize] == 0 {
                            stack.push(s);
                        }
                    }
                }
                let order = Mutex::new(Vec::with_capacity(dag.n_chunks));
                let pool = ThreadPool::new(1);
                let mut scratch = DataflowScratch::default();
                let stats = run_dag(&pool, &dag, pin, &mut scratch, &|_, c| {
                    order.lock().unwrap().push(c);
                });
                prop_assert_eq!(stats.steals.iter().sum::<u64>(), 0);
                prop_assert_eq!(order.into_inner().unwrap(), expect);
            }
        }
    }

    /// Once warmed to a shape, repeat drains perform zero allocations in
    /// the dependency counters and steal queues.
    #[test]
    fn dataflow_scratch_steady_state_allocates_nothing() {
        let (_sched, dag) = path_dag(129, 8);
        let pool = ThreadPool::new(4);
        let mut scratch = DataflowScratch::default();
        run_dag(&pool, &dag, true, &mut scratch, &|_, _| {});
        let warm = scratch.allocs();
        assert!(warm > 0);
        for _ in 0..5 {
            run_dag(&pool, &dag, true, &mut scratch, &|_, _| {});
        }
        assert_eq!(scratch.allocs(), warm);
    }

    /// A panicking chunk aborts the drain without deadlocking the
    /// spinning workers, and the panic reaches the caller.
    #[test]
    fn dag_chunk_panic_propagates_without_deadlock() {
        let (_sched, dag) = path_dag(129, 8);
        let pool = ThreadPool::new(2);
        let mut scratch = DataflowScratch::default();
        let res = catch_unwind(AssertUnwindSafe(|| {
            run_dag(&pool, &dag, false, &mut scratch, &|_, c| {
                if c == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        }));
        assert!(res.is_err());
        // The pool and scratch survive for the next drain.
        let count = AtomicUsize::new(0);
        run_dag(&pool, &dag, false, &mut scratch, &|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), dag.n_chunks);
    }
}
