//! Rank supervision: failure detection, coordinated rollback, and
//! bitwise-deterministic restart on top of [`crate::checkpoint`].
//!
//! [`run_supervised`] wraps [`run_distributed_with`] in a bounded retry
//! loop. Each attempt runs the caller's program with checkpointing
//! attached; when an attempt fails, the supervisor:
//!
//! 1. **Classifies** the failure from the per-rank join results. Any
//!    contained panic (an injected crash, a validity violation that
//!    escalated, a kernel bug) means a *dead rank*. Failures that are
//!    exclusively receive deadlines ([`CommError::Timeout`]) and their
//!    hangup cascade mean a *straggler* — a slow-but-alive peer — and
//!    the receive deadline is doubled before the retry so the same
//!    slowness cannot trip the detector twice (recorded as an
//!    escalation in [`RecoveryRec`](crate::trace::RecoveryRec)).
//! 2. **Rolls back** every rank to the newest checkpoint epoch that
//!    exists on *all* ranks. Epochs are taken at identical program cuts
//!    on every rank, so the agreed epoch names one globally consistent
//!    state; checkpoints above it and journal entries past its cut are
//!    discarded.
//! 3. **Restarts** the world: a fresh transport (channels re-opened,
//!    per-peer buffer pools re-installed from the carried state), every
//!    rank's dats/validity/tags/boundary counters restored from the
//!    agreed checkpoint, plan caches and tuner calibrations carried
//!    over untouched, and the program replayed — journal-served (no
//!    side effects) up to the restored cut, live after it.
//!
//! The retry budget is [`SuperviseOptions::max_recoveries`]; exhausting
//! it degrades gracefully into the typed
//! [`RuntimeError::RecoveryExhausted`], carrying the final attempt's
//! per-rank traces and failures.
//!
//! **Determinism contract**: a run that crashes and recovers `k` times
//! produces results bitwise identical to a fault-free run. The restored
//! state is a prefix of the fault-free execution; replayed units serve
//! journaled bit-exact results without re-executing; live units resume
//! from the same dats, validity, tags and boundary counters the
//! fault-free run had at that cut; and recoverable link faults never
//! alter delivered payloads. `tests/recovery.rs` asserts this across
//! crash sites, boundaries and thread counts.

use crate::checkpoint::{CheckpointConfig, RankState};
use crate::comm::CommError;
use crate::env::RankEnv;
use crate::error::{RankFailure, RuntimeError};
use crate::harness::{run_distributed_with, DistOutcome, RunOptions};
use op2_core::Domain;
use op2_partition::RankLayout;
use std::sync::{Arc, Mutex};

/// Policy knobs for a supervised run.
#[derive(Debug, Clone, Default)]
pub struct SuperviseOptions {
    /// The underlying run options (fault plan, comm policy, threading,
    /// checkpoint cadence) applied to every attempt.
    pub run: RunOptions,
    /// Recovery budget: how many coordinated rollback-and-restart
    /// cycles may follow the initial attempt before the supervisor
    /// gives up with [`RuntimeError::RecoveryExhausted`].
    pub max_recoveries: u32,
    /// Double the receive deadline when a failure classifies as a
    /// straggler (timeouts, no dead rank), so persistent slowness
    /// converges instead of re-tripping the detector.
    pub escalate_deadline: bool,
}

impl SuperviseOptions {
    /// Default supervision (3 recoveries, deadline escalation on) over
    /// the given run options.
    pub fn new(run: RunOptions) -> Self {
        SuperviseOptions {
            run,
            max_recoveries: 3,
            escalate_deadline: true,
        }
    }

    /// Override the recovery budget (builder style).
    pub fn max_recoveries(mut self, n: u32) -> Self {
        self.max_recoveries = n;
        self
    }
}

/// Did any rank die (contained panic), as opposed to merely timing out?
fn any_dead(results: &[Result<(), &RankFailure>]) -> bool {
    results
        .iter()
        .any(|r| matches!(r, Err(RankFailure::Panicked { .. })))
}

/// Did any rank trip its receive deadline?
fn any_timeout(results: &[Result<(), &RankFailure>]) -> bool {
    results.iter().any(|r| {
        matches!(
            r,
            Err(RankFailure::Failed {
                error: RuntimeError::Comm(CommError::Timeout { .. }),
                ..
            })
        )
    })
}

/// Coordinated rollback: agree on the newest checkpoint epoch present
/// on every rank, truncate everything above it, and mark every slot for
/// restore-on-attach.
fn rollback(slots: &[Arc<Mutex<RankState>>]) {
    let agreed = slots
        .iter()
        .map(|s| {
            let mut st = s.lock().unwrap_or_else(|p| p.into_inner());
            // A migration may have fenced some slots already; snapshots
            // of an older layout must not enter the epoch agreement.
            st.drop_foreign_layouts();
            st.last_epoch()
                .expect("supervised rank lost its baseline checkpoint")
        })
        .min()
        .expect("supervised run has at least one rank");
    for slot in slots {
        let mut st = slot.lock().unwrap_or_else(|p| p.into_inner());
        while st.last_epoch().is_some_and(|e| e > agreed) {
            st.checkpoints.pop();
        }
        let cut = st
            .checkpoints
            .last()
            .expect("agreed epoch exists on every rank")
            .units_done;
        st.journal.truncate(cut);
        st.rec.rollbacks += 1;
        st.restore = true;
    }
}

/// Run `program` under supervision: checkpointed attempts, coordinated
/// rollback on failure, bounded retries, bitwise-deterministic results.
/// See the module docs for the full protocol.
///
/// Returns the successful attempt's [`DistOutcome`] (its traces carry
/// the cumulative [`RecoveryRec`](crate::trace::RecoveryRec) counters),
/// or [`RuntimeError::RecoveryExhausted`] when the budget runs out, or
/// [`RuntimeError::Config`] when the checkpoint cadence is malformed.
pub fn run_supervised<F, R>(
    dom: &mut Domain,
    layouts: &[RankLayout],
    opts: &SuperviseOptions,
    program: F,
) -> Result<DistOutcome<R>, RuntimeError>
where
    F: Fn(&mut RankEnv<'_>) -> Result<R, RuntimeError> + Sync,
    R: Send,
{
    let slots: Vec<Arc<Mutex<RankState>>> = layouts
        .iter()
        .map(|_| Arc::new(Mutex::new(RankState::new())))
        .collect();
    run_supervised_with_state(dom, layouts, opts, &slots, program)
}

/// [`run_supervised`] over caller-provided per-rank state slots — the
/// resident service's entry point. The slots may arrive pre-seeded with
/// carried resources (thread contexts, transport buffer pools, a
/// registry-wired plan cache) from a previous job on the same world;
/// the first attempt's [`RankEnv::ckpt_attach`] installs them exactly
/// as a restart installs carried state. After the call — success or
/// failure — the slots hold the sealed end-of-attempt state
/// ([`RankEnv`]'s `ckpt_seal` runs for failed ranks too), so the caller
/// can harvest pools and thread contexts for the next job.
pub fn run_supervised_with_state<F, R>(
    dom: &mut Domain,
    layouts: &[RankLayout],
    opts: &SuperviseOptions,
    slots: &[Arc<Mutex<RankState>>],
    program: F,
) -> Result<DistOutcome<R>, RuntimeError>
where
    F: Fn(&mut RankEnv<'_>) -> Result<R, RuntimeError> + Sync,
    R: Send,
{
    assert_eq!(
        slots.len(),
        layouts.len(),
        "one state slot per rank is required"
    );
    let cfg = match opts.run.checkpoint {
        Some(c) => c,
        None => CheckpointConfig::try_from_env()?,
    };
    let slots_ref = slots;
    let mut run_opts = opts.run.clone();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let out = run_distributed_with(dom, layouts, &run_opts, |env| {
            env.ckpt_attach(cfg, Arc::clone(&slots_ref[env.rank as usize]));
            program(env)
        });
        if out.all_ok() {
            return Ok(out);
        }
        let verdicts: Vec<Result<(), &RankFailure>> = out
            .results
            .iter()
            .map(|r| r.as_ref().map(|_| ()))
            .collect();
        if attempts > opts.max_recoveries {
            let DistOutcome { traces, results } = out;
            let failures = results.into_iter().filter_map(Result::err).collect();
            return Err(RuntimeError::RecoveryExhausted {
                attempts,
                traces,
                failures,
            });
        }
        // Straggler vs dead rank: pure timeouts (and their hangup
        // cascade) with nobody dead mean a slow peer — give the next
        // attempt twice the patience.
        if opts.escalate_deadline && !any_dead(&verdicts) && any_timeout(&verdicts) {
            run_opts.comm.deadline *= 2;
            for slot in slots_ref {
                slot.lock().unwrap_or_else(|p| p.into_inner()).rec.escalations += 1;
            }
        }
        rollback(slots_ref);
    }
}
