//! Cached chain plans — the inspector of the inspector–executor split.
//!
//! The CA back-end (Alg 2) is an inspector–executor design: halo-layer
//! analysis, import depths, the grouped per-neighbour message layout and
//! (for the tiled executor) the tile schedule are *analysis*, reusable
//! across every repetition of the same chain on the same partition. The
//! executors used to re-derive all of it per invocation even though
//! MG-CFD replays one chain `nchains` times per cycle.
//!
//! A [`ChainPlan`] captures that analysis once per
//! **(chain signature, partition layout, dirty-state class)**:
//!
//! * the import list (per-dat depths, strict or relaxed) and chain depth
//!   `r`;
//! * per-loop latency-hiding core ends, execute-region ends, read
//!   requirements and produced-validity transitions;
//! * per-neighbour **pack index lists** (flattened sender-local element
//!   indices) and receive copy ranges — the wire layout of Figure 8,
//!   ready for `memcpy`-style pack/unpack with no per-call segment
//!   filtering (the GPU executor stages exactly these lists);
//! * lazily, one [`TilePlan`] per requested tile count.
//!
//! Plans live in a per-rank [`PlanCache`] keyed by a stable FNV-1a hash
//! of [`ChainSpec::sigs`]-equivalent structure plus the entry-validity
//! class of the touched dats. The cache carries an explicit **layout
//! epoch**: [`PlanCache::bump_epoch`] invalidates everything when
//! ownership changes (repartitioning); a change in any touched dat's
//! validity depth selects a different dirty class and therefore a
//! different (or freshly built) plan. Hit/miss/invalidation counters
//! land in the rank trace so tests can assert that repeat invocations
//! do **zero** re-analysis.

use op2_core::chain::{produced_validity, read_requirement};
use op2_core::par::{color_blocks_raw, conflict_accesses, BlockColoring};
use op2_core::schedule::{
    elision_valid, Chunk, FusedGroup, Level, Piece, ScheduleKind, ScratchBind,
};
use op2_core::tiling::{
    build_tile_plan_raw, overlap_core_tiles, seed_blocks, seed_from_targets, TilePlan,
};
use op2_core::{AccessMode, Arg, ChainSpec, ChunkDag, DatId, Domain, LoopSpec, Schedule};
use op2_partition::layout::RankLayout;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

pub(crate) fn fnv_usize(h: &mut u64, v: usize) {
    fnv_bytes(h, &v.to_le_bytes());
}

fn mode_code(mode: AccessMode) -> u8 {
    match mode {
        AccessMode::Read => 0,
        AccessMode::Write => 1,
        AccessMode::Rw => 2,
        AccessMode::Inc => 3,
    }
}

/// Stable hash of a chain's structure: loop names, iteration sets,
/// argument access descriptors and halo extents, plus the execution
/// mode. Identical across ranks and across process runs (no pointer or
/// RandomState input), so it can key caches and cross-rank agreement.
pub fn chain_signature(chain: &ChainSpec, relaxed: bool) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_bytes(&mut h, chain.name.as_bytes());
    fnv_usize(&mut h, chain.loops.len());
    for (spec, &ext) in chain.loops.iter().zip(&chain.halo_ext) {
        fnv_bytes(&mut h, spec.name.as_bytes());
        fnv_usize(&mut h, spec.set.idx());
        fnv_usize(&mut h, ext);
        for arg in &spec.args {
            match arg {
                Arg::Dat { dat, map, mode } => {
                    fnv_bytes(&mut h, &[1u8, mode_code(*mode)]);
                    fnv_usize(&mut h, dat.idx());
                    match map {
                        Some((m, i)) => {
                            fnv_usize(&mut h, m.idx() + 1);
                            fnv_usize(&mut h, *i as usize);
                        }
                        None => fnv_usize(&mut h, 0),
                    }
                }
                Arg::Gbl { idx, mode } => {
                    fnv_bytes(&mut h, &[2u8, mode_code(*mode)]);
                    fnv_usize(&mut h, *idx as usize);
                }
            }
        }
    }
    fnv_bytes(&mut h, &[u8::from(relaxed)]);
    h
}

/// Stable hash of one loop's structure (name, iteration set, argument
/// access descriptors) — the standalone-loop analogue of
/// [`chain_signature`], keying the per-rank block-coloring cache for the
/// Alg 1 threaded path.
pub fn loop_signature(spec: &LoopSpec) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_bytes(&mut h, spec.name.as_bytes());
    fnv_usize(&mut h, spec.set.idx());
    for arg in &spec.args {
        match arg {
            Arg::Dat { dat, map, mode } => {
                fnv_bytes(&mut h, &[1u8, mode_code(*mode)]);
                fnv_usize(&mut h, dat.idx());
                match map {
                    Some((m, i)) => {
                        fnv_usize(&mut h, m.idx() + 1);
                        fnv_usize(&mut h, *i as usize);
                    }
                    None => fnv_usize(&mut h, 0),
                }
            }
            Arg::Gbl { idx, mode } => {
                fnv_bytes(&mut h, &[2u8, mode_code(*mode)]);
                fnv_usize(&mut h, *idx as usize);
            }
        }
    }
    h
}

/// Stable structural signature of a partitioned mesh: rank count, halo
/// depth, per-rank set sizes and the complete exchange topology (send
/// element lists, receive ranges, levels). Two identical meshes
/// partitioned identically hash equal, so the signature keys the
/// resident service's world table and the cross-job [`PlanRegistry`] —
/// a [`ChainPlan`] built for rank `r` of one world is valid verbatim
/// for rank `r` of any world with the same signature.
pub fn mesh_signature(layouts: &[RankLayout]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_usize(&mut h, layouts.len());
    for l in layouts {
        fnv_usize(&mut h, l.rank as usize);
        fnv_usize(&mut h, l.depth);
        fnv_usize(&mut h, l.sets.len());
        for s in &l.sets {
            fnv_usize(&mut h, s.n_owned);
            fnv_usize(&mut h, s.locals.len());
            for &g in &s.locals {
                fnv_usize(&mut h, g as usize);
            }
        }
        fnv_usize(&mut h, l.neighbors.len());
        for n in &l.neighbors {
            fnv_usize(&mut h, n.rank as usize);
            fnv_usize(&mut h, n.send.len());
            for seg in &n.send {
                fnv_usize(&mut h, seg.set.idx());
                fnv_bytes(&mut h, &[seg.level]);
                fnv_usize(&mut h, seg.elems.len());
                for &e in &seg.elems {
                    fnv_usize(&mut h, e as usize);
                }
            }
            fnv_usize(&mut h, n.recv.len());
            for seg in &n.recv {
                fnv_usize(&mut h, seg.set.idx());
                fnv_bytes(&mut h, &[seg.level]);
                fnv_usize(&mut h, seg.start as usize);
                fnv_usize(&mut h, seg.len as usize);
            }
        }
    }
    h
}

/// Dirty-state class of a chain at entry: a hash of the entry validity
/// depths of every dat the chain touches (first-appearance order).
/// Import depths and therefore the whole exchange layout are a function
/// of these depths, so two invocations in the same class can share one
/// plan verbatim.
pub fn dirty_class(chain: &ChainSpec, valid: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut seen: Vec<DatId> = Vec::new();
    for spec in &chain.loops {
        for arg in &spec.args {
            if let Arg::Dat { dat, .. } = arg {
                if !seen.contains(dat) {
                    seen.push(*dat);
                    fnv_usize(&mut h, dat.idx());
                    fnv_bytes(&mut h, &[valid[dat.idx()]]);
                }
            }
        }
    }
    h
}

/// Precomputed exchange layout with one neighbour: the pack index lists
/// (sender side) and contiguous copy ranges (receiver side) of the
/// grouped message, per import dat.
#[derive(Debug, Clone)]
pub struct NeighborPack {
    /// The neighbour's rank.
    pub rank: u32,
    /// Per import dat (plan order): sender-local owned element indices,
    /// flattened across all send segments within the import depth.
    pub send: Vec<Vec<u32>>,
    /// Per import dat: receiver-side `(elem_start, elem_len)` copy
    /// ranges in local element units.
    pub recv: Vec<Vec<(u32, u32)>>,
    /// Outgoing grouped payload length in f64s.
    pub send_f64s: usize,
    /// Incoming grouped payload length in f64s.
    pub recv_f64s: usize,
}

/// Everything the chain executors would otherwise recompute per
/// invocation. Immutable once built; shared via `Arc` out of the cache.
#[derive(Debug)]
pub struct ChainPlan {
    /// Structure hash (see [`chain_signature`]).
    pub sig: u64,
    /// Layout epoch the plan was built under.
    pub epoch: u64,
    /// Dirty-state class (see [`dirty_class`]).
    pub dirty: u64,
    /// Relaxed (paper-mode) analysis?
    pub relaxed: bool,
    /// Import depth `r` (max halo layers).
    pub depth: usize,
    /// Grouped-import plan: per dat, the depth to deliver at entry.
    pub import: Vec<(DatId, u8)>,
    /// Per-loop latency-hiding core depths.
    pub core_depths: Vec<usize>,
    /// Per-loop prewait core end (exclusive local index).
    pub core_end: Vec<usize>,
    /// Per-loop execute-region end (owned + rings ≤ extent).
    pub exec_end: Vec<usize>,
    /// Per-loop read requirements: (dat, required validity depth).
    pub reqs: Vec<Vec<(DatId, u8)>>,
    /// Per-loop produced validity: (dat, validity after the loop).
    pub produces: Vec<Vec<(DatId, u8)>>,
    /// Per-neighbour pack layout, index-aligned with
    /// `layout.neighbors`.
    pub packs: Vec<NeighborPack>,
    /// Grouped messages this rank will send (non-empty payloads).
    pub n_msgs: usize,
    /// Total outgoing payload bytes.
    pub send_bytes: usize,
    /// Largest single outgoing message in bytes.
    pub max_msg_bytes: usize,
    /// Total incoming payload bytes (the staged-in volume).
    pub recv_bytes: usize,
    /// Bitmask of neighbour ranks receiving a message (`min(rank,127)`).
    pub nbr_bits: u128,
    /// Tile plans and their lowered schedules by tile count, built
    /// lazily on first use.
    tiles: Mutex<HashMap<usize, Arc<TiledChain>>>,
    /// Fused whole-chain schedules by lowering (see [`FusedKey`]), built
    /// lazily on first fused execution — the fusion legality analysis
    /// and the lowering are inspector work, paid once per (chain
    /// signature, dirty class, lowering).
    fused: Mutex<HashMap<FusedKey, Arc<FusedChain>>>,
    /// Lowered colored schedules for the threaded executor, keyed by
    /// `(loop position, start, end, block size)` and built lazily on
    /// first threaded execution of that range — the coloring is
    /// inspector work, paid once per plan like the tile schedules.
    colorings: Mutex<HashMap<ColoringKey, Arc<Schedule>>>,
    /// Chunk dependency DAGs for the dataflow executor, one per lowered
    /// schedule this plan owns (colored, tiled core/post, fused), built
    /// lazily on first dataflow drain. Keyed by the schedule's identity
    /// — schedules are themselves cached one-per-lowering-key, so this
    /// is one DAG per lowering. Each entry pins its schedule `Arc`, so
    /// a key can never be reused by a reallocation while it is live,
    /// and the DAGs drop with the plan on epoch invalidation.
    dags: Mutex<DagCache>,
}

/// Schedule-identity-keyed DAG cache: each entry pins the schedule
/// `Arc` whose address keys it.
pub type DagCache = HashMap<usize, (Arc<Schedule>, Arc<ChunkDag>)>;

/// Key of a cached colored schedule: `(loop position, start, end, block
/// size)`.
pub type ColoringKey = (usize, usize, usize, usize);

/// Lowering key of a cached fused schedule: `(0, 0)` = direct (one
/// sequential chunk), `(1, block_size)` = colored, `(2, n_tiles)` =
/// tiled.
pub type FusedKey = (u8, usize);

/// A whole-chain fused schedule for one lowering, plus the facts the
/// fused executor and the profit arm need: which intermediates were
/// actually elided (scratch-resident, never written to memory) and how
/// much memory traffic that removes per invocation. Built once per
/// ([`ChainPlan`], lowering) and cached — see [`ChainPlan::fused_chain`].
#[derive(Debug)]
pub struct FusedChain {
    /// The fused leveled schedule over the whole chain.
    pub sched: Arc<Schedule>,
    /// Per chain loop: fusion group membership (the legality analysis's
    /// verdict; `None` = the loop runs unfused).
    pub group_of: Vec<Option<usize>>,
    /// Intermediates elided under this lowering. A dat declared scratch
    /// ([`ChainSpec::with_scratch`]) drops out when the lowering left
    /// any consumer piece unfused — fusion stays, elision write-throughs.
    pub elided: Vec<DatId>,
    /// Intermediate memory traffic elided per invocation, in bytes: for
    /// every elided dat, the producer's write plus each consumer's
    /// read-back over the fused extent.
    pub elided_bytes: u64,
    /// Fused pieces in `sched` (0 = nothing fused; callers fall back to
    /// the unfused executor).
    pub fused_pieces: u64,
}

/// A cached tile plan together with its lowered schedules: the full
/// leveled schedule plus the core/post split the overlap executor uses
/// (see [`overlap_core_tiles`]). All inspector work — built once per
/// (plan, tile count), replayed by every tiled invocation.
#[derive(Debug)]
pub struct TiledChain {
    /// The leveled tile plan itself.
    pub tiles: Arc<TilePlan>,
    /// Full schedule over every tile (the non-overlapping executor).
    pub sched: Arc<Schedule>,
    /// Overlap-eligible tiles only — footprint inside every loop's core
    /// region and demotion-closed against earlier post tiles, so they
    /// may run while the grouped exchange is in flight.
    pub core: Arc<Schedule>,
    /// The remaining tiles, run after the wait. Core then post replays
    /// the full plan's conflict order exactly.
    pub post: Arc<Schedule>,
    /// Number of overlap-eligible tiles (`core`'s chunk count).
    pub n_core_tiles: usize,
}

impl ChainPlan {
    /// Run the full chain inspection for one rank: import depths, core
    /// depths, execute ranges, validity bookkeeping and the grouped
    /// per-neighbour message layout.
    pub fn build(
        layout: &RankLayout,
        dom: &Domain,
        valid: &[u8],
        chain: &ChainSpec,
        relaxed: bool,
        epoch: u64,
    ) -> ChainPlan {
        let sig = chain_signature(chain, relaxed);
        let dirty = dirty_class(chain, valid);
        let depth = chain.max_halo_layers();
        let sigs = chain.sigs();
        let entry = |d: DatId| valid[d.idx()] as usize;
        let import: Vec<(DatId, u8)> = if relaxed {
            op2_core::chain::import_depths_relaxed(&sigs, &chain.halo_ext, &entry)
        } else {
            op2_core::chain::import_depths(&sigs, &chain.halo_ext, &entry)
        }
        .into_iter()
        .map(|(d, t)| (d, t as u8))
        .collect();

        let core_depths = if relaxed {
            vec![1usize; chain.len()]
        } else {
            op2_core::chain::core_depths(&sigs)
        };
        let core_end: Vec<usize> = sigs
            .iter()
            .zip(&core_depths)
            .map(|(s, &cd)| layout.sets[s.set.idx()].core_end(cd - 1))
            .collect();
        let exec_end: Vec<usize> = sigs
            .iter()
            .zip(&chain.halo_ext)
            .map(|(s, &e)| layout.sets[s.set.idx()].exec_end(e))
            .collect();

        let mut reqs = Vec::with_capacity(chain.len());
        let mut produces = Vec::with_capacity(chain.len());
        for (sig_l, &ext) in sigs.iter().zip(&chain.halo_ext) {
            let mut r = Vec::new();
            let mut p = Vec::new();
            for d in sig_l.dats() {
                if let Some((mode, indirect)) = sig_l.access_of(d) {
                    r.push((d, read_requirement(mode, indirect, ext) as u8));
                    if let Some(v) = produced_validity(mode, indirect, ext) {
                        p.push((d, v as u8));
                    }
                }
            }
            reqs.push(r);
            produces.push(p);
        }

        let mut packs = Vec::with_capacity(layout.neighbors.len());
        let mut n_msgs = 0usize;
        let mut send_bytes = 0usize;
        let mut max_msg_bytes = 0usize;
        let mut recv_bytes = 0usize;
        let mut nbr_bits = 0u128;
        for nbr in &layout.neighbors {
            let mut send = Vec::with_capacity(import.len());
            let mut recv = Vec::with_capacity(import.len());
            let mut s64 = 0usize;
            let mut r64 = 0usize;
            for &(dat, dep) in &import {
                let dd = dom.dat(dat);
                let mut elems: Vec<u32> = Vec::new();
                for seg in &nbr.send {
                    if seg.set == dd.set && seg.level <= dep {
                        elems.extend_from_slice(&seg.elems);
                    }
                }
                s64 += elems.len() * dd.dim;
                send.push(elems);
                let mut ranges: Vec<(u32, u32)> = Vec::new();
                for seg in &nbr.recv {
                    if seg.set == dd.set && seg.level <= dep {
                        ranges.push((seg.start, seg.len));
                        r64 += seg.len as usize * dd.dim;
                    }
                }
                recv.push(ranges);
            }
            if s64 > 0 {
                n_msgs += 1;
                send_bytes += s64 * 8;
                max_msg_bytes = max_msg_bytes.max(s64 * 8);
                nbr_bits |= 1u128 << nbr.rank.min(127);
            }
            recv_bytes += r64 * 8;
            packs.push(NeighborPack {
                rank: nbr.rank,
                send,
                recv,
                send_f64s: s64,
                recv_f64s: r64,
            });
        }

        ChainPlan {
            sig,
            epoch,
            dirty,
            relaxed,
            depth,
            import,
            core_depths,
            core_end,
            exec_end,
            reqs,
            produces,
            packs,
            n_msgs,
            send_bytes,
            max_msg_bytes,
            recv_bytes,
            nbr_bits,
            tiles: Mutex::new(HashMap::new()),
            colorings: Mutex::new(HashMap::new()),
            fused: Mutex::new(HashMap::new()),
            dags: Mutex::new(HashMap::new()),
        }
    }

    /// Cached chunk dependency DAG for one of this plan's lowered
    /// schedules, if a dataflow drain already built it.
    pub fn cached_dag(&self, sched: &Arc<Schedule>) -> Option<Arc<ChunkDag>> {
        self.dags
            .lock()
            .expect("dag cache poisoned")
            .get(&(Arc::as_ptr(sched) as usize))
            .map(|(_, d)| Arc::clone(d))
    }

    /// Store a freshly built chunk dependency DAG for `sched` (pinning
    /// the schedule so the identity key stays unique).
    pub fn store_dag(&self, sched: &Arc<Schedule>, dag: Arc<ChunkDag>) {
        self.dags.lock().expect("dag cache poisoned").insert(
            Arc::as_ptr(sched) as usize,
            (Arc::clone(sched), dag),
        );
    }

    /// Cached colored schedule for `(loop position, start, end, block
    /// size)`, if a threaded execution of that range already lowered
    /// one.
    pub fn cached_schedule(&self, key: ColoringKey) -> Option<Arc<Schedule>> {
        self.colorings
            .lock()
            .expect("schedule cache poisoned")
            .get(&key)
            .cloned()
    }

    /// Store a freshly lowered colored schedule under `key`.
    pub fn store_schedule(&self, key: ColoringKey, sched: Arc<Schedule>) {
        self.colorings
            .lock()
            .expect("schedule cache poisoned")
            .insert(key, sched);
    }

    /// Grouped message size `m^r` of Eq 4 on this rank: the largest
    /// incoming grouped payload over neighbours, in bytes.
    pub fn m_r_bytes(&self) -> usize {
        self.packs
            .iter()
            .map(|p| p.recv_f64s * 8)
            .max()
            .unwrap_or(0)
    }

    /// The tile schedule for `n_tiles` intra-rank tiles, built on first
    /// request and cached inside the plan. Returns `(plan, built)` —
    /// `built` is true when this call ran the tiling inspection (the
    /// caller records it as a tile-plan miss).
    pub fn tile_plan(
        &self,
        layout: &RankLayout,
        chain: &ChainSpec,
        n_tiles: usize,
    ) -> (Arc<TilePlan>, bool) {
        let (tc, built) = self.tile_schedule(layout, chain, n_tiles);
        (Arc::clone(&tc.tiles), built)
    }

    /// [`ChainPlan::tile_plan`] plus the plan's lowered schedules (full
    /// and core/post overlap split) — all cached together, so repeat
    /// tiled invocations neither re-inspect nor re-lower.
    pub fn tile_schedule(
        &self,
        layout: &RankLayout,
        chain: &ChainSpec,
        n_tiles: usize,
    ) -> (Arc<TiledChain>, bool) {
        let mut tiles = self.tiles.lock().expect("tile cache poisoned");
        if let Some(tc) = tiles.get(&n_tiles) {
            return (Arc::clone(tc), false);
        }
        let sigs = chain.sigs();
        let set_sizes: Vec<usize> = layout.sets.iter().map(|s| s.n_local()).collect();
        // Seed through the first loop's map targets when it has one:
        // target-set numbering (e.g. lexicographic nodes) is spatially
        // coherent even when the iteration set's is not (direction-
        // grouped edges), so target-seeded tiles conflict only with
        // their spatial neighbours and the red-black levelization can
        // run about half of them per level.
        let seed = match sigs[0].args.iter().find_map(|a| match a {
            Arg::Dat {
                map: Some((m, idx)),
                ..
            } => Some((*m, *idx)),
            _ => None,
        }) {
            Some((m, idx)) => {
                let md = &layout.maps[m.idx()];
                let n_targets = set_sizes[md.to.idx()];
                let targets: Vec<u32> = (0..self.exec_end[0])
                    .map(|e| md.values[e * md.arity + idx as usize])
                    .collect();
                seed_from_targets(&targets, n_targets, n_tiles)
            }
            None => seed_blocks(self.exec_end[0], n_tiles),
        };
        let tp = Arc::new(build_tile_plan_raw(
            &set_sizes,
            &layout.maps,
            &sigs,
            &self.exec_end,
            &seed,
        ));
        let sched = Arc::new(Schedule::from_tile_plan(&tp));
        // The overlap split: tiles whose footprint sits inside every
        // loop's core region run while the exchange is in flight.
        let keep = overlap_core_tiles(&set_sizes, &layout.maps, &sigs, &tp, &self.core_end);
        let n_core_tiles = keep.iter().filter(|&&k| k).count();
        let core = Arc::new(Schedule::from_tile_plan_subset(&tp, &keep));
        let not_keep: Vec<bool> = keep.iter().map(|&k| !k).collect();
        let post = Arc::new(Schedule::from_tile_plan_subset(&tp, &not_keep));
        let tc = Arc::new(TiledChain {
            tiles: tp,
            sched,
            core,
            post,
            n_core_tiles,
        });
        tiles.insert(n_tiles, Arc::clone(&tc));
        (tc, true)
    }

    /// The fused whole-chain schedule for one lowering, built on first
    /// request and cached inside the plan. Returns `(fused, built)` —
    /// `built` is true when this call ran the fusion analysis and
    /// lowering (a fused-schedule miss).
    ///
    /// The build runs [`ChainSpec::fusion`] (legality analysis), lowers
    /// per `key` — direct range interleaving, union-conflict block
    /// coloring, or the cached tile schedule put through
    /// [`Schedule::fuse`] — then re-verifies scratch elision against the
    /// *actual* pieces ([`elision_valid`]): a lowering that left any
    /// consumer piece unfused keeps the fusion but write-throughs the
    /// intermediate (scratch binds stripped), so correctness never
    /// depends on the lowering lining up.
    pub fn fused_chain(
        &self,
        layout: &RankLayout,
        dom: &Domain,
        chain: &ChainSpec,
        key: FusedKey,
    ) -> (Arc<FusedChain>, bool) {
        let mut cache = self.fused.lock().expect("fused cache poisoned");
        if let Some(fc) = cache.get(&key) {
            return (Arc::clone(fc), false);
        }
        let fp = chain.fusion();
        let groups = fused_groups_for(chain, dom, &fp);
        let mut sched = match key {
            (1, block) => colored_fused(
                layout,
                chain,
                &self.exec_end,
                block.max(1),
                groups,
                &fp.group_of,
            ),
            (2, n_tiles) => {
                let (tc, _) = self.tile_schedule(layout, chain, n_tiles);
                tc.sched.as_ref().clone().fuse(groups, &fp.group_of)
            }
            _ => Schedule::chain_ranges_fused(&self.exec_end, groups, &fp.group_of),
        };
        if !elision_valid(&[&sched], &sched.fused, &fp.group_of) {
            for g in &mut sched.fused {
                g.scratch.clear();
            }
        }
        let mut elided = Vec::new();
        let mut elided_bytes = 0u64;
        for (g, gi) in sched.fused.iter().zip(&fp.groups) {
            let common = gi
                .members()
                .map(|j| self.exec_end[j])
                .min()
                .unwrap_or(0) as u64;
            for (s, &d) in g.scratch.iter().zip(&gi.elided) {
                let accesses = s.consumers().count() as u64 + 1;
                elided_bytes += common * s.dim as u64 * 8 * accesses;
                elided.push(d);
            }
        }
        let fc = Arc::new(FusedChain {
            fused_pieces: sched.n_fused_pieces() as u64,
            group_of: fp.group_of,
            elided,
            elided_bytes,
            sched: Arc::new(sched),
        });
        cache.insert(key, Arc::clone(&fc));
        (fc, true)
    }
}

/// Translate a chain's [`op2_core::chain::FusionPlan`] into the schedule
/// IR's [`FusedGroup`]s: member loop lists plus one [`ScratchBind`] per
/// elidable intermediate, with pool offsets laid out consecutively
/// across all groups (one per-worker pool serves the whole chain).
fn fused_groups_for(
    chain: &ChainSpec,
    dom: &Domain,
    fp: &op2_core::chain::FusionPlan,
) -> Vec<FusedGroup> {
    let mut out = Vec::with_capacity(fp.groups.len());
    let mut offset = 0u32;
    for gi in &fp.groups {
        let mut g = FusedGroup {
            loops: gi.members().map(|j| j as u32).collect(),
            scratch: Vec::new(),
        };
        for &d in &gi.elided {
            let dim = dom.dat(d).dim as u32;
            let mut binds = Vec::new();
            let mut producer = 0u32;
            let mut first = true;
            for (mp, j) in gi.members().enumerate() {
                for (a, arg) in chain.loops[j].args.iter().enumerate() {
                    if matches!(arg, Arg::Dat { dat, .. } if *dat == d) {
                        if first {
                            producer = mp as u32;
                            first = false;
                        }
                        binds.push((mp as u32, a as u32));
                    }
                }
            }
            g.scratch.push(ScratchBind {
                dim,
                offset,
                producer,
                binds,
            });
            offset += dim;
        }
        out.push(g);
    }
    out
}

/// The colored fused lowering: per fusion group, an order-preserving
/// block coloring of the members' common extent under the **union** of
/// every member's conflict accesses (a fused block runs all member
/// kernels, so same-level blocks must be disjoint under all of them
/// combined), lowered to [`Piece::Fused`] chunks; then per-member tail
/// colorings for extents beyond the common prefix, then solo loops —
/// all as sequential level runs in program order, which preserves the
/// per-location update order of the unfused colored walk.
fn colored_fused(
    layout: &RankLayout,
    chain: &ChainSpec,
    ends: &[usize],
    block: usize,
    groups: Vec<FusedGroup>,
    group_of: &[Option<usize>],
) -> Schedule {
    let sigs = chain.sigs();
    let set_sizes: Vec<usize> = layout.sets.iter().map(|s| s.n_local()).collect();
    let mut levels: Vec<Level> = Vec::new();
    fn push_colored(levels: &mut Vec<Level>, bc: &BlockColoring, piece: &dyn Fn(u32, u32) -> Piece) {
        for bucket in &bc.by_color {
            let chunks: Vec<Chunk> = bucket
                .iter()
                .map(|&b| {
                    let (s, e) = bc.block_range(b as usize);
                    Chunk {
                        pieces: vec![piece(s as u32, e as u32)],
                    }
                })
                .collect();
            if !chunks.is_empty() {
                levels.push(Level { chunks });
            }
        }
    }
    let mut j = 0usize;
    while j < sigs.len() {
        match group_of[j] {
            Some(g) if groups[g].loops.first() == Some(&(j as u32)) => {
                let members = &groups[g].loops;
                let common = members.iter().map(|&m| ends[m as usize]).min().unwrap_or(0);
                let mut acc = Vec::new();
                for &m in members {
                    acc.extend(conflict_accesses(&layout.maps, &sigs[m as usize]));
                }
                let bc = color_blocks_raw(0, common, block, &set_sizes, &acc);
                let gu = g as u32;
                push_colored(&mut levels, &bc, &|s, e| Piece::Fused {
                    group: gu,
                    start: s,
                    end: e,
                });
                for &m in members {
                    let end_m = ends[m as usize];
                    if end_m > common {
                        let acc_m = conflict_accesses(&layout.maps, &sigs[m as usize]);
                        let bc = color_blocks_raw(common, end_m, block, &set_sizes, &acc_m);
                        push_colored(&mut levels, &bc, &|s, e| Piece::Range {
                            loop_idx: m,
                            start: s,
                            end: e,
                        });
                    }
                }
                j += members.len();
            }
            _ => {
                let acc = conflict_accesses(&layout.maps, &sigs[j]);
                let bc = color_blocks_raw(0, ends[j], block, &set_sizes, &acc);
                let ju = j as u32;
                push_colored(&mut levels, &bc, &|s, e| Piece::Range {
                    loop_idx: ju,
                    start: s,
                    end: e,
                });
                j += 1;
            }
        }
    }
    Schedule {
        n_loops: sigs.len(),
        kind: ScheduleKind::Colored { block_size: block },
        levels,
        fused: groups,
    }
}

/// Plan-cache activity counters, copied into the rank trace by the
/// harness (alongside the transport counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Chain invocations served from the cache (zero re-analysis).
    pub hits: u64,
    /// Chain invocations that built a fresh plan.
    pub misses: u64,
    /// Plans discarded by epoch bumps (layout/ownership changes).
    pub invalidations: u64,
    /// Tiled invocations that reused a cached tile schedule.
    pub tile_hits: u64,
    /// Tiled invocations that ran the tiling inspection.
    pub tile_misses: u64,
    /// Threaded executions that reused a cached block coloring.
    pub color_hits: u64,
    /// Threaded executions that ran the block-coloring inspection.
    pub color_misses: u64,
    /// Tiles executed *while an exchange was in flight* by the tiled
    /// overlap executor (summed over invocations). A pure function of
    /// the plan and tile count, so deterministic across thread counts.
    pub overlap_tiles: u64,
    /// Local-cache misses served by the cross-job [`PlanRegistry`]
    /// instead of a fresh inspection (zero re-analysis — the resident
    /// service's warm path). Not counted in `misses`.
    pub registry_hits: u64,
    /// Fresh inspections published to an attached registry (the cold
    /// path that warms it for every later job on the same mesh).
    pub registry_misses: u64,
    /// Fused pieces executed by the fused chain executor — each one ran
    /// every member kernel of its group back-to-back per element.
    pub fused_pieces: u64,
    /// Bytes of intermediate-dat memory traffic elided by scratch-pool
    /// fusion (loads + stores that never reached the dat's storage).
    pub elided_bytes: u64,
}

impl PlanStats {
    /// Accumulate another rank's (or job's) counters — the aggregation
    /// the service metrics and bench report sum per-rank stats with.
    pub fn add(&mut self, other: &PlanStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.tile_hits += other.tile_hits;
        self.tile_misses += other.tile_misses;
        self.color_hits += other.color_hits;
        self.color_misses += other.color_misses;
        self.overlap_tiles += other.overlap_tiles;
        self.registry_hits += other.registry_hits;
        self.registry_misses += other.registry_misses;
        self.fused_pieces += other.fused_pieces;
        self.elided_bytes += other.elided_bytes;
    }
}

/// Cross-job chain-plan registry: the resident service's shared,
/// immutable inspection artifacts. Keys are `(mesh signature, rank,
/// chain signature, dirty class)` — a [`ChainPlan`] is built against one
/// rank's layout, so sharing is across *jobs* on the same mesh, not
/// across ranks. Values are the same `Arc<ChainPlan>`s the per-rank
/// [`PlanCache`] holds; a plan's interior tile/coloring caches are
/// mutex-guarded, so the lazily built tile schedules and lowered
/// colorings are shared (and warmed) across jobs too.
///
/// Epoch invalidation is preserved: [`PlanCache::bump_epoch`] on a
/// registry-attached cache drops the mesh's registry entries along with
/// the local ones, so a repartitioned world can never serve stale
/// exchange layouts to the next job.
#[derive(Debug, Default)]
pub struct PlanRegistry {
    inner: Mutex<HashMap<RegistryKey, Arc<ChainPlan>>>,
}

/// `(mesh signature, rank, chain signature, dirty class)`.
type RegistryKey = (u64, u32, u64, u64);

impl PlanRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        PlanRegistry::default()
    }

    /// Look up a published plan.
    pub fn get(&self, mesh: u64, rank: u32, sig: u64, dirty: u64) -> Option<Arc<ChainPlan>> {
        self.inner
            .lock()
            .expect("plan registry poisoned")
            .get(&(mesh, rank, sig, dirty))
            .cloned()
    }

    /// Publish a freshly built plan for every later job on this mesh.
    pub fn publish(&self, mesh: u64, rank: u32, sig: u64, dirty: u64, plan: Arc<ChainPlan>) {
        self.inner
            .lock()
            .expect("plan registry poisoned")
            .insert((mesh, rank, sig, dirty), plan);
    }

    /// Drop every plan belonging to `mesh` (layout-epoch invalidation).
    pub fn invalidate_mesh(&self, mesh: u64) -> usize {
        let mut inner = self.inner.lock().expect("plan registry poisoned");
        let before = inner.len();
        inner.retain(|&(m, _, _, _), _| m != mesh);
        before - inner.len()
    }

    /// Resident plan count across all meshes and ranks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan registry poisoned").len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-rank plan cache: `(signature, dirty class) → Arc<ChainPlan>`,
/// all entries belonging to the current layout epoch.
#[derive(Debug, Default)]
pub struct PlanCache {
    epoch: u64,
    map: HashMap<(u64, u64), Arc<ChainPlan>>,
    /// Cross-job registry this cache resolves misses through (resident
    /// service only; `None` for standalone runs).
    registry: Option<Arc<PlanRegistry>>,
    /// Mesh signature and rank keying this cache's registry slice.
    mesh: u64,
    rank: u32,
    /// Activity counters (see [`PlanStats`]).
    pub stats: PlanStats,
}

impl PlanCache {
    /// Empty cache at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current layout epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cached plan count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Invalidate every cached plan: the partition layout (ownership,
    /// halo structure) changed, so all exchange layouts are stale. Call
    /// after repartitioning / layout rebuilds. With a registry attached,
    /// the mesh's published plans are dropped too — cross-job sharing
    /// must never outlive the layout it was built for.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.stats.invalidations += self.map.len() as u64;
        self.map.clear();
        if let Some(reg) = &self.registry {
            reg.invalidate_mesh(self.mesh);
        }
    }

    /// Wire this cache to a cross-job [`PlanRegistry`]: local misses are
    /// resolved through the registry's `(mesh, rank)` slice before
    /// falling back to a fresh inspection, and fresh plans are published
    /// back. Idempotent — a supervised restart re-attaches the carried
    /// cache with the same registry.
    pub fn attach_registry(&mut self, registry: Arc<PlanRegistry>, mesh: u64, rank: u32) {
        self.registry = Some(registry);
        self.mesh = mesh;
        self.rank = rank;
    }

    /// The attached registry, if any (service-side introspection).
    pub fn registry(&self) -> Option<&Arc<PlanRegistry>> {
        self.registry.as_ref()
    }
}

/// Look up (or build and cache) the plan for `chain` given the rank's
/// current validity state. The cache hit path does zero halo-layer,
/// import-depth or exchange-layout recomputation. A local miss on a
/// registry-attached cache (resident service) consults the cross-job
/// [`PlanRegistry`] next — a hit there still skips inspection entirely
/// (counted as `registry_hits`, not `misses`); only a miss on both runs
/// [`ChainPlan::build`], and the fresh plan is published back for every
/// later job on the mesh.
pub fn plan_for(
    env: &mut crate::env::RankEnv<'_>,
    chain: &ChainSpec,
    relaxed: bool,
) -> Arc<ChainPlan> {
    let sig = chain_signature(chain, relaxed);
    let dirty = dirty_class(chain, &env.valid);
    if let Some(p) = env.plans.map.get(&(sig, dirty)) {
        env.plans.stats.hits += 1;
        return Arc::clone(p);
    }
    if let Some(reg) = env.plans.registry.clone() {
        if let Some(p) = reg.get(env.plans.mesh, env.plans.rank, sig, dirty) {
            env.plans.stats.registry_hits += 1;
            env.plans.map.insert((sig, dirty), Arc::clone(&p));
            return p;
        }
    }
    env.plans.stats.misses += 1;
    let plan = Arc::new(ChainPlan::build(
        env.layout,
        env.dom,
        &env.valid,
        chain,
        relaxed,
        env.plans.epoch,
    ));
    env.plans.map.insert((sig, dirty), Arc::clone(&plan));
    if let Some(reg) = &env.plans.registry {
        env.plans.stats.registry_misses += 1;
        reg.publish(env.plans.mesh, env.plans.rank, sig, dirty, Arc::clone(&plan));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommWorld;
    use crate::env::RankEnv;
    use op2_core::LoopSpec;
    use op2_mesh::Quad2D;
    use op2_partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};

    fn noop(_: &op2_core::Args<'_>) {}

    struct Fix {
        mesh: Quad2D,
        layouts: Vec<RankLayout>,
        chain: ChainSpec,
    }

    fn fix() -> Fix {
        let mut mesh = Quad2D::generate(6, 6);
        let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
        let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        let consume = LoopSpec::new(
            "consume",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        let chain = ChainSpec::new("pc", vec![produce, consume], None, &[]).unwrap();
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 1);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 1);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        Fix {
            mesh,
            layouts,
            chain,
        }
    }

    /// The structure hash is stable across clones and sensitive to the
    /// execution mode and halo extents.
    #[test]
    fn signature_stable_and_discriminating() {
        let f = fix();
        assert_eq!(
            chain_signature(&f.chain, false),
            chain_signature(&f.chain.clone(), false)
        );
        assert_ne!(
            chain_signature(&f.chain, false),
            chain_signature(&f.chain, true)
        );
        let mut widened = f.chain.clone();
        widened.halo_ext[1] += 1;
        assert_ne!(
            chain_signature(&f.chain, false),
            chain_signature(&widened, false)
        );
    }

    /// Repeat lookups in the same dirty class hit; a validity change
    /// selects a different class (miss); an epoch bump clears the cache.
    #[test]
    fn cache_hits_and_invalidation() {
        let f = fix();
        let comm = CommWorld::new(1).into_ranks().remove(0);
        let mut env = RankEnv::new(&f.layouts[0], &f.mesh.dom, comm);

        let p1 = plan_for(&mut env, &f.chain, false);
        assert_eq!(env.plans.stats, PlanStats { misses: 1, ..Default::default() });
        let p2 = plan_for(&mut env, &f.chain, false);
        assert!(Arc::ptr_eq(&p1, &p2), "same class must share the plan");
        assert_eq!(env.plans.stats.hits, 1);

        // Dirty-bit class change: dat `a` becomes fully dirty.
        let a = f.mesh.dom.dat_by_name("a").unwrap();
        env.valid[a.idx()] = 0;
        let p3 = plan_for(&mut env, &f.chain, false);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(env.plans.stats.misses, 2);
        assert_eq!(env.plans.len(), 2);

        // Layout-epoch bump: everything out.
        env.plans.bump_epoch();
        assert_eq!(env.plans.stats.invalidations, 2);
        assert!(env.plans.is_empty());
        let _ = plan_for(&mut env, &f.chain, false);
        assert_eq!(env.plans.stats.misses, 3);
        assert_eq!(env.plans.epoch(), 1);
    }

    /// The built plan matches what the executors would derive inline.
    #[test]
    fn plan_matches_inline_analysis() {
        let f = fix();
        let layout = &f.layouts[0];
        let valid = vec![0u8; f.mesh.dom.n_dats()];
        let plan = ChainPlan::build(layout, &f.mesh.dom, &valid, &f.chain, false, 0);
        assert_eq!(plan.depth, f.chain.max_halo_layers());
        let sigs = f.chain.sigs();
        assert_eq!(plan.core_depths, op2_core::chain::core_depths(&sigs));
        let expect: Vec<(DatId, u8)> =
            op2_core::chain::import_depths(&sigs, &f.chain.halo_ext, &|_| 0)
                .into_iter()
                .map(|(d, t)| (d, t as u8))
                .collect();
        assert_eq!(plan.import, expect);
        for (pos, sig_l) in sigs.iter().enumerate() {
            let ext = f.chain.halo_ext[pos];
            assert_eq!(
                plan.exec_end[pos],
                layout.sets[sig_l.set.idx()].exec_end(ext)
            );
        }
    }

    /// Tile schedules are built once per tile count and reused.
    #[test]
    fn tile_plans_cached_per_count() {
        let f = fix();
        let layout = &f.layouts[0];
        let valid = vec![0u8; f.mesh.dom.n_dats()];
        let plan = ChainPlan::build(layout, &f.mesh.dom, &valid, &f.chain, false, 0);
        let (t1, built1) = plan.tile_plan(layout, &f.chain, 4);
        assert!(built1);
        let (t2, built2) = plan.tile_plan(layout, &f.chain, 4);
        assert!(!built2);
        assert!(Arc::ptr_eq(&t1, &t2));
        let (_, built3) = plan.tile_plan(layout, &f.chain, 2);
        assert!(built3, "a different tile count is a fresh schedule");
    }

    /// A fusable stage→apply pair with a declared scratch intermediate,
    /// on a single-rank layout.
    fn fusable_fix() -> (Fix, DatId) {
        let mut mesh = Quad2D::generate(6, 6);
        let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
        let tmp = mesh.dom.decl_dat_zeros("tmp", mesh.nodes, 1);
        let stage = LoopSpec::new(
            "stage",
            mesh.nodes,
            vec![
                Arg::dat_direct(a, AccessMode::Read),
                Arg::dat_direct(tmp, AccessMode::Write),
            ],
            noop,
        );
        let apply = LoopSpec::new(
            "apply",
            mesh.nodes,
            vec![
                Arg::dat_direct(tmp, AccessMode::Read),
                Arg::dat_direct(a, AccessMode::Rw),
            ],
            noop,
        );
        let chain = ChainSpec::new("sa", vec![stage, apply], None, &[])
            .unwrap()
            .with_scratch(&[tmp]);
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 1);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 1);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        (
            Fix {
                mesh,
                layouts,
                chain,
            },
            tmp,
        )
    }

    /// Fused schedules are built once per (lowering kind, grain) key,
    /// cached thereafter, and carry the elision bookkeeping the stats
    /// counters and the auto profit arm consume.
    #[test]
    fn fused_chains_cached_per_key_with_elision() {
        let (f, tmp) = fusable_fix();
        let layout = &f.layouts[0];
        let valid = vec![0u8; f.mesh.dom.n_dats()];
        let plan = ChainPlan::build(layout, &f.mesh.dom, &valid, &f.chain, false, 0);

        let (fc, built) = plan.fused_chain(layout, &f.mesh.dom, &f.chain, (0, 0));
        assert!(built);
        assert!(fc.fused_pieces > 0, "direct lowering must fuse the pair");
        assert_eq!(fc.elided, vec![tmp]);
        // Write + one read of a dim-1 f64 intermediate per fused element.
        let common = plan.exec_end.iter().min().copied().unwrap() as u64;
        assert_eq!(fc.elided_bytes, common * 8 * 2);
        assert_eq!(fc.sched.scratch_pool_len(), 1);

        let (fc2, built2) = plan.fused_chain(layout, &f.mesh.dom, &f.chain, (0, 0));
        assert!(!built2);
        assert!(Arc::ptr_eq(&fc, &fc2), "same key must share the schedule");

        // The colored lowering is a distinct cache entry but fuses and
        // elides identically (direct loops: one color, aligned blocks).
        let (fc3, built3) = plan.fused_chain(layout, &f.mesh.dom, &f.chain, (1, 8));
        assert!(built3, "a different key is a fresh schedule");
        assert!(fc3.fused_pieces > 0);
        assert_eq!(fc3.elided, vec![tmp]);
    }

    /// A chain whose loops cannot legally interleave yields an empty
    /// fused plan — the dispatcher's signal to stay on the split path.
    #[test]
    fn unfusable_chain_yields_no_fused_pieces() {
        let f = fix();
        let layout = &f.layouts[0];
        let valid = vec![0u8; f.mesh.dom.n_dats()];
        let plan = ChainPlan::build(layout, &f.mesh.dom, &valid, &f.chain, false, 0);
        let (fc, _) = plan.fused_chain(layout, &f.mesh.dom, &f.chain, (0, 0));
        assert_eq!(fc.fused_pieces, 0);
        assert!(fc.elided.is_empty());
        assert_eq!(fc.elided_bytes, 0);
    }
}
