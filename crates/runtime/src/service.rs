//! The resident mesh-compute service: one booted world, many jobs.
//!
//! Everything expensive in this runtime is reusable —
//! [`crate::plan::ChainPlan`]s key
//! on structural signatures, [`crate::env::ExchangeBuffers`] pre-size
//! per-peer pools, thread pools persist, tuner calibrations replay — yet
//! a standalone [`crate::harness::run_distributed`] throws all of it
//! away on return. A [`Service`] keeps it resident: meshes are
//! registered once (domain + layouts, keyed by [`mesh_signature`]), and
//! **jobs** — data-described programs over a registered mesh — are
//! submitted against them.
//!
//! ## Job lifecycle
//!
//! `submit` passes admission control (a bounded in-flight count;
//! [`ServiceError::Saturated`] beyond `OP2_SERVE_MAX_INFLIGHT`), then
//! queues on the mesh's world lock — execution is serialized per world
//! (one set of rank resources), concurrent across worlds. Each job runs
//! under full PR-6 supervision ([`run_supervised_with_state`]) on a
//! fresh clone of the registered domain with the job's initial dat
//! overrides applied, with per-rank state slots **pre-seeded** from the
//! world's carried resources:
//!
//! * thread contexts (worker pools + standalone schedule caches), kept
//!   only when the job's resolved [`Threading`] matches the one they
//!   were built for;
//! * per-peer transport payload pools, so a warm job's planned
//!   exchanges make **zero payload heap allocations**
//!   ([`crate::comm::CommCounters::payload_allocs`] — the same carry
//!   path supervised restarts use);
//! * a fresh per-job [`PlanCache`] wired to the service-wide
//!   [`PlanRegistry`], so the second job on a mesh skips inspection
//!   entirely (a `registry_hits` count, zero `misses`).
//!
//! After the job — success, crash-with-recovery, or budget exhaustion —
//! the sealed slots are harvested back into the world, so even a failed
//! job returns its buffers for the next one. A crashing job recovers
//! via checkpoint/rollback *inside its own supervision loop*: the world
//! survives, concurrent jobs on other worlds are untouched, and jobs
//! queued behind it see only added latency.
//!
//! ## Isolation and determinism
//!
//! Jobs get fresh domains, fresh checkpoints/journals, fresh traces
//! ([`JobTrace`] wraps the per-rank [`RankTrace`]s; the job id is
//! stamped into [`crate::trace::RecoveryRec`]/[`crate::trace::TunerRec`]).
//! Shared artifacts are immutable (`Arc<ChainPlan>`) or content-neutral
//! (buffer pools, thread pools), so a service job's results are bitwise
//! identical to a standalone [`crate::harness::run_distributed`] of the
//! same program — including under a mid-job crash with recovery
//! (`tests/service.rs` asserts both).
//!
//! ## Batching
//!
//! [`Service::submit_batch`] groups same-shaped jobs (equal
//! [`Job::shape`]: mesh + setup/steps/finish signatures + iteration
//! count) and runs each group back-to-back under one world-lock hold on
//! hot plans and pools — the amortization the paper's inspector-
//! executor split exists for, applied across whole simulations.

use crate::checkpoint::{CheckpointConfig, RankState};
use crate::comm::CommCounters;
use crate::env::RankEnv;
use crate::error::{ConfigError, RuntimeError};
use crate::exec::{run_chain, run_chain_relaxed, run_chain_tiled, run_loop};
use crate::fault::FaultPlan;
use crate::harness::RunOptions;
use crate::plan::{
    self, chain_signature, loop_signature, mesh_signature, PlanCache, PlanRegistry, PlanStats,
};
use crate::supervise::{run_supervised_with_state, SuperviseOptions};
use crate::threads::{ThreadCtx, Threading};
use crate::trace::RankTrace;
use op2_core::{ChainSpec, DatId, Domain, LoopSpec, SetId};
use op2_partition::RankLayout;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Service configuration: admission bound, batching, and the run
/// options every job inherits.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admitted-but-unfinished job bound (`OP2_SERVE_MAX_INFLIGHT`,
    /// default 8). Submissions beyond it are rejected with
    /// [`ServiceError::Saturated`], never silently queued unbounded.
    pub max_inflight: usize,
    /// Group same-shaped jobs in [`Service::submit_batch`]
    /// (`OP2_SERVE_BATCH`, default on).
    pub batch: bool,
    /// Base run options (fault plan, comm policy, threading, checkpoint
    /// cadence) each job starts from; per-job overrides apply on top.
    pub run: RunOptions,
    /// Per-job recovery budget (see
    /// [`crate::supervise::SuperviseOptions::max_recoveries`]).
    pub max_recoveries: u32,
    /// Per-job straggler deadline escalation.
    pub escalate_deadline: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_inflight: 8,
            batch: true,
            run: RunOptions::default(),
            max_recoveries: 3,
            escalate_deadline: true,
        }
    }
}

impl ServiceConfig {
    /// Parse raw `OP2_SERVE_MAX_INFLIGHT` / `OP2_SERVE_BATCH` values
    /// (`None` = unset) through the centralized knob path
    /// ([`crate::env::parse_knob`]). Pure — no environment access.
    pub fn parse(max_inflight: Option<&str>, batch: Option<&str>) -> Result<Self, ConfigError> {
        let mut cfg = ServiceConfig::default();
        if let Some(n) = crate::env::parse_knob(
            max_inflight,
            |s| s.parse::<usize>().ok().filter(|&n| n >= 1),
            |value| ConfigError::ServeMaxInflight { value },
        )? {
            cfg.max_inflight = n;
        }
        if let Some(b) = crate::env::parse_knob(
            batch,
            |s| match s {
                "1" | "true" | "on" => Some(true),
                "0" | "false" | "off" => Some(false),
                _ => None,
            },
            |value| ConfigError::ServeBatch { value },
        )? {
            cfg.batch = b;
        }
        Ok(cfg)
    }

    /// Read the `OP2_SERVE_*` environment knobs, typed errors on
    /// malformed values — same discipline as `OP2_THREADS` and
    /// `OP2_CKPT_EVERY`.
    pub fn try_from_env() -> Result<Self, ConfigError> {
        Self::parse(
            std::env::var("OP2_SERVE_MAX_INFLIGHT").ok().as_deref(),
            std::env::var("OP2_SERVE_BATCH").ok().as_deref(),
        )
    }

    /// Override the base run options (builder style).
    pub fn run(mut self, run: RunOptions) -> Self {
        self.run = run;
        self
    }

    /// Override the admission bound (builder style).
    pub fn max_inflight(mut self, n: usize) -> Self {
        assert!(n >= 1, "max_inflight must be at least 1");
        self.max_inflight = n;
        self
    }
}

/// Why the service rejected or failed a job.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control: the in-flight bound is reached. Resubmit
    /// later — nothing was queued.
    Saturated {
        /// Jobs admitted and unfinished at rejection time.
        inflight: usize,
        /// The configured bound.
        max: usize,
    },
    /// The job names a mesh signature no registered world matches.
    UnknownMesh {
        /// The unmatched signature.
        mesh: u64,
    },
    /// A job's initial dat override does not match the dat's payload
    /// length in the registered domain.
    BadInit {
        /// The job.
        name: String,
        /// The offending dat.
        dat: DatId,
        /// Payload length the domain expects.
        expect: usize,
        /// Length the job supplied.
        got: usize,
    },
    /// A service knob failed to parse.
    Config(ConfigError),
    /// The job failed beyond its recovery budget (or hit a
    /// non-recoverable error). The world survives; only this job is
    /// lost.
    Job {
        /// The failed job.
        name: String,
        /// The underlying runtime error (boxed:
        /// [`RuntimeError::RecoveryExhausted`] carries full traces).
        error: Box<RuntimeError>,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Saturated { inflight, max } => {
                write!(f, "service saturated: {inflight} job(s) in flight (max {max})")
            }
            ServiceError::UnknownMesh { mesh } => {
                write!(f, "no registered mesh with signature {mesh:#018x}")
            }
            ServiceError::BadInit {
                name,
                dat,
                expect,
                got,
            } => write!(
                f,
                "job `{name}`: initial state for dat {} has {got} value(s), domain expects {expect}",
                dat.idx()
            ),
            ServiceError::Config(e) => write!(f, "invalid service configuration: {e}"),
            ServiceError::Job { name, error } => write!(f, "job `{name}` failed: {error}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Config(e) => Some(e),
            ServiceError::Job { error, .. } => Some(error.as_ref()),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}

/// One instruction of a job's data-described program. Jobs carry data,
/// not closures, so the service's supervised execution and a standalone
/// [`crate::harness::run_distributed`] comparison run byte-for-byte the
/// same instruction stream.
#[derive(Debug, Clone)]
pub enum JobStep {
    /// A standard Alg 1 loop ([`run_loop`]).
    Loop(LoopSpec),
    /// A strict CA chain ([`run_chain`]).
    Chain(ChainSpec),
    /// A relaxed (paper-mode) CA chain ([`run_chain_relaxed`]).
    ChainRelaxed(ChainSpec),
    /// A sparse-tiled CA chain with the given tile count
    /// ([`run_chain_tiled`]).
    ChainTiled(ChainSpec, usize),
}

impl JobStep {
    /// Structural signature of this step (loop/chain signature plus the
    /// execution mode) — the ingredient of [`Job::shape`].
    fn sig(&self) -> u64 {
        match self {
            JobStep::Loop(l) => loop_signature(l),
            JobStep::Chain(c) => chain_signature(c, false),
            JobStep::ChainRelaxed(c) => chain_signature(c, true),
            JobStep::ChainTiled(c, n) => {
                let mut h = chain_signature(c, false);
                plan::fnv_usize(&mut h, *n);
                h
            }
        }
    }
}

/// A simulation job: a program over a registered mesh, initial dat
/// state, and an iteration count.
#[derive(Debug, Clone, Default)]
pub struct Job {
    /// Human-readable name (trace/reporting only).
    pub name: String,
    /// Run once before the iterations (initialization loops).
    pub setup: Vec<JobStep>,
    /// One iteration's steps, repeated `iters` times.
    pub steps: Vec<JobStep>,
    /// Run once after the iterations; these steps' loop results (e.g. a
    /// residual reduction) land in [`JobOutcome::gbls`].
    pub finish: Vec<JobStep>,
    /// Iteration count.
    pub iters: usize,
    /// Initial dat payloads overriding the registered domain's (global
    /// numbering; unlisted dats keep the registered values).
    pub init: Vec<(DatId, Vec<f64>)>,
    /// Fault plan for this job only (chaos testing a single tenant).
    pub faults: Option<Arc<FaultPlan>>,
    /// Checkpoint cadence override for this job.
    pub checkpoint_every: Option<u64>,
}

impl Job {
    /// A job running `steps` for `iters` iterations.
    pub fn new(name: impl Into<String>, steps: Vec<JobStep>, iters: usize) -> Self {
        Job {
            name: name.into(),
            steps,
            iters,
            ..Job::default()
        }
    }

    /// Setup steps, run once before the iterations (builder style).
    pub fn setup(mut self, setup: Vec<JobStep>) -> Self {
        self.setup = setup;
        self
    }

    /// Finish steps, run once after the iterations (builder style).
    pub fn finish(mut self, finish: Vec<JobStep>) -> Self {
        self.finish = finish;
        self
    }

    /// Initial dat payload override (builder style).
    pub fn with_init(mut self, dat: DatId, data: Vec<f64>) -> Self {
        self.init.push((dat, data));
        self
    }

    /// Fault plan for this job (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Checkpoint cadence for this job (builder style).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Structural shape of this job: setup/steps/finish signatures and
    /// the iteration count (initial data excluded — same-shaped jobs
    /// differ exactly by their inputs). Jobs with equal shapes on one
    /// mesh batch together: identical plans, schedules and buffer
    /// demands, so back-to-back execution re-warms nothing.
    pub fn shape(&self) -> u64 {
        let mut h = plan::FNV_OFFSET;
        for part in [&self.setup, &self.steps, &self.finish] {
            plan::fnv_usize(&mut h, part.len());
            for s in part {
                plan::fnv_bytes(&mut h, &s.sig().to_le_bytes());
            }
        }
        plan::fnv_usize(&mut h, self.iters);
        h
    }
}

/// Per-job trace: the job's per-rank [`RankTrace`]s plus job-level
/// context, isolated from every other job on the world.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Service-assigned job id (also stamped into the rank traces'
    /// recovery/tuner records).
    pub job: u64,
    /// The job's name.
    pub name: String,
    /// True when the job ran entirely on shared/cached plans — zero
    /// chain inspections ([`PlanStats::misses`] summed over ranks is 0).
    pub warm: bool,
    /// True when this job ran inside a same-shape batch group.
    pub batched: bool,
    /// Per-rank traces, indexed by rank.
    pub ranks: Vec<RankTrace>,
}

impl JobTrace {
    /// Plan-cache/registry counters summed over ranks.
    pub fn plan_total(&self) -> PlanStats {
        let mut total = PlanStats::default();
        for t in &self.ranks {
            total.add(&t.plan);
        }
        total
    }

    /// Transport counters summed over ranks.
    pub fn comm_total(&self) -> CommCounters {
        let mut total = CommCounters::default();
        for t in &self.ranks {
            total.add(&t.comm);
        }
        total
    }

    /// Payload-pool misses across the job — 0 on a warm world is the
    /// zero-allocation steady-state assertion.
    pub fn payload_allocs(&self) -> u64 {
        self.comm_total().payload_allocs
    }
}

/// What a completed job returns.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Service-assigned job id.
    pub job: u64,
    /// Final global dat payloads, indexed by [`DatId`] — the service
    /// analogue of the domain state after a standalone run.
    pub dats: Vec<Vec<f64>>,
    /// Per finish-step loop results (global-argument buffers; empty for
    /// chain steps) from rank 0 — reductions are identical on every
    /// rank by construction.
    pub gbls: Vec<Vec<Vec<f64>>>,
    /// The job's isolated trace.
    pub trace: JobTrace,
}

/// Execute one job's program on a rank env — **the** instruction
/// stream, used verbatim by the service's supervised closure and by
/// standalone `run_distributed` comparisons, so the bitwise-identity
/// contract is between two executions of the same function.
pub fn exec_job_program(
    env: &mut RankEnv<'_>,
    job: &Job,
) -> Result<Vec<Vec<Vec<f64>>>, RuntimeError> {
    for s in &job.setup {
        exec_step(env, s)?;
    }
    for _ in 0..job.iters {
        for s in &job.steps {
            exec_step(env, s)?;
        }
    }
    let mut gbls = Vec::with_capacity(job.finish.len());
    for s in &job.finish {
        gbls.push(exec_step(env, s)?.unwrap_or_default());
    }
    Ok(gbls)
}

/// Run one step; `Some(gbls)` for loops, `None` for chains.
fn exec_step(env: &mut RankEnv<'_>, step: &JobStep) -> Result<Option<Vec<Vec<f64>>>, RuntimeError> {
    Ok(match step {
        JobStep::Loop(l) => Some(run_loop(env, l)?.gbls),
        JobStep::Chain(c) => {
            run_chain(env, c)?;
            None
        }
        JobStep::ChainRelaxed(c) => {
            run_chain_relaxed(env, c)?;
            None
        }
        JobStep::ChainTiled(c, n) => {
            run_chain_tiled(env, c, *n)?;
            None
        }
    })
}

/// Carried per-rank resources of a world, between jobs.
#[derive(Default)]
struct CarrySlot {
    /// Thread context (worker pool + standalone schedule cache) from
    /// the last job on this world.
    threads: Option<ThreadCtx>,
    /// The threading the carried context was built for — a mismatching
    /// next job drops it (a pool of the wrong width would mislabel
    /// traces; results are thread-count-invariant either way).
    threads_for: Option<Threading>,
    /// Per-peer transport payload pools, recycled into the next job's
    /// fresh transport ([`crate::comm::RankComm::install_pool`]).
    pools: Option<Vec<Vec<Vec<f64>>>>,
}

/// One registered mesh's resident world.
struct World {
    mesh: u64,
    /// Pristine registered domain; every job runs on a clone.
    base: Domain,
    layouts: Vec<RankLayout>,
    carry: Vec<CarrySlot>,
    jobs_run: u64,
}

/// Cumulative service counters ([`Service::metrics`] snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceMetrics {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs lost (recovery budget exhausted or non-recoverable error).
    pub failed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs that ran inside a same-shape batch group.
    pub batched: u64,
    /// Completed jobs that performed zero chain inspections.
    pub warm_jobs: u64,
    /// Coordinated rollbacks across all jobs (crash recoveries).
    pub recoveries: u64,
    /// Plan-cache/registry counters summed over completed jobs' ranks.
    pub plan: PlanStats,
    /// Payload-pool misses summed over completed jobs' ranks.
    pub payload_allocs: u64,
    /// Plans currently resident in the shared registry (gauge, filled
    /// at snapshot time).
    pub registry_plans: u64,
    /// Online mesh rebalances executed ([`Service::rebalance_mesh`]).
    pub rebalances: u64,
    /// Registry plans dropped by rebalance invalidations (each
    /// rebalance invalidates its old mesh signature exactly once).
    pub invalidated_plans: u64,
    /// Elements that changed owner across all rebalances.
    pub migrated_elements: u64,
    /// Payload bytes shipped by migrations (dat slices + renumbering
    /// tables).
    pub migrated_bytes: u64,
}

/// RAII admission permit: holds `n` in-flight slots until the job(s)
/// finish (drop runs on panic paths too, so a crashed submission can
/// never leak capacity).
struct Permit<'a> {
    svc: &'a Service,
    n: usize,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.svc.inflight.fetch_sub(self.n, Ordering::SeqCst);
    }
}

/// The resident mesh-compute server. All methods take `&self`: a
/// `Service` is shared across submitter threads (`Arc` or scoped
/// borrows), jobs on distinct meshes run concurrently, jobs on one mesh
/// serialize on its world lock.
pub struct Service {
    cfg: ServiceConfig,
    registry: Arc<PlanRegistry>,
    worlds: Mutex<HashMap<u64, Arc<Mutex<World>>>>,
    inflight: AtomicUsize,
    next_job: AtomicU64,
    metrics: Mutex<ServiceMetrics>,
}

impl Service {
    /// Boot a service with explicit configuration.
    pub fn new(cfg: ServiceConfig) -> Self {
        Service {
            cfg,
            registry: Arc::new(PlanRegistry::new()),
            worlds: Mutex::new(HashMap::new()),
            inflight: AtomicUsize::new(0),
            next_job: AtomicU64::new(0),
            metrics: Mutex::new(ServiceMetrics::default()),
        }
    }

    /// Boot from the `OP2_SERVE_*` environment knobs.
    pub fn from_env() -> Result<Self, ConfigError> {
        Ok(Service::new(ServiceConfig::try_from_env()?))
    }

    /// Register a mesh world: the pristine domain and its partition
    /// layouts. Returns the [`mesh_signature`] jobs submit against.
    /// Re-registering an identical mesh is a no-op returning the same
    /// signature (the resident world and its warm state are kept).
    pub fn register_mesh(&self, dom: Domain, layouts: Vec<RankLayout>) -> u64 {
        let mesh = mesh_signature(&layouts);
        let mut worlds = self.worlds.lock().unwrap_or_else(|p| p.into_inner());
        worlds.entry(mesh).or_insert_with(|| {
            let carry = (0..layouts.len()).map(|_| CarrySlot::default()).collect();
            Arc::new(Mutex::new(World {
                mesh,
                base: dom,
                layouts,
                carry,
                jobs_run: 0,
            }))
        });
        mesh
    }

    /// Rebalance a registered mesh from measured per-rank load: derive
    /// element costs from the traces' windowed wall times (the same
    /// estimate [`crate::rebalance::detect`] triggers on) and delegate
    /// to [`Service::rebalance_mesh_with_costs`]. `base`/`coords`/`dims`
    /// name the partitioning base set and its coordinate dat.
    pub fn rebalance_mesh(
        &self,
        mesh: u64,
        base: SetId,
        coords: DatId,
        dims: usize,
        traces: &[RankTrace],
        cfg: &crate::rebalance::RebalanceConfig,
    ) -> Result<Option<u64>, ServiceError> {
        let Some(est) = crate::rebalance::detect(traces, cfg) else {
            return Ok(None);
        };
        let world = self.world(mesh)?;
        let costs = {
            let w = lock(&world);
            crate::rebalance::element_costs(&w.base, base, &w.layouts, &est)
        };
        self.rebalance_mesh_with_costs(mesh, base, coords, dims, &costs, est.imbalance_milli())
    }

    /// Live re-shard of a registered mesh from explicit per-element
    /// costs: plan the migration, ship the moved elements over the
    /// world's transport, invalidate the old mesh's registry plans
    /// (exactly one [`PlanRegistry::invalidate_mesh`] call), install the
    /// new layouts, and re-key the world under its new
    /// [`mesh_signature`]. Jobs already holding the old signature get
    /// [`ServiceError::UnknownMesh`]; the first job on the returned
    /// signature re-inspects and republishes, everything after runs
    /// warm. Returns `Ok(None)` when the re-shard moves nothing.
    pub fn rebalance_mesh_with_costs(
        &self,
        mesh: u64,
        base: SetId,
        coords: DatId,
        dims: usize,
        costs: &[f64],
        imbalance_before_milli: u64,
    ) -> Result<Option<u64>, ServiceError> {
        let world = self.world(mesh)?;
        let mut w = lock(&world);
        let mut opts = self.cfg.run.clone();
        opts.faults = None; // migration traffic is not a fault target
        let outcome = {
            let World {
                base: dom, layouts, ..
            } = &mut *w;
            crate::rebalance::rebalance(
                dom,
                base,
                coords,
                dims,
                layouts,
                costs,
                imbalance_before_milli,
                &opts,
            )
        };
        let outcome = match outcome {
            Ok(None) => return Ok(None),
            Ok(Some(o)) => o,
            Err(RuntimeError::Config(e)) => return Err(ServiceError::Config(e)),
            Err(e) => {
                return Err(ServiceError::Job {
                    name: "rebalance".into(),
                    error: Box::new(e),
                })
            }
        };
        // Epoch fence, service flavour: the old mesh's registry plans
        // drop in exactly one invalidation; carried thread contexts die
        // with the layout (their schedule caches key on ranges of the
        // old index spaces); content-neutral payload pools survive.
        let dropped = self.registry.invalidate_mesh(w.mesh) as u64;
        let new_mesh = mesh_signature(&outcome.layouts);
        let old_mesh = w.mesh;
        w.layouts = outcome.layouts;
        w.mesh = new_mesh;
        for c in &mut w.carry {
            c.threads = None;
            c.threads_for = None;
        }
        {
            let mut worlds = self.worlds.lock().unwrap_or_else(|p| p.into_inner());
            worlds.remove(&old_mesh);
            worlds.insert(new_mesh, Arc::clone(&world));
        }
        self.with_metrics(|m| {
            m.rebalances += 1;
            m.invalidated_plans += dropped;
            m.migrated_elements += outcome.rec.elements_out;
            m.migrated_bytes += outcome.rec.bytes_out;
        });
        Ok(Some(new_mesh))
    }

    /// Jobs admitted and not yet finished (gauge).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// The cross-job plan registry (introspection).
    pub fn registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    /// Snapshot of the cumulative counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut m = *self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        m.registry_plans = self.registry.len() as u64;
        m
    }

    fn with_metrics(&self, f: impl FnOnce(&mut ServiceMetrics)) {
        f(&mut self.metrics.lock().unwrap_or_else(|p| p.into_inner()));
    }

    /// Take `n` admission slots or reject with
    /// [`ServiceError::Saturated`].
    fn admit(&self, n: usize) -> Result<Permit<'_>, ServiceError> {
        let mut cur = self.inflight.load(Ordering::SeqCst);
        loop {
            if cur + n > self.cfg.max_inflight {
                self.with_metrics(|m| m.rejected += n as u64);
                return Err(ServiceError::Saturated {
                    inflight: cur,
                    max: self.cfg.max_inflight,
                });
            }
            match self.inflight.compare_exchange(
                cur,
                cur + n,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(Permit { svc: self, n }),
                Err(now) => cur = now,
            }
        }
    }

    fn world(&self, mesh: u64) -> Result<Arc<Mutex<World>>, ServiceError> {
        self.worlds
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&mesh)
            .cloned()
            .ok_or(ServiceError::UnknownMesh { mesh })
    }

    /// Submit one job against a registered mesh and wait for its
    /// outcome. Queues on the mesh's world lock behind earlier jobs;
    /// rejected immediately when the service is saturated.
    pub fn submit(&self, mesh: u64, job: &Job) -> Result<JobOutcome, ServiceError> {
        let _permit = self.admit(1)?;
        self.with_metrics(|m| m.submitted += 1);
        let world = self.world(mesh)?;
        let mut w = world.lock().unwrap_or_else(|p| p.into_inner());
        self.run_world_job(&mut w, job, false)
    }

    /// Submit a batch and wait for all outcomes (input order). With
    /// batching enabled, same-[`Job::shape`] jobs run back-to-back on
    /// hot plans and pools; the whole batch needs admission capacity at
    /// once. The outer `Err` is admission/lookup; per-job failures land
    /// in the inner results — one crashing job never takes down its
    /// batch mates.
    #[allow(clippy::type_complexity)]
    pub fn submit_batch(
        &self,
        mesh: u64,
        jobs: &[Job],
    ) -> Result<Vec<Result<JobOutcome, ServiceError>>, ServiceError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let _permit = self.admit(jobs.len())?;
        self.with_metrics(|m| m.submitted += jobs.len() as u64);
        let world = self.world(mesh)?;
        // Group by shape, preserving submission order within and across
        // groups (first-appearance order keeps batch results reproducible).
        let shapes: Vec<u64> = jobs.iter().map(Job::shape).collect();
        let mut group_order: Vec<u64> = Vec::new();
        for &s in &shapes {
            if !group_order.contains(&s) {
                group_order.push(s);
            }
        }
        let mut outcomes: Vec<Option<Result<JobOutcome, ServiceError>>> =
            (0..jobs.len()).map(|_| None).collect();
        let mut w = world.lock().unwrap_or_else(|p| p.into_inner());
        for shape in group_order {
            let idxs: Vec<usize> = (0..jobs.len()).filter(|&i| shapes[i] == shape).collect();
            let batched = self.cfg.batch && idxs.len() > 1;
            for i in idxs {
                outcomes[i] = Some(self.run_world_job(&mut w, &jobs[i], batched));
            }
        }
        Ok(outcomes.into_iter().map(|o| o.expect("every job ran")).collect())
    }

    /// Run one job on a locked world: seed per-rank state from the
    /// world's carried resources, execute under supervision, harvest
    /// the resources back (crash or not), and account the outcome.
    fn run_world_job(
        &self,
        world: &mut World,
        job: &Job,
        batched: bool,
    ) -> Result<JobOutcome, ServiceError> {
        let job_id = self.next_job.fetch_add(1, Ordering::SeqCst) + 1;
        let nparts = world.layouts.len();
        // Resolve threading exactly as the harness will, so the carried
        // thread-context validity check agrees with what the job runs.
        let threading = match self.cfg.run.threading {
            Some(t) => t,
            None => Threading::try_from_env()?.split_across(nparts),
        };

        // Fresh per-job state slots, pre-seeded with the world's carry.
        let slots: Vec<Arc<Mutex<RankState>>> = (0..nparts)
            .map(|r| {
                let mut st = RankState::new();
                st.rec.job = job_id;
                let carry = &mut world.carry[r];
                if carry.threads_for == Some(threading) {
                    st.threads = carry.threads.take();
                } else {
                    carry.threads = None;
                }
                st.pools = carry.pools.take();
                let mut plans = PlanCache::new();
                plans.attach_registry(Arc::clone(&self.registry), world.mesh, r as u32);
                st.plans = Some(plans);
                Arc::new(Mutex::new(st))
            })
            .collect();

        // Per-job domain: pristine base plus the job's initial state.
        let mut dom = world.base.clone();
        for (dat, data) in &job.init {
            let buf = &mut dom.dat_mut(*dat).data;
            if buf.len() != data.len() {
                return Err(ServiceError::BadInit {
                    name: job.name.clone(),
                    dat: *dat,
                    expect: buf.len(),
                    got: data.len(),
                });
            }
            buf.clone_from(data);
        }

        let mut run = self.cfg.run.clone();
        run.threading = Some(threading);
        run.faults = job.faults.clone();
        if let Some(every) = job.checkpoint_every {
            run.checkpoint = Some(CheckpointConfig::new(every));
        }
        let sopts = SuperviseOptions {
            run,
            max_recoveries: self.cfg.max_recoveries,
            escalate_deadline: self.cfg.escalate_deadline,
        };

        let result = run_supervised_with_state(&mut dom, &world.layouts, &sopts, &slots, |env| {
            env.job = job_id;
            exec_job_program(env, job)
        });

        // Harvest carried resources — sealed by `ckpt_seal` even for
        // failed ranks, so a lost job still returns its buffers.
        for (r, slot) in slots.iter().enumerate() {
            let mut st = lock(slot);
            if let Some(t) = st.threads.take() {
                world.carry[r].threads = Some(t);
                world.carry[r].threads_for = Some(threading);
            }
            if let Some(p) = st.pools.take() {
                world.carry[r].pools = Some(p);
            }
            // The per-job plan cache is dropped: the registry holds the
            // shared artifacts; local caches stay job-scoped.
        }
        rebalance_pools(&mut world.carry);
        world.jobs_run += 1;

        let out = match result {
            Ok(out) => out,
            Err(RuntimeError::Config(e)) => {
                self.with_metrics(|m| m.failed += 1);
                return Err(ServiceError::Config(e));
            }
            Err(e) => {
                self.with_metrics(|m| m.failed += 1);
                return Err(ServiceError::Job {
                    name: job.name.clone(),
                    error: Box::new(e),
                });
            }
        };
        let mut results = out.results;
        let gbls = match results.remove(0) {
            Ok(g) => g,
            Err(f) => unreachable!("supervised success with failed rank 0: {f}"),
        };
        let dats: Vec<Vec<f64>> = (0..dom.n_dats())
            .map(|d| dom.dat(DatId(d as u32)).data.clone())
            .collect();
        let trace = JobTrace {
            job: job_id,
            name: job.name.clone(),
            warm: false,
            batched,
            ranks: out.traces,
        };
        let plan_total = trace.plan_total();
        let warm = plan_total.misses == 0;
        let trace = JobTrace { warm, ..trace };
        self.with_metrics(|m| {
            m.completed += 1;
            if batched {
                m.batched += 1;
            }
            if warm {
                m.warm_jobs += 1;
            }
            // Rollbacks are coordinated — identical on every rank.
            m.recoveries += trace.ranks[0].recovery.rollbacks;
            m.plan.add(&plan_total);
            m.payload_allocs += trace.payload_allocs();
        });
        Ok(JobOutcome {
            job: job_id,
            dats,
            gbls,
            trace,
        })
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Even out the pair-circulating payload buffers between jobs.
///
/// Chain exchanges swap buffers symmetrically (each side's send buffer
/// lands in the other side's pool slot for it), so a pair's buffer
/// total is conserved. One-way traffic is not: an asymmetric halo
/// segment (a imports from b, b imports nothing back) or a reduction
/// broadcast leg permanently migrates the sender's buffer to the
/// receiver, which never sends it back — left alone, the sending side
/// would re-allocate the same buffers every job while the receiving
/// side hoards them. The world owns all pools between jobs, so restock
/// the depleted side of each skewed pair.
fn rebalance_pools(carry: &mut [CarrySlot]) {
    for a in 0..carry.len() {
        let (lo, hi) = carry.split_at_mut(a + 1);
        let ca = &mut lo[a];
        for (off, cb) in hi.iter_mut().enumerate() {
            let b = a + 1 + off;
            if let (Some(pa), Some(pb)) = (ca.pools.as_mut(), cb.pools.as_mut()) {
                balance_slot_pair(&mut pa[b], &mut pb[a]);
            }
        }
    }
}

/// Resolve one pair's skew. A near-even pair (symmetric swap traffic)
/// is left alone. A skewed pair means one-way traffic: the sender's
/// buffers stranded on the receiving side, which itself sends little or
/// nothing — so the stranded side keeps one buffer and everything else
/// goes back to the depleted (sending) side, smallest first.
fn balance_slot_pair(x: &mut Vec<Vec<f64>>, y: &mut Vec<Vec<f64>>) {
    let (from, to) = if x.len() > y.len() + 1 {
        (x, y)
    } else if y.len() > x.len() + 1 {
        (y, x)
    } else {
        return;
    };
    while from.len() > 1 {
        let min = (0..from.len())
            .min_by_key(|&i| from[i].capacity())
            .expect("richer side is non-empty");
        to.push(from.swap_remove(min));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Knob parsing: defaults, overrides, typed errors.
    #[test]
    fn config_parsing() {
        let d = ServiceConfig::parse(None, None).unwrap();
        assert_eq!(d.max_inflight, 8);
        assert!(d.batch);
        let c = ServiceConfig::parse(Some("3"), Some("0")).unwrap();
        assert_eq!(c.max_inflight, 3);
        assert!(!c.batch);
        assert!(matches!(
            ServiceConfig::parse(Some("0"), None),
            Err(ConfigError::ServeMaxInflight { .. })
        ));
        assert!(matches!(
            ServiceConfig::parse(None, Some("maybe")),
            Err(ConfigError::ServeBatch { .. })
        ));
    }

    /// The checkpoint knob flows through the same centralized path.
    #[test]
    fn ckpt_knob_centralized() {
        assert_eq!(CheckpointConfig::parse(None).unwrap().every, 1);
        assert_eq!(CheckpointConfig::parse(Some("5")).unwrap().every, 5);
        assert!(matches!(
            CheckpointConfig::parse(Some("zero")),
            Err(ConfigError::CkptEvery { .. })
        ));
        assert!(matches!(
            CheckpointConfig::parse(Some("0")),
            Err(ConfigError::CkptEvery { .. })
        ));
    }

    /// Unknown meshes are a typed rejection, not a panic.
    #[test]
    fn unknown_mesh_rejected() {
        let svc = Service::new(ServiceConfig::default());
        let job = Job::new("j", vec![], 0);
        assert!(matches!(
            svc.submit(42, &job),
            Err(ServiceError::UnknownMesh { mesh: 42 })
        ));
    }

    /// A batch larger than the admission bound is rejected whole —
    /// deterministic saturation without relying on timing.
    #[test]
    fn oversized_batch_saturates() {
        let svc = Service::new(ServiceConfig::default().max_inflight(2));
        let jobs = vec![Job::default(), Job::default(), Job::default()];
        match svc.submit_batch(1, &jobs) {
            Err(ServiceError::Saturated { inflight, max }) => {
                assert_eq!(inflight, 0);
                assert_eq!(max, 2);
            }
            other => panic!("expected saturation, got {other:?}"),
        }
        assert_eq!(svc.metrics().rejected, 3);
        assert_eq!(svc.inflight(), 0, "rejected batches leak no capacity");
    }
}
