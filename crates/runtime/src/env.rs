//! Per-rank execution state.
//!
//! A [`RankEnv`] owns everything one MPI-rank-equivalent needs: its local
//! dat buffers (in layout order: owned, then import rings level by
//! level), the transport endpoint, instrumentation, and — the key piece —
//! per-dat **halo validity depths**.
//!
//! ## Validity depths (multi-level dirty bits)
//!
//! OP2 keeps one *dirty bit* per dat: set when any loop modifies the dat,
//! cleared by a halo exchange. With multi-layered halos this generalises
//! to an integer `valid[d] = v`: our copies of rings `1..=v` agree with
//! their owners. The transitions implemented by the executors:
//!
//! * a halo exchange to depth `t` raises validity to `t`;
//! * a loop executed to halo extent `e` that modifies `d` *indirectly*
//!   (INC / indirect RW / indirect WRITE) leaves `valid[d] = e − 1`: the
//!   outermost executed ring received only the increments of executed
//!   iterations, so it holds partial sums;
//! * a loop that *directly writes* `d` over extent `e` leaves
//!   `valid[d] = e` — each written element is recomputed from inputs the
//!   executor has verified valid, so our copies equal the owner's. (For
//!   the OP2-baseline executor we deliberately degrade this to 0,
//!   matching OP2's conservative single dirty bit, so baseline message
//!   counts reproduce the paper's.)
//!
//! Executors *assert* their read requirements against `valid` before
//! touching data: an analysis bug becomes a loud panic, never silent
//! numerical corruption.

use crate::comm::{CommError, RankComm};
use crate::fault::{BoundaryAction, BoundaryKind};
use crate::plan::{ChainPlan, NeighborPack, PlanCache};
use crate::threads::{
    run_schedule_dataflow, run_schedule_pooled_ctx, ExecStats, ThreadCtx, Threading,
};
use crate::trace::{ExchangeRec, RankTrace, SchedKind, ThreadRec};
use op2_core::dag::{dag_accesses, ChunkDag};
use op2_core::par::{adaptive_block_size, color_blocks_raw, conflict_accesses, BlockColoring};
use op2_core::schedule::{
    run_schedule_ctx, BoundArg, BoundLoop, SchedCtx, Schedule, ScheduleKind,
};
use op2_core::{Arg, ChainSpec, DatId, Domain, LoopSig, LoopSpec};
use op2_partition::layout::{NeighborPlan, RankLayout};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

enum ExecIters<'a> {
    Range(usize, usize),
    List(&'a [u32]),
}

/// Parse one `OP2_*` environment knob's raw value (`None` = variable
/// unset). The pure half of [`env_knob`]: no environment access, so the
/// harness validates configuration once at startup and tests cover every
/// malformed shape without mutating process state. `parse` returning
/// `None` means the value is malformed and becomes `err(value)` — a
/// typed [`ConfigError`] instead of a silent fallback or a panic inside
/// a rank thread.
pub fn parse_knob<T>(
    raw: Option<&str>,
    parse: impl FnOnce(&str) -> Option<T>,
    err: impl FnOnce(String) -> crate::error::ConfigError,
) -> Result<Option<T>, crate::error::ConfigError> {
    match raw {
        None => Ok(None),
        Some(v) => parse(v).map(Some).ok_or_else(|| err(v.to_string())),
    }
}

/// Read and parse one `OP2_*` environment knob through [`parse_knob`] —
/// the single environment-access point for runtime configuration
/// (`OP2_CKPT_EVERY`, `OP2_SERVE_*`; `OP2_THREADS`/`OP2_BLOCK_SIZE` are
/// a coupled pair parsed by [`Threading::parse`] but follow the same
/// typed-error discipline). `Ok(None)` = unset, caller applies its
/// default.
pub fn env_knob<T>(
    name: &str,
    parse: impl FnOnce(&str) -> Option<T>,
    err: impl FnOnce(String) -> crate::error::ConfigError,
) -> Result<Option<T>, crate::error::ConfigError> {
    parse_knob(std::env::var(name).ok().as_deref(), parse, err)
}

/// Cross-loop fusion policy (`OP2_FUSE`): whether chain executors may
/// replace the per-loop walk with a fused whole-chain schedule that runs
/// every fusable kernel back-to-back per element, keeping elidable
/// intermediates in per-worker scratch instead of memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FuseMode {
    /// Always run fused when the chain has at least one fusable group.
    On,
    /// Never fuse — the per-loop executors run unchanged (the default:
    /// fusion trades away exchange/compute overlap, so it must be asked
    /// for or predicted profitable).
    #[default]
    Off,
    /// Let the calibrated cost model decide per chain
    /// ([`op2_model::classify_fused`]): fuse only when the elided
    /// memory traffic is predicted to outweigh the lost overlap.
    Auto,
}

impl FuseMode {
    /// Parse an `OP2_FUSE`-style value: `on` / `off` / `auto`
    /// (case-insensitive; `None` = unset → `Off`).
    pub fn parse(raw: Option<&str>) -> Result<FuseMode, crate::error::ConfigError> {
        let parsed = parse_knob(
            raw,
            |v| match v.to_ascii_lowercase().as_str() {
                "on" | "1" | "true" => Some(FuseMode::On),
                "off" | "0" | "false" => Some(FuseMode::Off),
                "auto" => Some(FuseMode::Auto),
                _ => None,
            },
            |value| crate::error::ConfigError::Fuse { value },
        )?;
        Ok(parsed.unwrap_or_default())
    }

    /// [`FuseMode::parse`] on the `OP2_FUSE` environment variable.
    pub fn try_from_env() -> Result<FuseMode, crate::error::ConfigError> {
        let raw = std::env::var("OP2_FUSE").ok();
        FuseMode::parse(raw.as_deref())
    }
}

/// Schedule drain policy (`OP2_EXEC`): how pooled executors drain a
/// lowered [`Schedule`] — one barriered pool round per level, or the
/// dataflow executor ([`crate::threads::run_dag`]) where each chunk
/// fires the moment its dependency counter reaches zero. Results are
/// bitwise identical either way (the chunk DAG orders every conflicting
/// pair in sequential order), only the synchronisation shape differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Level-synchronous draining — one pool barrier per level (the
    /// default: matches the paper's executor, and wide shallow
    /// schedules lose nothing to barriers).
    #[default]
    Levels,
    /// Always drain through the dataflow executor: per-chunk dependency
    /// counters, owner-first deques, LIFO steal-from-richest stealing.
    Dataflow,
    /// Let the calibrated cost model decide per schedule
    /// ([`op2_model::classify_exec`]): critical-path depth priced
    /// against barrier count × the rank's measured sync cost.
    Auto,
}

impl ExecMode {
    /// Parse an `OP2_EXEC`-style value: `levels` / `dataflow` / `auto`
    /// (case-insensitive; `None` = unset → `Levels`).
    pub fn parse(raw: Option<&str>) -> Result<ExecMode, crate::error::ConfigError> {
        let parsed = parse_knob(
            raw,
            |v| match v.to_ascii_lowercase().as_str() {
                "levels" => Some(ExecMode::Levels),
                "dataflow" => Some(ExecMode::Dataflow),
                "auto" => Some(ExecMode::Auto),
                _ => None,
            },
            |value| crate::error::ConfigError::Exec { value },
        )?;
        Ok(parsed.unwrap_or_default())
    }

    /// [`ExecMode::parse`] on the `OP2_EXEC` environment variable.
    pub fn try_from_env() -> Result<ExecMode, crate::error::ConfigError> {
        let raw = std::env::var("OP2_EXEC").ok();
        ExecMode::parse(raw.as_deref())
    }
}

/// Parse an `OP2_THREAD_PIN`-style value: a boolean (`1`/`0`/`true`/
/// `false`/`on`/`off`, case-insensitive; `None` = unset → `false`).
/// When set, the dataflow executor pins chunk ownership to workers in
/// first-touch (contiguous level-major range) order, so the pages a
/// worker's chunks touch stay hot in that worker's cache across drains.
pub fn parse_thread_pin(raw: Option<&str>) -> Result<bool, crate::error::ConfigError> {
    let parsed = parse_knob(
        raw,
        |v| match v.to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => Some(true),
            "0" | "false" | "off" => Some(false),
            _ => None,
        },
        |value| crate::error::ConfigError::ThreadPin { value },
    )?;
    Ok(parsed.unwrap_or(false))
}

/// [`parse_thread_pin`] on the `OP2_THREAD_PIN` environment variable.
pub fn thread_pin_from_env() -> Result<bool, crate::error::ConfigError> {
    let raw = std::env::var("OP2_THREAD_PIN").ok();
    parse_thread_pin(raw.as_deref())
}

/// Payload size above which planned pack/unpack splits a neighbour's
/// index lists across the rank's thread pool. Tuned so the fork/join
/// cost (two pool barriers, ~µs) stays well under the memory traffic it
/// parallelises; below it the sequential copy wins.
pub const PACK_THREAD_BYTES: usize = 32 << 10;

/// The `MPI_Send_init` moment of the persistent-exchange engine: tracks
/// which plans have had their message buffers pre-sized into the
/// transport's per-peer pool. Warming happens once per (chain signature,
/// dirty class) — the same key that selects a [`ChainPlan`] — and sizes
/// each peer's slot to the *larger* of the pair's send/recv payloads.
/// Buffers travel with messages and return with the peer's replies, so a
/// buffer warmed to `max(send, recv)` keeps circulating on its pair
/// without ever needing to grow: steady-state planned exchanges perform
/// zero payload allocations (asserted via
/// [`crate::comm::CommCounters::payload_allocs`]).
#[derive(Debug, Default)]
pub struct ExchangeBuffers {
    warmed: HashSet<(u64, u64)>,
}

impl ExchangeBuffers {
    /// Pre-size `comm`'s per-peer buffer pool for `plan`'s grouped
    /// messages. Idempotent per plan identity; repeat calls are a hash
    /// lookup.
    pub fn warm(&mut self, comm: &mut RankComm, plan: &ChainPlan) {
        if !self.warmed.insert((plan.sig, plan.dirty)) {
            return;
        }
        for pack in &plan.packs {
            comm.ensure_buf(pack.rank, pack.send_f64s.max(pack.recv_f64s));
        }
    }

    /// Number of plans warmed so far (introspection).
    pub fn warmed_plans(&self) -> usize {
        self.warmed.len()
    }

    /// Forget every warmed plan. Required after a layout epoch bump:
    /// the (signature, dirty-class) keys may collide with plans built
    /// for the old layout, whose per-peer payload sizes no longer
    /// describe the new layout's grouped messages.
    pub fn reset(&mut self) {
        self.warmed.clear();
    }
}

/// Raw-pointer wrapper so pack/unpack closures can fan copies out over
/// the pool; safety rests on the disjointness of the copied ranges (pack
/// entries partition the payload; receive ranges are disjoint local
/// windows).
struct PackPtr(*mut f64);
unsafe impl Send for PackPtr {}
unsafe impl Sync for PackPtr {}

impl PackPtr {
    /// The raw pointer. Going through a method (rather than `.0`) keeps
    /// closures capturing the `Sync` wrapper, not the bare pointer.
    #[inline]
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// Per-rank state: local data, validity, transport, trace.
pub struct RankEnv<'a> {
    /// This rank.
    pub rank: u32,
    /// The rank's layout (local index spaces, maps, exchange plans).
    pub layout: &'a RankLayout,
    /// The global domain (metadata only: dims, sets; payload is local).
    pub dom: &'a Domain,
    /// Transport endpoint.
    pub comm: RankComm,
    /// Local dat buffers, indexed by `DatId`.
    pub dats: Vec<Vec<f64>>,
    /// Halo validity depth per dat.
    pub valid: Vec<u8>,
    /// Instrumentation.
    pub trace: RankTrace,
    /// Inspector–executor plan cache: one [`ChainPlan`] per (chain
    /// signature, dirty-state class), invalidated by layout-epoch bumps.
    pub plans: PlanCache,
    /// Monotone tag sequence (identical across ranks by construction).
    pub tag_seq: u64,
    /// Intra-rank threading: configuration plus the standalone-loop
    /// block-coloring cache (chain loops cache theirs in the
    /// [`ChainPlan`]).
    pub threads: ThreadCtx,
    /// Cross-loop fusion policy for chain executors (see [`FuseMode`]).
    pub fuse: FuseMode,
    /// Schedule drain policy for pooled executions (see [`ExecMode`]).
    pub exec: ExecMode,
    /// Pin chunk ownership to workers in first-touch order under the
    /// dataflow drain (`OP2_THREAD_PIN`).
    pub pin: bool,
    /// Persistent-exchange warm-up state (see [`ExchangeBuffers`]).
    pub exch_bufs: ExchangeBuffers,
    /// Checkpoint/replay state (see [`crate::checkpoint`]); inert — all
    /// hooks are no-ops — unless [`RankEnv::ckpt_attach`] was called.
    pub ckpt: crate::checkpoint::CheckpointCtx,
    /// Boundaries crossed so far, per [`BoundaryKind`] — the coordinates
    /// fault plans name crash/stall points by. Restored by checkpoint
    /// rollback so those coordinates keep their meaning across restarts.
    pub(crate) boundaries: [u64; 3],
    /// Service job id this env executes for (0 outside the resident
    /// service). Stamped into [`crate::trace::TunerRec`] and
    /// [`crate::trace::RecoveryRec`] so per-job traces stay attributable
    /// when many jobs share one world.
    pub job: u64,
}

impl<'a> RankEnv<'a> {
    /// Gather this rank's view of every dat and start fully valid (the
    /// initial gather replicates owner data into every ring).
    pub fn new(layout: &'a RankLayout, dom: &'a Domain, comm: RankComm) -> Self {
        let dats: Vec<Vec<f64>> = (0..dom.n_dats())
            .map(|d| layout.gather_dat(dom, DatId(d as u32)))
            .collect();
        let valid = vec![layout.depth as u8; dom.n_dats()];
        RankEnv {
            rank: layout.rank,
            layout,
            dom,
            comm,
            dats,
            valid,
            trace: RankTrace {
                rank: layout.rank,
                ..Default::default()
            },
            plans: PlanCache::new(),
            tag_seq: 0,
            // Sequential until configured: the harness resolves the
            // OP2_THREADS environment once (with typed errors) and sets
            // `threads.opts` before the program runs, so env creation
            // itself can never panic on a malformed variable.
            threads: ThreadCtx::new(Threading::single()),
            fuse: FuseMode::default(),
            exec: ExecMode::default(),
            pin: false,
            exch_bufs: ExchangeBuffers::default(),
            ckpt: crate::checkpoint::CheckpointCtx::inert(),
            boundaries: [0; 3],
            job: 0,
        }
    }

    /// Heap allocations the persistent schedule contexts (scratch pools,
    /// slot tables) have performed so far — flat across repeat fused
    /// executions of the same chains, which tests and the bench assert
    /// (zero steady-state scratch allocations).
    pub fn sched_allocs(&self) -> u64 {
        self.threads.sched_ctxs.iter().map(|c| c.allocs()).sum()
    }

    /// Fresh tag for the next collective/exchange round.
    pub fn next_tag(&mut self) -> u64 {
        self.tag_seq += 64;
        self.tag_seq
    }

    /// Executor hook: this rank crossed a loop/chain boundary. If the
    /// attached fault plan names this boundary, act on it: a stall is a
    /// plain sleep (long enough to trip peers' deadlines when configured
    /// so); a crash hangs up the transport — so peers unwind promptly
    /// with [`CommError::PeerHangup`] — and panics, which the harness
    /// contains via `catch_unwind` and reports as a per-rank failure.
    pub fn boundary(&mut self, kind: BoundaryKind) {
        let slot = match kind {
            BoundaryKind::Loop => 0,
            BoundaryKind::Chain => 1,
            BoundaryKind::ChainLoop => 2,
        };
        let index = self.boundaries[slot];
        self.boundaries[slot] += 1;
        let Some(plan) = self.comm.fault_plan() else {
            return;
        };
        match plan.boundary_action(self.rank, kind, index) {
            None => {}
            Some(BoundaryAction::Stall(dur)) => std::thread::sleep(dur),
            Some(BoundaryAction::Crash) => {
                self.comm.hangup_all();
                panic!(
                    "fault injection: rank {} crashed at {kind:?} boundary {index}",
                    self.rank
                );
            }
        }
    }

    /// Execute `spec`'s kernel over local iterations `[start, end)`.
    /// `gbl_bufs` supplies the global-argument buffers (constants or
    /// reduction accumulators), one per [`op2_core::GblDecl`].
    ///
    /// With threading active ([`Threading::active`]) and a range worth
    /// splitting, the range is lowered to a colored [`Schedule`] (cached
    /// per (loop, range, block size) in the rank's [`ThreadCtx`]) and
    /// executed on the rank's pool. Results are bitwise identical either
    /// way.
    pub fn exec_range(
        &mut self,
        spec: &LoopSpec,
        start: usize,
        end: usize,
        gbl_bufs: &mut [Vec<f64>],
    ) {
        let Some(block_size) = self.threaded_block_size(spec, start, end) else {
            return self.exec_impl(spec, ExecIters::Range(start, end), gbl_bufs);
        };
        let key = (crate::plan::loop_signature(spec), start, end, block_size);
        let sched = match self.threads.cached(key) {
            Some(s) => {
                self.plans.stats.color_hits += 1;
                s
            }
            None => {
                self.plans.stats.color_misses += 1;
                let s = Arc::new(self.build_loop_schedule(spec, start, end, block_size));
                self.threads.store(key, Arc::clone(&s));
                s
            }
        };
        self.exec_schedule_threaded(spec, gbl_bufs, &sched, None);
    }

    /// [`RankEnv::exec_range`] for a chain loop with a cached plan: the
    /// lowered schedule is cached *in the plan* (keyed by loop position,
    /// range and block size), alongside the other inspector products —
    /// repeat chain invocations re-lower nothing.
    pub fn exec_range_planned(
        &mut self,
        spec: &LoopSpec,
        start: usize,
        end: usize,
        gbl_bufs: &mut [Vec<f64>],
        plan: &ChainPlan,
        pos: usize,
    ) {
        let Some(block_size) = self.threaded_block_size(spec, start, end) else {
            return self.exec_impl(spec, ExecIters::Range(start, end), gbl_bufs);
        };
        let key = (pos, start, end, block_size);
        let sched = match plan.cached_schedule(key) {
            Some(s) => {
                self.plans.stats.color_hits += 1;
                s
            }
            None => {
                self.plans.stats.color_misses += 1;
                let s = Arc::new(self.build_loop_schedule(spec, start, end, block_size));
                plan.store_schedule(key, Arc::clone(&s));
                s
            }
        };
        self.exec_schedule_threaded(spec, gbl_bufs, &sched, Some(plan));
    }

    /// Should `[start, end)` of `spec` run on the thread pool — and with
    /// which block size? `None` means run sequentially. Requires an
    /// active configuration, no global reduction (order-sensitive float
    /// sums must accumulate in sequential order), and more than one
    /// block's worth of iterations (a single block has no parallelism to
    /// expose). Under `OP2_BLOCK_SIZE=auto` the block size is picked
    /// per-loop from the measured conflict degree.
    fn threaded_block_size(&self, spec: &LoopSpec, start: usize, end: usize) -> Option<usize> {
        if !self.threads.opts.active() || spec.has_reduction() {
            return None;
        }
        let block_size = self.chosen_block_size(spec, start, end);
        (end.saturating_sub(start) > block_size).then_some(block_size)
    }

    /// The block size for `[start, end)` of `spec`: the configured value,
    /// or — under `OP2_BLOCK_SIZE=auto` — the adaptive per-loop pick from
    /// the measured conflict degree over this rank's localized maps.
    pub fn chosen_block_size(&self, spec: &LoopSpec, start: usize, end: usize) -> usize {
        if !self.threads.opts.auto_block {
            return self.threads.opts.block_size;
        }
        let sig = spec.sig();
        let set_sizes: Vec<usize> = self.layout.sets.iter().map(|s| s.n_local()).collect();
        let accesses = conflict_accesses(&self.layout.maps, &sig);
        adaptive_block_size(start, end, &set_sizes, &accesses)
    }

    /// Inspector: the levelized order-preserving block coloring of
    /// `[start, end)` under `spec`'s access pattern, over this rank's
    /// localized maps. Only executable iterations are colored, so every
    /// dereferenced map target is a valid local index (the layout
    /// invariant the executor itself relies on).
    pub fn build_block_coloring(
        &self,
        spec: &LoopSpec,
        start: usize,
        end: usize,
    ) -> BlockColoring {
        let sig = spec.sig();
        let set_sizes: Vec<usize> = self.layout.sets.iter().map(|s| s.n_local()).collect();
        let accesses = conflict_accesses(&self.layout.maps, &sig);
        color_blocks_raw(
            start,
            end,
            self.chosen_block_size(spec, start, end),
            &set_sizes,
            &accesses,
        )
    }

    /// Inspector: lower `[start, end)` of `spec` to a colored
    /// [`Schedule`] with the given block size.
    fn build_loop_schedule(
        &self,
        spec: &LoopSpec,
        start: usize,
        end: usize,
        block_size: usize,
    ) -> Schedule {
        let sig = spec.sig();
        let set_sizes: Vec<usize> = self.layout.sets.iter().map(|s| s.n_local()).collect();
        let accesses = conflict_accesses(&self.layout.maps, &sig);
        let bc = color_blocks_raw(start, end, block_size, &set_sizes, &accesses);
        Schedule::from_block_coloring(&bc)
    }

    /// Resolve one loop's arguments against this rank's local buffers
    /// and localized maps — the runtime-side constructor of the shared
    /// [`BoundLoop`] execution path.
    fn bind_loop(&mut self, spec: &LoopSpec, gbl_bufs: &mut [Vec<f64>]) -> BoundLoop {
        let mut args = Vec::with_capacity(spec.args.len());
        for arg in &spec.args {
            match arg {
                Arg::Dat { dat, map, mode } => {
                    let dim = self.dom.dat(*dat).dim as u32;
                    let base = self.dats[dat.idx()].as_mut_ptr();
                    let map_info = map.map(|(m, idx)| {
                        let lm = &self.layout.maps[m.idx()];
                        (lm.values.as_ptr(), lm.arity, idx as usize)
                    });
                    args.push(BoundArg {
                        base,
                        dim,
                        mode: *mode,
                        map: map_info,
                        direct: map.is_none(),
                    });
                }
                Arg::Gbl { idx, mode } => {
                    let buf = &mut gbl_bufs[*idx as usize];
                    args.push(BoundArg {
                        base: buf.as_mut_ptr(),
                        dim: buf.len() as u32,
                        mode: *mode,
                        map: None,
                        direct: false,
                    });
                }
            }
        }
        BoundLoop::from_parts(spec.kernel, args)
    }

    /// The chunk dependency DAG for `sched`, derived from the
    /// chain-wide conflict accesses of `sigs` ([`dag_accesses`]) over
    /// this rank's localized maps, and cached: in `plan` when given
    /// (dropped with the plan on epoch invalidation), else in the
    /// rank's [`ThreadCtx`].
    fn resolve_dag(
        &mut self,
        sigs: &[LoopSig],
        sched: &Arc<Schedule>,
        plan: Option<&ChainPlan>,
    ) -> Arc<ChunkDag> {
        let cached = match plan {
            Some(p) => p.cached_dag(sched),
            None => self.threads.dag_cached(sched),
        };
        if let Some(d) = cached {
            return d;
        }
        let set_sizes: Vec<usize> = self.layout.sets.iter().map(|s| s.n_local()).collect();
        let accesses = dag_accesses(&self.layout.maps, sigs);
        let dag = Arc::new(ChunkDag::build(sched, &set_sizes, &accesses));
        match plan {
            Some(p) => p.store_dag(sched, Arc::clone(&dag)),
            None => self.threads.store_dag(sched, Arc::clone(&dag)),
        }
        dag
    }

    /// Should this schedule drain through the dataflow executor?
    /// `OP2_EXEC=levels`/`dataflow` decide directly; `auto` asks the
    /// profit arm — critical-path hand-offs against barrier count times
    /// this rank's measured pool sync cost.
    fn dataflow_chosen(&mut self, sched: &Schedule, dag: &ChunkDag) -> bool {
        match self.exec {
            ExecMode::Levels => false,
            ExecMode::Dataflow => true,
            ExecMode::Auto => {
                let threads = self.threads.opts.n_threads;
                let sync_s = self.threads.sync_cost();
                op2_model::classify_exec(threads, sched.n_levels(), dag.crit_path as usize, sync_s)
                    .dataflow
            }
        }
    }

    /// Drain `bound` over `sched` on the rank's pool, through whichever
    /// executor [`RankEnv::dataflow_chosen`] picks — dataflow needs the
    /// chunk DAG ([`RankEnv::resolve_dag`]), levels pays one barrier per
    /// level. Bitwise identical either way.
    fn drain_schedule(
        &mut self,
        sigs: &[LoopSig],
        bound: &[BoundLoop],
        sched: &Arc<Schedule>,
        plan: Option<&ChainPlan>,
    ) -> ExecStats {
        let pool = self.threads.pool();
        if self.exec != ExecMode::Levels && sched.has_parallelism() {
            let dag = self.resolve_dag(sigs, sched, plan);
            if self.dataflow_chosen(sched, &dag) {
                return run_schedule_dataflow(
                    &pool,
                    bound,
                    sched,
                    &dag,
                    self.pin,
                    &mut self.threads.sched_ctxs,
                    &mut self.threads.dataflow,
                );
            }
        }
        run_schedule_pooled_ctx(&pool, bound, sched, &mut self.threads.sched_ctxs)
    }

    /// Executor: run one loop's colored schedule on the rank's own pool.
    /// Same-level chunks touch disjoint modified elements (race-free)
    /// and conflicting chunks are ordered by ascending level = ascending
    /// block index — and the dataflow drain preserves exactly the
    /// conflicting-pair order through the chunk DAG — so per-element
    /// update order equals the sequential executor's: results are
    /// bitwise identical for any thread count and either drain. Appends
    /// a [`ThreadRec`] with per-level wall times and per-worker
    /// idle/steal/fire counters to the trace.
    fn exec_schedule_threaded(
        &mut self,
        spec: &LoopSpec,
        gbl_bufs: &mut [Vec<f64>],
        sched: &Arc<Schedule>,
        plan: Option<&ChainPlan>,
    ) {
        let bound = self.bind_loop(spec, gbl_bufs);
        let sigs = [spec.sig()];
        let stats = self.drain_schedule(&sigs, std::slice::from_ref(&bound), sched, plan);
        let block_size = match sched.kind {
            ScheduleKind::Colored { block_size } => block_size,
            _ => 0,
        };
        self.trace.threads.push(ThreadRec {
            name: spec.name.clone(),
            iters: sched.loop_iters(0),
            n_threads: self.threads.pool().n_threads(),
            block_size,
            n_chunks: sched.n_chunks(),
            n_levels: sched.n_levels(),
            kind: SchedKind::Colored,
            level_ns: stats.level_ns,
            crit_path: stats.crit_path,
            dataflow: stats.dataflow,
            idle_ns: stats.idle_ns,
            steals: stats.steals,
            fires: stats.fires,
        });
    }

    /// Executor: run a whole chain's leveled tile schedule — same-level
    /// tiles concurrently on the rank's pool when threading is active
    /// and the schedule has parallelism to expose, sequentially (level
    /// order, which is bitwise identical to tile-id order) otherwise.
    /// Under `OP2_EXEC=dataflow`/`auto` the pooled drain goes through
    /// the dataflow executor with the chain's chunk DAG (cached in
    /// `plan` when given). Appends a [`ThreadRec`] (kind
    /// [`SchedKind::Tiled`]) with per-level wall times when the pool
    /// ran.
    pub fn exec_chain_schedule(
        &mut self,
        chain: &ChainSpec,
        sched: &Arc<Schedule>,
        plan: Option<&ChainPlan>,
    ) {
        debug_assert_eq!(sched.n_loops, chain.len());
        let mut gbls: Vec<Vec<f64>> = Vec::new();
        let mut bound = Vec::with_capacity(chain.len());
        // Flatten per-loop gbl buffers into one arena so every bind's
        // pointers stay valid (chain loops carry constants only — the
        // chain analysis rejects reductions).
        let mut gbl_ranges = Vec::with_capacity(chain.len());
        for spec in &chain.loops {
            debug_assert!(!spec.has_reduction());
            let s = gbls.len();
            gbls.extend(spec.gbls.iter().map(|g| g.init.clone()));
            gbl_ranges.push(s);
        }
        for (spec, &s) in chain.loops.iter().zip(gbl_ranges.iter()) {
            let bufs = &mut gbls[s..s + spec.gbls.len()];
            bound.push(self.bind_loop(spec, bufs));
        }
        if self.threads.opts.active() && sched.has_parallelism() {
            // Per-worker contexts persist in ThreadCtx across chain
            // invocations, so steady-state fused execution performs zero
            // scratch-pool or slot-table heap allocations (asserted via
            // `SchedCtx::allocs`).
            let sigs = chain.sigs();
            let stats = self.drain_schedule(&sigs, &bound, sched, plan);
            let iters: usize = (0..sched.n_loops).map(|j| sched.loop_iters(j)).sum();
            self.trace.threads.push(ThreadRec {
                name: chain.name.clone(),
                iters,
                n_threads: self.threads.pool().n_threads(),
                block_size: 0,
                n_chunks: sched.n_chunks(),
                n_levels: sched.n_levels(),
                kind: SchedKind::Tiled,
                level_ns: stats.level_ns,
                crit_path: stats.crit_path,
                dataflow: stats.dataflow,
                idle_ns: stats.idle_ns,
                steals: stats.steals,
                fires: stats.fires,
            });
        } else {
            if self.threads.sched_ctxs.is_empty() {
                self.threads.sched_ctxs.push(SchedCtx::new());
            }
            run_schedule_ctx(&bound, sched, &mut self.threads.sched_ctxs[0]);
        }
    }

    /// Execute `spec`'s kernel over an explicit local iteration list —
    /// the tile-by-tile building block of the distributed sparse-tiled
    /// chain executor.
    pub fn exec_indexed(&mut self, spec: &LoopSpec, iters: &[u32], gbl_bufs: &mut [Vec<f64>]) {
        self.exec_impl(spec, ExecIters::List(iters), gbl_bufs)
    }

    /// Sequential execution through the shared [`BoundLoop`] path (a
    /// degenerate one-chunk schedule — there is no second execution loop
    /// in the runtime either).
    fn exec_impl(&mut self, spec: &LoopSpec, iters: ExecIters<'_>, gbl_bufs: &mut [Vec<f64>]) {
        let empty = match &iters {
            ExecIters::Range(s, e) => s >= e,
            ExecIters::List(l) => l.is_empty(),
        };
        if empty {
            return;
        }
        let bound = self.bind_loop(spec, gbl_bufs);
        match iters {
            ExecIters::Range(start, end) => bound.run_range(start, end),
            ExecIters::List(list) => bound.run_list(list),
        }
    }

    /// Exchange halos for `dats`, each to its required depth.
    ///
    /// `grouped = false` → Alg 1 style: one message per (dat, neighbour).
    /// `grouped = true` → Alg 2 style: a single message per neighbour
    /// carrying every dat's segments back-to-back (Figure 8).
    ///
    /// Both sides derive the identical wire layout from (plan order ×
    /// given dat order), so no headers are exchanged. Raises validity.
    pub fn exchange(&mut self, dats: &[(DatId, u8)], grouped: bool) -> ExchangeRec {
        let tag = self.next_tag();
        let mut rec = ExchangeRec::default();
        if dats.is_empty() {
            return rec;
        }
        let layout = self.layout;
        rec.n_neighbors = layout.neighbors.len();

        // --- Post sends (payloads staged in the per-peer buffer pool,
        // never freshly allocated once the pool is warm). ---
        for nbr in &layout.neighbors {
            if grouped {
                let cap: usize = dats
                    .iter()
                    .map(|&(dat, depth)| self.send_len(nbr, dat, depth))
                    .sum();
                if cap == 0 {
                    continue;
                }
                let mut payload = self.comm.take_buf(nbr.rank, cap);
                let t0 = Instant::now();
                for &(dat, depth) in dats {
                    self.pack_dat(nbr, dat, depth, &mut payload);
                }
                rec.pack_ns += t0.elapsed().as_nanos() as u64;
                rec.n_msgs += 1;
                let bytes = payload.len() * 8;
                rec.bytes += bytes;
                rec.max_msg_bytes = rec.max_msg_bytes.max(bytes);
                rec.packed_elems += payload.len();
                rec.nbr_bits |= 1u128 << nbr.rank.min(127);
                self.comm.isend(nbr.rank, tag, payload);
            } else {
                for &(dat, depth) in dats {
                    let cap = self.send_len(nbr, dat, depth);
                    if cap == 0 {
                        continue;
                    }
                    let mut payload = self.comm.take_buf(nbr.rank, cap);
                    let t0 = Instant::now();
                    self.pack_dat(nbr, dat, depth, &mut payload);
                    rec.pack_ns += t0.elapsed().as_nanos() as u64;
                    rec.n_msgs += 1;
                    let bytes = payload.len() * 8;
                    rec.bytes += bytes;
                    rec.max_msg_bytes = rec.max_msg_bytes.max(bytes);
                    rec.packed_elems += payload.len();
                    rec.nbr_bits |= 1u128 << nbr.rank.min(127);
                    self.comm.isend(nbr.rank, tag, payload);
                }
            }
        }
        rec
    }

    /// Outgoing f64 count for one (dat, neighbour) at `depth` — the
    /// exact capacity [`RankEnv::exchange`] borrows from the pool, so a
    /// pack never reallocates mid-copy.
    fn send_len(&self, nbr: &NeighborPlan, dat: DatId, depth: u8) -> usize {
        let d = self.dom.dat(dat);
        nbr.send
            .iter()
            .filter(|seg| seg.set == d.set && seg.level <= depth)
            .map(|seg| seg.elems.len() * d.dim)
            .sum()
    }

    /// Complete the exchange posted by [`RankEnv::exchange`] (the
    /// `MPI_Wait` of Algs 1–2): receive and unpack from every neighbour.
    ///
    /// Grouped messages complete in **arrival order** (`recv_any`):
    /// whichever neighbour's payload lands first is unpacked first, so
    /// the tail is one slowest neighbour, not the sum of in-order stalls.
    /// Receive segments of different neighbours are disjoint local
    /// ranges, so unpack order cannot change results. Wait/unpack wall
    /// time accumulates into `rec`; payload buffers return to the
    /// per-peer pool.
    ///
    /// Transport failures (timeout, hangup, corruption past the retry
    /// budget) surface as [`CommError`]; validity is only raised after
    /// *every* neighbour delivered, so a failed wait never leaves rings
    /// marked valid that were not actually filled.
    pub fn exchange_wait(
        &mut self,
        dats: &[(DatId, u8)],
        grouped: bool,
        rec: &mut ExchangeRec,
    ) -> Result<(), CommError> {
        if dats.is_empty() {
            return Ok(());
        }
        let tag = self.tag_seq;
        // Collect neighbor ranks first (borrow discipline).
        let nbr_ranks: Vec<u32> = self.layout.neighbors.iter().map(|n| n.rank).collect();
        if grouped {
            let mut pending: Vec<usize> = Vec::new();
            let mut peers: Vec<u32> = Vec::new();
            for (ni, &peer) in nbr_ranks.iter().enumerate() {
                if self.expected_len(ni, dats) > 0 {
                    pending.push(ni);
                    peers.push(peer);
                }
            }
            while !pending.is_empty() {
                let t0 = Instant::now();
                let (i, payload) = self.comm.recv_any(&peers, tag)?;
                rec.wait_ns += t0.elapsed().as_nanos() as u64;
                let ni = pending.remove(i);
                let peer = peers.remove(i);
                assert_eq!(
                    payload.len(),
                    self.expected_len(ni, dats),
                    "grouped message length mismatch"
                );
                let t1 = Instant::now();
                let mut off = 0;
                for &(dat, depth) in dats {
                    off = self.unpack_dat(ni, dat, depth, &payload, off);
                }
                debug_assert_eq!(off, payload.len());
                rec.unpack_ns += t1.elapsed().as_nanos() as u64;
                self.comm.recycle(peer, payload);
            }
        } else {
            for (ni, &peer) in nbr_ranks.iter().enumerate() {
                for &(dat, depth) in dats {
                    let expect = self.expected_len(ni, &[(dat, depth)]);
                    if expect == 0 {
                        continue;
                    }
                    let t0 = Instant::now();
                    let payload = self.comm.recv(peer, tag)?;
                    rec.wait_ns += t0.elapsed().as_nanos() as u64;
                    assert_eq!(payload.len(), expect, "per-dat message length mismatch");
                    let t1 = Instant::now();
                    let off = self.unpack_dat(ni, dat, depth, &payload, 0);
                    debug_assert_eq!(off, payload.len());
                    rec.unpack_ns += t1.elapsed().as_nanos() as u64;
                    self.comm.recycle(peer, payload);
                }
            }
        }
        for &(dat, depth) in dats {
            self.valid[dat.idx()] = self.valid[dat.idx()].max(depth);
            // Unpack mutated the import rings: the dat is dirty for
            // incremental checkpointing even if no loop touches it.
            self.ckpt.note_write(dat.idx());
        }
        Ok(())
    }

    /// Grouped (Alg 2 style) exchange driven by a cached [`ChainPlan`]:
    /// the executor-side fast path. Pack index lists and per-neighbour
    /// message sizes come straight from the plan — no per-call segment
    /// filtering — and the wire layout is identical to
    /// [`RankEnv::exchange`] with `grouped = true` over `plan.import`,
    /// so planned and unplanned ranks interoperate. Consumes no tag when
    /// the plan imports nothing, matching the unplanned path exactly.
    pub fn exchange_planned(&mut self, plan: &ChainPlan) -> ExchangeRec {
        let mut rec = ExchangeRec::default();
        if plan.import.is_empty() {
            return rec;
        }
        // Send_init: size the per-peer pool once per plan, so the takes
        // below never allocate in steady state.
        self.exch_bufs.warm(&mut self.comm, plan);
        let tag = self.next_tag();
        rec.n_neighbors = self.layout.neighbors.len();
        for pack in &plan.packs {
            if pack.send_f64s == 0 {
                continue;
            }
            let mut payload = self.comm.take_buf(pack.rank, pack.send_f64s);
            let t0 = Instant::now();
            if !self.threaded_pack(plan, pack, &mut payload) {
                for (di, &(dat, _)) in plan.import.iter().enumerate() {
                    let dim = self.dom.dat(dat).dim;
                    let buf = &self.dats[dat.idx()];
                    for &e in &pack.send[di] {
                        let e = e as usize;
                        payload.extend_from_slice(&buf[e * dim..(e + 1) * dim]);
                    }
                }
            }
            rec.pack_ns += t0.elapsed().as_nanos() as u64;
            debug_assert_eq!(payload.len(), pack.send_f64s);
            rec.n_msgs += 1;
            let bytes = payload.len() * 8;
            rec.bytes += bytes;
            rec.max_msg_bytes = rec.max_msg_bytes.max(bytes);
            rec.packed_elems += payload.len();
            rec.nbr_bits |= 1u128 << pack.rank.min(127);
            self.comm.isend(pack.rank, tag, payload);
        }
        rec
    }

    /// Pack one neighbour's grouped payload on the thread pool when the
    /// message is big enough to amortize the fork/join
    /// ([`PACK_THREAD_BYTES`]). The pack's flattened index entries are
    /// split into even contiguous spans, one per thread; every entry
    /// writes a disjoint `dim`-sized window of the payload, so the copy
    /// is race-free and the payload is byte-identical to the sequential
    /// pack. Returns false (caller packs sequentially) when threading is
    /// off or the message is small.
    fn threaded_pack(&mut self, plan: &ChainPlan, pack: &NeighborPack, payload: &mut Vec<f64>) -> bool {
        if !self.threads.opts.active() || pack.send_f64s * 8 < PACK_THREAD_BYTES {
            return false;
        }
        let pool = self.threads.pool();
        let n_tasks = pool.n_threads();
        if n_tasks <= 1 {
            return false;
        }
        payload.resize(pack.send_f64s, 0.0);
        let n_dats = plan.import.len();
        // Entry e = one element copy; entry_start maps dat → first entry.
        let mut entry_start = Vec::with_capacity(n_dats + 1);
        let mut f64_off = Vec::with_capacity(n_dats);
        let mut dims = Vec::with_capacity(n_dats);
        let mut srcs: Vec<PackPtr> = Vec::with_capacity(n_dats);
        let mut entries = 0usize;
        let mut off = 0usize;
        for (di, &(dat, _)) in plan.import.iter().enumerate() {
            let dim = self.dom.dat(dat).dim;
            entry_start.push(entries);
            f64_off.push(off);
            dims.push(dim);
            srcs.push(PackPtr(self.dats[dat.idx()].as_ptr() as *mut f64));
            entries += pack.send[di].len();
            off += pack.send[di].len() * dim;
        }
        entry_start.push(entries);
        debug_assert_eq!(off, pack.send_f64s);
        let dst = PackPtr(payload.as_mut_ptr());
        pool.run_spans(entries, &|lo, hi| {
            let mut di = entry_start.partition_point(|&s| s <= lo) - 1;
            for e in lo..hi {
                while entry_start[di + 1] <= e {
                    di += 1;
                }
                let j = e - entry_start[di];
                let dim = dims[di];
                let el = pack.send[di][j] as usize;
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        srcs[di].get().add(el * dim) as *const f64,
                        dst.get().add(f64_off[di] + j * dim),
                        dim,
                    );
                }
            }
        });
        true
    }

    /// Scatter one neighbour's grouped payload on the thread pool (the
    /// unpack mirror of [`RankEnv::threaded_pack`]): the payload is
    /// split into even f64 spans, one per thread, and each thread copies
    /// the intersection of its span with the plan's contiguous receive
    /// ranges. Destination ranges are disjoint, so the scatter is
    /// race-free and bitwise identical to the sequential unpack.
    fn threaded_unpack(&mut self, plan: &ChainPlan, pack: &NeighborPack, payload: &[f64]) -> bool {
        if !self.threads.opts.active() || pack.recv_f64s * 8 < PACK_THREAD_BYTES {
            return false;
        }
        let pool = self.threads.pool();
        let n_tasks = pool.n_threads();
        if n_tasks <= 1 {
            return false;
        }
        let n_dats = plan.import.len();
        let mut dims = Vec::with_capacity(n_dats);
        let mut bases: Vec<PackPtr> = Vec::with_capacity(n_dats);
        for &(dat, _) in plan.import.iter() {
            dims.push(self.dom.dat(dat).dim);
            bases.push(PackPtr(self.dats[dat.idx()].as_mut_ptr()));
        }
        let total = pack.recv_f64s;
        let src = PackPtr(payload.as_ptr() as *mut f64);
        pool.run_spans(total, &|lo, hi| {
            let mut off = 0usize;
            'outer: for di in 0..n_dats {
                let dim = dims[di];
                for &(start, len) in &pack.recv[di] {
                    let n = len as usize * dim;
                    let a = off.max(lo);
                    let b = (off + n).min(hi);
                    if a < b {
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                src.get().add(a) as *const f64,
                                bases[di].get().add(start as usize * dim + (a - off)),
                                b - a,
                            );
                        }
                    }
                    off += n;
                    if off >= hi {
                        break 'outer;
                    }
                }
            }
        });
        true
    }

    /// Complete a planned exchange: receive each neighbour's grouped
    /// message (size known from the plan) and scatter it through the
    /// plan's contiguous copy ranges. Completion is in **arrival
    /// order** — whichever neighbour's message lands first is unpacked
    /// first (receive ranges of different neighbours are disjoint, so
    /// order cannot change results). Wait/unpack wall time accumulates
    /// into `rec`; payload buffers return to the per-peer pool. Raises
    /// validity to each dat's planned import depth only after every
    /// neighbour delivered.
    pub fn exchange_wait_planned(
        &mut self,
        plan: &ChainPlan,
        rec: &mut ExchangeRec,
    ) -> Result<(), CommError> {
        if plan.import.is_empty() {
            return Ok(());
        }
        let tag = self.tag_seq;
        let mut pending: Vec<usize> = Vec::new();
        let mut peers: Vec<u32> = Vec::new();
        for (pi, pack) in plan.packs.iter().enumerate() {
            if pack.recv_f64s > 0 {
                pending.push(pi);
                peers.push(pack.rank);
            }
        }
        while !pending.is_empty() {
            let t0 = Instant::now();
            let (i, payload) = self.comm.recv_any(&peers, tag)?;
            rec.wait_ns += t0.elapsed().as_nanos() as u64;
            let pi = pending.remove(i);
            let peer = peers.remove(i);
            let pack = &plan.packs[pi];
            assert_eq!(
                payload.len(),
                pack.recv_f64s,
                "planned grouped message length mismatch"
            );
            let t1 = Instant::now();
            if !self.threaded_unpack(plan, pack, &payload) {
                let mut off = 0;
                for (di, &(dat, _)) in plan.import.iter().enumerate() {
                    let dim = self.dom.dat(dat).dim;
                    let buf = &mut self.dats[dat.idx()];
                    for &(start, len) in &pack.recv[di] {
                        let n = len as usize * dim;
                        let s = start as usize * dim;
                        buf[s..s + n].copy_from_slice(&payload[off..off + n]);
                        off += n;
                    }
                }
                debug_assert_eq!(off, payload.len());
            }
            rec.unpack_ns += t1.elapsed().as_nanos() as u64;
            self.comm.recycle(peer, payload);
        }
        for &(dat, depth) in &plan.import {
            self.valid[dat.idx()] = self.valid[dat.idx()].max(depth);
            self.ckpt.note_write(dat.idx());
        }
        Ok(())
    }

    /// Bytes-in-f64s this rank will receive from neighbour index `ni`
    /// for the given (dat, depth) list.
    fn expected_len(&self, ni: usize, dats: &[(DatId, u8)]) -> usize {
        let nbr = &self.layout.neighbors[ni];
        let mut len = 0usize;
        for &(dat, depth) in dats {
            let d = self.dom.dat(dat);
            for seg in &nbr.recv {
                if seg.set == d.set && seg.level <= depth {
                    len += seg.len as usize * d.dim;
                }
            }
        }
        len
    }

    /// Append one dat's outgoing segments for one neighbour to `payload`.
    fn pack_dat(
        &self,
        nbr: &op2_partition::layout::NeighborPlan,
        dat: DatId,
        depth: u8,
        payload: &mut Vec<f64>,
    ) {
        let d = self.dom.dat(dat);
        let buf = &self.dats[dat.idx()];
        for seg in &nbr.send {
            if seg.set == d.set && seg.level <= depth {
                for &e in &seg.elems {
                    let e = e as usize;
                    payload.extend_from_slice(&buf[e * d.dim..(e + 1) * d.dim]);
                }
            }
        }
    }

    /// Unpack one dat's incoming segments from neighbour index `ni`,
    /// starting at `off`; returns the new offset. Receive segments are
    /// contiguous local ranges — plain copies.
    fn unpack_dat(
        &mut self,
        ni: usize,
        dat: DatId,
        depth: u8,
        payload: &[f64],
        mut off: usize,
    ) -> usize {
        let d = self.dom.dat(dat);
        let dim = d.dim;
        let set = d.set;
        let nbr = &self.layout.neighbors[ni];
        let buf = &mut self.dats[dat.idx()];
        for seg in &nbr.recv {
            if seg.set == set && seg.level <= depth {
                let n = seg.len as usize * dim;
                let start = seg.start as usize * dim;
                buf[start..start + n].copy_from_slice(&payload[off..off + n]);
                off += n;
            }
        }
        off
    }

    /// Total bytes this rank will receive for a (dat, depth) list —
    /// the staged-in volume a GPU pipeline copies host→device.
    pub fn expected_recv_bytes(&self, dats: &[(DatId, u8)]) -> usize {
        (0..self.layout.neighbors.len())
            .map(|ni| self.expected_len(ni, dats) * std::mem::size_of::<f64>())
            .sum()
    }

    /// Local owned slice of a dat (post-run inspection in tests).
    pub fn owned_slice(&self, dat: DatId) -> &[f64] {
        let d = self.dom.dat(dat);
        let n = self.layout.sets[d.set.idx()].n_owned;
        &self.dats[dat.idx()][..n * d.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommWorld;
    use op2_core::{AccessMode, Arg, Args, LoopSpec};
    use op2_mesh::Quad2D;
    use op2_partition::{build_layouts, derive_ownership, rcb_partition};

    fn noop(_: &Args<'_>) {}

    /// Pack → send → recv → unpack round-trips every ring value for a
    /// 2-rank split, checked against the global dat directly.
    #[test]
    fn exchange_roundtrip_restores_rings() {
        let mut mesh = Quad2D::generate(6, 6);
        let n = mesh.dom.set(mesh.nodes).size;
        let vals: Vec<f64> = (0..n * 2).map(|i| i as f64).collect();
        let _ = mesh.dom.decl_dat("v", mesh.nodes, 2, vals);
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 2);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 2);
        let layouts = build_layouts(&mesh.dom, &own, 2);

        let comms = CommWorld::new(2).into_ranks();
        let dom = &mesh.dom;
        let handles: Vec<_> = std::thread::scope(|scope| {
            comms
                .into_iter()
                .zip(layouts.iter())
                .map(|(comm, layout)| {
                    scope.spawn(move || {
                        let mut env = RankEnv::new(layout, dom, comm);
                        // Corrupt every import ring, then exchange to
                        // depth 2 and verify restoration against the
                        // global truth.
                        let dat = dom.dat_by_name("v").unwrap();
                        let set_layout = &layout.sets[dom.dat(dat).set.idx()];
                        let n_owned = set_layout.n_owned;
                        for x in &mut env.dats[dat.idx()][n_owned * 2..] {
                            *x = -1.0;
                        }
                        env.valid[dat.idx()] = 0;
                        let spec = [(dat, 2u8)];
                        let mut rec = env.exchange(&spec, true);
                        env.exchange_wait(&spec, true, &mut rec).unwrap();
                        assert_eq!(env.valid[dat.idx()], 2);
                        // Every local copy must now equal the owner's
                        // global values.
                        for (l, &g) in set_layout.locals.iter().enumerate() {
                            for c in 0..2 {
                                assert_eq!(
                                    env.dats[dat.idx()][l * 2 + c],
                                    dom.dat(dat).data[g as usize * 2 + c],
                                    "rank {} local {l}",
                                    layout.rank
                                );
                            }
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join())
                .collect()
        });
        for h in handles {
            h.expect("rank ok");
        }
    }

    /// Empty exchange lists are free: no messages, no validity change.
    #[test]
    fn empty_exchange_is_noop() {
        let mut mesh = Quad2D::generate(4, 4);
        let d = mesh.dom.decl_dat_zeros("v", mesh.nodes, 1);
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 2);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 2);
        let layouts = build_layouts(&mesh.dom, &own, 1);
        let comms = CommWorld::new(2).into_ranks();
        let dom = &mesh.dom;
        std::thread::scope(|scope| {
            for (comm, layout) in comms.into_iter().zip(layouts.iter()) {
                scope.spawn(move || {
                    let mut env = RankEnv::new(layout, dom, comm);
                    env.valid[d.idx()] = 0;
                    let mut rec = env.exchange(&[], true);
                    env.exchange_wait(&[], true, &mut rec).unwrap();
                    assert_eq!(rec.n_msgs, 0);
                    assert_eq!(env.valid[d.idx()], 0);
                    assert_eq!(env.comm.sent_msgs, 0);
                });
            }
        });
    }

    /// exec_range over an empty range calls nothing.
    #[test]
    fn empty_range_is_noop() {
        let mut mesh = Quad2D::generate(3, 3);
        let d = mesh.dom.decl_dat_zeros("v", mesh.nodes, 1);
        let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, 1);
        let own = derive_ownership(&mesh.dom, mesh.nodes, base, 1);
        let layouts = build_layouts(&mesh.dom, &own, 1);
        let comm = CommWorld::new(1).into_ranks().remove(0);
        let mut env = RankEnv::new(&layouts[0], &mesh.dom, comm);
        let spec = LoopSpec::new(
            "noop",
            mesh.nodes,
            vec![Arg::dat_direct(d, AccessMode::Rw)],
            noop,
        );
        env.exec_range(&spec, 5, 5, &mut []);
        env.exec_indexed(&spec, &[], &mut []);
    }

    /// `OP2_FUSE` knob grammar: on/off/auto (case-insensitive, with the
    /// usual boolean spellings), unset defaults to Off, anything else is
    /// a typed [`ConfigError::Fuse`].
    #[test]
    fn fuse_mode_knob_grammar() {
        use crate::error::ConfigError;

        assert_eq!(FuseMode::parse(None).unwrap(), FuseMode::Off);
        for v in ["on", "1", "true", "ON", "True"] {
            assert_eq!(FuseMode::parse(Some(v)).unwrap(), FuseMode::On, "{v}");
        }
        for v in ["off", "0", "false", "OFF"] {
            assert_eq!(FuseMode::parse(Some(v)).unwrap(), FuseMode::Off, "{v}");
        }
        for v in ["auto", "AUTO", "Auto"] {
            assert_eq!(FuseMode::parse(Some(v)).unwrap(), FuseMode::Auto, "{v}");
        }

        let err = FuseMode::parse(Some("maybe")).unwrap_err();
        assert!(matches!(&err, ConfigError::Fuse { value } if value == "maybe"));
        let msg = err.to_string();
        assert!(msg.contains("OP2_FUSE") && msg.contains("maybe"), "{msg}");
    }

    /// `OP2_EXEC` knob grammar: levels/dataflow/auto (case-insensitive),
    /// unset defaults to Levels, anything else is a typed
    /// [`ConfigError::Exec`].
    #[test]
    fn exec_mode_knob_grammar() {
        use crate::error::ConfigError;

        assert_eq!(ExecMode::parse(None).unwrap(), ExecMode::Levels);
        for v in ["levels", "LEVELS", "Levels"] {
            assert_eq!(ExecMode::parse(Some(v)).unwrap(), ExecMode::Levels, "{v}");
        }
        for v in ["dataflow", "DATAFLOW", "DataFlow"] {
            assert_eq!(ExecMode::parse(Some(v)).unwrap(), ExecMode::Dataflow, "{v}");
        }
        for v in ["auto", "AUTO"] {
            assert_eq!(ExecMode::parse(Some(v)).unwrap(), ExecMode::Auto, "{v}");
        }

        let err = ExecMode::parse(Some("async")).unwrap_err();
        assert!(matches!(&err, ConfigError::Exec { value } if value == "async"));
        let msg = err.to_string();
        assert!(msg.contains("OP2_EXEC") && msg.contains("async"), "{msg}");
    }

    /// `OP2_THREAD_PIN` knob grammar: the boolean spellings
    /// (case-insensitive), unset defaults to off, anything else is a
    /// typed [`ConfigError::ThreadPin`].
    #[test]
    fn thread_pin_knob_grammar() {
        use crate::error::ConfigError;

        assert!(!parse_thread_pin(None).unwrap());
        for v in ["1", "true", "on", "TRUE", "On"] {
            assert!(parse_thread_pin(Some(v)).unwrap(), "{v}");
        }
        for v in ["0", "false", "off", "FALSE", "Off"] {
            assert!(!parse_thread_pin(Some(v)).unwrap(), "{v}");
        }

        let err = parse_thread_pin(Some("yes-please")).unwrap_err();
        assert!(matches!(&err, ConfigError::ThreadPin { value } if value == "yes-please"));
        let msg = err.to_string();
        assert!(msg.contains("OP2_THREAD_PIN") && msg.contains("yes-please"), "{msg}");
    }
}
