//! The rank harness: spawn, run, contain, collect.
//!
//! [`run_distributed`] is the reproduction's `mpirun`: it wires a
//! [`CommWorld`], spawns one OS thread per rank, hands each a fresh
//! [`RankEnv`] over its layout, runs the caller's program closure, and
//! afterwards scatters every **successful** rank's owned data back into
//! the global domain (halo copies are discarded — owners are
//! authoritative, exactly as in OP2's fetch semantics).
//!
//! Unlike a real `mpirun`, a failing rank does not take the job down:
//! each rank runs under `catch_unwind`, and both panics (including
//! fault-injected crashes) and [`RuntimeError`]s are reported as that
//! rank's [`RankFailure`] in [`DistOutcome::results`]. Whenever a rank
//! exits — success or failure — it broadcasts a hangup sentinel, so
//! peers blocked on it unwind promptly with
//! [`PeerHangup`](crate::comm::CommError::PeerHangup) instead of
//! sitting out their full receive deadline. The data of failed ranks is
//! *not* scattered back: their owned elements keep the pre-run values,
//! mirroring the data loss of a real rank failure.

use crate::comm::{CommConfig, CommWorld};
use crate::env::RankEnv;
use crate::error::{RankFailure, RuntimeError};
use crate::fault::FaultPlan;
use crate::trace::RankTrace;
use op2_core::{DatId, Domain};
use op2_partition::RankLayout;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Knobs for a distributed run beyond the program itself.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Fault plan to subject the run's traffic (and boundaries) to.
    pub faults: Option<Arc<FaultPlan>>,
    /// Receive-side deadline/retry policy.
    pub comm: CommConfig,
    /// Intra-rank threading for kernel execution, **per rank**. `None`
    /// (the default) reads the `OP2_THREADS`/`OP2_BLOCK_SIZE`
    /// environment and divides the thread budget across the co-located
    /// ranks ([`Threading::split_across`]) so one node-wide `OP2_THREADS`
    /// never oversubscribes the machine. `Some` is taken verbatim as the
    /// per-rank configuration.
    pub threading: Option<crate::threads::Threading>,
    /// Checkpoint cadence for supervised runs
    /// ([`run_supervised`](crate::supervise::run_supervised)). `None`
    /// (the default) reads `OP2_CKPT_EVERY` from the environment;
    /// unsupervised runs ignore this field entirely.
    pub checkpoint: Option<crate::checkpoint::CheckpointConfig>,
    /// Cross-loop fusion policy, **per rank**. `None` (the default)
    /// reads `OP2_FUSE` from the environment (absent = off). `Some` is
    /// taken verbatim.
    pub fuse: Option<crate::env::FuseMode>,
    /// Schedule drain policy, **per rank**. `None` (the default) reads
    /// `OP2_EXEC` from the environment (absent = levels). `Some` is
    /// taken verbatim.
    pub exec: Option<crate::env::ExecMode>,
    /// Pin chunk ownership to workers in first-touch order under the
    /// dataflow drain. `None` (the default) reads `OP2_THREAD_PIN` from
    /// the environment (absent = off). `Some` is taken verbatim.
    pub thread_pin: Option<bool>,
}

impl RunOptions {
    /// Options for a chaos run under `plan`.
    pub fn with_faults(plan: FaultPlan) -> Self {
        RunOptions {
            faults: Some(Arc::new(plan)),
            ..RunOptions::default()
        }
    }

    /// Override the receive policy (builder style).
    pub fn comm_config(mut self, comm: CommConfig) -> Self {
        self.comm = comm;
        self
    }

    /// Run every rank's kernels on `n_threads` threads (builder style),
    /// overriding the environment default.
    pub fn with_threads(mut self, n_threads: usize) -> Self {
        self.threading = Some(crate::threads::Threading::with_threads(n_threads));
        self
    }

    /// Full per-rank threading configuration (builder style).
    pub fn threading(mut self, threading: crate::threads::Threading) -> Self {
        self.threading = Some(threading);
        self
    }

    /// Checkpoint every `every` chain completions under supervision
    /// (builder style), overriding the `OP2_CKPT_EVERY` default.
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint = Some(crate::checkpoint::CheckpointConfig::new(every));
        self
    }

    /// Cross-loop fusion policy (builder style), overriding the
    /// `OP2_FUSE` default.
    pub fn fuse(mut self, mode: crate::env::FuseMode) -> Self {
        self.fuse = Some(mode);
        self
    }

    /// Schedule drain policy (builder style), overriding the `OP2_EXEC`
    /// default.
    pub fn exec(mut self, mode: crate::env::ExecMode) -> Self {
        self.exec = Some(mode);
        self
    }

    /// First-touch chunk pinning (builder style), overriding the
    /// `OP2_THREAD_PIN` default.
    pub fn thread_pin(mut self, pin: bool) -> Self {
        self.thread_pin = Some(pin);
        self
    }
}

/// Everything a distributed run returns.
#[derive(Debug)]
pub struct DistOutcome<R> {
    /// Per-rank instrumentation, indexed by rank. Present for failed
    /// ranks too (whatever they recorded before dying), including the
    /// transport recovery counters in [`RankTrace::comm`].
    pub traces: Vec<RankTrace>,
    /// Per-rank program verdicts, indexed by rank.
    pub results: Vec<Result<R, RankFailure>>,
}

impl<R> DistOutcome<R> {
    /// True when every rank completed.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(Result::is_ok)
    }

    /// The failures, in rank order.
    pub fn failures(&self) -> Vec<&RankFailure> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .collect()
    }

    /// Unwrap every rank's result, panicking with a readable listing if
    /// any rank failed. The migration path for healthy-network callers.
    pub fn unwrap_results(self) -> Vec<R> {
        let mut out = Vec::with_capacity(self.results.len());
        let mut errs = Vec::new();
        for r in self.results {
            match r {
                Ok(v) => out.push(v),
                Err(f) => errs.push(f.to_string()),
            }
        }
        if !errs.is_empty() {
            panic!("{} rank(s) failed:\n  {}", errs.len(), errs.join("\n  "));
        }
        out
    }

    /// Summed transport recovery counters across all ranks.
    pub fn total_comm_counters(&self) -> crate::comm::CommCounters {
        let mut total = crate::comm::CommCounters::default();
        for t in &self.traces {
            total.add(&t.comm);
        }
        total
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `program` on every rank concurrently over a perfect network.
/// On return, the global domain's dats hold each successful owner's
/// final values. See [`run_distributed_with`] for fault injection and
/// receive-policy overrides.
pub fn run_distributed<F, R>(
    dom: &mut Domain,
    layouts: &[RankLayout],
    program: F,
) -> DistOutcome<R>
where
    F: Fn(&mut RankEnv<'_>) -> Result<R, RuntimeError> + Sync,
    R: Send,
{
    run_distributed_with(dom, layouts, &RunOptions::default(), program)
}

/// [`run_distributed`] with explicit [`RunOptions`] (fault plan,
/// receive deadline/retry policy).
pub fn run_distributed_with<F, R>(
    dom: &mut Domain,
    layouts: &[RankLayout],
    opts: &RunOptions,
    program: F,
) -> DistOutcome<R>
where
    F: Fn(&mut RankEnv<'_>) -> Result<R, RuntimeError> + Sync,
    R: Send,
{
    // One rank's homeward payload: local dats (successful ranks only),
    // trace, verdict.
    type RankYield<R> = (Option<Vec<Vec<f64>>>, RankTrace, Result<R, RankFailure>);
    let nparts = layouts.len();
    assert!(nparts >= 1);
    // Resolve threading up front so a malformed OP2_THREADS /
    // OP2_BLOCK_SIZE is reported once, as a typed per-rank config
    // failure, instead of panicking inside every rank thread.
    let config_failure = |e: crate::error::ConfigError| {
        let traces = layouts
            .iter()
            .map(|l| RankTrace {
                rank: l.rank,
                ..RankTrace::default()
            })
            .collect();
        let results = layouts
            .iter()
            .map(|l| {
                Err(RankFailure::Failed {
                    rank: l.rank,
                    error: RuntimeError::Config(e.clone()),
                })
            })
            .collect();
        DistOutcome { traces, results }
    };
    let threading = match opts.threading {
        Some(t) => t,
        None => match crate::threads::Threading::try_from_env() {
            Ok(t) => t.split_across(nparts),
            Err(e) => return config_failure(e),
        },
    };
    // Same discipline for OP2_FUSE: one typed verdict, not a per-rank
    // panic.
    let fuse = match opts.fuse {
        Some(m) => m,
        None => match crate::env::FuseMode::try_from_env() {
            Ok(m) => m,
            Err(e) => return config_failure(e),
        },
    };
    // And for the drain-policy knobs OP2_EXEC / OP2_THREAD_PIN.
    let exec = match opts.exec {
        Some(m) => m,
        None => match crate::env::ExecMode::try_from_env() {
            Ok(m) => m,
            Err(e) => return config_failure(e),
        },
    };
    let pin = match opts.thread_pin {
        Some(p) => p,
        None => match crate::env::thread_pin_from_env() {
            Ok(p) => p,
            Err(e) => return config_failure(e),
        },
    };
    let world = match &opts.faults {
        Some(plan) => CommWorld::with_faults(nparts, plan.clone()),
        None => CommWorld::new(nparts),
    }
    .with_config(opts.comm);
    let comms = world.into_ranks();

    let dom_ref: &Domain = dom;
    let program_ref = &program;
    let mut collected: Vec<Option<RankYield<R>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .zip(layouts.iter())
            .map(|(comm, layout)| {
                scope.spawn(move || {
                    let mut env = RankEnv::new(layout, dom_ref, comm);
                    env.threads.opts = threading;
                    env.fuse = fuse;
                    env.exec = exec;
                    env.pin = pin;
                    let run = catch_unwind(AssertUnwindSafe(|| program_ref(&mut env)));
                    let verdict = match run {
                        Ok(Ok(r)) => Ok(r),
                        Ok(Err(error)) => Err(RankFailure::Failed {
                            rank: env.rank,
                            error,
                        }),
                        Err(payload) => Err(RankFailure::Panicked {
                            rank: env.rank,
                            message: panic_message(payload),
                        }),
                    };
                    // Exit broadcast, success or not: peers blocked on
                    // this rank unwind with PeerHangup instead of
                    // waiting out their deadlines. FIFO order keeps the
                    // sentinel behind every real message.
                    env.comm.hangup_all();
                    env.trace.comm = env.comm.counters;
                    env.trace.plan = env.plans.stats;
                    // Park checkpoint state (plan cache, thread pool,
                    // comm pools, recovery counters) back into the
                    // supervisor's slot — runs for failed ranks too,
                    // since the env survives catch_unwind.
                    env.ckpt_seal();
                    let dats = verdict.is_ok().then_some(env.dats);
                    (dats, env.trace, verdict)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| Some(h.join().expect("rank thread died outside catch_unwind")))
            .collect()
    });

    let mut traces = Vec::with_capacity(nparts);
    let mut results = Vec::with_capacity(nparts);
    for (layout, slot) in layouts.iter().zip(collected.iter_mut()) {
        let (dats, trace, verdict) = slot.take().expect("every rank joined");
        if let Some(dats) = dats {
            for (didx, local) in dats.iter().enumerate() {
                layout.scatter_owned(dom, DatId(didx as u32), local);
            }
        }
        traces.push(trace);
        results.push(verdict);
    }
    DistOutcome { traces, results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_chain, run_loop};
    use op2_core::{AccessMode, Arg, Args, ChainSpec, GblDecl, LoopSpec};
    use op2_mesh::Quad2D;
    use op2_partition::{build_layouts, derive_ownership, rcb_partition};

    fn count_kernel(args: &Args<'_>) {
        args.inc(0, 0, 1.0);
        args.inc(1, 0, 1.0);
    }

    fn sum_kernel(args: &Args<'_>) {
        args.inc(1, 0, args.get(0, 0));
    }

    fn setup(nx: usize, ny: usize, nparts: usize, depth: usize) -> (Quad2D, Vec<RankLayout>) {
        let m = Quad2D::generate(nx, ny);
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        let layouts = build_layouts(&m.dom, &own, depth);
        (m, layouts)
    }

    /// Distributed degree count (integer-valued: exact across any
    /// execution order) matches the sequential reference.
    #[test]
    fn distributed_matches_sequential_exactly() {
        let (mut m, layouts) = setup(7, 5, 4, 2);
        let deg = m.dom.decl_dat_zeros("deg", m.nodes, 1);
        let spec = LoopSpec::new(
            "count",
            m.edges,
            vec![
                Arg::dat_indirect(deg, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(deg, m.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );

        // Sequential reference.
        let mut seq_dom = m.dom.clone();
        op2_core::seq::run_loop(&mut seq_dom, &spec);

        run_distributed(&mut m.dom, &layouts, |env| {
            run_loop(env, &spec)?;
            Ok(())
        })
        .unwrap_results();
        assert_eq!(m.dom.dat(deg).data, seq_dom.dat(deg).data);
    }

    /// Global reductions count every owned element exactly once, even
    /// though redundant halo iterations execute.
    #[test]
    fn reduction_not_double_counted() {
        let (mut m, layouts) = setup(6, 6, 3, 2);
        let ones = {
            let n = m.dom.set(m.nodes).size;
            m.dom.decl_dat("ones", m.nodes, 1, vec![1.0; n])
        };
        let spec = LoopSpec::with_gbls(
            "sum",
            m.nodes,
            vec![
                Arg::dat_direct(ones, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            sum_kernel,
        );
        let n_nodes = m.dom.set(m.nodes).size as f64;
        let out = run_distributed(&mut m.dom, &layouts, |env| run_loop(env, &spec));
        for r in out.unwrap_results() {
            assert_eq!(r.gbls[0], vec![n_nodes]);
        }
    }

    /// A 2-loop chain under Alg 2 equals the sequential result exactly
    /// (integer data) and sends exactly one grouped message per
    /// neighbour.
    #[test]
    fn chain_matches_sequential_and_groups_messages() {
        let (mut m, layouts) = setup(8, 8, 4, 2);
        let a = m.dom.decl_dat_zeros("a", m.nodes, 1);
        let b = m.dom.decl_dat_zeros("b", m.nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            m.edges,
            vec![
                Arg::dat_indirect(a, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, m.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );
        fn consume_kernel(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        let consume = LoopSpec::new(
            "consume",
            m.edges,
            vec![
                Arg::dat_indirect(a, m.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, m.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, m.e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        let chain = ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[])
            .unwrap();
        assert_eq!(chain.halo_ext, vec![2, 1]);

        let mut seq_dom = m.dom.clone();
        op2_core::seq::run_loop(&mut seq_dom, &produce);
        op2_core::seq::run_loop(&mut seq_dom, &consume);

        let out = run_distributed(&mut m.dom, &layouts, |env| run_chain(env, &chain));
        assert!(out.all_ok());
        assert_eq!(m.dom.dat(a).data, seq_dom.dat(a).data);
        assert_eq!(m.dom.dat(b).data, seq_dom.dat(b).data);
        // One grouped message per neighbour.
        for (trace, layout) in out.traces.iter().zip(layouts.iter()) {
            let rec = &trace.chains[0];
            assert!(rec.exch.n_msgs <= layout.neighbors.len());
        }
    }

    /// Single-rank execution works without any communication.
    #[test]
    fn single_rank_runs() {
        let (mut m, layouts) = setup(4, 4, 1, 2);
        let deg = m.dom.decl_dat_zeros("deg", m.nodes, 1);
        let spec = LoopSpec::new(
            "count",
            m.edges,
            vec![
                Arg::dat_indirect(deg, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(deg, m.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );
        let out = run_distributed(&mut m.dom, &layouts, |env| run_loop(env, &spec));
        assert!(out.all_ok());
        assert_eq!(out.traces[0].loops[0].exch.n_msgs, 0);
        let total: f64 = m.dom.dat(deg).data.iter().sum();
        assert_eq!(total, 2.0 * m.dom.set(m.edges).size as f64);
    }

    /// A panicking rank no longer brings the harness down: its failure
    /// is contained and reported; other ranks unwind via hangup; their
    /// data still scatters back.
    #[test]
    fn rank_panic_is_contained() {
        let (mut m, layouts) = setup(6, 6, 3, 1);
        let d = m.dom.decl_dat_zeros("d", m.nodes, 1);
        let before = m.dom.dat(d).data.clone();
        let spec = LoopSpec::new(
            "count",
            m.edges,
            vec![
                Arg::dat_indirect(d, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(d, m.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );
        let out = run_distributed(&mut m.dom, &layouts, |env| {
            if env.rank == 1 {
                panic!("deliberate test panic on rank 1");
            }
            run_loop(env, &spec)?;
            Ok(env.rank)
        });
        assert!(!out.all_ok());
        match &out.results[1] {
            Err(RankFailure::Panicked { rank, message }) => {
                assert_eq!(*rank, 1);
                assert!(message.contains("deliberate test panic"), "{message}");
            }
            other => panic!("expected rank 1 panic, got {other:?}"),
        }
        // Rank 1's owned elements keep their pre-run values.
        let own = &layouts[1];
        let dd = m.dom.dat(d);
        for set_l in [&own.sets[dd.set.idx()]] {
            for &g in set_l.locals.iter().take(set_l.n_owned) {
                assert_eq!(dd.data[g as usize], before[g as usize]);
            }
        }
    }

    /// Returning a RuntimeError from the program closure is a per-rank
    /// failure, not a panic.
    #[test]
    fn rank_error_is_reported() {
        let (mut m, layouts) = setup(4, 4, 2, 1);
        let out: DistOutcome<()> = run_distributed(&mut m.dom, &layouts, |env| {
            if env.rank == 0 {
                Err(RuntimeError::Comm(crate::comm::CommError::PeerHangup {
                    peer: 9,
                }))
            } else {
                Ok(())
            }
        });
        assert!(matches!(
            &out.results[0],
            Err(RankFailure::Failed { rank: 0, .. })
        ));
        assert!(out.results[1].is_ok());
        assert_eq!(out.failures().len(), 1);
    }
}
