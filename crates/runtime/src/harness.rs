//! The rank harness: spawn, run, collect.
//!
//! [`run_distributed`] is the reproduction's `mpirun`: it wires a
//! [`CommWorld`], spawns one OS thread per rank,
//! hands each a fresh [`RankEnv`] over its layout, runs the caller's
//! program closure, and afterwards scatters every rank's **owned** data
//! back into the global domain (halo copies are discarded — owners are
//! authoritative, exactly as in OP2's fetch semantics).

use crate::comm::CommWorld;
use crate::env::RankEnv;
use crate::trace::RankTrace;
use op2_core::{DatId, Domain};
use op2_partition::RankLayout;

/// Everything a distributed run returns.
#[derive(Debug)]
pub struct DistOutcome<R> {
    /// Per-rank instrumentation, indexed by rank.
    pub traces: Vec<RankTrace>,
    /// Per-rank program results, indexed by rank.
    pub results: Vec<R>,
}

/// Execute `program` on every rank concurrently. On return, the global
/// domain's dats hold each owner's final values.
pub fn run_distributed<F, R>(
    dom: &mut Domain,
    layouts: &[RankLayout],
    program: F,
) -> DistOutcome<R>
where
    F: Fn(&mut RankEnv<'_>) -> R + Sync,
    R: Send,
{
    // One rank's homeward payload: its local dat buffers, trace, result.
    type RankYield<R> = (Vec<Vec<f64>>, RankTrace, R);
    let nparts = layouts.len();
    assert!(nparts >= 1);
    let comms = CommWorld::new(nparts).into_ranks();

    let dom_ref: &Domain = dom;
    let program_ref = &program;
    let mut collected: Vec<Option<RankYield<R>>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(layouts.iter())
                .map(|(comm, layout)| {
                    scope.spawn(move || {
                        let mut env = RankEnv::new(layout, dom_ref, comm);
                        let result = program_ref(&mut env);
                        (env.dats, env.trace, result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| Some(h.join().expect("rank thread panicked")))
                .collect()
        });

    let mut traces = Vec::with_capacity(nparts);
    let mut results = Vec::with_capacity(nparts);
    for (layout, slot) in layouts.iter().zip(collected.iter_mut()) {
        let (dats, trace, result) = slot.take().expect("every rank joined");
        for (didx, local) in dats.iter().enumerate() {
            layout.scatter_owned(dom, DatId(didx as u32), local);
        }
        traces.push(trace);
        results.push(result);
    }
    DistOutcome { traces, results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_chain, run_loop};
    use op2_core::{AccessMode, Arg, Args, ChainSpec, GblDecl, LoopSpec};
    use op2_mesh::Quad2D;
    use op2_partition::{build_layouts, derive_ownership, rcb_partition};

    fn count_kernel(args: &Args<'_>) {
        args.inc(0, 0, 1.0);
        args.inc(1, 0, 1.0);
    }

    fn sum_kernel(args: &Args<'_>) {
        args.inc(1, 0, args.get(0, 0));
    }

    fn setup(nx: usize, ny: usize, nparts: usize, depth: usize) -> (Quad2D, Vec<RankLayout>) {
        let m = Quad2D::generate(nx, ny);
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        let layouts = build_layouts(&m.dom, &own, depth);
        (m, layouts)
    }

    /// Distributed degree count (integer-valued: exact across any
    /// execution order) matches the sequential reference.
    #[test]
    fn distributed_matches_sequential_exactly() {
        let (mut m, layouts) = setup(7, 5, 4, 2);
        let deg = m.dom.decl_dat_zeros("deg", m.nodes, 1);
        let spec = LoopSpec::new(
            "count",
            m.edges,
            vec![
                Arg::dat_indirect(deg, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(deg, m.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );

        // Sequential reference.
        let mut seq_dom = m.dom.clone();
        op2_core::seq::run_loop(&mut seq_dom, &spec);

        run_distributed(&mut m.dom, &layouts, |env| {
            run_loop(env, &spec);
        });
        assert_eq!(m.dom.dat(deg).data, seq_dom.dat(deg).data);
    }

    /// Global reductions count every owned element exactly once, even
    /// though redundant halo iterations execute.
    #[test]
    fn reduction_not_double_counted() {
        let (mut m, layouts) = setup(6, 6, 3, 2);
        let ones = {
            let n = m.dom.set(m.nodes).size;
            m.dom.decl_dat("ones", m.nodes, 1, vec![1.0; n])
        };
        let spec = LoopSpec::with_gbls(
            "sum",
            m.nodes,
            vec![
                Arg::dat_direct(ones, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            sum_kernel,
        );
        let n_nodes = m.dom.set(m.nodes).size as f64;
        let out = run_distributed(&mut m.dom, &layouts, |env| run_loop(env, &spec));
        for r in &out.results {
            assert_eq!(r.gbls[0], vec![n_nodes]);
        }
    }

    /// A 2-loop chain under Alg 2 equals the sequential result exactly
    /// (integer data) and sends exactly one grouped message per
    /// neighbour.
    #[test]
    fn chain_matches_sequential_and_groups_messages() {
        let (mut m, layouts) = setup(8, 8, 4, 2);
        let a = m.dom.decl_dat_zeros("a", m.nodes, 1);
        let b = m.dom.decl_dat_zeros("b", m.nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            m.edges,
            vec![
                Arg::dat_indirect(a, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, m.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );
        fn consume_kernel(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        let consume = LoopSpec::new(
            "consume",
            m.edges,
            vec![
                Arg::dat_indirect(a, m.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, m.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, m.e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        let chain = ChainSpec::new(
            "pc",
            vec![produce.clone(), consume.clone()],
            None,
            &[],
        )
        .unwrap();
        assert_eq!(chain.halo_ext, vec![2, 1]);

        let mut seq_dom = m.dom.clone();
        op2_core::seq::run_loop(&mut seq_dom, &produce);
        op2_core::seq::run_loop(&mut seq_dom, &consume);

        let out = run_distributed(&mut m.dom, &layouts, |env| {
            run_chain(env, &chain);
        });
        assert_eq!(m.dom.dat(a).data, seq_dom.dat(a).data);
        assert_eq!(m.dom.dat(b).data, seq_dom.dat(b).data);
        // One grouped message per neighbour.
        for (trace, layout) in out.traces.iter().zip(layouts.iter()) {
            let rec = &trace.chains[0];
            assert!(rec.exch.n_msgs <= layout.neighbors.len());
        }
    }

    /// Single-rank execution works without any communication.
    #[test]
    fn single_rank_runs() {
        let (mut m, layouts) = setup(4, 4, 1, 2);
        let deg = m.dom.decl_dat_zeros("deg", m.nodes, 1);
        let spec = LoopSpec::new(
            "count",
            m.edges,
            vec![
                Arg::dat_indirect(deg, m.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(deg, m.e2n, 1, AccessMode::Inc),
            ],
            count_kernel,
        );
        let out = run_distributed(&mut m.dom, &layouts, |env| {
            run_loop(env, &spec);
        });
        assert_eq!(out.traces[0].loops[0].exch.n_msgs, 0);
        let total: f64 = m.dom.dat(deg).data.iter().sum();
        assert_eq!(total, 2.0 * m.dom.set(m.edges).size as f64);
    }
}
