//! Execution instrumentation.
//!
//! Every quantity in the paper's Tables 2 and 5 appears here: core and
//! halo iteration counts (`ΣS^c`, `ΣS^1`, `ΣS^h`), message counts and
//! sizes (the `2dpm^1` vs `pm^r` comparison), neighbour counts, and the
//! packed-element counts behind the packing cost `c` of Eq 3.

/// Communication performed for one loop or one chain on one rank.
///
/// Equality ignores the wall-clock fields (`pack_ns`, `unpack_ns`,
/// `wait_ns` — they vary run to run) so whole-trace comparisons in the
/// replay-determinism tests stay meaningful; [`ExchangeRec::add`] still
/// accumulates them for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeRec {
    /// Messages sent by this rank.
    pub n_msgs: usize,
    /// Total payload bytes sent.
    pub bytes: usize,
    /// Largest single message sent (the model's `m`).
    pub max_msg_bytes: usize,
    /// Neighbours communicated with.
    pub n_neighbors: usize,
    /// Elements packed (sender side) — proxy for packing cost `c`.
    pub packed_elems: usize,
    /// Bitmask of neighbour ranks actually sent to, indexed by
    /// `min(rank, 127)`. Lets [`ExchangeRec::add`] count *distinct*
    /// messaged neighbours across loops with alternating stencils
    /// instead of taking a lossy max. Beyond 128 ranks the top bit
    /// saturates and the count degrades to the documented
    /// max-approximation (exact for every configuration this repo
    /// reproduces — the paper's Tables 2/5 use ≤ 128 ranks per trace).
    pub nbr_bits: u128,
    /// Wall time spent packing send payloads, nanoseconds (the measured
    /// side of Eq 3's per-byte pack cost `c`). Not compared by `==`.
    pub pack_ns: u64,
    /// Wall time spent unpacking received payloads, nanoseconds. Not
    /// compared by `==`.
    pub unpack_ns: u64,
    /// Wall time blocked waiting for neighbour messages (excluding
    /// unpack), nanoseconds. Not compared by `==`.
    pub wait_ns: u64,
}

impl PartialEq for ExchangeRec {
    fn eq(&self, other: &Self) -> bool {
        self.n_msgs == other.n_msgs
            && self.bytes == other.bytes
            && self.max_msg_bytes == other.max_msg_bytes
            && self.n_neighbors == other.n_neighbors
            && self.packed_elems == other.packed_elems
            && self.nbr_bits == other.nbr_bits
    }
}

impl Eq for ExchangeRec {}

impl ExchangeRec {
    /// Distinct neighbour ranks this record actually messaged.
    pub fn distinct_neighbors(&self) -> usize {
        self.nbr_bits.count_ones() as usize
    }

    /// Accumulate another record. `n_neighbors` becomes the larger of
    /// the per-record maxima and the union's distinct messaged-peer
    /// count — chains alternating between stencils with disjoint
    /// neighbour sets are no longer under-reported.
    pub fn add(&mut self, other: &ExchangeRec) {
        self.n_msgs += other.n_msgs;
        self.bytes += other.bytes;
        self.max_msg_bytes = self.max_msg_bytes.max(other.max_msg_bytes);
        self.nbr_bits |= other.nbr_bits;
        self.n_neighbors = self
            .n_neighbors
            .max(other.n_neighbors)
            .max(self.distinct_neighbors());
        self.packed_elems += other.packed_elems;
        self.pack_ns += other.pack_ns;
        self.unpack_ns += other.unpack_ns;
        self.wait_ns += other.wait_ns;
    }
}

/// One standard (Alg 1) loop execution.
///
/// Equality ignores `wall_ns` (wall clock varies run to run), matching
/// the [`ExchangeRec`] convention, so whole-trace comparisons in the
/// replay-determinism tests stay meaningful.
#[derive(Debug, Clone, Default)]
pub struct LoopRec {
    /// Loop name.
    pub name: String,
    /// Iterations overlapped with communication (`S^c`).
    pub core_iters: usize,
    /// Iterations after the exchange completed (`S^1` for Alg 1).
    pub halo_iters: usize,
    /// Number of dats whose halos were exchanged (`d` in Eq 1).
    pub d_exchanged: usize,
    /// Communication record.
    pub exch: ExchangeRec,
    /// Wall time of the whole loop execution (exchange + compute),
    /// nanoseconds — the per-loop, per-rank load measurement the
    /// rebalance detector aggregates. Not compared by `==`.
    pub wall_ns: u64,
}

impl PartialEq for LoopRec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.core_iters == other.core_iters
            && self.halo_iters == other.halo_iters
            && self.d_exchanged == other.d_exchanged
            && self.exch == other.exch
    }
}

impl Eq for LoopRec {}

/// One CA (Alg 2) chain execution.
///
/// Equality ignores `wall_ns` (wall clock varies run to run), matching
/// the [`ExchangeRec`] convention.
#[derive(Debug, Clone, Default)]
pub struct ChainRec {
    /// Chain name.
    pub name: String,
    /// Per constituent loop: (core iterations, halo iterations).
    pub per_loop: Vec<(usize, usize)>,
    /// Number of dats in the grouped exchange.
    pub d_exchanged: usize,
    /// Maximum halo depth imported (`r` of Eq 3/4).
    pub depth: usize,
    /// Communication record (the single grouped exchange).
    pub exch: ExchangeRec,
    /// Relaxed-mode only: reads whose validity requirement was met by
    /// pre-chain (potentially stale) imported values rather than
    /// in-chain computation. Always 0 in strict mode.
    pub stale_reads: usize,
    /// Wall time of the whole chain execution, nanoseconds — the
    /// per-chain, per-rank load measurement the rebalance detector
    /// aggregates. Not compared by `==`.
    pub wall_ns: u64,
}

impl PartialEq for ChainRec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.per_loop == other.per_loop
            && self.d_exchanged == other.d_exchanged
            && self.depth == other.depth
            && self.exch == other.exch
            && self.stale_reads == other.stale_reads
    }
}

impl Eq for ChainRec {}

impl ChainRec {
    /// Total core iterations (`Σ g_l S_l^c` numerator side).
    pub fn core_iters(&self) -> usize {
        self.per_loop.iter().map(|&(c, _)| c).sum()
    }

    /// Total halo iterations (`Σ S_l^h`).
    pub fn halo_iters(&self) -> usize {
        self.per_loop.iter().map(|&(_, h)| h).sum()
    }
}

/// One adaptive-dispatch decision made by [`crate::tuner::Tuner`].
///
/// The decision inputs are rank-agreed (allreduce-max) and the
/// predictions come from §3.2's closed-form equations, so `backend`,
/// `class` and the predicted times are identical on every rank.
/// `t_measured_ns` is this rank's wall clock for the calibration run —
/// the predicted-vs-measured comparison — and, with `sync_ns` (the
/// agreed measured pool-barrier cost), the only wall-clock-derived
/// fields; both may vary between runs, but `sync_ns` is allreduced so
/// it never varies between ranks. Loop/chain trace records never carry
/// wall-clock values, keeping the replay-determinism tests meaningful.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TunerRec {
    /// Service job this decision was made for (0 outside the resident
    /// service) — per-job trace isolation when many jobs share a world.
    pub job: u64,
    /// Chain name.
    pub chain: String,
    /// Backend the tuner dispatched to.
    pub backend: crate::tuner::Backend,
    /// Model classification (Table 2's Reducing/GroupingOnly/Increasing).
    pub class: ClassRec,
    /// Predicted standard (Alg 1) chain time, nanoseconds.
    pub t_op2_pred_ns: u64,
    /// Predicted CA (Alg 2) chain time, nanoseconds.
    pub t_ca_pred_ns: u64,
    /// Measured wall clock of the flattened calibration run, nanoseconds.
    pub t_measured_ns: u64,
    /// Threads the decision was made for (1 = sequential model). The
    /// calibration itself always measures sequentially — the tuner
    /// derives the threaded `g` via [`op2_model::threaded_g`].
    pub n_threads: usize,
    /// Agreed (allreduce-max) per-barrier synchronisation cost the
    /// threaded model priced pool rounds with, nanoseconds — measured on
    /// each rank's own pool, replacing [`op2_model::COLOR_SYNC_S`]. Zero
    /// for sequential decisions.
    pub sync_ns: u64,
    /// Predicted gain `(t_op2 - t_ca)/t_op2`, in thousandths of a percent
    /// (milli-percent) so the record stays integer and `Eq`.
    pub gain_milli_pct: i64,
}

/// Which lowering produced a pooled [`op2_core::Schedule`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedKind {
    /// A single loop range lowered through the levelized block coloring.
    #[default]
    Colored,
    /// A whole chain lowered through the leveled tile plan.
    Tiled,
}

/// One pooled [`op2_core::Schedule`] execution — a colored loop range or
/// a tiled chain (see [`crate::threads`]): the schedule shape plus
/// per-level wall time.
///
/// Equality ignores the *values* in `level_ns` (wall clock varies run to
/// run) but keeps its *length* — two equal records executed the same
/// schedule. This keeps whole-[`RankTrace`] comparisons in the replay
/// determinism tests meaningful with threading on.
#[derive(Debug, Clone, Default)]
pub struct ThreadRec {
    /// Loop or chain name.
    pub name: String,
    /// Total iterations executed (summed over the chain's loops for
    /// tiled schedules).
    pub iters: usize,
    /// Threads that executed it.
    pub n_threads: usize,
    /// Iterations per coloring block (0 for tiled schedules, which
    /// chunk by tile, not by block).
    pub block_size: usize,
    /// Conflict-free chunks across all levels (blocks or tiles).
    pub n_chunks: usize,
    /// Levels in the schedule (inter-thread synchronisation points).
    pub n_levels: usize,
    /// Which lowering produced the schedule.
    pub kind: SchedKind,
    /// Wall time per level, nanoseconds (not compared by `==`). Under
    /// the dataflow drain there are no level barriers, so this is a
    /// single entry holding the whole drain's wall time.
    pub level_ns: Vec<u64>,
    /// Critical-path depth of the drain: the longest chunk dependency
    /// chain under dataflow, the level count under level-synchronous
    /// draining. The lower bound on parallel drain time.
    pub crit_path: usize,
    /// True when the dataflow executor drained this schedule (chunks
    /// fired on dependency counters instead of level barriers).
    pub dataflow: bool,
    /// Per-worker idle time, nanoseconds: drain wall clock minus the
    /// worker's summed chunk execution time — the same ruler for barrier
    /// wait and steal/spin wait (not compared by `==`).
    pub idle_ns: Vec<u64>,
    /// Per-worker chunks stolen from other workers' queues (dataflow
    /// only; not compared by `==` — steal counts vary run to run).
    pub steals: Vec<u64>,
    /// Per-worker chunks executed (not compared by `==` — placement
    /// varies run to run under stealing).
    pub fires: Vec<u64>,
}

impl PartialEq for ThreadRec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.iters == other.iters
            && self.n_threads == other.n_threads
            && self.block_size == other.block_size
            && self.n_chunks == other.n_chunks
            && self.n_levels == other.n_levels
            && self.kind == other.kind
            && self.level_ns.len() == other.level_ns.len()
            && self.crit_path == other.crit_path
            && self.dataflow == other.dataflow
            && self.idle_ns.len() == other.idle_ns.len()
            && self.steals.len() == other.steals.len()
            && self.fires.len() == other.fires.len()
    }
}

impl Eq for ThreadRec {}

/// Trace-friendly mirror of [`op2_model::ChainClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ClassRec {
    /// CA reduces communication volume.
    #[default]
    Reducing,
    /// CA only groups messages; volume roughly unchanged.
    GroupingOnly,
    /// CA increases communication volume.
    Increasing,
}

impl From<op2_model::ChainClass> for ClassRec {
    fn from(c: op2_model::ChainClass) -> Self {
        match c {
            op2_model::ChainClass::CommunicationReducing => ClassRec::Reducing,
            op2_model::ChainClass::GroupingOnly => ClassRec::GroupingOnly,
            op2_model::ChainClass::CommunicationIncreasing => ClassRec::Increasing,
        }
    }
}

/// Self-healing counters for one rank: checkpoints taken, bytes
/// snapshotted, rollbacks driven by the supervisor, and the replay work
/// done to catch back up after a restore.
///
/// All counters are deterministic given the same program and the same
/// seeded fault plan, so they participate in trace equality: two
/// supervised runs of the same faulted program must agree on how they
/// healed, not just on the numerics. All zero when the run is
/// unsupervised (or fault-free with checkpointing disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryRec {
    /// Service job these counters belong to (0 outside the resident
    /// service). Deterministic: the service assigns ids in admission
    /// order, so per-world serialized replays agree.
    pub job: u64,
    /// Restart attempts this rank participated in (1 = fault-free run).
    pub attempts: u32,
    /// Checkpoints taken (including the attempt-start baseline).
    pub checkpoints: u64,
    /// Payload bytes actually copied into checkpoints (incremental:
    /// clean dats are shared, not re-copied, and not counted here).
    pub ckpt_bytes: u64,
    /// Dats freshly snapshotted across all checkpoints.
    pub dats_snapshotted: u64,
    /// Dats skipped because they were unchanged since the previous
    /// checkpoint (shared by reference instead of copied).
    pub dats_skipped: u64,
    /// Coordinated rollbacks this rank was rewound by.
    pub rollbacks: u64,
    /// Payload bytes restored into the live dats by rollbacks.
    pub restored_bytes: u64,
    /// Loop executions replayed from the journal (skipped re-execution)
    /// while catching up to the restored checkpoint.
    pub replayed_loops: u64,
    /// Chain executions replayed from the journal while catching up.
    pub replayed_chains: u64,
    /// Deadline escalations: times the supervisor classified a failure
    /// as a straggler and doubled the receive deadline before retrying.
    pub escalations: u64,
}

/// Online-rebalancing counters for one rank: migrations participated
/// in, elements and payload bytes this rank shipped to new owners, and
/// the replan cost paid after the layout epoch bump.
///
/// The structural counters (`migrations`, `elements_out`, `bytes_out`,
/// `replans`) are deterministic given the same migration plan and
/// participate in equality; the wall-clock and load-ratio fields
/// (`imbalance_before_milli`, `imbalance_after_milli`, `replan_ns`)
/// vary run to run and are excluded, following the [`ExchangeRec`]
/// convention.
#[derive(Debug, Clone, Copy, Default)]
pub struct RebalanceRec {
    /// Migrations this rank participated in.
    pub migrations: u64,
    /// Elements this rank shipped to new owners (sender side, summed
    /// over all sets).
    pub elements_out: u64,
    /// Payload bytes this rank shipped (dat slices + renumbering
    /// tables).
    pub bytes_out: u64,
    /// Plans invalidated by layout-epoch bumps on this rank.
    pub replans: u64,
    /// Measured max/mean load ratio that triggered the migration, in
    /// thousandths (1250 = 1.25×). Not compared by `==`.
    pub imbalance_before_milli: u64,
    /// Load ratio of the re-sharded layout predicted from the applied
    /// element weights, in thousandths. Not compared by `==`.
    pub imbalance_after_milli: u64,
    /// Wall time spent re-planning (re-shard + diff + layout rebuild +
    /// migration traffic), nanoseconds. Not compared by `==`.
    pub replan_ns: u64,
}

impl PartialEq for RebalanceRec {
    fn eq(&self, other: &Self) -> bool {
        self.migrations == other.migrations
            && self.elements_out == other.elements_out
            && self.bytes_out == other.bytes_out
            && self.replans == other.replans
    }
}

impl Eq for RebalanceRec {}

impl RebalanceRec {
    /// Accumulate another record (per-segment records fold into the
    /// run-wide aggregate the bench report surfaces).
    pub fn add(&mut self, other: &RebalanceRec) {
        self.migrations += other.migrations;
        self.elements_out += other.elements_out;
        self.bytes_out += other.bytes_out;
        self.replans += other.replans;
        self.imbalance_before_milli = self.imbalance_before_milli.max(other.imbalance_before_milli);
        self.imbalance_after_milli = self.imbalance_after_milli.max(other.imbalance_after_milli);
        self.replan_ns += other.replan_ns;
    }
}

/// Everything one rank recorded during a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankTrace {
    /// This rank.
    pub rank: u32,
    /// Standard loop executions, in program order.
    pub loops: Vec<LoopRec>,
    /// CA chain executions, in program order.
    pub chains: Vec<ChainRec>,
    /// Transport recovery counters (retries, timeouts, discarded
    /// corrupt/duplicate copies, injected faults observed). All zero on
    /// a healthy network; the harness copies them out of the comm layer
    /// when the rank finishes — including when it fails.
    pub comm: crate::comm::CommCounters,
    /// Plan-cache counters (hits, misses, invalidations, tile plans).
    /// The harness copies them out of [`crate::plan::PlanCache`] when the
    /// rank finishes.
    pub plan: crate::plan::PlanStats,
    /// Adaptive-dispatch decisions, in program order. Empty unless the
    /// program ran chains through [`crate::tuner::Tuner`].
    pub tuner: Vec<TunerRec>,
    /// Pooled schedule executions (colored loops and tiled chains), in
    /// program order. Empty when the rank ran single-threaded.
    pub threads: Vec<ThreadRec>,
    /// Self-healing counters (checkpoints, rollbacks, replays). All
    /// zero unless the program ran under [`crate::supervise`] or with
    /// checkpointing enabled.
    pub recovery: RecoveryRec,
    /// Online-rebalancing counters (migrations, moved elements/bytes,
    /// replan cost). All zero unless the program ran under
    /// [`crate::rebalance`].
    pub rebalance: RebalanceRec,
}

impl RankTrace {
    /// Total messages sent (loops + chains + reductions are counted by
    /// the comm layer; this sums the loop/chain records).
    pub fn total_msgs(&self) -> usize {
        self.loops.iter().map(|l| l.exch.n_msgs).sum::<usize>()
            + self.chains.iter().map(|c| c.exch.n_msgs).sum::<usize>()
    }

    /// Total exchanged payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.loops.iter().map(|l| l.exch.bytes).sum::<usize>()
            + self.chains.iter().map(|c| c.exch.bytes).sum::<usize>()
    }

    /// Aggregated exchange record across every loop and chain — the
    /// per-rank `comm` summary (distinct neighbours, byte totals, and
    /// the pack/unpack/wait wall-clock breakdown) the bench report
    /// surfaces.
    pub fn exch_total(&self) -> ExchangeRec {
        let mut total = ExchangeRec::default();
        for l in &self.loops {
            total.add(&l.exch);
        }
        for c in &self.chains {
            total.add(&c.exch);
        }
        total
    }

    /// Measured wall time of every recorded execution unit (loops and
    /// chains), nanoseconds — the rank's total compute+exchange load.
    pub fn wall_ns(&self) -> u64 {
        self.loops.iter().map(|l| l.wall_ns).sum::<u64>()
            + self.chains.iter().map(|c| c.wall_ns).sum::<u64>()
    }

    /// Windowed load: wall time of the trailing `window` loop records
    /// plus the trailing `window` chain records, nanoseconds. The
    /// rebalance detector aggregates this per rank so old history stops
    /// influencing the trigger.
    pub fn recent_wall_ns(&self, window: usize) -> u64 {
        let tail = |v: &[u64]| -> u64 { v[v.len().saturating_sub(window)..].iter().sum() };
        let loops: Vec<u64> = self.loops.iter().map(|l| l.wall_ns).collect();
        let chains: Vec<u64> = self.chains.iter().map(|c| c.wall_ns).collect();
        tail(&loops) + tail(&chains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_accumulation() {
        let mut a = ExchangeRec {
            n_msgs: 2,
            bytes: 100,
            max_msg_bytes: 60,
            n_neighbors: 2,
            packed_elems: 10,
            nbr_bits: 0b011,
            pack_ns: 40,
            unpack_ns: 20,
            wait_ns: 500,
        };
        let b = ExchangeRec {
            n_msgs: 1,
            bytes: 80,
            max_msg_bytes: 80,
            n_neighbors: 1,
            packed_elems: 5,
            nbr_bits: 0b010,
            pack_ns: 10,
            unpack_ns: 5,
            wait_ns: 100,
        };
        a.add(&b);
        assert_eq!(a.n_msgs, 3);
        assert_eq!(a.bytes, 180);
        assert_eq!(a.max_msg_bytes, 80);
        assert_eq!(a.n_neighbors, 2);
        assert_eq!(a.packed_elems, 15);
        assert_eq!(a.distinct_neighbors(), 2);
        assert_eq!((a.pack_ns, a.unpack_ns, a.wait_ns), (50, 25, 600));
    }

    /// The wall-clock fields accumulate but are excluded from equality —
    /// two records of the same exchange with different timings compare
    /// equal (the replay-determinism contract).
    #[test]
    fn exchange_equality_ignores_timings() {
        let a = ExchangeRec {
            n_msgs: 2,
            bytes: 100,
            pack_ns: 40,
            wait_ns: 999,
            ..Default::default()
        };
        let b = ExchangeRec {
            n_msgs: 2,
            bytes: 100,
            pack_ns: 7,
            unpack_ns: 3,
            ..Default::default()
        };
        assert_eq!(a, b);
        let c = ExchangeRec {
            n_msgs: 3,
            bytes: 100,
            ..Default::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_neighbors_across_alternating_stencils() {
        // Two loops in a chain, each messaging 2 peers — but *different*
        // peers (disjoint stencils). The old max-based accumulation
        // reported 2 neighbours; the union of messaged peers is 4.
        let mut a = ExchangeRec {
            n_msgs: 2,
            n_neighbors: 2,
            nbr_bits: 0b0011, // ranks 0, 1
            ..Default::default()
        };
        let b = ExchangeRec {
            n_msgs: 2,
            n_neighbors: 2,
            nbr_bits: 0b1100, // ranks 2, 3
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.n_neighbors, 4);
        assert_eq!(a.distinct_neighbors(), 4);
    }

    #[test]
    fn chain_iteration_sums() {
        let c = ChainRec {
            per_loop: vec![(10, 4), (8, 6)],
            ..Default::default()
        };
        assert_eq!(c.core_iters(), 18);
        assert_eq!(c.halo_iters(), 10);
    }

    #[test]
    fn trace_totals() {
        let mut t = RankTrace::default();
        t.loops.push(LoopRec {
            exch: ExchangeRec {
                n_msgs: 4,
                bytes: 32,
                ..Default::default()
            },
            ..Default::default()
        });
        t.chains.push(ChainRec {
            exch: ExchangeRec {
                n_msgs: 1,
                bytes: 64,
                ..Default::default()
            },
            ..Default::default()
        });
        assert_eq!(t.total_msgs(), 5);
        assert_eq!(t.total_bytes(), 96);
    }
}
