//! The two distributed execution algorithms.
//!
//! [`run_loop`] is the paper's **Algorithm 1** — standard OP2: per-loop
//! halo exchanges with latency hiding (core iterations run while
//! messages are in flight, the boundary and import-execute halo run
//! after the wait).
//!
//! [`run_chain`] is **Algorithm 2** — the CA back-end: one *grouped*
//! multi-level exchange per neighbour at chain entry, every loop's
//! (per-position shrinking) core overlapped with it, then each loop's
//! halo region executed in order, with redundant computation over up to
//! `r` layers replacing the eliminated per-loop messages.
//!
//! The chain executors are **inspector–executor** split since the plan
//! subsystem landed: all analysis (import depths, core depths, execute
//! ranges, pack lists, tile schedules) comes from a cached
//! [`crate::plan::ChainPlan`] — repeat invocations of the same chain in
//! the same dirty-state class do zero re-analysis, which the plan-cache
//! hit counters in the trace make assertable. [`run_chain_unplanned`]
//! keeps the original inline-analysis path as the reference executor
//! the planned path is tested bitwise-equal against.

use crate::env::RankEnv;
use crate::error::RuntimeError;
use crate::fault::BoundaryKind;
use crate::trace::{ChainRec, LoopRec};
use op2_core::seq::LoopResult;
use op2_core::{Arg, ChainSpec, DatId, LoopSpec};

pub use op2_core::chain::{produced_validity, read_requirement};

/// Observation points inside the executors, used by the simulated GPU
/// back-end to account host↔device staging and kernel launches. The CPU
/// path uses [`NoHooks`] (all callbacks empty, fully inlined away).
pub trait ExecHooks {
    /// Packed halo bytes staged out (device→host) before the sends.
    fn stage_out(&mut self, _bytes: usize) {}
    /// Received halo bytes staged in (host→device) after the waits.
    fn stage_in(&mut self, _bytes: usize) {}
    /// A kernel segment of `iters` iterations is launched.
    fn launch(&mut self, _iters: usize) {}
}

/// No-op hooks for plain CPU execution.
pub struct NoHooks;
impl ExecHooks for NoHooks {}

/// Halo extent of a standalone (Alg 1) loop: OP2 executes the
/// import-execute halo only when the loop indirectly modifies data
/// (owner-compute via redundant execution); read-only and direct loops
/// run over owned elements alone. Reduction loops never execute
/// redundant elements with live reduction buffers (that would
/// double-count), which [`run_loop`] handles with a scratch buffer.
pub fn standalone_extent(spec: &LoopSpec) -> usize {
    let indirect_modify = spec.args.iter().any(|a| {
        matches!(a, Arg::Dat { map: Some(_), mode, .. } if mode.modifies())
    });
    usize::from(indirect_modify)
}

/// Dats (with depths) a loop must exchange before executing, given the
/// rank's current validity. Deterministic across ranks.
pub fn exchange_list(env: &RankEnv<'_>, spec: &LoopSpec, ext: usize) -> Vec<(DatId, u8)> {
    let sig = spec.sig();
    let mut out = Vec::new();
    for d in sig.dats() {
        let Some((mode, indirect)) = sig.access_of(d) else {
            continue;
        };
        let req = read_requirement(mode, indirect, ext);
        if req > env.valid[d.idx()] as usize {
            out.push((d, req as u8));
        }
    }
    out
}

/// Algorithm 1: execute one loop with per-loop halo exchange and
/// latency hiding. Returns final global-argument values (reductions are
/// summed across ranks deterministically). Transport failures —
/// timeouts, hangups, corruption beyond the retry budget — surface as
/// [`RuntimeError`]s instead of panics.
pub fn run_loop(env: &mut RankEnv<'_>, spec: &LoopSpec) -> Result<LoopResult, RuntimeError> {
    run_loop_hooked(env, spec, &mut NoHooks)
}

/// [`run_loop`] with observation hooks (see [`ExecHooks`]).
pub fn run_loop_hooked(
    env: &mut RankEnv<'_>,
    spec: &LoopSpec,
    hooks: &mut dyn ExecHooks,
) -> Result<LoopResult, RuntimeError> {
    // Post-rollback replay: serve the journaled result (no execution,
    // no communication, no boundary crossing).
    if let Some(gbls) = env.ckpt_skip_loop() {
        return Ok(LoopResult { gbls });
    }
    let t0 = std::time::Instant::now();
    let ext = standalone_extent(spec);
    let exch = exchange_list(env, spec, ext);
    debug_assert!(
        exch.iter().all(|&(_, d)| d as usize <= env.layout.depth),
        "loop `{}` needs deeper halos than the layout was built with",
        spec.name
    );

    // Post sends (MPI_Isend / Irecv of Alg 1, lines 1-2).
    let mut rec = env.exchange(&exch, false);
    hooks.stage_out(rec.bytes);

    let set_layout = &env.layout.sets[spec.set.idx()];
    let core_end = set_layout.core_end(0);
    let n_owned = set_layout.n_owned;
    let exec_end = set_layout.exec_end(ext);

    let mut gbls: Vec<Vec<f64>> = spec.gbls.iter().map(|g| g.init.clone()).collect();

    // Core while in flight (lines 3-5).
    hooks.launch(core_end);
    env.exec_range(spec, 0, core_end, &mut gbls);

    // Wait (line 6).
    env.exchange_wait(&exch, false, &mut rec)?;
    hooks.stage_in(env.expected_recv_bytes(&exch));

    // Boundary-owned iterations contribute to reductions; redundant ring
    // iterations must not.
    hooks.launch(exec_end - core_end);
    env.exec_range(spec, core_end, n_owned, &mut gbls);
    if exec_end > n_owned {
        if spec.has_reduction() {
            // Redundant ring iterations reduce into identity-initialised
            // scratch that is then discarded.
            let mut scratch: Vec<Vec<f64>> = spec
                .gbls
                .iter()
                .map(|g| vec![g.op.identity(); g.dim])
                .collect();
            env.exec_range(spec, n_owned, exec_end, &mut scratch);
        } else {
            env.exec_range(spec, n_owned, exec_end, &mut gbls);
        }
    }

    // Validity transitions — OP2-conservative (single dirty bit): any
    // modification invalidates the whole halo, so the baseline message
    // counts match the paper's OP2 columns.
    let sig = spec.sig();
    for d in sig.dats() {
        if let Some((mode, indirect)) = sig.access_of(d) {
            if let Some(v) = produced_validity(mode, indirect, ext) {
                let conservative = if indirect { v } else { 0 };
                env.valid[d.idx()] = env.valid[d.idx()].min(conservative as u8);
                env.ckpt.note_write(d.idx());
            }
        }
    }

    // Global reductions (a synchronisation point).
    if spec.has_reduction() {
        let tag = env.next_tag();
        for arg in &spec.args {
            if let Arg::Gbl { idx, mode } = arg {
                if mode.modifies() {
                    let op = spec.gbls[*idx as usize].op;
                    env.comm
                        .allreduce(&mut gbls[*idx as usize], tag + *idx as u64 * 2, op)?;
                }
            }
        }
    }

    env.trace.loops.push(LoopRec {
        name: spec.name.clone(),
        core_iters: core_end,
        halo_iters: exec_end - core_end,
        d_exchanged: exch.len(),
        exch: rec,
        wall_ns: t0.elapsed().as_nanos() as u64,
    });

    env.boundary(BoundaryKind::Loop);
    env.ckpt_loop_done(&gbls);
    Ok(LoopResult { gbls })
}

/// The grouped-import plan of a chain: per dat, the depth the initial
/// grouped exchange must deliver given this rank's current validity.
/// Deterministic across ranks (validity evolves identically everywhere).
pub fn chain_import_depths(env: &RankEnv<'_>, chain: &ChainSpec) -> Vec<(DatId, u8)> {
    let sigs = chain.sigs();
    op2_core::chain::import_depths(&sigs, &chain.halo_ext, &|d| env.valid[d.idx()] as usize)
        .into_iter()
        .map(|(d, t)| (d, t as u8))
        .collect()
}

/// Relaxed-mode import plan (see
/// [`op2_core::chain::import_depths_relaxed`]).
pub fn chain_import_depths_relaxed(env: &RankEnv<'_>, chain: &ChainSpec) -> Vec<(DatId, u8)> {
    let sigs = chain.sigs();
    op2_core::chain::import_depths_relaxed(&sigs, &chain.halo_ext, &|d| {
        env.valid[d.idx()] as usize
    })
    .into_iter()
    .map(|(d, t)| (d, t as u8))
    .collect()
}

/// Algorithm 2: execute a loop-chain with the communication-avoiding
/// back-end. Panics if the chain requires deeper halos than the layout
/// was built with (a program error); transport failures surface as
/// [`RuntimeError`]s.
///
/// When the env's [`FuseMode`](crate::env::FuseMode) is `On` (or `Auto`
/// and the profit arm predicts a win) and the chain has at least one
/// fusable group, execution goes through [`run_chain_fused`] instead of
/// the per-loop walk — bitwise identical by the fusion legality rules,
/// with elidable intermediates kept in per-worker scratch. Relaxed-mode
/// and hooked entries never fuse (staleness is counted per loop, which a
/// whole-chain schedule cannot attribute).
pub fn run_chain(env: &mut RankEnv<'_>, chain: &ChainSpec) -> Result<(), RuntimeError> {
    if env.fuse != crate::env::FuseMode::Off && fuse_wanted(env, chain) {
        return run_chain_fused(env, chain);
    }
    run_chain_mode(env, chain, &mut NoHooks, false)
}

/// [`run_chain`] in *relaxed* mode: halo extents are taken as configured
/// (e.g. pinned to the paper's Table 3–4 values), reads beyond in-chain
/// validity are satisfied by the deepened initial import (pre-chain
/// values — the paper's one-sync-per-chain semantics), and every such
/// potentially-stale read is counted in the chain record instead of
/// asserted against.
pub fn run_chain_relaxed(env: &mut RankEnv<'_>, chain: &ChainSpec) -> Result<(), RuntimeError> {
    run_chain_mode(env, chain, &mut NoHooks, true)
}

/// [`run_chain`] with observation hooks (see [`ExecHooks`]).
pub fn run_chain_hooked(
    env: &mut RankEnv<'_>,
    chain: &ChainSpec,
    hooks: &mut dyn ExecHooks,
) -> Result<(), RuntimeError> {
    run_chain_mode(env, chain, hooks, false)
}

/// [`run_chain_relaxed`] with observation hooks.
pub fn run_chain_relaxed_hooked(
    env: &mut RankEnv<'_>,
    chain: &ChainSpec,
    hooks: &mut dyn ExecHooks,
) -> Result<(), RuntimeError> {
    run_chain_mode(env, chain, hooks, true)
}

fn run_chain_mode(
    env: &mut RankEnv<'_>,
    chain: &ChainSpec,
    hooks: &mut dyn ExecHooks,
    relaxed: bool,
) -> Result<(), RuntimeError> {
    if env.ckpt_skip_chain() {
        return Ok(());
    }
    let t0 = std::time::Instant::now();
    // Inspector: cached plan lookup — analysis runs only on a miss.
    let plan = crate::plan::plan_for(env, chain, relaxed);
    assert!(
        plan.depth <= env.layout.depth,
        "chain `{}` needs {} halo layers but the layout was built \
         with {}",
        chain.name,
        plan.depth,
        env.layout.depth
    );

    // Grouped message per neighbour (lines 5-7 of Alg 2), packed via the
    // plan's index lists.
    let mut rec = env.exchange_planned(&plan);
    hooks.stage_out(rec.bytes);

    // Core of every loop while the exchange is in flight (lines 8-12).
    // The safe core retracts by the loop's in-chain dependency depth;
    // relaxed mode keeps the standard depth-1 core everywhere (the
    // paper's behaviour — staleness tolerated and counted).
    let mut gbls: Vec<Vec<f64>> = Vec::new();
    for (pos, spec) in chain.loops.iter().enumerate() {
        debug_assert!(!spec.has_reduction());
        let core_end = plan.core_end[pos];
        gbls.clear();
        gbls.extend(spec.gbls.iter().map(|g| g.init.clone()));
        hooks.launch(core_end);
        env.exec_range_planned(spec, 0, core_end, &mut gbls, &plan, pos);
    }

    // Wait (line 13) — arrival order: whichever neighbour lands first
    // is unpacked first.
    env.exchange_wait_planned(&plan, &mut rec)?;
    hooks.stage_in(plan.recv_bytes);

    // Halo regions in loop order (lines 14-18), with validity checked
    // (strict) or staleness counted (relaxed) and updated per loop. The
    // checks run against *live* validity — the plan stores the static
    // requirements, the env tracks how validity actually evolves.
    let mut per_loop = Vec::with_capacity(chain.len());
    let mut stale_reads = 0usize;
    for (pos, spec) in chain.loops.iter().enumerate() {
        for &(d, req) in &plan.reqs[pos] {
            if env.valid[d.idx()] < req {
                if relaxed {
                    stale_reads += 1;
                } else {
                    // An inspector/executor disagreement: typed, so
                    // supervision can treat it as a recoverable fault.
                    return Err(RuntimeError::Validity {
                        rank: env.rank,
                        chain: chain.name.clone(),
                        loop_name: spec.name.clone(),
                        dat: env.dom.dat(d).name.clone(),
                        need: req,
                        have: env.valid[d.idx()],
                    });
                }
            }
        }
        let core_end = plan.core_end[pos];
        let exec_end = plan.exec_end[pos];
        gbls.clear();
        gbls.extend(spec.gbls.iter().map(|g| g.init.clone()));
        hooks.launch(exec_end - core_end);
        env.exec_range_planned(spec, core_end, exec_end, &mut gbls, &plan, pos);
        per_loop.push((core_end, exec_end - core_end));
        for &(d, v) in &plan.produces[pos] {
            env.valid[d.idx()] = v;
            env.ckpt.note_write(d.idx());
        }
        env.boundary(BoundaryKind::ChainLoop);
    }

    env.trace.chains.push(ChainRec {
        name: chain.name.clone(),
        per_loop,
        d_exchanged: plan.import.len(),
        depth: plan.depth,
        exch: rec,
        stale_reads,
        wall_ns: t0.elapsed().as_nanos() as u64,
    });
    env.boundary(BoundaryKind::Chain);
    env.ckpt_chain_done();
    Ok(())
}

/// The fused-schedule cache key for this env: the colored lowering when
/// the rank's pool is active (block size = the most conservative of the
/// chain loops' adaptive picks — every fused block must satisfy every
/// member's conflict structure), the direct range interleaving otherwise.
fn fused_key(env: &RankEnv<'_>, chain: &ChainSpec, plan: &crate::plan::ChainPlan) -> crate::plan::FusedKey {
    if env.threads.opts.active() {
        let block = chain
            .loops
            .iter()
            .enumerate()
            .map(|(pos, spec)| env.chosen_block_size(spec, 0, plan.exec_end[pos]))
            .min()
            .unwrap_or(0)
            .max(1);
        (1, block)
    } else {
        (0, 0)
    }
}

/// Should this env run `chain` fused? `On` fuses whenever the chain has
/// a fusable group; `Auto` additionally asks the profit arm
/// ([`op2_model::classify_fused`]): elided intermediate traffic priced
/// against the exchanged payload whose overlap the fused executor
/// forgoes. Builds (and caches) the fused schedule as a side effect —
/// the subsequent [`run_chain_fused`] lookup is a hash hit.
fn fuse_wanted(env: &mut RankEnv<'_>, chain: &ChainSpec) -> bool {
    let plan = crate::plan::plan_for(env, chain, false);
    let key = fused_key(env, chain, &plan);
    let (fc, _) = plan.fused_chain(env.layout, env.dom, chain, key);
    if fc.fused_pieces == 0 {
        return false;
    }
    match env.fuse {
        crate::env::FuseMode::Off => false,
        crate::env::FuseMode::On => true,
        crate::env::FuseMode::Auto => {
            let overlap_loss_s = plan.recv_bytes as f64 * op2_model::MEM_S_PER_BYTE;
            op2_model::classify_fused(fc.elided_bytes, overlap_loss_s, op2_model::MEM_S_PER_BYTE)
                .fuse
        }
    }
}

/// Algorithm 2 with **cross-loop kernel fusion**: the grouped multi-level
/// exchange of [`run_chain`], then the chain executed through its fused
/// whole-chain [`op2_core::Schedule`] — adjacent fusable loops run every
/// member kernel back-to-back per element, and intermediates whose every
/// access lies inside one group live in per-worker scratch instead of
/// their dats (their memory is never touched; see
/// [`op2_core::ChainSpec::with_scratch`]).
///
/// Latency trade, documented: the fused executor waits out the grouped
/// exchange **before** running the schedule — per-element interleaving
/// has no per-loop core phase to overlap with the messages. `Auto` mode
/// prices exactly this loss against the elided traffic.
///
/// Elided dats keep their pre-chain memory contents and are marked
/// validity-0 (contents unspecified — the `with_scratch` contract), and
/// are *not* dirty-marked for checkpointing: rollback restores the same
/// untouched bytes, and replay re-fuses deterministically.
pub fn run_chain_fused(env: &mut RankEnv<'_>, chain: &ChainSpec) -> Result<(), RuntimeError> {
    if env.ckpt_skip_chain() {
        return Ok(());
    }
    let t0 = std::time::Instant::now();
    let plan = crate::plan::plan_for(env, chain, false);
    assert!(
        plan.depth <= env.layout.depth,
        "chain `{}` needs {} halo layers but the layout was built with {}",
        chain.name,
        plan.depth,
        env.layout.depth
    );
    let key = fused_key(env, chain, &plan);
    let (fc, _) = plan.fused_chain(env.layout, env.dom, chain, key);
    env.plans.stats.fused_pieces += fc.fused_pieces;
    env.plans.stats.elided_bytes += fc.elided_bytes;

    // Validity pre-simulation, as in the tiled executor: requirements
    // checked in loop order against the post-wait validity, produces
    // applied as the simulation advances. The fused interleaving
    // preserves exactly the per-location cross-loop order the legality
    // analysis admitted, so loop-order simulation is faithful.
    let mut valid = env.valid.clone();
    for &(d, depth) in &plan.import {
        valid[d.idx()] = valid[d.idx()].max(depth);
    }
    for (pos, spec) in chain.loops.iter().enumerate() {
        for &(d, req) in &plan.reqs[pos] {
            assert!(
                valid[d.idx()] >= req,
                "rank {}: fused chain `{}` loop `{}` needs dat `{}` valid to {req}, have {}",
                env.rank,
                chain.name,
                spec.name,
                env.dom.dat(d).name,
                valid[d.idx()],
            );
        }
        for &(d, v) in &plan.produces[pos] {
            valid[d.idx()] = v;
        }
    }

    let mut rec = env.exchange_planned(&plan);
    // No core overlap (see above): wait first, then the whole chain.
    env.exchange_wait_planned(&plan, &mut rec)?;
    env.exec_chain_schedule(chain, &fc.sched, Some(&plan));

    // Validity transitions — then elided intermediates drop to 0: their
    // memory was never written, their contents are unspecified by the
    // `with_scratch` contract.
    env.valid = valid;
    for &d in &fc.elided {
        env.valid[d.idx()] = 0;
    }
    for per_loop in &plan.produces {
        for &(d, _) in per_loop {
            if !fc.elided.contains(&d) {
                env.ckpt.note_write(d.idx());
            }
        }
    }

    env.trace.chains.push(ChainRec {
        name: chain.name.clone(),
        per_loop: plan.exec_end.iter().map(|&r| (0, r)).collect(),
        d_exchanged: plan.import.len(),
        depth: plan.depth,
        exch: rec,
        stale_reads: 0,
        wall_ns: t0.elapsed().as_nanos() as u64,
    });
    env.boundary(BoundaryKind::Chain);
    env.ckpt_chain_done();
    Ok(())
}

/// The original Algorithm 2 executor with **inline analysis** — import
/// depths, core depths and execute ranges re-derived on every call, and
/// the exchange packed through the per-call segment filter. Kept as the
/// reference path: property tests assert the planned executor is
/// bitwise-equal to this one on random meshes.
pub fn run_chain_unplanned(env: &mut RankEnv<'_>, chain: &ChainSpec) -> Result<(), RuntimeError> {
    run_chain_unplanned_mode(env, chain, false)
}

/// Relaxed-mode companion of [`run_chain_unplanned`].
pub fn run_chain_unplanned_relaxed(
    env: &mut RankEnv<'_>,
    chain: &ChainSpec,
) -> Result<(), RuntimeError> {
    run_chain_unplanned_mode(env, chain, true)
}

fn run_chain_unplanned_mode(
    env: &mut RankEnv<'_>,
    chain: &ChainSpec,
    relaxed: bool,
) -> Result<(), RuntimeError> {
    if env.ckpt_skip_chain() {
        return Ok(());
    }
    let t0 = std::time::Instant::now();
    let depth = chain.max_halo_layers();
    assert!(
        depth <= env.layout.depth,
        "chain `{}` needs {depth} halo layers but the layout was built \
         with {}",
        chain.name,
        env.layout.depth
    );
    let exch = if relaxed {
        chain_import_depths_relaxed(env, chain)
    } else {
        chain_import_depths(env, chain)
    };

    // Grouped message per neighbour (lines 5-7 of Alg 2).
    let mut rec = env.exchange(&exch, true);

    // Core of every loop while the exchange is in flight (lines 8-12).
    let cdepth = if relaxed {
        vec![1usize; chain.len()]
    } else {
        op2_core::chain::core_depths(&chain.sigs())
    };
    let mut gbls: Vec<Vec<f64>> = Vec::new();
    for (pos, spec) in chain.loops.iter().enumerate() {
        debug_assert!(!spec.has_reduction());
        let core_end = env.layout.sets[spec.set.idx()].core_end(cdepth[pos] - 1);
        gbls.clear();
        gbls.extend(spec.gbls.iter().map(|g| g.init.clone()));
        env.exec_range(spec, 0, core_end, &mut gbls);
    }

    // Wait (line 13).
    env.exchange_wait(&exch, true, &mut rec)?;

    // Halo regions in loop order (lines 14-18).
    let mut per_loop = Vec::with_capacity(chain.len());
    let mut stale_reads = 0usize;
    for (pos, spec) in chain.loops.iter().enumerate() {
        let ext = chain.halo_ext[pos];
        let sig = spec.sig();
        for d in sig.dats() {
            if let Some((mode, indirect)) = sig.access_of(d) {
                let req = read_requirement(mode, indirect, ext);
                if (env.valid[d.idx()] as usize) < req {
                    if relaxed {
                        stale_reads += 1;
                    } else {
                        return Err(RuntimeError::Validity {
                            rank: env.rank,
                            chain: chain.name.clone(),
                            loop_name: spec.name.clone(),
                            dat: env.dom.dat(d).name.clone(),
                            need: req as u8,
                            have: env.valid[d.idx()],
                        });
                    }
                }
            }
        }
        let sl = &env.layout.sets[spec.set.idx()];
        let core_end = sl.core_end(cdepth[pos] - 1);
        let exec_end = sl.exec_end(ext);
        gbls.clear();
        gbls.extend(spec.gbls.iter().map(|g| g.init.clone()));
        env.exec_range(spec, core_end, exec_end, &mut gbls);
        per_loop.push((core_end, exec_end - core_end));
        for d in sig.dats() {
            if let Some((mode, indirect)) = sig.access_of(d) {
                if let Some(v) = produced_validity(mode, indirect, ext) {
                    env.valid[d.idx()] = v as u8;
                    env.ckpt.note_write(d.idx());
                }
            }
        }
        env.boundary(BoundaryKind::ChainLoop);
    }

    env.trace.chains.push(ChainRec {
        name: chain.name.clone(),
        per_loop,
        d_exchanged: exch.len(),
        depth,
        exch: rec,
        stale_reads,
        wall_ns: t0.elapsed().as_nanos() as u64,
    });
    env.boundary(BoundaryKind::Chain);
    env.ckpt_chain_done();
    Ok(())
}

/// Algorithm 2 combined with §2.2's shared-memory sparse tiling: the
/// grouped multi-level exchange of [`run_chain`], then the rank's entire
/// owned-plus-halo region executed **tile by tile** with the Luporini
/// growth schedule instead of loop-by-loop sweeps — each tile's working
/// set stays cache-resident across the whole chain.
///
/// Latency hiding mirrors [`run_chain`]'s prewait core at tile
/// granularity: the plan's **core tiles** — tiles whose footprint sits
/// inside every loop's core region, closed under demotion against
/// earlier post tiles (see [`op2_core::tiling::overlap_core_tiles`]) —
/// execute while the grouped exchange is in flight; the remaining tiles
/// run after the wait. This mirrors the paper's two levels: MPI-rank =
/// outer tile, `n_tiles` inner tiles per rank. With threading active the
/// plan's leveled tile schedule runs same-level (provably conflict-free)
/// tiles concurrently on the rank's pool — still bitwise identical to
/// the sequential tile-by-tile walk.
pub fn run_chain_tiled(
    env: &mut RankEnv<'_>,
    chain: &ChainSpec,
    n_tiles: usize,
) -> Result<(), RuntimeError> {
    if env.ckpt_skip_chain() {
        return Ok(());
    }
    let t0 = std::time::Instant::now();
    // Inspector: cached chain plan, plus its lazily-built tile schedule
    // for this tile count (the expensive growth inspection runs once).
    let plan = crate::plan::plan_for(env, chain, false);
    assert!(
        plan.depth <= env.layout.depth,
        "chain `{}` needs {} halo layers but the layout was built with {}",
        chain.name,
        plan.depth,
        env.layout.depth
    );
    let (tc, built) = plan.tile_schedule(env.layout, chain, n_tiles);
    if built {
        env.plans.stats.tile_misses += 1;
    } else {
        env.plans.stats.tile_hits += 1;
    }

    // Fusion over the tile lowering: the cached tile schedule put
    // through `Schedule::fuse` (key `(2, n_tiles)`). Only tiles whose
    // per-member slices line up fuse; `On` takes any fusable group,
    // `Auto` asks the profit arm. The fused variant runs the *whole*
    // schedule after the wait — the core/post overlap split does not
    // compose with per-element interleaving.
    let fused = if env.fuse != crate::env::FuseMode::Off {
        let (fc, _) = plan.fused_chain(env.layout, env.dom, chain, (2, n_tiles));
        let want = fc.fused_pieces > 0
            && match env.fuse {
                crate::env::FuseMode::On => true,
                crate::env::FuseMode::Auto => op2_model::classify_fused(
                    fc.elided_bytes,
                    plan.recv_bytes as f64 * op2_model::MEM_S_PER_BYTE,
                    op2_model::MEM_S_PER_BYTE,
                )
                .fuse,
                crate::env::FuseMode::Off => false,
            };
        want.then_some(fc)
    } else {
        None
    };

    // Validity requirements are those of run_chain's halo phase,
    // checked against the validity each loop observes *in loop order* —
    // earlier loops' produced validity satisfies later loops' reads,
    // and the tiled interleaving preserves exactly those cross-loop
    // dependences by construction (the growth stamps order every
    // consumer tile after its producers). The check runs before the
    // exchange, so it simulates the wait's raise from the plan's import
    // list — identical to the post-wait validity.
    let mut valid = env.valid.clone();
    for &(d, depth) in &plan.import {
        valid[d.idx()] = valid[d.idx()].max(depth);
    }
    for (pos, spec) in chain.loops.iter().enumerate() {
        for &(d, req) in &plan.reqs[pos] {
            assert!(
                valid[d.idx()] >= req,
                "rank {}: tiled chain `{}` loop `{}` needs dat `{}` valid to {req}, have {}",
                env.rank,
                chain.name,
                spec.name,
                env.dom.dat(d).name,
                valid[d.idx()],
            );
        }
        for &(d, v) in &plan.produces[pos] {
            valid[d.idx()] = v;
        }
    }

    let mut rec = env.exchange_planned(&plan);

    if let Some(fc) = &fused {
        env.plans.stats.fused_pieces += fc.fused_pieces;
        env.plans.stats.elided_bytes += fc.elided_bytes;
        env.exchange_wait_planned(&plan, &mut rec)?;
        env.exec_chain_schedule(chain, &fc.sched, Some(&plan));
    } else {
        // Core tiles while the exchange is in flight — they read nothing
        // the wait delivers, and the core/post split preserves the full
        // plan's conflict order, so the result stays bitwise identical.
        if tc.n_core_tiles > 0 {
            env.exec_chain_schedule(chain, &tc.core, Some(&plan));
            env.plans.stats.overlap_tiles += tc.n_core_tiles as u64;
        }

        env.exchange_wait_planned(&plan, &mut rec)?;

        // Remaining tiles after the wait — same-level tiles run
        // concurrently on the rank's pool when threading is active,
        // sequentially (bitwise identical) otherwise.
        if tc.n_core_tiles < tc.tiles.n_tiles {
            env.exec_chain_schedule(chain, &tc.post, Some(&plan));
        }
    }

    // Validity transitions, as in run_chain; fusion-elided intermediates
    // drop to 0 (memory untouched, contents unspecified) and are not
    // dirty-marked.
    env.valid = valid;
    let elided: &[DatId] = fused.as_ref().map(|fc| fc.elided.as_slice()).unwrap_or(&[]);
    for &d in elided {
        env.valid[d.idx()] = 0;
    }
    for per_loop in &plan.produces {
        for &(d, _) in per_loop {
            if !elided.contains(&d) {
                env.ckpt.note_write(d.idx());
            }
        }
    }

    env.trace.chains.push(ChainRec {
        name: chain.name.clone(),
        per_loop: plan.exec_end.iter().map(|&r| (0, r)).collect(),
        d_exchanged: plan.import.len(),
        depth: plan.depth,
        exch: rec,
        stale_reads: 0,
        wall_ns: t0.elapsed().as_nanos() as u64,
    });
    env.boundary(BoundaryKind::Chain);
    env.ckpt_chain_done();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_core::{AccessMode as M, GblDecl};

    fn noop(_: &op2_core::Args<'_>) {}

    #[test]
    fn requirements_match_derivation() {
        assert_eq!(read_requirement(M::Read, true, 0), 1);
        assert_eq!(read_requirement(M::Read, true, 2), 2);
        assert_eq!(read_requirement(M::Read, false, 1), 1);
        assert_eq!(read_requirement(M::Inc, true, 1), 0);
        assert_eq!(read_requirement(M::Inc, true, 3), 2);
        assert_eq!(read_requirement(M::Write, true, 2), 0);
        assert_eq!(read_requirement(M::Rw, true, 2), 2);
    }

    #[test]
    fn produced_validity_matches_derivation() {
        assert_eq!(produced_validity(M::Read, true, 2), None);
        assert_eq!(produced_validity(M::Inc, true, 2), Some(1));
        assert_eq!(produced_validity(M::Inc, true, 1), Some(0));
        assert_eq!(produced_validity(M::Write, false, 1), Some(1));
        assert_eq!(produced_validity(M::Rw, true, 3), Some(2));
    }

    #[test]
    fn standalone_extent_rules() {
        let mut dom = op2_core::Domain::new();
        let nodes = dom.decl_set("nodes", 3);
        let edges = dom.decl_set("edges", 2);
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2]).unwrap();
        let x = dom.decl_dat_zeros("x", nodes, 1);
        let inc = LoopSpec::new(
            "inc",
            edges,
            vec![Arg::dat_indirect(x, e2n, 0, M::Inc)],
            noop,
        );
        assert_eq!(standalone_extent(&inc), 1);
        let rd = LoopSpec::new(
            "rd",
            edges,
            vec![Arg::dat_indirect(x, e2n, 0, M::Read)],
            noop,
        );
        assert_eq!(standalone_extent(&rd), 0);
        let direct = LoopSpec::new("dw", nodes, vec![Arg::dat_direct(x, M::Write)], noop);
        assert_eq!(standalone_extent(&direct), 0);
        let red = LoopSpec::with_gbls(
            "red",
            nodes,
            vec![Arg::dat_direct(x, M::Read), Arg::gbl(0, M::Inc)],
            vec![GblDecl::reduction(1)],
            noop,
        );
        assert_eq!(standalone_extent(&red), 0);
    }
}
