//! Deterministic fault injection for the rank runtime.
//!
//! A [`FaultPlan`] is a pure function from (seed, src, dst, seq) to a
//! *send schedule*: the exact list of delivery attempts — drops,
//! corrupted copies, duplicates, injected delays — that the transport
//! will perform for that logical message. Because the schedule depends
//! only on the plan's seed and the message coordinates (never on wall
//! clock or thread interleaving), replaying the same seeded plan over
//! the same program produces bit-identical traffic and bit-identical
//! [`CommCounters`](crate::comm::CommCounters), which is what the
//! fault-determinism property test asserts.
//!
//! Besides link-level faults, a plan can name *boundary actions*:
//! crash or stall a specific rank when it reaches a configured loop /
//! chain boundary. Crashes are delivered as panics from the executor's
//! boundary hook and contained by the harness's `catch_unwind`; stalls
//! are plain sleeps, long enough to trip peers' receive deadlines when
//! configured that way.
//!
//! Every schedule for a non-blackholed link terminates in at least one
//! [`Disposition::Deliver`]: injected drops and corruptions model a
//! lossy wire *with* a sender-side retransmit timer, so they delay
//! progress (and bump retry counters) but never lose a message
//! permanently. Permanent loss is expressed explicitly via
//! [`FaultSpec::blackhole`], and rank death via [`FaultSpec::crash`].

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// What happens to one delivery attempt of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The attempt arrives intact.
    Deliver,
    /// The attempt vanishes on the wire (a retransmission follows).
    Drop,
    /// The attempt arrives with flipped payload bits (checksum will
    /// fail at the receiver; a retransmission follows).
    Corrupt,
}

/// One delivery attempt in a [`SendSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Fate of this attempt.
    pub disposition: Disposition,
    /// Injected wire latency, if any (enforced at the receiver).
    pub delay: Option<Duration>,
}

/// The full, pre-decided fate of one logical message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendSchedule {
    /// Attempts in wire order. Empty means the link is blackholed.
    pub attempts: Vec<Attempt>,
}

/// Where in the executed program a boundary action fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// After finishing the `index`-th `par_loop` (Alg 1 path).
    Loop,
    /// After finishing the `index`-th loop-chain (Alg 2 path).
    Chain,
    /// After finishing the `index`-th loop *inside* a chain.
    ChainLoop,
}

/// A specific boundary: the `index`-th occurrence of `kind` on a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Boundary {
    /// Kind of boundary counted.
    pub kind: BoundaryKind,
    /// Zero-based occurrence count on the rank in question.
    pub index: u64,
}

impl Boundary {
    /// Convenience constructor.
    pub fn new(kind: BoundaryKind, index: u64) -> Self {
        Boundary { kind, index }
    }
}

/// What a rank does when it reaches a configured boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryAction {
    /// Panic (the harness contains it and notifies survivors).
    Crash,
    /// Sleep for the given duration before continuing.
    Stall(Duration),
}

/// A crash with a *fire budget*: the rank panics at the named boundary
/// at most `fires` times, then the site goes quiet. This is the
/// recoverable-fault shape the supervised runtime is built around — a
/// transient rank death that does **not** recur after rollback replays
/// the same boundary coordinates — whereas [`FaultSpec::crash`] entries
/// fire on every crossing and therefore model a permanent fault (the
/// recovery-budget-exhaustion path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSite {
    /// The rank that dies.
    pub rank: u32,
    /// Where it dies.
    pub boundary: Boundary,
    /// How many times the site fires before going quiet (0 = never).
    pub fires: u32,
}

/// Declarative description of the faults to inject. All probabilities
/// are in permille (0–1000) and are rolled independently per message /
/// attempt from a stream derived from `seed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for every probabilistic decision the plan makes.
    pub seed: u64,
    /// Probability (‰) that a delivery attempt is dropped.
    pub drop_permille: u16,
    /// Probability (‰) that a message is delivered twice.
    pub dup_permille: u16,
    /// Probability (‰) that a delivery attempt arrives corrupted.
    pub corrupt_permille: u16,
    /// Probability (‰) that a delivered copy carries extra latency.
    pub delay_permille: u16,
    /// Upper bound for injected latency (uniform in `1..=max_delay`).
    pub max_delay: Duration,
    /// Cap on consecutive faulted attempts per message, after which the
    /// final attempt is forced to deliver. Keeps every schedule finite
    /// and every non-blackholed message eventually delivered.
    pub max_faults_per_msg: u8,
    /// Ranks to crash (panic) at a boundary: `(rank, boundary)`.
    /// Unlimited — fires on *every* crossing of the coordinate,
    /// including replays after a rollback (a permanent fault). For
    /// transient, recoverable crashes use [`FaultSpec::crash_sites`].
    pub crash: Vec<(u32, Boundary)>,
    /// Fire-limited crash sites (see [`CrashSite`]): the plan tracks how
    /// often each has fired, so a supervised replay that re-crosses the
    /// same boundary does not die again.
    pub crash_sites: Vec<CrashSite>,
    /// Ranks to stall at a boundary: `(rank, boundary, how_long)`.
    pub stall: Vec<(u32, Boundary, Duration)>,
    /// Ordered links `(src, dst)` that lose *everything* — permanent
    /// loss, unlike drop_permille which is always retransmitted.
    pub blackhole: Vec<(u32, u32)>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            drop_permille: 0,
            dup_permille: 0,
            corrupt_permille: 0,
            delay_permille: 0,
            max_delay: Duration::from_micros(200),
            max_faults_per_msg: 2,
            crash: Vec::new(),
            crash_sites: Vec::new(),
            stall: Vec::new(),
            blackhole: Vec::new(),
        }
    }
}

impl FaultSpec {
    /// A moderately hostile network: 10% drops, 10% duplicates, 10%
    /// corruption, 20% delayed up to 200µs. No crashes or blackholes —
    /// every message still arrives, so results must be exact.
    pub fn chaos(seed: u64) -> Self {
        FaultSpec {
            seed,
            drop_permille: 100,
            dup_permille: 100,
            corrupt_permille: 100,
            delay_permille: 200,
            ..FaultSpec::default()
        }
    }

    /// Add a crash of `rank` at `boundary` (builder style).
    pub fn with_crash(mut self, rank: u32, boundary: Boundary) -> Self {
        self.crash.push((rank, boundary));
        self
    }

    /// Add a stall of `rank` at `boundary` for `dur` (builder style).
    pub fn with_stall(mut self, rank: u32, boundary: Boundary, dur: Duration) -> Self {
        self.stall.push((rank, boundary, dur));
        self
    }

    /// Add a crash of `rank` at `boundary` that fires exactly once
    /// (builder style) — the transient-fault shape supervised recovery
    /// is tested against.
    pub fn with_crash_site(mut self, rank: u32, boundary: Boundary) -> Self {
        self.crash_sites.push(CrashSite {
            rank,
            boundary,
            fires: 1,
        });
        self
    }
}

/// SplitMix64 step — the same generator the `rand` shim uses, so the
/// whole workspace shares one deterministic stream construction.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A compiled, shareable fault plan (wrap in `Arc` and hand to
/// [`CommWorld::with_faults`](crate::comm::CommWorld::with_faults)).
///
/// Link-fault schedules remain pure functions of the coordinates; the
/// only mutable state is the per-site fire counter for
/// [`FaultSpec::crash_sites`], which must persist across supervised
/// restart attempts (the same `Arc<FaultPlan>` is handed to every
/// attempt) so a transient crash does not recur forever.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// How many times each fire-limited crash site has fired, keyed by
    /// its (rank, boundary) coordinate.
    fired: Mutex<HashMap<(u32, Boundary), u32>>,
}

impl Clone for FaultPlan {
    /// Cloning resets the fire counters: a clone is a fresh compilation
    /// of the same spec, not a live view of another plan's history.
    fn clone(&self) -> Self {
        FaultPlan::new(self.spec.clone())
    }
}

impl FaultPlan {
    /// Compile a spec into a plan.
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan {
            spec,
            fired: Mutex::new(HashMap::new()),
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Derive the deterministic decision stream for one message.
    fn stream(&self, src: u32, dst: u32, seq: u64) -> u64 {
        // Mix the coordinates so that nearby (src,dst,seq) triples land
        // far apart in the stream space.
        let mut s = self.spec.seed ^ 0x51ed_270b_9f9c_4cb1;
        s = s
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add((src as u64) << 32 | dst as u64);
        s = s.wrapping_mul(0x100_0000_01b3).wrapping_add(seq);
        // One warm-up step decorrelates similar seeds.
        splitmix64(&mut s);
        s
    }

    /// Roll a permille probability from the stream.
    fn roll(state: &mut u64, permille: u16) -> bool {
        permille > 0 && splitmix64(state) % 1000 < permille as u64
    }

    /// Injected delay for one attempt, if the delay roll fires.
    fn maybe_delay(&self, state: &mut u64) -> Option<Duration> {
        if !Self::roll(state, self.spec.delay_permille) {
            return None;
        }
        let span = self.spec.max_delay.as_micros().max(1) as u64;
        Some(Duration::from_micros(1 + splitmix64(state) % span))
    }

    /// The full fate of logical message `seq` from `src` to `dst`.
    ///
    /// Pure in (seed, src, dst, seq): calling this twice returns the
    /// identical schedule. Non-blackholed schedules always contain at
    /// least one [`Disposition::Deliver`].
    pub fn send_schedule(&self, src: u32, dst: u32, seq: u64) -> SendSchedule {
        if self.spec.blackhole.contains(&(src, dst)) {
            return SendSchedule {
                attempts: Vec::new(),
            };
        }
        let mut state = self.stream(src, dst, seq);
        let mut attempts = Vec::with_capacity(2);
        // Faulted attempts (each one models a retransmit-timer firing
        // on the sender), capped so the schedule stays finite.
        for _ in 0..self.spec.max_faults_per_msg {
            if Self::roll(&mut state, self.spec.drop_permille) {
                attempts.push(Attempt {
                    disposition: Disposition::Drop,
                    delay: None,
                });
            } else if Self::roll(&mut state, self.spec.corrupt_permille) {
                let delay = self.maybe_delay(&mut state);
                attempts.push(Attempt {
                    disposition: Disposition::Corrupt,
                    delay,
                });
            } else {
                break;
            }
        }
        // The attempt that finally lands.
        let delay = self.maybe_delay(&mut state);
        attempts.push(Attempt {
            disposition: Disposition::Deliver,
            delay,
        });
        // Optional duplicate delivery of the same message.
        if Self::roll(&mut state, self.spec.dup_permille) {
            let delay = self.maybe_delay(&mut state);
            attempts.push(Attempt {
                disposition: Disposition::Deliver,
                delay,
            });
        }
        SendSchedule { attempts }
    }

    /// Action (if any) when `rank` reaches its `index`-th boundary of
    /// `kind`. Crash takes precedence over stall if both are named.
    ///
    /// Fire-limited crash sites are *consumed* by this query: each call
    /// that resolves to a site crash spends one unit of its budget, so
    /// a supervised replay crossing the same coordinate again sees the
    /// site exhausted and proceeds.
    pub fn boundary_action(&self, rank: u32, kind: BoundaryKind, index: u64) -> Option<BoundaryAction> {
        let b = Boundary { kind, index };
        if self.spec.crash.iter().any(|&(r, cb)| r == rank && cb == b) {
            return Some(BoundaryAction::Crash);
        }
        if let Some(site) = self
            .spec
            .crash_sites
            .iter()
            .find(|s| s.rank == rank && s.boundary == b)
        {
            let mut fired = self.fired.lock().unwrap_or_else(|p| p.into_inner());
            let count = fired.entry((rank, b)).or_insert(0);
            if *count < site.fires {
                *count += 1;
                return Some(BoundaryAction::Crash);
            }
        }
        self.spec
            .stall
            .iter()
            .find(|&&(r, sb, _)| r == rank && sb == b)
            .map(|&(_, _, dur)| BoundaryAction::Stall(dur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        let plan = FaultPlan::new(FaultSpec::chaos(42));
        for seq in 1..500u64 {
            assert_eq!(
                plan.send_schedule(0, 1, seq),
                plan.send_schedule(0, 1, seq),
                "seq {seq}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultSpec::chaos(1));
        let b = FaultPlan::new(FaultSpec::chaos(2));
        let same = (1..200u64)
            .filter(|&s| a.send_schedule(0, 1, s) == b.send_schedule(0, 1, s))
            .count();
        assert!(same < 200, "seeds produced identical plans");
    }

    #[test]
    fn every_schedule_terminates_in_delivery() {
        let plan = FaultPlan::new(FaultSpec {
            drop_permille: 900,
            corrupt_permille: 900,
            dup_permille: 900,
            ..FaultSpec::chaos(7)
        });
        for seq in 1..300u64 {
            let s = plan.send_schedule(2, 3, seq);
            assert!(
                s.attempts
                    .iter()
                    .any(|a| a.disposition == Disposition::Deliver),
                "seq {seq} never delivers: {s:?}"
            );
            assert!(s.attempts.len() <= 2 + 2); // faults cap + deliver + dup
        }
    }

    #[test]
    fn blackhole_schedules_are_empty() {
        let spec = FaultSpec {
            blackhole: vec![(0, 1)],
            ..FaultSpec::chaos(3)
        };
        let plan = FaultPlan::new(spec);
        assert!(plan.send_schedule(0, 1, 1).attempts.is_empty());
        assert!(!plan.send_schedule(1, 0, 1).attempts.is_empty());
    }

    #[test]
    fn crash_sites_exhaust_their_fire_budget() {
        let spec =
            FaultSpec::default().with_crash_site(2, Boundary::new(BoundaryKind::ChainLoop, 3));
        let plan = FaultPlan::new(spec);
        // First crossing fires, second is quiet: the replay survives.
        assert_eq!(
            plan.boundary_action(2, BoundaryKind::ChainLoop, 3),
            Some(BoundaryAction::Crash)
        );
        assert_eq!(plan.boundary_action(2, BoundaryKind::ChainLoop, 3), None);
        // Other coordinates never fire, and a clone starts fresh.
        assert_eq!(plan.boundary_action(2, BoundaryKind::ChainLoop, 2), None);
        let fresh = plan.clone();
        assert_eq!(
            fresh.boundary_action(2, BoundaryKind::ChainLoop, 3),
            Some(BoundaryAction::Crash)
        );
    }

    #[test]
    fn boundary_actions_resolve() {
        let spec = FaultSpec::default()
            .with_crash(1, Boundary::new(BoundaryKind::Chain, 2))
            .with_stall(0, Boundary::new(BoundaryKind::Loop, 4), Duration::from_millis(5));
        let plan = FaultPlan::new(spec);
        assert_eq!(
            plan.boundary_action(1, BoundaryKind::Chain, 2),
            Some(BoundaryAction::Crash)
        );
        assert_eq!(plan.boundary_action(1, BoundaryKind::Chain, 1), None);
        assert_eq!(plan.boundary_action(0, BoundaryKind::Chain, 2), None);
        assert_eq!(
            plan.boundary_action(0, BoundaryKind::Loop, 4),
            Some(BoundaryAction::Stall(Duration::from_millis(5)))
        );
    }
}
