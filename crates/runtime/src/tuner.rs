//! Model-driven adaptive backend dispatch — §3.2 as a live control loop.
//!
//! The paper closes (§5) observing that deciding *when* to enable the CA
//! back-end "would be the challenge in real-world applications". The
//! [`Tuner`] answers it online: the first time a chain is seen it runs
//! the chain *flattened* as standard Alg 1 loops, timing each to measure
//! the per-iteration cost `g`, assembles the chain's Table 2 components
//! from this rank's layout, agrees on the critical-path values across
//! ranks with a max-allreduce (the same max-over-ranks the offline
//! [`op2_model::chain_components`] takes), classifies the chain with
//! [`op2_model::classify`], and dispatches every later invocation to the
//! winning backend — standard per-loop OP2, the CA chain executor, or
//! the sparse-tiled CA executor.
//!
//! Determinism: every scalar entering the decision is allreduced, so all
//! ranks pick the same backend — no rank can diverge into a different
//! communication pattern (which would deadlock the rendezvous). Measured
//! wall-clock stays inside the tuner and its [`TunerRec`]; the
//! loop/chain trace records remain replay-deterministic.
//!
//! The override env var `OP2_TUNER=auto|op2|ca|tiled` (see
//! [`TunerMode::from_env`]) forces a backend, bypassing calibration.

use crate::env::RankEnv;
use crate::error::RuntimeError;
use crate::exec::{run_chain, run_chain_tiled, run_loop};
use crate::plan::chain_signature;
use crate::trace::TunerRec;
use op2_core::access::GblOp;
use op2_core::ChainSpec;
use op2_model::components::ChainShape;
use op2_model::{
    classify, shape_from_sigs, t_ca_chain, t_op2_chain, CaChainInput, ChainComponents, LoopInput,
    Machine,
};
use std::collections::HashMap;
use std::time::Instant;

/// Minimum traced exchange traffic before the measured per-byte pack
/// cost replaces the model constant. Below this, the per-byte figure is
/// mostly fixed per-exchange overhead and would mis-price Eq 3.
pub const PACK_CAL_MIN_BYTES: usize = 64 << 10;

/// Which executor a chain is dispatched to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// Flattened: each loop as standard Alg 1 with per-loop exchanges.
    Op2,
    /// The CA chain executor (Alg 2, grouped multi-level exchange).
    #[default]
    Ca,
    /// CA plus §2.2 sparse tiling within the rank.
    Tiled,
}

/// Dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunerMode {
    /// Calibrate per chain, decide from the model (the default).
    #[default]
    Auto,
    /// Always flatten to standard Alg 1 loops.
    ForceOp2,
    /// Always run the CA chain executor.
    ForceCa,
    /// Always run the tiled CA executor.
    ForceTiled,
}

impl TunerMode {
    /// Parse an `OP2_TUNER`-style override: `auto` (or empty/absent) /
    /// `op2` / `ca` / `tiled`. Anything else is a typed
    /// [`ConfigError::Tuner`] — a silent fallback would mask a typo'd
    /// override.
    pub fn parse(raw: Option<&str>) -> Result<TunerMode, crate::error::ConfigError> {
        crate::env::parse_knob(
            raw,
            |v| match v {
                "" | "auto" => Some(TunerMode::Auto),
                "op2" => Some(TunerMode::ForceOp2),
                "ca" => Some(TunerMode::ForceCa),
                "tiled" => Some(TunerMode::ForceTiled),
                _ => None,
            },
            |value| crate::error::ConfigError::Tuner { value },
        )
        .map(|m| m.unwrap_or_default())
    }

    /// [`TunerMode::parse`] on the `OP2_TUNER` environment variable.
    pub fn try_from_env() -> Result<TunerMode, crate::error::ConfigError> {
        let raw = std::env::var("OP2_TUNER").ok();
        TunerMode::parse(raw.as_deref())
    }

    /// [`TunerMode::try_from_env`], panicking with the typed error's
    /// message on a malformed value (the non-`Result` entry point the
    /// drivers use, mirroring [`crate::threads::Threading::from_env`]).
    pub fn from_env() -> TunerMode {
        TunerMode::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Per-rank adaptive dispatcher. Each rank owns one (decisions are
/// rank-agreed by construction, so the per-rank maps stay identical).
pub struct Tuner {
    mach: Machine,
    mode: TunerMode,
    /// Tile count for the tiled backend (forced or chosen).
    n_tiles: usize,
    /// When set, auto mode may promote a model-approved CA chain to the
    /// tiled executor. The §3.2 model carries no cache-locality term, so
    /// tiling is an explicit opt-in rather than a modelled choice.
    tile_auto: bool,
    /// Test hook: pin the per-iteration cost `g` instead of measuring
    /// it, making the calibration decision a pure function of the mesh,
    /// partition and machine (comparable against `profit::classify`).
    fixed_g: Option<f64>,
    /// Decided backend per chain signature.
    decisions: HashMap<u64, Backend>,
}

impl Tuner {
    /// A tuner for `mach` with the given dispatch policy.
    pub fn new(mach: Machine, mode: TunerMode) -> Tuner {
        Tuner {
            mach,
            mode,
            n_tiles: 4,
            tile_auto: false,
            fixed_g: None,
            decisions: HashMap::new(),
        }
    }

    /// Use `n_tiles` intra-rank tiles and let auto mode promote
    /// model-approved CA chains to the tiled executor.
    pub fn with_tiles(mut self, n_tiles: usize) -> Tuner {
        self.n_tiles = n_tiles;
        self.tile_auto = true;
        self
    }

    /// Pin the per-iteration compute cost (seconds) instead of measuring
    /// it — test hook for deterministic decisions.
    pub fn with_fixed_g(mut self, g: f64) -> Tuner {
        self.fixed_g = Some(g);
        self
    }

    /// The decided backend for `chain`, if calibration has run.
    pub fn decision(&self, chain: &ChainSpec) -> Option<Backend> {
        self.decisions
            .get(&chain_signature(chain, false))
            .copied()
    }

    /// Execute `chain` through the adaptive dispatcher: forced modes go
    /// straight to their backend; auto mode calibrates on first sight
    /// (measuring the chain as flattened Alg 1 loops) and dispatches
    /// every repeat to the decided backend.
    pub fn run_chain(
        &mut self,
        env: &mut RankEnv<'_>,
        chain: &ChainSpec,
    ) -> Result<(), RuntimeError> {
        match self.mode {
            TunerMode::ForceOp2 => run_flattened(env, chain),
            TunerMode::ForceCa => run_chain(env, chain),
            TunerMode::ForceTiled => run_chain_tiled(env, chain, self.n_tiles),
            TunerMode::Auto => {
                let sig = chain_signature(chain, false);
                match self.decisions.get(&sig) {
                    Some(&b) => self.dispatch(env, chain, b),
                    None => self.calibrate(env, chain, sig),
                }
            }
        }
    }

    fn dispatch(
        &mut self,
        env: &mut RankEnv<'_>,
        chain: &ChainSpec,
        backend: Backend,
    ) -> Result<(), RuntimeError> {
        match backend {
            Backend::Op2 => run_flattened(env, chain),
            Backend::Ca => run_chain(env, chain),
            Backend::Tiled => run_chain_tiled(env, chain, self.n_tiles),
        }
    }

    /// First sight of a chain: execute it flattened (the measurement is
    /// also a real execution — no iteration is wasted), time each loop
    /// for `g`, agree on critical-path components across ranks, classify
    /// with the §3.2 model and record the decision.
    fn calibrate(
        &mut self,
        env: &mut RankEnv<'_>,
        chain: &ChainSpec,
        sig: u64,
    ) -> Result<(), RuntimeError> {
        // Entry validity *before* any loop runs: the CA import plan the
        // model prices is the one this state would produce.
        let entry_valid: Vec<u8> = env.valid.clone();

        // Measure `g` with threading *suspended*: the model's threaded
        // extension derives the `t`-way cost as `g/t + coloring
        // overhead` from the sequential `g` — measuring with the
        // threaded executor live would count the speedup twice.
        let threading = env.threads.opts;
        env.threads.opts = crate::threads::Threading::single();
        let t0 = Instant::now();
        let mut g = Vec::with_capacity(chain.len());
        let mut failed = None;
        for spec in &chain.loops {
            let l0 = Instant::now();
            if let Err(e) = run_loop(env, spec) {
                failed = Some(e);
                break;
            }
            let dt = l0.elapsed().as_secs_f64();
            let rec = env.trace.loops.last().expect("run_loop pushed a record");
            let iters = (rec.core_iters + rec.halo_iters).max(1);
            g.push(match self.fixed_g {
                Some(fg) => fg,
                None => (dt / iters as f64).max(1e-12),
            });
        }
        let measured = t0.elapsed();
        env.threads.opts = threading;
        if let Some(e) = failed {
            return Err(e);
        }

        // Coloring cost estimate for the thread-aware model: the widest
        // schedule any loop of the chain would execute (colors = pool
        // barriers per loop). Rank-local here, allreduced below.
        let threads = threading.n_threads;
        let n_colors_local = if threads > 1 {
            chain
                .loops
                .iter()
                .zip(&chain.halo_ext)
                .map(|(spec, &ext)| {
                    let end = env.layout.sets[spec.set.idx()].exec_end(ext);
                    env.build_block_coloring(spec, 0, end).n_colors
                })
                .max()
                .unwrap_or(1)
        } else {
            1
        };

        // Measured per-barrier cost of *this rank's own pool* — an empty
        // dispatch/drain/latch round — replacing the model's baked-in
        // [`op2_model::COLOR_SYNC_S`] constant. Zero when sequential (no
        // pool, no barriers).
        let sync_local = if threads > 1 {
            crate::threads::measure_sync_s(&env.threads.pool(), 32)
        } else {
            0.0
        };

        // Tile conflict levels of the chain under the configured tile
        // count — the barrier count of the threaded-tiled executor. Only
        // priced when tiling may be chosen; building it here warms the
        // plan's tile-schedule cache for the dispatches that follow.
        let tile_levels_local = if self.tile_auto && threads > 1 {
            let plan = crate::plan::plan_for(env, chain, false);
            let (tc, _) = plan.tile_schedule(env.layout, chain, self.n_tiles);
            tc.sched.n_levels()
        } else {
            0
        };

        // Measured per-byte pack cost of this rank's traced exchanges so
        // far (the calibration run included) — replaces Eq 3's constant
        // `c` when non-degenerate. A per-byte figure extrapolated from a
        // few KiB of traffic is dominated by fixed per-exchange overhead
        // (timer reads, gather setup), so the measurement only counts
        // once enough bytes have moved. Rank-local here, allreduced
        // below.
        let (pack_ns_total, pack_bytes_total) = env
            .trace
            .loops
            .iter()
            .map(|l| &l.exch)
            .chain(env.trace.chains.iter().map(|c| &c.exch))
            .fold((0u64, 0usize), |(ns, by), e| {
                (ns + e.pack_ns, by + e.bytes)
            });
        let pack_local = if pack_bytes_total >= PACK_CAL_MIN_BYTES {
            pack_ns_total as f64 / 1e9 / pack_bytes_total as f64
        } else {
            0.0
        };

        let sigs = chain.sigs();
        // Agree on g (critical path), the color count, the measured sync
        // cost, the tile level count and the pack cost across ranks
        // before shaping, so shape and decision are rank-identical.
        let tag = env.next_tag();
        g.push(n_colors_local as f64);
        g.push(sync_local);
        g.push(tile_levels_local as f64);
        g.push(pack_local);
        env.comm.allreduce(&mut g, tag, GblOp::Max)?;
        let pack_s = g.pop().expect("pack cost appended above");
        let n_tile_levels = g.pop().expect("tile levels appended above") as usize;
        let sync_s = g.pop().expect("sync cost appended above");
        let n_colors = g.pop().expect("color count appended above") as usize;
        // A degenerate measurement (clock too coarse) falls back to the
        // model constant rather than pricing barriers as free.
        let sync_s = if sync_s > 0.0 {
            sync_s
        } else {
            op2_model::COLOR_SYNC_S
        };
        let shape = shape_from_sigs(env.dom, &chain.name, &sigs, &chain.halo_ext, &g, &|d| {
            entry_valid[d.idx()] as usize
        });
        let comp = agreed_components(env, &shape)?;
        // `g → g/t + coloring overhead`: compute shrinks with threads,
        // communication doesn't — CA turns profitable earlier on
        // threaded ranks.
        let comp = if threads > 1 {
            comp.with_threads(threads, n_colors, sync_s)
        } else {
            comp
        };
        // A degenerate measurement (no exchange traffic yet, clock too
        // coarse) keeps the model's constant `c` instead.
        let comp = if pack_s > 0.0 {
            comp.with_pack_cost(pack_s)
        } else {
            comp
        };

        let prof = classify(&self.mach, &comp);
        let backend = if !prof.enable_ca {
            Backend::Op2
        } else if self.tile_auto {
            if threads > 1 {
                // Model-driven colored-vs-tiled arm: the tiled executor
                // pays one barrier per conflict level per chain, the
                // colored one `n_colors` per loop — fewer total barriers
                // wins (tiling's locality benefit is unmodelled, so ties
                // go to tiled).
                match op2_model::choose_threaded_backend(
                    threads,
                    chain.len(),
                    n_colors,
                    n_tile_levels,
                ) {
                    op2_model::ThreadedBackend::Tiled => Backend::Tiled,
                    op2_model::ThreadedBackend::Colored => Backend::Ca,
                }
            } else {
                // Sequential ranks: tiling is a pure cache-locality
                // opt-in, exactly as before the threaded arm existed.
                Backend::Tiled
            }
        } else {
            Backend::Ca
        };
        self.decisions.insert(sig, backend);

        let t_op2 = t_op2_chain(&self.mach, &comp.op2_loops);
        let t_ca = t_ca_chain(&self.mach, &comp.ca);
        env.trace.tuner.push(TunerRec {
            job: env.job,
            chain: chain.name.clone(),
            backend,
            class: prof.class.into(),
            t_op2_pred_ns: (t_op2 * 1e9).round() as u64,
            t_ca_pred_ns: (t_ca * 1e9).round() as u64,
            t_measured_ns: measured.as_nanos() as u64,
            n_threads: threads,
            sync_ns: (sync_s * 1e9).round() as u64 * u64::from(threads > 1),
            gain_milli_pct: (prof.gain_pct * 1000.0).round() as i64,
        });
        Ok(())
    }
}

/// Standard-OP2 fallback: the chain as individual Alg 1 loops.
fn run_flattened(env: &mut RankEnv<'_>, chain: &ChainSpec) -> Result<(), RuntimeError> {
    for spec in &chain.loops {
        run_loop(env, spec)?;
    }
    Ok(())
}

/// Assemble this chain's [`ChainComponents`] with every scalar agreed
/// across ranks by max-allreduce — exactly the per-component
/// max-over-ranks that [`op2_model::chain_components`] takes over
/// [`op2_partition::HaloStats`], computed from the live [`RankLayout`]
/// instead of a pre-collected stats table.
///
/// [`RankLayout`]: op2_partition::layout::RankLayout
fn agreed_components(
    env: &mut RankEnv<'_>,
    shape: &ChainShape,
) -> Result<ChainComponents, RuntimeError> {
    let layout = env.layout;

    // Local contribution to each component, flattened in a fixed order:
    // [p, m_r, then per loop: op2_core, op2_halo, loop_bytes, ca_core,
    // ca_halo].
    let mut vals: Vec<f64> = Vec::with_capacity(2 + shape.loops.len() * 5);
    vals.push(layout.neighbors.len() as f64);

    let recv_bytes_to = |nbr: &op2_partition::layout::NeighborPlan,
                         set: usize,
                         bytes: usize,
                         depth: usize| {
        nbr.recv
            .iter()
            .filter(|seg| seg.set.idx() == set && (seg.level as usize) <= depth)
            .map(|seg| seg.len as usize * bytes)
            .sum::<usize>()
    };
    let m_r = layout
        .neighbors
        .iter()
        .map(|nbr| {
            shape
                .ca_imports
                .iter()
                .map(|&(set, bytes, depth)| recv_bytes_to(nbr, set, bytes, depth))
                .sum::<usize>()
        })
        .max()
        .unwrap_or(0);
    vals.push(m_r as f64);

    for l in &shape.loops {
        let sl = &layout.sets[l.set];
        let core = sl.core_end(0);
        let ring1 = sl.import_level_counts.first().copied().unwrap_or(0);
        let s_halo = sl.n_owned - core + if l.op2_extent >= 1 { ring1 } else { 0 };
        let loop_bytes = layout
            .neighbors
            .iter()
            .map(|nbr| {
                l.op2_exch
                    .iter()
                    .map(|&(set, bytes)| recv_bytes_to(nbr, set, bytes, 1))
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0);

        let k = l.core_depth.min(sl.core_prefix.len() - 1);
        let ca_core = sl.core_prefix[k];
        let rings: usize = sl.import_level_counts.iter().take(l.extent).sum();
        let ca_halo = sl.n_owned - ca_core + rings;

        vals.push(core as f64);
        vals.push(s_halo as f64);
        vals.push(loop_bytes as f64);
        vals.push(ca_core as f64);
        vals.push(ca_halo as f64);
    }

    let tag = env.next_tag();
    env.comm.allreduce(&mut vals, tag, GblOp::Max)?;

    // Reassemble with chain_components' arithmetic over the agreed
    // maxima.
    let p = vals[0] as usize;
    let m_r = vals[1] as usize;
    let mut op2_loops = Vec::with_capacity(shape.loops.len());
    let mut ca_loops = Vec::with_capacity(shape.loops.len());
    let mut op2_comm_bytes = 0.0;
    let (mut op2_core, mut op2_halo) = (0usize, 0usize);
    let (mut ca_core, mut ca_halo) = (0usize, 0usize);
    for (i, l) in shape.loops.iter().enumerate() {
        let base = 2 + i * 5;
        let s_core = vals[base] as usize;
        let s_halo = vals[base + 1] as usize;
        let loop_bytes = vals[base + 2] as usize;
        let c_core = vals[base + 3] as usize;
        let c_halo = vals[base + 4] as usize;
        let d = l.op2_exch.len();
        let m1 = if d == 0 { 0 } else { loop_bytes.div_ceil(2 * d) };
        op2_comm_bytes += p as f64 * loop_bytes as f64;
        op2_core += s_core;
        op2_halo += s_halo;
        op2_loops.push(LoopInput {
            g: l.g,
            s_core,
            s_halo,
            d,
            p,
            m1_bytes: m1,
        });
        ca_core += c_core;
        ca_halo += c_halo;
        ca_loops.push((l.g, c_core, c_halo));
    }
    Ok(ChainComponents {
        op2_loops,
        ca: CaChainInput {
            loops: ca_loops,
            p,
            m_r_bytes: m_r,
            pack_s_per_byte: None,
        },
        op2_comm_bytes,
        op2_core,
        op2_halo,
        ca_comm_bytes: p as f64 * m_r as f64,
        ca_core,
        ca_halo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_default_is_auto() {
        assert_eq!(TunerMode::default(), TunerMode::Auto);
    }
}
