//! In-process rank-to-rank transport — the MPI stand-in.
//!
//! Semantics mirror the subset of MPI the paper's back-end uses:
//! non-blocking sends (`isend` copies the payload into an unbounded
//! channel and returns immediately, like a buffered `MPI_Isend`),
//! blocking receives matched per source in FIFO order (sufficient because
//! every rank executes the identical loop program, so at most the
//! messages of one exchange round are in flight per peer and they are
//! posted in deterministic order), plus a sum-allreduce used for global
//! reduction arguments — the synchronisation point that terminates a
//! loop-chain.
//!
//! Unlike the first-cut transport, this one does **not** assume a perfect
//! substrate. Every message carries a sequence number and a checksum;
//! [`RankComm::recv`] verifies both under a configurable deadline with
//! bounded retry/backoff and returns typed [`CommError`]s instead of
//! panicking. A deterministic [`FaultPlan`](crate::fault::FaultPlan) can
//! be attached to the world to delay, drop, duplicate or corrupt traffic
//! (dropped/corrupted attempts are followed by scheduled retransmissions,
//! modelling a sender-side retransmit timer), and `hangup` sentinels let
//! a dying rank unblock its peers promptly instead of leaving them to
//! deadlock.
//!
//! Every *logical* send is counted and sized (retransmissions and
//! duplicates are tracked separately in [`CommCounters`]); the paper's
//! central claim is about message counts and sizes, so these counters
//! remain the ground truth the tables are reproduced from.
//!
//! ## Tag namespaces
//!
//! Caller-visible tags live below [`tags::USER_LIMIT`]. Collectives
//! (allreduce, barrier) map their caller tag into a disjoint namespace at
//! [`tags::COLLECTIVE_BASE`], so a collective can never collide with an
//! adjacent point-to-point exchange no matter how callers pick tags; the
//! control plane (hangup) sits above both at [`tags::CONTROL_BASE`].

use crate::fault::{Disposition, FaultPlan};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tag-namespace layout (disjoint ranges; see module docs).
pub mod tags {
    /// Exclusive upper bound for caller-supplied point-to-point tags.
    pub const USER_LIMIT: u64 = 1 << 60;
    /// Base of the collective-operation namespace.
    pub const COLLECTIVE_BASE: u64 = 1 << 60;
    /// Base of the control-plane namespace.
    pub const CONTROL_BASE: u64 = 1 << 61;
    /// Hangup sentinel: "this rank is dead; stop waiting for it".
    pub const HANGUP: u64 = CONTROL_BASE;

    /// Collective phases multiplexed onto one caller tag.
    pub(super) const PHASE_TREE_GATHER: u64 = 0;
    pub(super) const PHASE_TREE_BCAST: u64 = 1;
    pub(super) const PHASE_LINEAR_GATHER: u64 = 2;
    pub(super) const PHASE_LINEAR_BCAST: u64 = 3;

    /// Map a caller tag + phase into the collective namespace.
    pub(super) fn collective(tag: u64, phase: u64) -> u64 {
        assert!(
            tag < (1 << 57),
            "collective tag {tag} too large to remap into the reserved namespace"
        );
        COLLECTIVE_BASE | (tag << 2) | phase
    }
}

/// Typed transport failures. These replace the panics of the original
/// transport: a misbehaving peer surfaces as an error the caller can
/// propagate, not as an abort of the whole world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No (valid) message arrived within the deadline.
    Timeout {
        /// Peer we were waiting on.
        from: u32,
        /// Tag we were waiting for.
        tag: u64,
        /// Total time waited.
        waited: Duration,
        /// Discard-and-rewait rounds performed before giving up.
        retries: u64,
    },
    /// A message arrived with the wrong tag — divergent program order.
    TagMismatch {
        /// Sending peer.
        from: u32,
        /// Tag the receiver expected.
        expected: u64,
        /// Tag that actually arrived.
        got: u64,
    },
    /// The peer hung up (sent a hangup sentinel, or its channel closed).
    PeerHangup {
        /// The dead peer.
        peer: u32,
    },
    /// Retries were exhausted while every arriving copy failed its
    /// checksum.
    Corrupt {
        /// Sending peer.
        from: u32,
        /// Copies discarded.
        discarded: u64,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                from,
                tag,
                waited,
                retries,
            } => write!(
                f,
                "timed out after {waited:?} ({retries} retries) waiting for tag {tag} from rank {from}"
            ),
            CommError::TagMismatch {
                from,
                expected,
                got,
            } => write!(
                f,
                "expected tag {expected} from rank {from}, got {got} (divergent program order)"
            ),
            CommError::PeerHangup { peer } => write!(f, "peer rank {peer} hung up"),
            CommError::Corrupt { from, discarded } => write!(
                f,
                "gave up after {discarded} corrupt copies from rank {from}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Receive-side policy: how long to wait and how hard to retry.
///
/// The deadline is the transport-level reflection of the model's latency
/// term `L` (Eq 1/3): a healthy exchange completes in ≪ `deadline`, so
/// the deadline only binds when a peer is dead, stalled, or the fault
/// plan has injected a permanent loss.
#[derive(Debug, Clone, Copy)]
pub struct CommConfig {
    /// Total time `recv` may wait for a valid message.
    pub deadline: Duration,
    /// Sleep between discard-and-rewait rounds (backoff).
    pub retry_backoff: Duration,
    /// Maximum discard-and-rewait rounds per `recv`.
    pub max_retries: u64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            deadline: Duration::from_secs(10),
            retry_backoff: Duration::from_micros(200),
            max_retries: 256,
        }
    }
}

/// Counters for everything the recoverable transport observed — the
/// ground truth the chaos tests and the fault-determinism property
/// assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommCounters {
    /// Receiver discard-and-rewait rounds (corrupt or duplicate copies).
    pub retries: u64,
    /// Receives that exhausted their deadline.
    pub timeouts: u64,
    /// Copies discarded for checksum mismatch.
    pub corrupt_dropped: u64,
    /// Copies discarded as duplicate sequence numbers.
    pub duplicates_dropped: u64,
    /// Messages whose delivery carried an injected delay.
    pub delayed: u64,
    /// Hangup sentinels (or closed channels) observed.
    pub hangups_seen: u64,
    /// Send attempts the fault plan dropped.
    pub injected_drops: u64,
    /// Send attempts the fault plan corrupted.
    pub injected_corrupt: u64,
    /// Extra deliveries the fault plan duplicated.
    pub injected_dups: u64,
    /// Retransmissions scheduled after dropped/corrupted attempts.
    pub retransmits: u64,
    /// Payload buffers allocated because the buffer pool could not
    /// satisfy a [`RankComm::take_buf`] request. Steady-state planned
    /// exchanges must not grow this: every payload is served from (and
    /// returned to) the pool.
    pub payload_allocs: u64,
}

impl CommCounters {
    /// Accumulate another counter set.
    pub fn add(&mut self, o: &CommCounters) {
        self.retries += o.retries;
        self.timeouts += o.timeouts;
        self.corrupt_dropped += o.corrupt_dropped;
        self.duplicates_dropped += o.duplicates_dropped;
        self.delayed += o.delayed;
        self.hangups_seen += o.hangups_seen;
        self.injected_drops += o.injected_drops;
        self.injected_corrupt += o.injected_corrupt;
        self.injected_dups += o.injected_dups;
        self.retransmits += o.retransmits;
        self.payload_allocs += o.payload_allocs;
    }

    /// True when any fault-recovery work happened at all.
    pub fn any_recovery(&self) -> bool {
        self.retries > 0
            || self.corrupt_dropped > 0
            || self.duplicates_dropped > 0
            || self.retransmits > 0
    }
}

/// One message: payload plus the integrity envelope checked at receive
/// time.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sender rank.
    pub from: u32,
    /// Tag — must match the receiver's expectation (program-order bugs
    /// surface as tag-mismatch errors instead of silent corruption).
    pub tag: u64,
    /// Per-(src,dst) sequence number, starting at 1. Duplicate detection.
    pub seq: u64,
    /// FNV-1a over (from, tag, seq, payload bits). Corruption detection.
    pub checksum: u64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Checksum covering the integrity envelope and the payload bits.
pub fn checksum(from: u32, tag: u64, seq: u64, data: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for i in 0..8 {
            h ^= (v >> (i * 8)) & 0xff;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(from as u64);
    eat(tag);
    eat(seq);
    for x in data {
        eat(x.to_bits());
    }
    h
}

impl Msg {
    fn is_intact(&self) -> bool {
        self.checksum == checksum(self.from, self.tag, self.seq, &self.data)
    }
}

/// What actually travels through a channel: the message plus simulated
/// network conditions decided by the fault plan at send time.
#[derive(Debug)]
struct Packet {
    msg: Msg,
    /// Injected latency, enforced at the receiver (the wire was slow).
    delay: Option<Duration>,
}

/// Factory wiring `n` ranks together with dedicated channels per ordered
/// pair (so per-peer FIFO holds regardless of other traffic).
pub struct CommWorld {
    senders: Vec<Vec<Sender<Packet>>>,
    receivers: Vec<Vec<Receiver<Packet>>>,
    plan: Option<Arc<FaultPlan>>,
    config: CommConfig,
}

impl CommWorld {
    /// Create a world of `n` ranks with a perfect network.
    pub fn new(n: usize) -> Self {
        Self::build(n, None, CommConfig::default())
    }

    /// Create a world of `n` ranks whose traffic is subjected to `plan`.
    pub fn with_faults(n: usize, plan: Arc<FaultPlan>) -> Self {
        Self::build(n, Some(plan), CommConfig::default())
    }

    /// Override the receive policy for every rank.
    pub fn with_config(mut self, config: CommConfig) -> Self {
        self.config = config;
        self
    }

    fn build(n: usize, plan: Option<Arc<FaultPlan>>, config: CommConfig) -> Self {
        let mut senders: Vec<Vec<Sender<Packet>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut receivers: Vec<Vec<Receiver<Packet>>> =
            (0..n).map(|_| Vec::with_capacity(n)).collect();
        // senders[src][dst] and receivers[dst][src].
        for dst in 0..n {
            for src in 0..n {
                let (tx, rx) = channel();
                senders[src].push(tx);
                receivers[dst].push(rx);
            }
        }
        CommWorld {
            senders,
            receivers,
            plan,
            config,
        }
    }

    /// Split into per-rank endpoints (call once; consumes the world).
    pub fn into_ranks(self) -> Vec<RankComm> {
        let n = self.senders.len();
        let plan = self.plan;
        let config = self.config;
        self.senders
            .into_iter()
            .zip(self.receivers)
            .enumerate()
            .map(|(rank, (sends, recvs))| RankComm {
                rank: rank as u32,
                n,
                sends,
                recvs,
                sent_msgs: 0,
                sent_bytes: 0,
                next_seq: vec![1; n],
                last_seq: vec![0; n],
                config,
                counters: CommCounters::default(),
                plan: plan.clone(),
                hung_up: false,
                pool: vec![Vec::new(); n],
                stash: (0..n).map(|_| None).collect(),
            })
            .collect()
    }
}

/// One rank's endpoint.
pub struct RankComm {
    /// This rank.
    pub rank: u32,
    /// World size.
    pub n: usize,
    sends: Vec<Sender<Packet>>,
    recvs: Vec<Receiver<Packet>>,
    /// Logical messages sent so far (retransmits/duplicates excluded —
    /// this is the paper's message count).
    pub sent_msgs: u64,
    /// Logical payload bytes sent so far.
    pub sent_bytes: u64,
    /// Next sequence number per destination.
    next_seq: Vec<u64>,
    /// Highest accepted sequence number per source.
    last_seq: Vec<u64>,
    /// Receive policy.
    pub config: CommConfig,
    /// Everything observed (see [`CommCounters`]).
    pub counters: CommCounters,
    plan: Option<Arc<FaultPlan>>,
    hung_up: bool,
    /// Per-peer free-lists of reusable payload buffers (the borrow/
    /// return side of the persistent-exchange engine). Buffers are
    /// cleared on return, so a recycled buffer can never leak stale
    /// values into the next message. The pool is keyed by peer because
    /// payload buffers *travel*: a sent buffer ends up in the peer's
    /// pool and comes back with its next message. Send and receive
    /// sizes mirror across a pair, so pinning buffers to the pair they
    /// circulate on makes every rank's capacity needs locally
    /// satisfiable — a shared pool could hand a small buffer from one
    /// pair to another and re-allocate forever.
    pool: Vec<Vec<Vec<f64>>>,
    /// Per-source parking slot for a delayed packet pulled off the wire
    /// before its injected latency elapsed. Per-pair channels are FIFO,
    /// so once a delayed packet is dequeued it *must* be surfaced before
    /// any later traffic from that source — parking it here (instead of
    /// in a local) keeps it alive across `recv`/`recv_any` calls.
    stash: Vec<Option<(Msg, Instant)>>,
}

/// Upper bound on pooled buffers per peer; beyond this, returned
/// buffers are simply freed. Steady-state planned exchanges circulate
/// one buffer per peer per direction — the cap only guards against
/// pathological accumulation.
const POOL_MAX_PER_PEER: usize = 8;

/// Sleep between empty poll rounds in [`RankComm::recv_any`]. Short
/// enough that arrival-order completion stays responsive, long enough
/// not to spin a core while peers are packing.
const POLL_INTERVAL: Duration = Duration::from_micros(20);

impl RankComm {
    /// Non-blocking send (buffered like `MPI_Isend` + internal copy).
    ///
    /// Under a fault plan the message may be delivered late, twice,
    /// corrupted, or have attempts dropped — in which case a
    /// retransmission is scheduled, modelling the sender's retransmit
    /// timer. Sends to an already-dead peer are silently buffered and
    /// discarded (like `MPI_Isend` into a failed rank: the *receive*
    /// side is where the failure surfaces).
    pub fn isend(&mut self, to: u32, tag: u64, data: Vec<f64>) {
        let seq = self.next_seq[to as usize];
        self.next_seq[to as usize] += 1;
        self.sent_msgs += 1;
        self.sent_bytes += (data.len() * std::mem::size_of::<f64>()) as u64;
        let msg = Msg {
            from: self.rank,
            tag,
            seq,
            checksum: checksum(self.rank, tag, seq, &data),
            data,
        };
        let Some(plan) = self.plan.clone() else {
            self.push(to, msg, None);
            return;
        };
        let schedule = plan.send_schedule(self.rank, to, seq);
        let mut delivered_once = false;
        for attempt in schedule.attempts {
            match attempt.disposition {
                Disposition::Drop => {
                    self.counters.injected_drops += 1;
                    self.counters.retransmits += 1;
                }
                Disposition::Corrupt => {
                    self.counters.injected_corrupt += 1;
                    self.counters.retransmits += 1;
                    let mut bad = msg.clone();
                    let victim = (seq as usize) % bad.data.len().max(1);
                    if let Some(x) = bad.data.get_mut(victim) {
                        *x = f64::from_bits(x.to_bits() ^ (1 << 17));
                    } else {
                        bad.checksum ^= 0xdead_beef;
                    }
                    self.push(to, bad, attempt.delay);
                }
                Disposition::Deliver => {
                    if delivered_once {
                        self.counters.injected_dups += 1;
                    }
                    delivered_once = true;
                    self.push(to, msg.clone(), attempt.delay);
                }
            }
        }
    }

    fn push(&mut self, to: u32, msg: Msg, delay: Option<Duration>) {
        if delay.is_some() {
            self.counters.delayed += 1;
        }
        // A closed channel means the peer is gone; the error surfaces on
        // our next receive from it, exactly like buffered MPI.
        let _ = self.sends[to as usize].send(Packet { msg, delay });
    }

    /// Blocking receive of the next valid message from `from`.
    ///
    /// Waits up to `config.deadline` in total. Copies failing their
    /// checksum and duplicate sequence numbers are discarded (each
    /// discard counts one retry and sleeps `config.retry_backoff`),
    /// relying on the scheduled retransmission to bring a good copy.
    /// Tag mismatches, hangups, exhausted retries and deadline expiry
    /// surface as typed [`CommError`]s.
    pub fn recv(&mut self, from: u32, tag: u64) -> Result<Vec<f64>, CommError> {
        let start = Instant::now();
        let deadline = start + self.config.deadline;
        let mut retries = 0u64;
        let mut corrupt_seen = 0u64;
        loop {
            if retries > self.config.max_retries {
                return if corrupt_seen > 0 {
                    Err(CommError::Corrupt {
                        from,
                        discarded: corrupt_seen,
                    })
                } else {
                    self.counters.timeouts += 1;
                    Err(CommError::Timeout {
                        from,
                        tag,
                        waited: start.elapsed(),
                        retries,
                    })
                };
            }
            let now = Instant::now();
            if now >= deadline {
                self.counters.timeouts += 1;
                return Err(CommError::Timeout {
                    from,
                    tag,
                    waited: start.elapsed(),
                    retries,
                });
            }
            let msg = if let Some((m, visible_at)) = self.stash[from as usize].take() {
                // A prior recv_any parked this packet mid-latency; FIFO
                // order requires draining it before newer traffic.
                let now = Instant::now();
                if visible_at > now {
                    std::thread::sleep(visible_at - now);
                }
                m
            } else {
                let packet = match self.recvs[from as usize].recv_timeout(deadline - now) {
                    Ok(p) => p,
                    Err(RecvTimeoutError::Timeout) => {
                        self.counters.timeouts += 1;
                        return Err(CommError::Timeout {
                            from,
                            tag,
                            waited: start.elapsed(),
                            retries,
                        });
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.counters.hangups_seen += 1;
                        return Err(CommError::PeerHangup { peer: from });
                    }
                };
                if let Some(d) = packet.delay {
                    // The wire was slow: the payload only becomes visible
                    // after the injected latency has elapsed.
                    std::thread::sleep(d);
                }
                packet.msg
            };
            if msg.tag >= tags::CONTROL_BASE {
                self.counters.hangups_seen += 1;
                return Err(CommError::PeerHangup { peer: from });
            }
            if !msg.is_intact() {
                self.counters.corrupt_dropped += 1;
                self.counters.retries += 1;
                retries += 1;
                corrupt_seen += 1;
                std::thread::sleep(self.config.retry_backoff);
                continue;
            }
            if msg.seq <= self.last_seq[from as usize] {
                self.counters.duplicates_dropped += 1;
                self.counters.retries += 1;
                retries += 1;
                continue;
            }
            self.last_seq[from as usize] = msg.seq;
            if msg.tag != tag {
                return Err(CommError::TagMismatch {
                    from,
                    expected: tag,
                    got: msg.tag,
                });
            }
            return Ok(msg.data);
        }
    }

    /// Borrow a payload buffer of at least `cap` f64s from `peer`'s
    /// pool slot.
    ///
    /// Best-fit: the smallest pooled buffer whose capacity covers `cap`
    /// is returned (best-fit keeps the take/miss sequence a pure
    /// function of the slot's capacity *multiset*, independent of
    /// message arrival order — replay determinism). A miss bumps
    /// [`CommCounters::payload_allocs`] and either grows the largest
    /// pooled buffer in place or allocates fresh; because capacities
    /// only ever grow and sent buffers circulate back on the same pair,
    /// misses die out after the first rounds and steady-state planned
    /// exchanges never allocate.
    pub fn take_buf(&mut self, peer: u32, cap: usize) -> Vec<f64> {
        if cap == 0 {
            return Vec::new();
        }
        let slot = &mut self.pool[peer as usize];
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, b) in slot.iter().enumerate() {
            let c = b.capacity();
            if c >= cap && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((i, c));
            }
        }
        if let Some((i, _)) = best {
            return slot.swap_remove(i);
        }
        self.counters.payload_allocs += 1;
        let mut largest: Option<(usize, usize)> = None;
        for (i, b) in slot.iter().enumerate() {
            let c = b.capacity();
            if largest.is_none_or(|(_, lc)| c > lc) {
                largest = Some((i, c));
            }
        }
        match largest {
            Some((i, _)) => {
                let mut b = slot.swap_remove(i);
                b.reserve_exact(cap);
                b
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a payload buffer to `peer`'s pool slot. The buffer is
    /// cleared first, so pooled buffers never carry previous payloads
    /// (a corrupted or duplicated delivery unpacked from a borrowed
    /// buffer cannot poison later messages). Beyond
    /// [`POOL_MAX_PER_PEER`] buffers the return is dropped instead.
    pub fn recycle(&mut self, peer: u32, mut buf: Vec<f64>) {
        let slot = &mut self.pool[peer as usize];
        if slot.len() >= POOL_MAX_PER_PEER || buf.capacity() == 0 {
            return;
        }
        buf.clear();
        slot.push(buf);
    }

    /// Pre-warm `peer`'s pool slot to hold at least one buffer of `cap`
    /// f64s — the `MPI_Send_init` moment where the persistent engine is
    /// allowed to allocate (counted in `payload_allocs` like any other
    /// pool growth). No-op if the slot can already stage `cap`.
    pub fn ensure_buf(&mut self, peer: u32, cap: usize) {
        if cap == 0 {
            return;
        }
        let slot = &mut self.pool[peer as usize];
        if slot.iter().any(|b| b.capacity() >= cap) {
            return;
        }
        self.counters.payload_allocs += 1;
        let mut largest: Option<(usize, usize)> = None;
        for (i, b) in slot.iter().enumerate() {
            let c = b.capacity();
            if largest.is_none_or(|(_, lc)| c > lc) {
                largest = Some((i, c));
            }
        }
        match largest {
            Some((i, _)) => slot[i].reserve_exact(cap),
            None => slot.push(Vec::with_capacity(cap)),
        }
    }

    /// Number of buffers currently pooled across all peer slots
    /// (test/bench introspection).
    pub fn pooled_bufs(&self) -> usize {
        self.pool.iter().map(Vec::len).sum()
    }

    /// Detach the per-peer buffer pools so a supervisor can carry the
    /// warmed allocations across a world restart. Leaves this endpoint
    /// with no pool slots — only call when the rank is done with the
    /// transport (the harness seals at rank exit).
    pub fn take_pool(&mut self) -> Vec<Vec<Vec<f64>>> {
        std::mem::take(&mut self.pool)
    }

    /// Re-install buffer pools detached from a previous attempt's
    /// endpoint. The world shape must match.
    pub fn install_pool(&mut self, pool: Vec<Vec<Vec<f64>>>) {
        assert_eq!(
            pool.len(),
            self.pool.len(),
            "carried buffer pool does not match the world size"
        );
        self.pool = pool;
    }

    /// Blocking receive of the next valid message from **any** of
    /// `peers`, in arrival order: whichever peer's message lands (and
    /// clears its injected wire latency) first is validated and
    /// returned as `(index into peers, payload)`.
    ///
    /// Applies the exact per-peer discipline of [`RankComm::recv`]:
    /// checksum and duplicate discards count retries (bounded by
    /// `config.max_retries` per peer), control-plane tags surface as
    /// [`CommError::PeerHangup`], wrong tags as
    /// [`CommError::TagMismatch`], and the shared deadline as
    /// [`CommError::Timeout`] (reported against `peers[0]`). A delayed
    /// packet is parked in the per-source stash until its latency
    /// elapses — it does not block another peer's already-arrived
    /// message (the whole point of arrival-order completion), and it
    /// survives into the next `recv`/`recv_any` call if this one
    /// completes through a different peer first.
    pub fn recv_any(&mut self, peers: &[u32], tag: u64) -> Result<(usize, Vec<f64>), CommError> {
        assert!(!peers.is_empty(), "recv_any needs at least one peer");
        if peers.len() == 1 {
            return self.recv(peers[0], tag).map(|d| (0, d));
        }
        let start = Instant::now();
        let deadline = start + self.config.deadline;
        let mut retries = vec![0u64; peers.len()];
        let mut corrupt_seen = vec![0u64; peers.len()];
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.counters.timeouts += 1;
                return Err(CommError::Timeout {
                    from: peers[0],
                    tag,
                    waited: start.elapsed(),
                    retries: retries.iter().sum(),
                });
            }
            let mut progressed = false;
            for (i, &from) in peers.iter().enumerate() {
                let msg = if let Some((_, visible_at)) = &self.stash[from as usize] {
                    if Instant::now() < *visible_at {
                        continue;
                    }
                    self.stash[from as usize]
                        .take()
                        .expect("stash slot checked above")
                        .0
                } else {
                    match self.recvs[from as usize].try_recv() {
                        Ok(packet) => match packet.delay {
                            Some(d) => {
                                // The wire was slow: park the payload
                                // until the injected latency elapses and
                                // keep polling the other peers.
                                self.stash[from as usize] = Some((packet.msg, Instant::now() + d));
                                progressed = true;
                                continue;
                            }
                            None => packet.msg,
                        },
                        Err(TryRecvError::Empty) => continue,
                        Err(TryRecvError::Disconnected) => {
                            self.counters.hangups_seen += 1;
                            return Err(CommError::PeerHangup { peer: from });
                        }
                    }
                };
                progressed = true;
                if msg.tag >= tags::CONTROL_BASE {
                    self.counters.hangups_seen += 1;
                    return Err(CommError::PeerHangup { peer: from });
                }
                if !msg.is_intact() {
                    self.counters.corrupt_dropped += 1;
                    self.counters.retries += 1;
                    retries[i] += 1;
                    corrupt_seen[i] += 1;
                    if retries[i] > self.config.max_retries {
                        return Err(CommError::Corrupt {
                            from,
                            discarded: corrupt_seen[i],
                        });
                    }
                    continue;
                }
                if msg.seq <= self.last_seq[from as usize] {
                    self.counters.duplicates_dropped += 1;
                    self.counters.retries += 1;
                    retries[i] += 1;
                    if retries[i] > self.config.max_retries {
                        self.counters.timeouts += 1;
                        return Err(CommError::Timeout {
                            from,
                            tag,
                            waited: start.elapsed(),
                            retries: retries[i],
                        });
                    }
                    continue;
                }
                self.last_seq[from as usize] = msg.seq;
                if msg.tag != tag {
                    return Err(CommError::TagMismatch {
                        from,
                        expected: tag,
                        got: msg.tag,
                    });
                }
                return Ok((i, msg.data));
            }
            if !progressed {
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }

    /// The fault plan this endpoint's traffic is subjected to, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.plan.clone()
    }

    /// Broadcast a hangup sentinel to every peer: "this rank is dead,
    /// stop waiting". Idempotent. Called by the harness when a rank
    /// fails, so survivors unwind with [`CommError::PeerHangup`] instead
    /// of blocking until their deadlines.
    pub fn hangup_all(&mut self) {
        if self.hung_up {
            return;
        }
        self.hung_up = true;
        for peer in 0..self.n as u32 {
            if peer == self.rank {
                continue;
            }
            let msg = Msg {
                from: self.rank,
                tag: tags::HANGUP,
                seq: 0,
                checksum: 0,
                data: Vec::new(),
            };
            let _ = self.sends[peer as usize].send(Packet { msg, delay: None });
        }
    }

    /// Sum-allreduce (tree-based; see [`RankComm::allreduce`]).
    pub fn allreduce_sum(&mut self, vals: &mut [f64], tag: u64) -> Result<(), CommError> {
        self.allreduce(vals, tag, op2_core::access::GblOp::Sum)
    }

    /// Allreduce with an arbitrary combining operator (sum / min / max).
    ///
    /// Binomial-tree gather of the per-rank contribution *lists* (kept in
    /// rank order), a single rank-ordered combine at the root, then a
    /// binomial-tree broadcast — `O(log n)` rounds with a combine order
    /// **identical to the linear gather**, so the result is bitwise
    /// reproducible and bitwise equal to [`RankComm::allreduce_linear`].
    ///
    /// The caller tag is remapped into the reserved collective namespace;
    /// adjacent caller tags can never collide with collective traffic.
    pub fn allreduce(
        &mut self,
        vals: &mut [f64],
        tag: u64,
        op: op2_core::access::GblOp,
    ) -> Result<(), CommError> {
        if self.n == 1 || vals.is_empty() {
            return Ok(());
        }
        let dim = vals.len();
        let up = tags::collective(tag, tags::PHASE_TREE_GATHER);
        let down = tags::collective(tag, tags::PHASE_TREE_BCAST);
        let rank = self.rank as usize;
        let n = self.n;

        // Gather phase: `flat` holds the contributions of the contiguous
        // rank range [rank, rank + subtree) in rank order.
        let mut flat = vals.to_vec();
        let mut step = 1usize;
        let mut parent: Option<usize> = None;
        while step < n {
            if rank & step != 0 {
                parent = Some(rank - step);
                break;
            }
            if rank + step < n {
                let part = self.recv((rank + step) as u32, up)?;
                debug_assert_eq!(part.len() % dim.max(1), 0);
                flat.extend_from_slice(&part);
            }
            step <<= 1;
        }

        let acc = if let Some(p) = parent {
            self.isend(p as u32, up, flat);
            self.recv(p as u32, down)?
        } else {
            // Root: combine every rank's contribution in ascending rank
            // order — the exact order of the linear gather.
            let mut acc = flat[..dim].to_vec();
            for r in 1..n {
                for (a, &p) in acc.iter_mut().zip(&flat[r * dim..(r + 1) * dim]) {
                    *a = op.combine(*a, p);
                }
            }
            acc
        };

        // Broadcast phase: forward down the same tree, largest child
        // first.
        let lsb = if rank == 0 {
            n.next_power_of_two()
        } else {
            rank & rank.wrapping_neg()
        };
        let mut child_step = lsb >> 1;
        while child_step >= 1 {
            if rank + child_step < n {
                self.isend((rank + child_step) as u32, down, acc.clone());
            }
            child_step >>= 1;
        }
        vals.copy_from_slice(&acc);
        Ok(())
    }

    /// The original O(n) rank-0 linear gather + broadcast, kept as the
    /// reference the tree path is asserted bitwise-equal against.
    pub fn allreduce_linear(
        &mut self,
        vals: &mut [f64],
        tag: u64,
        op: op2_core::access::GblOp,
    ) -> Result<(), CommError> {
        if self.n == 1 {
            return Ok(());
        }
        let up = tags::collective(tag, tags::PHASE_LINEAR_GATHER);
        let down = tags::collective(tag, tags::PHASE_LINEAR_BCAST);
        if self.rank == 0 {
            let mut acc = vals.to_vec();
            for src in 1..self.n as u32 {
                let part = self.recv(src, up)?;
                assert_eq!(part.len(), acc.len());
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a = op.combine(*a, *p);
                }
            }
            for dst in 1..self.n as u32 {
                self.isend(dst, down, acc.clone());
            }
            vals.copy_from_slice(&acc);
        } else {
            self.isend(0, up, vals.to_vec());
            let acc = self.recv(0, down)?;
            vals.copy_from_slice(&acc);
        }
        Ok(())
    }

    /// Barrier built on the allreduce.
    pub fn barrier(&mut self, tag: u64) -> Result<(), CommError> {
        let mut dummy = [0.0];
        self.allreduce_sum(&mut dummy, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use op2_core::access::GblOp;

    #[test]
    fn point_to_point_fifo() {
        let ranks = CommWorld::new(2).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        let t = std::thread::spawn(move || {
            r0.isend(1, 7, vec![1.0, 2.0]);
            r0.isend(1, 8, vec![3.0]);
            r0
        });
        assert_eq!(r1.recv(0, 7).unwrap(), vec![1.0, 2.0]);
        assert_eq!(r1.recv(0, 8).unwrap(), vec![3.0]);
        let r0 = t.join().unwrap();
        assert_eq!(r0.sent_msgs, 2);
        assert_eq!(r0.sent_bytes, 24);
    }

    fn spawn_allreduce(
        n: usize,
        linear: bool,
    ) -> Vec<Vec<f64>> {
        let ranks = CommWorld::new(n).into_ranks();
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut rc| {
                std::thread::spawn(move || {
                    // Values chosen to make float combine order visible:
                    // wildly different magnitudes per rank.
                    let r = rc.rank as f64;
                    let mut v = vec![
                        (r + 1.0) * 1e-3 + 0.1,
                        10.0_f64.powf(r - 2.0),
                        -(r * 7.0 + 0.3),
                    ];
                    if linear {
                        rc.allreduce_linear(&mut v, 100, GblOp::Sum).unwrap();
                    } else {
                        rc.allreduce(&mut v, 100, GblOp::Sum).unwrap();
                    }
                    v
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let ranks = CommWorld::new(4).into_ranks();
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut rc| {
                std::thread::spawn(move || {
                    let mut v = [rc.rank as f64 + 1.0, 10.0];
                    rc.allreduce_sum(&mut v, 100).unwrap();
                    v
                })
            })
            .collect();
        for h in handles {
            let v = h.join().unwrap();
            assert_eq!(v, [10.0, 40.0]);
        }
    }

    /// The tree reduction is bitwise identical to the linear gather for
    /// every world size (including non-powers of two), because both
    /// combine contributions in ascending rank order.
    #[test]
    fn tree_allreduce_matches_linear_bitwise() {
        for n in [2usize, 3, 4, 5, 7, 8] {
            let tree = spawn_allreduce(n, false);
            let linear = spawn_allreduce(n, true);
            for (t, l) in tree.iter().zip(&linear) {
                for (a, b) in t.iter().zip(l) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
                }
            }
            // And min/max agree too.
            let ranks = CommWorld::new(n).into_ranks();
            let hs: Vec<_> = ranks
                .into_iter()
                .map(|mut rc| {
                    std::thread::spawn(move || {
                        let mut v = [rc.rank as f64, -(rc.rank as f64)];
                        rc.allreduce(&mut v, 7, GblOp::Max).unwrap();
                        v
                    })
                })
                .collect();
            for h in hs {
                let v = h.join().unwrap();
                assert_eq!(v, [(n - 1) as f64, 0.0], "n={n}");
            }
        }
    }

    /// Tag mismatch is a typed error now, not a panic.
    #[test]
    fn tag_mismatch_is_typed_error() {
        let ranks = CommWorld::new(2).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        r0.isend(1, 1, vec![]);
        match r1.recv(0, 2) {
            Err(CommError::TagMismatch {
                from,
                expected,
                got,
            }) => {
                assert_eq!((from, expected, got), (0, 2, 1));
            }
            other => panic!("expected TagMismatch, got {other:?}"),
        }
    }

    /// An empty channel bounded by a short deadline times out with the
    /// waited duration reported.
    #[test]
    fn recv_times_out_with_typed_error() {
        let ranks = CommWorld::new(2)
            .with_config(CommConfig {
                deadline: Duration::from_millis(20),
                ..CommConfig::default()
            })
            .into_ranks();
        let mut iter = ranks.into_iter();
        // Keep rank 0 alive (dropping it would close the channel and
        // surface as PeerHangup instead); it just never sends.
        let _r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        let t0 = Instant::now();
        match r1.recv(0, 5) {
            Err(CommError::Timeout { from, tag, .. }) => {
                assert_eq!((from, tag), (0, 5));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(2), "deadline not honoured");
        assert_eq!(r1.counters.timeouts, 1);
    }

    /// A hangup sentinel surfaces as PeerHangup without waiting for the
    /// deadline.
    #[test]
    fn hangup_unblocks_receiver_promptly() {
        let ranks = CommWorld::new(2)
            .with_config(CommConfig {
                deadline: Duration::from_secs(30),
                ..CommConfig::default()
            })
            .into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        r0.hangup_all();
        let t0 = Instant::now();
        match r1.recv(0, 1) {
            Err(CommError::PeerHangup { peer }) => assert_eq!(peer, 0),
            other => panic!("expected PeerHangup, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    /// Dropped and corrupted attempts are recovered via the scheduled
    /// retransmissions; duplicates are filtered by sequence number; the
    /// payload arrives intact.
    #[test]
    fn faulty_link_still_delivers_exact_payloads() {
        let spec = FaultSpec {
            seed: 0xfeed,
            drop_permille: 200,
            dup_permille: 200,
            corrupt_permille: 200,
            delay_permille: 100,
            max_delay: Duration::from_micros(300),
            ..FaultSpec::default()
        };
        let ranks = CommWorld::with_faults(2, Arc::new(FaultPlan::new(spec))).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        let payloads: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64, i as f64 * 0.5, -(i as f64)])
            .collect();
        let expect = payloads.clone();
        let t = std::thread::spawn(move || {
            for (i, p) in payloads.into_iter().enumerate() {
                r0.isend(1, i as u64, p);
            }
            r0
        });
        for (i, want) in expect.iter().enumerate() {
            let got = r1.recv(0, i as u64).unwrap();
            assert_eq!(&got, want, "message {i}");
        }
        let r0 = t.join().unwrap();
        assert_eq!(r0.sent_msgs, 200, "logical count excludes retransmits");
        assert!(
            r0.counters.injected_drops + r0.counters.injected_corrupt > 0,
            "fault plan never fired: {:?}",
            r0.counters
        );
        assert!(r1.counters.any_recovery(), "receiver saw no faults");
    }

    /// take/recycle round-trips serve every subsequent borrow from the
    /// pool: the allocation counter only moves on genuine misses.
    #[test]
    fn buffer_pool_reuses_and_counts_misses() {
        let mut rc = CommWorld::new(1).into_ranks().remove(0);
        let a = rc.take_buf(0, 16);
        let b = rc.take_buf(0, 8);
        assert_eq!(rc.counters.payload_allocs, 2, "cold pool must miss");
        rc.recycle(0, a);
        rc.recycle(0, b);
        assert_eq!(rc.pooled_bufs(), 2);
        // Best fit: asking for 8 must take the 8-capacity buffer, so the
        // 16-capacity one stays available for the bigger request.
        let b2 = rc.take_buf(0, 8);
        assert!(b2.capacity() >= 8 && b2.capacity() < 16);
        let a2 = rc.take_buf(0, 16);
        assert!(a2.capacity() >= 16);
        assert!(a2.is_empty() && b2.is_empty(), "recycle must clear");
        assert_eq!(rc.counters.payload_allocs, 2, "warm pool must not miss");
        // A request nothing pooled can satisfy is a miss: the largest
        // pooled buffer is grown in place so capacities are monotone.
        rc.recycle(0, a2);
        let big = rc.take_buf(0, 1024);
        assert_eq!(rc.counters.payload_allocs, 3);
        assert!(big.capacity() >= 1024);
        assert_eq!(rc.pooled_bufs(), 0, "miss must consume the grown slot");
        // ensure_buf is the Send_init moment: it only allocates when no
        // pooled buffer can already stage the request.
        rc.recycle(0, big);
        rc.ensure_buf(0, 512);
        assert_eq!(rc.counters.payload_allocs, 3, "adequate slot is a no-op");
        rc.ensure_buf(0, 4096);
        assert_eq!(rc.counters.payload_allocs, 4);
        assert!(rc.take_buf(0, 4096).capacity() >= 4096);
    }

    /// `recv_any` completes in arrival order: the late peer does not
    /// gate the early peer's message.
    #[test]
    fn recv_any_unblocks_on_first_arrival() {
        let ranks = CommWorld::new(3).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        let mut r2 = iter.next().unwrap();
        let slow = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            r1.isend(0, 5, vec![1.0]);
            r1
        });
        r2.isend(0, 5, vec![2.0, 2.0]);
        // Peer order lists the slow rank first; arrival order must win.
        let (i, data) = r0.recv_any(&[1, 2], 5).unwrap();
        assert_eq!((i, data), (1, vec![2.0, 2.0]));
        let (i, data) = r0.recv_any(&[1], 5).unwrap();
        assert_eq!((i, data), (0, vec![1.0]));
        slow.join().unwrap();
    }

    /// `recv_any` keeps the duplicate/corruption discipline of `recv`
    /// under an active fault plan: every payload still arrives exactly
    /// once, intact, whichever peer lands first.
    #[test]
    fn recv_any_survives_faulty_links() {
        let spec = FaultSpec {
            seed: 0xabcd,
            drop_permille: 150,
            dup_permille: 150,
            corrupt_permille: 150,
            delay_permille: 150,
            max_delay: Duration::from_micros(200),
            ..FaultSpec::default()
        };
        let ranks = CommWorld::with_faults(3, Arc::new(FaultPlan::new(spec))).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        let mut r2 = iter.next().unwrap();
        let rounds = 60u64;
        let t1 = std::thread::spawn(move || {
            for s in 0..rounds {
                r1.isend(0, s, vec![1.0, s as f64]);
            }
        });
        let t2 = std::thread::spawn(move || {
            for s in 0..rounds {
                r2.isend(0, s, vec![2.0, s as f64]);
            }
        });
        for s in 0..rounds {
            let mut pending = vec![1u32, 2u32];
            while !pending.is_empty() {
                let (i, data) = r0.recv_any(&pending, s).unwrap();
                let from = pending.remove(i);
                assert_eq!(data, vec![from as f64, s as f64], "tag {s} from {from}");
            }
        }
        t1.join().unwrap();
        t2.join().unwrap();
    }

    /// Collective traffic lives in its own tag namespace: an allreduce
    /// on base tag `t` coexists with point-to-point messages tagged
    /// `t+1` (the old ad-hoc scheme used `t`/`t+1` for its gather and
    /// broadcast, so an adjacent caller tag was indistinguishable from
    /// the reduction result — a dropped broadcast would silently accept
    /// the user payload in its place).
    #[test]
    fn collective_tags_disjoint_from_user_tags() {
        // Structural: remapped tags are in the reserved range, phases
        // distinct, user tags untouched.
        let g = tags::collective(100, tags::PHASE_TREE_GATHER);
        let b = tags::collective(100, tags::PHASE_TREE_BCAST);
        let lg = tags::collective(100, tags::PHASE_LINEAR_GATHER);
        assert!((tags::COLLECTIVE_BASE..tags::CONTROL_BASE).contains(&g));
        assert!(g != b && b != lg && g != lg);
        assert!(101 < tags::USER_LIMIT && g != 101 && b != 101);

        // Behavioural: allreduce on tag 100 + p2p on the adjacent tag
        // 101, in program order, both deliver their own payloads.
        let ranks = CommWorld::new(2).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        let tag = 100u64;
        let t = std::thread::spawn(move || {
            let mut v = [1.0];
            r0.allreduce_sum(&mut v, tag).unwrap();
            r0.isend(1, tag + 1, vec![42.0]);
            v
        });
        let mut v = [2.0];
        r1.allreduce_sum(&mut v, tag).unwrap();
        assert_eq!(r1.recv(0, tag + 1).unwrap(), vec![42.0]);
        assert_eq!(t.join().unwrap(), [3.0]);
        assert_eq!(v, [3.0]);
    }
}
