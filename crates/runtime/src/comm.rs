//! In-process rank-to-rank transport — the MPI stand-in.
//!
//! Semantics mirror the subset of MPI the paper's back-end uses:
//! non-blocking sends (`isend` copies the payload into an unbounded
//! channel and returns immediately, like a buffered `MPI_Isend`),
//! blocking receives matched per source in FIFO order (sufficient because
//! every rank executes the identical loop program, so at most the
//! messages of one exchange round are in flight per peer and they are
//! posted in deterministic order), plus a sum-allreduce used for global
//! reduction arguments — the synchronisation point that terminates a
//! loop-chain.
//!
//! Every send is counted and sized; the paper's central claim is about
//! message counts and sizes, so these counters are the ground truth the
//! tables are reproduced from.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// One message: payload plus a debug tag checked at receive time.
#[derive(Debug)]
pub struct Msg {
    /// Sender rank.
    pub from: u32,
    /// Tag — must match the receiver's expectation (program-order bugs
    /// surface as tag mismatches instead of silent corruption).
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Factory wiring `n` ranks together with dedicated channels per ordered
/// pair (so per-peer FIFO holds regardless of other traffic).
pub struct CommWorld {
    senders: Vec<Vec<Sender<Msg>>>,
    receivers: Vec<Vec<Receiver<Msg>>>,
}

impl CommWorld {
    /// Create a world of `n` ranks.
    pub fn new(n: usize) -> Self {
        let mut senders: Vec<Vec<Sender<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut receivers: Vec<Vec<Receiver<Msg>>> =
            (0..n).map(|_| Vec::with_capacity(n)).collect();
        // senders[src][dst] and receivers[dst][src].
        for dst in 0..n {
            for src in 0..n {
                let (tx, rx) = unbounded();
                senders[src].push(tx);
                receivers[dst].push(rx);
            }
        }
        CommWorld { senders, receivers }
    }

    /// Split into per-rank endpoints (call once; consumes the world).
    pub fn into_ranks(self) -> Vec<RankComm> {
        let n = self.senders.len();
        self.senders
            .into_iter()
            .zip(self.receivers)
            .enumerate()
            .map(|(rank, (sends, recvs))| RankComm {
                rank: rank as u32,
                n,
                sends,
                recvs,
                sent_msgs: 0,
                sent_bytes: 0,
            })
            .collect()
    }
}

/// One rank's endpoint.
pub struct RankComm {
    /// This rank.
    pub rank: u32,
    /// World size.
    pub n: usize,
    sends: Vec<Sender<Msg>>,
    recvs: Vec<Receiver<Msg>>,
    /// Messages sent so far.
    pub sent_msgs: u64,
    /// Payload bytes sent so far.
    pub sent_bytes: u64,
}

impl RankComm {
    /// Non-blocking send (buffered like `MPI_Isend` + internal copy).
    pub fn isend(&mut self, to: u32, tag: u64, data: Vec<f64>) {
        self.sent_msgs += 1;
        self.sent_bytes += (data.len() * std::mem::size_of::<f64>()) as u64;
        self.sends[to as usize]
            .send(Msg {
                from: self.rank,
                tag,
                data,
            })
            .expect("peer rank hung up");
    }

    /// Blocking receive of the next message from `from`; panics on tag
    /// mismatch (indicates divergent program order — always a bug).
    pub fn recv(&mut self, from: u32, tag: u64) -> Vec<f64> {
        let msg = self.recvs[from as usize]
            .recv()
            .expect("peer rank hung up");
        assert_eq!(
            msg.tag, tag,
            "rank {} expected tag {tag} from {from}, got {}",
            self.rank, msg.tag
        );
        msg.data
    }

    /// Sum-allreduce: gather to rank 0 in rank order (deterministic
    /// floating-point result), then broadcast.
    pub fn allreduce_sum(&mut self, vals: &mut [f64], tag: u64) {
        self.allreduce(vals, tag, op2_core::access::GblOp::Sum)
    }

    /// Allreduce with an arbitrary combining operator (sum / min / max):
    /// gather to rank 0 in rank order (deterministic), then broadcast.
    pub fn allreduce(&mut self, vals: &mut [f64], tag: u64, op: op2_core::access::GblOp) {
        if self.n == 1 {
            return;
        }
        if self.rank == 0 {
            let mut acc = vals.to_vec();
            for src in 1..self.n as u32 {
                let part = self.recv(src, tag);
                assert_eq!(part.len(), acc.len());
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a = op.combine(*a, *p);
                }
            }
            for dst in 1..self.n as u32 {
                self.isend(dst, tag + 1, acc.clone());
            }
            vals.copy_from_slice(&acc);
        } else {
            self.isend(0, tag, vals.to_vec());
            let acc = self.recv(0, tag + 1);
            vals.copy_from_slice(&acc);
        }
    }

    /// Barrier built on the allreduce.
    pub fn barrier(&mut self, tag: u64) {
        let mut dummy = [0.0];
        self.allreduce_sum(&mut dummy, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_fifo() {
        let ranks = CommWorld::new(2).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        let t = std::thread::spawn(move || {
            r0.isend(1, 7, vec![1.0, 2.0]);
            r0.isend(1, 8, vec![3.0]);
            r0
        });
        assert_eq!(r1.recv(0, 7), vec![1.0, 2.0]);
        assert_eq!(r1.recv(0, 8), vec![3.0]);
        let r0 = t.join().unwrap();
        assert_eq!(r0.sent_msgs, 2);
        assert_eq!(r0.sent_bytes, 24);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let ranks = CommWorld::new(4).into_ranks();
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut rc| {
                std::thread::spawn(move || {
                    let mut v = [rc.rank as f64 + 1.0, 10.0];
                    rc.allreduce_sum(&mut v, 100);
                    v
                })
            })
            .collect();
        for h in handles {
            let v = h.join().unwrap();
            assert_eq!(v, [10.0, 40.0]);
        }
    }

    #[test]
    #[should_panic(expected = "expected tag")]
    fn tag_mismatch_panics() {
        let ranks = CommWorld::new(2).into_ranks();
        let mut iter = ranks.into_iter();
        let mut r0 = iter.next().unwrap();
        let mut r1 = iter.next().unwrap();
        r0.isend(1, 1, vec![]);
        let _ = r1.recv(0, 2);
    }
}
