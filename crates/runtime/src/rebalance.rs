//! Online rebalancing: trace-driven imbalance detection, live element
//! migration, and epoch-safe replanning.
//!
//! The paper's experiments partition once, up front, from element
//! counts. Real workloads drift: adaptive physics, cache effects and
//! heterogeneous nodes skew per-rank cost until the slowest rank gates
//! every exchange. This module closes the loop at runtime:
//!
//! 1. **Detector** — [`LoadEstimate`] aggregates the measured per-unit
//!    wall times each executor already stamps into
//!    [`RankTrace`](crate::trace::RankTrace) (a sliding window of the
//!    most recent units) into a per-rank load vector; migration triggers
//!    when `max/mean` exceeds [`RebalanceConfig::threshold`]
//!    (`OP2_REBALANCE_THRESHOLD` / `OP2_REBALANCE_WINDOW`).
//! 2. **Planner** — the measured rank load is spread over each rank's
//!    owned base elements ([`element_costs`]) and fed to the weighted
//!    partitioners; [`op2_partition::plan_migration`] diffs old against
//!    new ownership into per-peer move lists and rebuilds rings, halos
//!    and grouped-message layouts.
//! 3. **Executor** — [`ship_migration`] runs a one-shot distributed
//!    program over the *old* layouts: every old owner packs its moved
//!    elements' dat slices plus the global-id renumbering table and
//!    ships them to the new owner over the same fault-tolerant
//!    transport the solver uses; the staged payloads are then applied
//!    to the global domain. The shipped bytes are authoritative — a
//!    transport that corrupted them would break the bitwise contract
//!    the tests assert.
//! 4. **Epoch fence** — [`fence_slots`] makes the switch coherent for
//!    carried supervisor state: plan caches bump their layout epoch
//!    (cascading a registry invalidation when attached), checkpoints
//!    and journals of the old layout are discarded and the
//!    [`RankState`] layout epoch advances, so a crash-recovery rollback
//!    after a migration can only ever restore post-migration state.
//!
//! **Bitwise contract**: migration copies owned values verbatim — the
//! machinery itself is value-preserving. For programs whose arithmetic
//! is exact in f64 (integer-valued dats, the repo's bitwise fixtures) a
//! migrated run is **bitwise identical** to a never-migrated run — at
//! any thread count, and across crash-recovery rollbacks that straddle
//! the migration boundary (`tests/rebalance.rs`). For rounding kernels
//! one caveat is inherited from the executor, not introduced by
//! migration: indirect `Inc` contributions at partition-boundary nodes
//! accumulate core-first / halo-after, an order the owner assignment
//! decides, so any two partitions — static or migrated — differ by
//! ~1 ULP at a handful of boundary entries while reductions (RMS/norm)
//! stay bit-identical (DESIGN.md §15).

use crate::checkpoint::RankState;
use crate::error::{ConfigError, RuntimeError};
use crate::harness::{run_distributed_with, RunOptions};
use crate::trace::{RankTrace, RebalanceRec};
use op2_core::{DatId, Domain, SetId};
use op2_partition::{
    ownership_from_layouts, plan_migration, rcb_partition_weighted, MigrationPlan, RankLayout,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Rebalancing policy knobs (`OP2_REBALANCE_THRESHOLD` /
/// `OP2_REBALANCE_WINDOW`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Trigger when the windowed `max/mean` per-rank load ratio reaches
    /// this value. 1 triggers on any measurable imbalance; the
    /// environment knob requires ≥ 1 (a ratio below 1 cannot occur).
    pub threshold: f64,
    /// How many most-recent units (loops + chains) of each rank's trace
    /// enter the load estimate.
    pub window: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            threshold: 1.25,
            window: 8,
        }
    }
}

impl RebalanceConfig {
    /// Policy with an explicit threshold and window.
    pub fn new(threshold: f64, window: usize) -> Self {
        assert!(threshold.is_finite() && threshold >= 0.0);
        assert!(window >= 1, "rebalance window must be at least 1");
        RebalanceConfig { threshold, window }
    }

    /// Parse raw `OP2_REBALANCE_THRESHOLD` / `OP2_REBALANCE_WINDOW`
    /// values (`None` = unset = default) through the centralized knob
    /// path ([`crate::env::parse_knob`]). Pure — no environment access.
    pub fn parse(threshold: Option<&str>, window: Option<&str>) -> Result<Self, ConfigError> {
        let mut cfg = RebalanceConfig::default();
        if let Some(t) = crate::env::parse_knob(
            threshold,
            |s| s.parse::<f64>().ok().filter(|t| t.is_finite() && *t >= 1.0),
            |value| ConfigError::RebalanceThreshold { value },
        )? {
            cfg.threshold = t;
        }
        if let Some(w) = crate::env::parse_knob(
            window,
            |s| s.parse::<usize>().ok().filter(|&w| w >= 1),
            |value| ConfigError::RebalanceWindow { value },
        )? {
            cfg.window = w;
        }
        Ok(cfg)
    }

    /// Read the `OP2_REBALANCE_*` environment knobs; typed errors on
    /// malformed values — same discipline as every other runtime knob.
    pub fn try_from_env() -> Result<Self, ConfigError> {
        Self::parse(
            std::env::var("OP2_REBALANCE_THRESHOLD").ok().as_deref(),
            std::env::var("OP2_REBALANCE_WINDOW").ok().as_deref(),
        )
    }

    /// Override the trigger threshold (builder style).
    pub fn threshold(mut self, t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0);
        self.threshold = t;
        self
    }

    /// Override the detection window (builder style).
    pub fn window(mut self, w: usize) -> Self {
        assert!(w >= 1);
        self.window = w;
        self
    }
}

/// Driver-level rebalancing policy: the detector knobs plus how a
/// segmented run (detection at segment boundaries) behaves. Drivers
/// like `mg-cfd`'s `run_ca_rebalanced` split their iteration sequence
/// into segments, run each under supervision, and consult the detector
/// between segments.
#[derive(Debug, Clone, Default)]
pub struct RebalancePolicy {
    /// Detector knobs (threshold, window).
    pub cfg: RebalanceConfig,
    /// Iterations per supervised segment (0 = run everything in one
    /// segment, i.e. never check). Detection happens only at segment
    /// boundaries — a chain boundary, where no messages are in flight.
    pub segment_iters: usize,
    /// Explicit per-element cost override. `None` derives costs from
    /// the measured per-rank load ([`element_costs`]); tests pass
    /// explicit skews so the re-sharded partition is deterministic.
    pub costs: Option<Vec<f64>>,
    /// Migration budget per run (0 = unlimited).
    pub max_migrations: usize,
    /// Fault plan injected into the first segment *after* a migration —
    /// the chaos hook for crash-recovery straddling a migration
    /// boundary. Segments before the migration run with the caller's
    /// own fault plan.
    pub post_migration_faults: Option<Arc<crate::fault::FaultPlan>>,
}

impl RebalancePolicy {
    /// A policy that checks every `segment_iters` iterations and
    /// migrates at most once.
    pub fn every(segment_iters: usize, cfg: RebalanceConfig) -> Self {
        RebalancePolicy {
            cfg,
            segment_iters,
            costs: None,
            max_migrations: 1,
            post_migration_faults: None,
        }
    }

    /// Override the per-element costs used for the re-shard.
    pub fn with_costs(mut self, costs: Vec<f64>) -> Self {
        self.costs = Some(costs);
        self
    }

    /// Inject `faults` into the first post-migration segment.
    pub fn with_post_migration_faults(mut self, faults: Arc<crate::fault::FaultPlan>) -> Self {
        self.post_migration_faults = Some(faults);
        self
    }
}

/// Windowed per-rank load estimate, aggregated from measured unit wall
/// times.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEstimate {
    /// Summed wall time of each rank's most recent `window` units.
    pub per_rank_ns: Vec<u64>,
}

impl LoadEstimate {
    /// Aggregate the most recent `window` units of every rank's trace.
    pub fn from_traces(traces: &[RankTrace], window: usize) -> Self {
        LoadEstimate {
            per_rank_ns: traces.iter().map(|t| t.recent_wall_ns(window)).collect(),
        }
    }

    /// Estimate from explicit per-rank costs (model-driven callers).
    pub fn from_costs(per_rank: &[f64]) -> Self {
        LoadEstimate {
            per_rank_ns: per_rank.iter().map(|&c| c.max(0.0) as u64).collect(),
        }
    }

    /// `max/mean` load ratio — 1.0 for a perfectly balanced (or
    /// unmeasured) world, growing with imbalance.
    pub fn ratio(&self) -> f64 {
        let n = self.per_rank_ns.len();
        if n == 0 {
            return 1.0;
        }
        let total: u64 = self.per_rank_ns.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.per_rank_ns.iter().max().expect("non-empty") as f64;
        max / (total as f64 / n as f64)
    }

    /// The ratio in fixed-point milli units (trace/JSON friendly).
    pub fn imbalance_milli(&self) -> u64 {
        (self.ratio() * 1000.0).round() as u64
    }
}

/// Does the windowed estimate warrant a migration under `cfg`? Returns
/// the estimate when it does.
pub fn detect(traces: &[RankTrace], cfg: &RebalanceConfig) -> Option<LoadEstimate> {
    let est = LoadEstimate::from_traces(traces, cfg.window);
    (est.ratio() >= cfg.threshold).then_some(est)
}

/// Spread each rank's measured load evenly over its owned base
/// elements: the per-element cost weights the weighted partitioners
/// consume. Falls back to uniform cost when nothing was measured.
pub fn element_costs(
    dom: &Domain,
    base: SetId,
    layouts: &[RankLayout],
    est: &LoadEstimate,
) -> Vec<f64> {
    let n = dom.set(base).size;
    let mut costs = vec![1.0f64; n];
    if est.per_rank_ns.iter().all(|&ns| ns == 0) {
        return costs;
    }
    for (r, l) in layouts.iter().enumerate() {
        let sl = &l.sets[base.idx()];
        if sl.n_owned == 0 {
            continue;
        }
        let per = (est.per_rank_ns.get(r).copied().unwrap_or(0) as f64 / sl.n_owned as f64)
            .max(f64::MIN_POSITIVE);
        for &g in &sl.locals[..sl.n_owned] {
            costs[g as usize] = per;
        }
    }
    costs
}

/// Predicted post-migration imbalance: the same cost vector summed
/// under the new base ownership.
fn predicted_ratio_milli(costs: &[f64], new_base: &[u32], nparts: usize) -> u64 {
    let mut loads = vec![0.0f64; nparts];
    for (e, &o) in new_base.iter().enumerate() {
        loads[o as usize] += costs[e];
    }
    let total: f64 = loads.iter().sum();
    if total <= 0.0 {
        return 1000;
    }
    let max = loads.iter().fold(0.0f64, |a, &b| a.max(b));
    (max / (total / nparts as f64) * 1000.0).round() as u64
}

/// Aggregate outcome of one executed migration.
#[derive(Debug)]
pub struct RebalanceOutcome {
    /// The rebuilt per-rank layouts — subsequent segments run on these.
    pub layouts: Vec<RankLayout>,
    /// The new base-set owner per element.
    pub base_owner: Vec<u32>,
    /// Aggregate counters (also stamped per rank in `per_rank`).
    pub rec: RebalanceRec,
    /// Per-rank counters from the shipping program's traces.
    pub per_rank: Vec<RebalanceRec>,
}

/// The dats declared on `set`, with their dims, in [`DatId`] order —
/// the wire order both sides of a migration payload derive
/// independently.
fn dats_on(dom: &Domain, set: SetId) -> Vec<(DatId, usize)> {
    (0..dom.n_dats())
        .map(|d| DatId(d as u32))
        .filter(|&d| dom.dat(d).set == set)
        .map(|d| (d, dom.dat(d).dim))
        .collect()
}

/// Execute a planned migration over the **old** layouts: each old owner
/// packs `[gid, dat slices...]` per moved element per destination peer
/// and ships it through the transport; the received payloads are
/// verified against the plan's renumbering tables and applied to the
/// global domain. Returns per-rank counters (bytes/elements shipped).
///
/// The applied values travelled the wire — after this call the moved
/// elements' global values are whatever the transport delivered, which
/// is what makes the end-to-end bitwise tests a real transport check.
pub fn ship_migration(
    dom: &mut Domain,
    old_layouts: &[RankLayout],
    plan: &MigrationPlan,
    opts: &RunOptions,
) -> Result<Vec<RebalanceRec>, RuntimeError> {
    assert_eq!(old_layouts.len(), plan.nparts);
    let out = run_distributed_with(dom, old_layouts, opts, |env| {
        let me = env.rank;
        let tag = env.next_tag();
        for ml in plan.outgoing(me) {
            let cap = MigrationPlan::wire_f64s(env.dom, ml);
            let mut payload = env.comm.take_buf(ml.to, cap);
            for sm in &ml.sets {
                let sl = &env.layout.sets[sm.set.idx()];
                let g2l: HashMap<u32, usize> = sl.locals[..sl.n_owned]
                    .iter()
                    .enumerate()
                    .map(|(l, &g)| (g, l))
                    .collect();
                let dats = dats_on(env.dom, sm.set);
                for &gid in &sm.elems {
                    payload.push(gid as f64);
                    let l = *g2l
                        .get(&gid)
                        .expect("move list names an element this rank does not own");
                    for &(d, dim) in &dats {
                        payload.extend_from_slice(&env.dats[d.idx()][l * dim..(l + 1) * dim]);
                    }
                }
            }
            debug_assert_eq!(payload.len(), cap);
            env.trace.rebalance.elements_out += ml.elements() as u64;
            env.trace.rebalance.bytes_out += (payload.len() * 8) as u64;
            env.comm.isend(ml.to, tag, payload);
        }
        env.trace.rebalance.migrations += 1;
        let mut staged: Vec<(u32, Vec<f64>)> = Vec::new();
        for ml in plan.incoming(me) {
            let payload = env.comm.recv(ml.from, tag)?;
            staged.push((ml.from, payload));
        }
        Ok(staged)
    });
    let mut recs = Vec::with_capacity(plan.nparts);
    for t in &out.traces {
        recs.push(t.rebalance);
    }
    let staged = out.unwrap_results();
    for (r, recvd) in staged.into_iter().enumerate() {
        let mut lists = plan.incoming(r as u32);
        for (from, payload) in recvd {
            let ml = lists.next().expect("more payloads than incoming lists");
            assert_eq!(ml.from, from, "migration payloads arrived out of plan order");
            let mut off = 0usize;
            for sm in &ml.sets {
                let dats = dats_on(dom, sm.set);
                for &gid in &sm.elems {
                    assert_eq!(
                        payload[off], gid as f64,
                        "migration renumbering table mismatch (rank {r} from {from})"
                    );
                    off += 1;
                    let g = gid as usize;
                    for &(d, dim) in &dats {
                        dom.dat_mut(d).data[g * dim..(g + 1) * dim]
                            .copy_from_slice(&payload[off..off + dim]);
                        off += dim;
                    }
                }
            }
            assert_eq!(off, payload.len(), "migration payload length mismatch");
        }
        assert!(lists.next().is_none(), "fewer payloads than incoming lists");
    }
    Ok(recs)
}

/// Plan and execute one migration: re-shard the base set from
/// per-element `costs` (weighted RCB over `coords`), diff into move
/// lists, ship the moved elements, and return the rebuilt layouts plus
/// counters. Returns `None` when the re-shard moves nothing (already
/// balanced under the given costs).
///
/// The caller owns the epoch fence: call [`fence_slots`] on any carried
/// supervisor state (and, in the resident service, re-key the world)
/// before running on the returned layouts.
#[allow(clippy::too_many_arguments)]
pub fn rebalance(
    dom: &mut Domain,
    base: SetId,
    coords: DatId,
    dims: usize,
    layouts: &[RankLayout],
    costs: &[f64],
    imbalance_before_milli: u64,
    opts: &RunOptions,
) -> Result<Option<RebalanceOutcome>, RuntimeError> {
    let nparts = layouts.len();
    let t0 = Instant::now();
    let new_base = rcb_partition_weighted(&dom.dat(coords).data, dims, costs, nparts);
    let old = ownership_from_layouts(dom, layouts);
    let plan = plan_migration(dom, base, &old, new_base, layouts[0].depth);
    let replan_ns = t0.elapsed().as_nanos() as u64;
    if plan.moves.is_empty() {
        return Ok(None);
    }
    let imbalance_after_milli = predicted_ratio_milli(costs, &plan.base_owner, nparts);
    let mut per_rank = ship_migration(dom, layouts, &plan, opts)?;
    let mut rec = RebalanceRec::default();
    for r in &mut per_rank {
        r.replans = 1;
        r.replan_ns = replan_ns;
        r.imbalance_before_milli = imbalance_before_milli;
        r.imbalance_after_milli = imbalance_after_milli;
        rec.add(r);
    }
    rec.migrations = 1;
    rec.replans = 1;
    rec.replan_ns = replan_ns;
    let MigrationPlan {
        base_owner, layouts, ..
    } = plan;
    Ok(Some(RebalanceOutcome {
        layouts,
        base_owner,
        rec,
        per_rank,
    }))
}

/// Epoch fence over carried supervisor state after a migration: bump
/// each slot's layout epoch, discard checkpoints and journal entries of
/// the old layout (their dats, tags and boundary counters describe
/// index spaces that no longer exist), bump the carried plan cache's
/// layout epoch (cascading a registry invalidation when attached), and
/// drop the carried thread context (its schedule cache keys could
/// collide with same-range colorings of the new localized maps).
/// Transport payload pools are content-neutral and survive.
pub fn fence_slots(slots: &[Arc<Mutex<RankState>>]) {
    for slot in slots {
        let mut st = slot.lock().unwrap_or_else(|p| p.into_inner());
        st.layout_epoch += 1;
        let cur = st.layout_epoch;
        st.checkpoints.retain(|c| c.layout_epoch == cur);
        st.journal.clear();
        st.restore = false;
        if let Some(plans) = st.plans.as_mut() {
            plans.bump_epoch();
        }
        st.threads = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ChainRec, LoopRec};

    fn trace_with(walls: &[u64]) -> RankTrace {
        let mut t = RankTrace::default();
        for &w in walls {
            t.loops.push(LoopRec {
                wall_ns: w,
                ..LoopRec::default()
            });
        }
        t
    }

    #[test]
    fn config_knob_parsing() {
        let d = RebalanceConfig::parse(None, None).unwrap();
        assert_eq!(d.threshold, 1.25);
        assert_eq!(d.window, 8);
        let c = RebalanceConfig::parse(Some("1.5"), Some("4")).unwrap();
        assert_eq!(c.threshold, 1.5);
        assert_eq!(c.window, 4);
        assert!(matches!(
            RebalanceConfig::parse(Some("0.5"), None),
            Err(ConfigError::RebalanceThreshold { .. })
        ));
        assert!(matches!(
            RebalanceConfig::parse(Some("nope"), None),
            Err(ConfigError::RebalanceThreshold { .. })
        ));
        assert!(matches!(
            RebalanceConfig::parse(None, Some("0")),
            Err(ConfigError::RebalanceWindow { .. })
        ));
    }

    #[test]
    fn detector_windows_and_triggers() {
        // Rank 1 is 3x slower over the window: ratio = 3 / 1.5 = 2.
        let traces = vec![trace_with(&[100; 4]), trace_with(&[300; 4])];
        let est = LoadEstimate::from_traces(&traces, 4);
        assert_eq!(est.per_rank_ns, vec![400, 1200]);
        assert!((est.ratio() - 1.5).abs() < 1e-12);
        assert_eq!(est.imbalance_milli(), 1500);

        // The window slides: only the last 2 units count.
        let traces = vec![trace_with(&[1000, 100, 100]), trace_with(&[1, 100, 100])];
        let est = LoadEstimate::from_traces(&traces, 2);
        assert_eq!(est.per_rank_ns, vec![200, 200]);
        assert!((est.ratio() - 1.0).abs() < 1e-12);

        let cfg = RebalanceConfig::default().threshold(1.4).window(4);
        let hot = vec![trace_with(&[100; 4]), trace_with(&[300; 4])];
        assert!(detect(&hot, &cfg).is_some());
        let cfg = cfg.threshold(1.6);
        assert!(detect(&hot, &cfg).is_none());
        // Threshold 0 always triggers (forced-migration test hook).
        let cfg = cfg.threshold(0.0);
        assert!(detect(&[trace_with(&[]), trace_with(&[])], &cfg).is_some());
    }

    #[test]
    fn unmeasured_world_is_balanced() {
        let est = LoadEstimate::from_traces(&[RankTrace::default(), RankTrace::default()], 8);
        assert_eq!(est.ratio(), 1.0);
        let mut t = RankTrace::default();
        t.chains.push(ChainRec::default());
        assert_eq!(LoadEstimate::from_traces(&[t], 8).ratio(), 1.0);
    }

    #[test]
    fn predicted_ratio_counts_new_owners() {
        let costs = vec![1.0, 1.0, 1.0, 3.0];
        // All on one rank: max 6 / mean 3 = 2.
        assert_eq!(predicted_ratio_milli(&costs, &[0, 0, 0, 0], 2), 2000);
        // Split hot element off: 3 vs 3 — balanced.
        assert_eq!(predicted_ratio_milli(&costs, &[0, 0, 0, 1], 2), 1000);
    }
}
