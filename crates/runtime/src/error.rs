//! Runtime-layer error taxonomy.
//!
//! [`RuntimeError`] is the error type the executors return: it extends
//! the core DSL's [`CoreError`] with the transport failures
//! ([`CommError`]) that only exist once a program actually runs
//! distributed. [`RankFailure`] is one level further out — the
//! per-rank verdict the harness reports after containing panics.

use crate::comm::CommError;
use op2_core::error::CoreError;
use std::fmt;

/// Errors surfaced while executing a distributed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Transport failure (timeout, tag mismatch, corruption, hangup).
    Comm(CommError),
    /// A core-layer declaration/validation error reached the runtime.
    Core(CoreError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Comm(e) => write!(f, "communication failed: {e}"),
            RuntimeError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Comm(e) => Some(e),
            RuntimeError::Core(e) => Some(e),
        }
    }
}

impl From<CommError> for RuntimeError {
    fn from(e: CommError) -> Self {
        RuntimeError::Comm(e)
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

/// Why one rank of a distributed run did not produce a result. Produced
/// by the harness: a rank either returned a [`RuntimeError`] or
/// panicked (including injected crashes), in which case the panic was
/// contained by `catch_unwind` and its message captured here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankFailure {
    /// The rank's program returned an error.
    Failed {
        /// The failing rank.
        rank: u32,
        /// What went wrong.
        error: RuntimeError,
    },
    /// The rank's thread panicked; the harness contained it.
    Panicked {
        /// The panicking rank.
        rank: u32,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl RankFailure {
    /// The rank this failure belongs to.
    pub fn rank(&self) -> u32 {
        match self {
            RankFailure::Failed { rank, .. } | RankFailure::Panicked { rank, .. } => *rank,
        }
    }
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankFailure::Failed { rank, error } => write!(f, "rank {rank} failed: {error}"),
            RankFailure::Panicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RankFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn displays_nest_the_cause() {
        let e = RuntimeError::from(CommError::Timeout {
            from: 3,
            tag: 9,
            waited: Duration::from_millis(5),
            retries: 2,
        });
        let s = e.to_string();
        assert!(s.contains("communication failed"), "{s}");
        assert!(s.contains("rank 3"), "{s}");
        let rf = RankFailure::Failed { rank: 1, error: e };
        assert_eq!(rf.rank(), 1);
        assert!(rf.to_string().contains("rank 1 failed"), "{rf}");
    }

    #[test]
    fn core_errors_convert() {
        let e: RuntimeError = CoreError::UnknownSet("cells".into()).into();
        assert!(matches!(e, RuntimeError::Core(_)));
        assert!(e.to_string().contains("cells"));
    }
}
