//! Runtime-layer error taxonomy.
//!
//! [`RuntimeError`] is the error type the executors return: it extends
//! the core DSL's [`CoreError`] with the transport failures
//! ([`CommError`]) that only exist once a program actually runs
//! distributed. [`RankFailure`] is one level further out — the
//! per-rank verdict the harness reports after containing panics.

use crate::comm::CommError;
use crate::trace::RankTrace;
use op2_core::error::CoreError;
use std::fmt;

/// A malformed runtime configuration knob — an environment variable (or
/// the programmatic equivalent) that failed to parse. Reported once at
/// startup as a typed error instead of a panic inside a rank thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `OP2_THREADS` was not `auto`, `0`, or a positive integer.
    Threads {
        /// The rejected value.
        value: String,
    },
    /// `OP2_BLOCK_SIZE` was not `auto` or a positive integer.
    BlockSize {
        /// The rejected value.
        value: String,
    },
    /// `OP2_CKPT_EVERY` was not a positive integer.
    CkptEvery {
        /// The rejected value.
        value: String,
    },
    /// `OP2_SERVE_MAX_INFLIGHT` was not a positive integer.
    ServeMaxInflight {
        /// The rejected value.
        value: String,
    },
    /// `OP2_SERVE_BATCH` was not a boolean (`0`/`1`/`true`/`false`).
    ServeBatch {
        /// The rejected value.
        value: String,
    },
    /// `OP2_TUNER` was not `auto`, `op2`, `ca`, or `tiled`.
    Tuner {
        /// The rejected value.
        value: String,
    },
    /// `OP2_REBALANCE_THRESHOLD` was not a finite number ≥ 1.
    RebalanceThreshold {
        /// The rejected value.
        value: String,
    },
    /// `OP2_REBALANCE_WINDOW` was not a positive integer.
    RebalanceWindow {
        /// The rejected value.
        value: String,
    },
    /// `OP2_FUSE` was not `on`, `off`, or `auto`.
    Fuse {
        /// The rejected value.
        value: String,
    },
    /// `OP2_EXEC` was not `levels`, `dataflow`, or `auto`.
    Exec {
        /// The rejected value.
        value: String,
    },
    /// `OP2_THREAD_PIN` was not a boolean (`0`/`1`/`true`/`false`/`on`/`off`).
    ThreadPin {
        /// The rejected value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Threads { value } => {
                write!(f, "OP2_THREADS must be auto|0|N, got `{value}`")
            }
            ConfigError::BlockSize { value } => {
                write!(f, "OP2_BLOCK_SIZE must be auto or a positive integer, got `{value}`")
            }
            ConfigError::CkptEvery { value } => {
                write!(f, "OP2_CKPT_EVERY must be a positive integer, got `{value}`")
            }
            ConfigError::ServeMaxInflight { value } => write!(
                f,
                "OP2_SERVE_MAX_INFLIGHT must be a positive integer, got `{value}`"
            ),
            ConfigError::ServeBatch { value } => {
                write!(f, "OP2_SERVE_BATCH must be 0|1|true|false, got `{value}`")
            }
            ConfigError::Tuner { value } => {
                write!(f, "OP2_TUNER must be auto|op2|ca|tiled, got `{value}`")
            }
            ConfigError::RebalanceThreshold { value } => write!(
                f,
                "OP2_REBALANCE_THRESHOLD must be a finite number >= 1, got `{value}`"
            ),
            ConfigError::RebalanceWindow { value } => write!(
                f,
                "OP2_REBALANCE_WINDOW must be a positive integer, got `{value}`"
            ),
            ConfigError::Fuse { value } => {
                write!(f, "OP2_FUSE must be on|off|auto, got `{value}`")
            }
            ConfigError::Exec { value } => {
                write!(f, "OP2_EXEC must be levels|dataflow|auto, got `{value}`")
            }
            ConfigError::ThreadPin { value } => {
                write!(f, "OP2_THREAD_PIN must be 0|1|true|false|on|off, got `{value}`")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors surfaced while executing a distributed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Transport failure (timeout, tag mismatch, corruption, hangup).
    Comm(CommError),
    /// A core-layer declaration/validation error reached the runtime.
    Core(CoreError),
    /// A strict-mode executor found a dat's halo shallower than the
    /// chain's inspector promised — an inspector/executor disagreement,
    /// surfaced as a typed fault so supervision can contain it.
    Validity {
        /// The rank that detected the violation.
        rank: u32,
        /// The chain being executed.
        chain: String,
        /// The loop within the chain that needed the data.
        loop_name: String,
        /// The dat whose halo was too shallow.
        dat: String,
        /// Halo depth the loop required.
        need: u8,
        /// Halo depth actually valid.
        have: u8,
    },
    /// A runtime configuration knob failed to parse at startup.
    Config(ConfigError),
    /// Supervised recovery ran out of budget: the fault kept recurring
    /// after `attempts` coordinated rollbacks. Carries the partial
    /// per-rank traces and failures of the final attempt for post
    /// mortem.
    RecoveryExhausted {
        /// Restart attempts consumed (the first run plus retries).
        attempts: u32,
        /// Per-rank traces from the last attempt.
        traces: Vec<RankTrace>,
        /// Per-rank failures from the last attempt.
        failures: Vec<RankFailure>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Comm(e) => write!(f, "communication failed: {e}"),
            RuntimeError::Core(e) => write!(f, "core error: {e}"),
            RuntimeError::Validity {
                rank,
                chain,
                loop_name,
                dat,
                need,
                have,
            } => write!(
                f,
                "rank {rank}: chain `{chain}` loop `{loop_name}` needs dat `{dat}` \
                 valid to depth {need}, have {have}"
            ),
            RuntimeError::Config(e) => write!(f, "invalid runtime configuration: {e}"),
            RuntimeError::RecoveryExhausted {
                attempts, failures, ..
            } => {
                write!(f, "recovery budget exhausted after {attempts} attempt(s)")?;
                for fail in failures {
                    write!(f, "; {fail}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Comm(e) => Some(e),
            RuntimeError::Core(e) => Some(e),
            RuntimeError::Config(e) => Some(e),
            RuntimeError::Validity { .. } | RuntimeError::RecoveryExhausted { .. } => None,
        }
    }
}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::Config(e)
    }
}

impl From<CommError> for RuntimeError {
    fn from(e: CommError) -> Self {
        RuntimeError::Comm(e)
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

/// Why one rank of a distributed run did not produce a result. Produced
/// by the harness: a rank either returned a [`RuntimeError`] or
/// panicked (including injected crashes), in which case the panic was
/// contained by `catch_unwind` and its message captured here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankFailure {
    /// The rank's program returned an error.
    Failed {
        /// The failing rank.
        rank: u32,
        /// What went wrong.
        error: RuntimeError,
    },
    /// The rank's thread panicked; the harness contained it.
    Panicked {
        /// The panicking rank.
        rank: u32,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl RankFailure {
    /// The rank this failure belongs to.
    pub fn rank(&self) -> u32 {
        match self {
            RankFailure::Failed { rank, .. } | RankFailure::Panicked { rank, .. } => *rank,
        }
    }
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankFailure::Failed { rank, error } => write!(f, "rank {rank} failed: {error}"),
            RankFailure::Panicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RankFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn displays_nest_the_cause() {
        let e = RuntimeError::from(CommError::Timeout {
            from: 3,
            tag: 9,
            waited: Duration::from_millis(5),
            retries: 2,
        });
        let s = e.to_string();
        assert!(s.contains("communication failed"), "{s}");
        assert!(s.contains("rank 3"), "{s}");
        let rf = RankFailure::Failed { rank: 1, error: e };
        assert_eq!(rf.rank(), 1);
        assert!(rf.to_string().contains("rank 1 failed"), "{rf}");
    }

    #[test]
    fn core_errors_convert() {
        let e: RuntimeError = CoreError::UnknownSet("cells".into()).into();
        assert!(matches!(e, RuntimeError::Core(_)));
        assert!(e.to_string().contains("cells"));
    }
}
