//! Sets, maps and dats — the OP2 mesh declaration layer.
//!
//! A [`Domain`] owns the *global* (unpartitioned) view of the mesh:
//! declarations mirror OP2's `op_decl_set` / `op_decl_map` / `op_decl_dat`.
//! The distributed back-ends later slice this view into per-rank local
//! pieces; applications and the sequential reference executor work on the
//! global view directly.

use crate::error::{CoreError, Result};

/// Index of a [`Set`] within its [`Domain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(pub u32);

/// Index of a [`MapData`] within its [`Domain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MapId(pub u32);

/// Index of a [`DatData`] within its [`Domain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatId(pub u32);

impl SetId {
    /// The raw index, for use as a `Vec` subscript.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl MapId {
    /// The raw index, for use as a `Vec` subscript.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl DatId {
    /// The raw index, for use as a `Vec` subscript.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A collection of mesh elements of one kind (`op_set`).
#[derive(Debug, Clone)]
pub struct Set {
    /// Human-readable name, unique within the domain.
    pub name: String,
    /// Number of elements.
    pub size: usize,
}

/// Explicit connectivity from every element of `from` to `arity` elements
/// of `to` (`op_map`). Entry `i` of element `e` lives at
/// `values[e * arity + i]`.
#[derive(Debug, Clone)]
pub struct MapData {
    /// Human-readable name, unique within the domain.
    pub name: String,
    /// Iteration-side set.
    pub from: SetId,
    /// Data-side set.
    pub to: SetId,
    /// Number of target elements per source element.
    pub arity: usize,
    /// Flattened `from.size * arity` target indices.
    pub values: Vec<u32>,
}

/// Data attached to every element of a set (`op_dat`). All dats are `f64`;
/// an element occupies `dim` consecutive values, so the per-element payload
/// is `dim * 8` bytes (the `δ` of Eq 4 in the paper).
#[derive(Debug, Clone)]
pub struct DatData {
    /// Human-readable name, unique within the domain.
    pub name: String,
    /// Owning set.
    pub set: SetId,
    /// Components per element.
    pub dim: usize,
    /// Flattened `set.size * dim` values.
    pub data: Vec<f64>,
}

impl DatData {
    /// Per-element payload in bytes (`δ` in Eq 4).
    #[inline]
    pub fn elem_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f64>()
    }
}

/// The global, unpartitioned mesh declaration: every set, map and dat.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    sets: Vec<Set>,
    maps: Vec<MapData>,
    dats: Vec<DatData>,
}

impl Domain {
    /// An empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a set of `size` elements (`op_decl_set`).
    pub fn decl_set(&mut self, name: &str, size: usize) -> SetId {
        debug_assert!(
            self.set_by_name(name).is_none(),
            "duplicate set name `{name}`"
        );
        self.sets.push(Set {
            name: name.to_string(),
            size,
        });
        SetId((self.sets.len() - 1) as u32)
    }

    /// Declare a map (`op_decl_map`). Validates that every entry is in
    /// range for the target set.
    pub fn decl_map(
        &mut self,
        name: &str,
        from: SetId,
        to: SetId,
        arity: usize,
        values: Vec<u32>,
    ) -> Result<MapId> {
        assert_eq!(
            values.len(),
            self.set(from).size * arity,
            "map `{name}`: values length must be from.size * arity"
        );
        let to_size = self.set(to).size;
        if let Some((entry, &v)) = values
            .iter()
            .enumerate()
            .find(|(_, &v)| v as usize >= to_size)
        {
            return Err(CoreError::MapOutOfRange {
                map: name.to_string(),
                entry,
                value: v as usize,
                to_size,
            });
        }
        self.maps.push(MapData {
            name: name.to_string(),
            from,
            to,
            arity,
            values,
        });
        Ok(MapId((self.maps.len() - 1) as u32))
    }

    /// Declare a dat (`op_decl_dat`) with initial `data`.
    pub fn decl_dat(&mut self, name: &str, set: SetId, dim: usize, data: Vec<f64>) -> DatId {
        assert_eq!(
            data.len(),
            self.set(set).size * dim,
            "dat `{name}`: data length must be set.size * dim"
        );
        self.dats.push(DatData {
            name: name.to_string(),
            set,
            dim,
            data,
        });
        DatId((self.dats.len() - 1) as u32)
    }

    /// Declare a zero-initialised dat.
    pub fn decl_dat_zeros(&mut self, name: &str, set: SetId, dim: usize) -> DatId {
        let n = self.set(set).size * dim;
        self.decl_dat(name, set, dim, vec![0.0; n])
    }

    /// Borrow a set.
    #[inline]
    pub fn set(&self, id: SetId) -> &Set {
        &self.sets[id.idx()]
    }

    /// Borrow a map.
    #[inline]
    pub fn map(&self, id: MapId) -> &MapData {
        &self.maps[id.idx()]
    }

    /// Mutably borrow a map — used by renumbering utilities
    /// (partition-local relabelling, shuffles). Callers must keep every
    /// value within the target set's range.
    #[inline]
    pub fn map_mut(&mut self, id: MapId) -> &mut MapData {
        &mut self.maps[id.idx()]
    }

    /// Borrow a dat.
    #[inline]
    pub fn dat(&self, id: DatId) -> &DatData {
        &self.dats[id.idx()]
    }

    /// Mutably borrow a dat's payload.
    #[inline]
    pub fn dat_mut(&mut self, id: DatId) -> &mut DatData {
        &mut self.dats[id.idx()]
    }

    /// All sets in declaration order.
    pub fn sets(&self) -> &[Set] {
        &self.sets
    }

    /// All maps in declaration order.
    pub fn maps(&self) -> &[MapData] {
        &self.maps
    }

    /// All dats in declaration order.
    pub fn dats(&self) -> &[DatData] {
        &self.dats
    }

    /// Number of declared sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of declared maps.
    pub fn n_maps(&self) -> usize {
        self.maps.len()
    }

    /// Number of declared dats.
    pub fn n_dats(&self) -> usize {
        self.dats.len()
    }

    /// Look a set up by name.
    pub fn set_by_name(&self, name: &str) -> Option<SetId> {
        self.sets
            .iter()
            .position(|s| s.name == name)
            .map(|i| SetId(i as u32))
    }

    /// Look a map up by name.
    pub fn map_by_name(&self, name: &str) -> Option<MapId> {
        self.maps
            .iter()
            .position(|m| m.name == name)
            .map(|i| MapId(i as u32))
    }

    /// Look a dat up by name.
    pub fn dat_by_name(&self, name: &str) -> Option<DatId> {
        self.dats
            .iter()
            .position(|d| d.name == name)
            .map(|i| DatId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 4);
        let edges = dom.decl_set("edges", 3);
        assert_eq!(dom.set(nodes).size, 4);
        assert_eq!(dom.set_by_name("edges"), Some(edges));
        assert_eq!(dom.set_by_name("cells"), None);

        let e2n = dom
            .decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2, 2, 3])
            .unwrap();
        assert_eq!(dom.map(e2n).arity, 2);
        assert_eq!(dom.map_by_name("e2n"), Some(e2n));

        let x = dom.decl_dat("x", nodes, 2, vec![0.0; 8]);
        assert_eq!(dom.dat(x).elem_bytes(), 16);
        let z = dom.decl_dat_zeros("z", edges, 1);
        assert_eq!(dom.dat(z).data.len(), 3);
    }

    #[test]
    fn map_range_checked() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 2);
        let edges = dom.decl_set("edges", 1);
        let err = dom.decl_map("bad", edges, nodes, 2, vec![0, 5]).unwrap_err();
        match err {
            CoreError::MapOutOfRange { entry, value, .. } => {
                assert_eq!(entry, 1);
                assert_eq!(value, 5);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
