//! # op2-core
//!
//! The core of an OP2-style embedded DSL for unstructured-mesh
//! applications, reproduced from *"Communication-Avoiding Optimizations for
//! Large-Scale Unstructured-Mesh Applications with OP2"* (ICPP 2023).
//!
//! The OP2 abstraction describes a computation as:
//!
//! * **sets** ([`Set`]) — collections of mesh elements (nodes, edges, cells,
//!   boundary faces, …), declared with `op_decl_set` in OP2;
//! * **maps** ([`MapData`]) — explicit connectivity between sets
//!   (`op_decl_map`), e.g. an edges→nodes map of arity 2;
//! * **dats** ([`DatData`]) — data associated with every element of a set
//!   (`op_decl_dat`), e.g. a 2-component residual per node;
//! * **parallel loops** ([`LoopSpec`]) — a kernel applied to every element
//!   of a set, with *access descriptors* ([`Arg`]) stating which dats are
//!   touched, through which map, and in which [`AccessMode`]
//!   (`op_par_loop` + `op_arg_dat`).
//!
//! On top of this sits the *loop-chain* abstraction ([`chain`]): an ordered
//! sequence of parallel loops with no global synchronisation in between,
//! which a communication-avoiding back-end may execute with a single,
//! deeper, grouped halo exchange instead of one exchange per loop.
//!
//! ## A complete (tiny) program
//!
//! ```
//! use op2_core::{seq, AccessMode, Arg, Args, ChainSpec, Domain, LoopSpec};
//!
//! // Figure 1 in miniature: two edges over three nodes.
//! let mut dom = Domain::new();
//! let nodes = dom.decl_set("nodes", 3);
//! let edges = dom.decl_set("edges", 2);
//! let e2n = dom.decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2]).unwrap();
//! let pres = dom.decl_dat("pres", nodes, 1, vec![1.0, 2.0, 4.0]);
//! let res = dom.decl_dat_zeros("res", nodes, 1);
//!
//! fn update(args: &Args<'_>) {
//!     // res[n0] += pres[n1]; res[n1] += pres[n0]
//!     args.inc(0, 0, args.get(3, 0));
//!     args.inc(1, 0, args.get(2, 0));
//! }
//! let spec = LoopSpec::new(
//!     "update",
//!     edges,
//!     vec![
//!         Arg::dat_indirect(res, e2n, 0, AccessMode::Inc),
//!         Arg::dat_indirect(res, e2n, 1, AccessMode::Inc),
//!         Arg::dat_indirect(pres, e2n, 0, AccessMode::Read),
//!         Arg::dat_indirect(pres, e2n, 1, AccessMode::Read),
//!     ],
//!     update,
//! );
//! spec.validate(&dom).unwrap();
//! seq::run_loop(&mut dom, &spec);
//! assert_eq!(dom.dat(res).data, vec![2.0, 5.0, 2.0]);
//!
//! // Chains carry the halo analysis the CA back-end executes with.
//! let chain = ChainSpec::new("c", vec![spec.clone(), spec], None, &[]).unwrap();
//! assert_eq!(chain.halo_ext, vec![1, 1]); // INC-INC pairs don't ladder
//! ```
//!
//! This crate is entirely serial and machine-agnostic: it holds the data
//! model, the kernel calling convention, the sequential reference executor
//! ([`seq`]), the loop-chain dependency analysis (Alg 3 of the paper,
//! [`chain::calc_halo_layers`]), the shared-memory sparse-tiling schedule
//! and executor ([`tiling`] — the cache-level communication avoidance of
//! §2.2) and the chain configuration-file format described in §3.4 of the
//! paper. Distribution, halos and communication live in `op2-partition` /
//! `op2-runtime`.

// Index-driven loops over parallel per-element arrays are the natural
// idiom in the scheduling/coloring kernels here; keep them.
#![allow(clippy::needless_range_loop)]

pub mod access;
pub mod chain;
pub mod coloring;
pub mod config;
pub mod dag;
pub mod domain;
pub mod error;
pub mod kernel;
pub mod loops;
pub mod par;
pub mod schedule;
pub mod seq;
pub mod tiling;

pub use access::{AccessMode, Arg, GblDecl, GblOp};
pub use coloring::{color_loop, is_valid_coloring, Coloring};
pub use chain::{calc_halo_extents, calc_halo_layers, fusion_groups, halo_exch_dats, import_depths, import_depths_relaxed, ChainSpec, FuseBlock, FusionGroupInfo, FusionPlan, HaloLayers};
pub use config::{parse_chain_config, ChainConfig};
pub use dag::{dag_accesses, ChunkDag};
pub use domain::{DatData, DatId, Domain, MapData, MapId, Set, SetId};
pub use error::{CoreError, Result};
pub use kernel::{Args, KernelFn};
pub use loops::{LoopSig, LoopSpec};
pub use par::{
    adaptive_block_size, color_blocks, color_blocks_raw, conflict_accesses, conflict_degree,
    is_valid_block_coloring, is_valid_block_coloring_raw, BlockColoring, ConflictAccess,
};
pub use schedule::{
    bind_chain, elision_valid, run_chunk, run_elem, run_schedule, run_schedule_ctx,
    run_schedule_threads, slots_for, BoundArg, BoundLoop, Chunk, FusedGroup, Level, Piece,
    SchedCtx, Schedule, ScheduleKind, ScratchBind,
};
pub use tiling::{
    build_tile_plan, is_valid_tile_levels, run_chain_tiled, run_chain_tiled_threads, seed_blocks,
    seed_from_targets, TilePlan,
};
