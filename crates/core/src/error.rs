//! Error type shared by the core DSL layers.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while declaring or validating an OP2-style program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A map entry points past the end of its target set.
    MapOutOfRange {
        map: String,
        entry: usize,
        value: usize,
        to_size: usize,
    },
    /// A declared object refers to a set that does not exist.
    UnknownSet(String),
    /// A loop argument is inconsistent (bad map arity index, wrong set, …).
    BadArg { what: &'static str, detail: String },
    /// The chain configuration file could not be parsed.
    Config { line: usize, msg: String },
    /// A chain references a loop name that does not exist in the program.
    UnknownLoop(String),
    /// A loop-chain violates a chain precondition (e.g. contains a global
    /// reduction, which is a synchronisation point).
    InvalidChain(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MapOutOfRange {
                map,
                entry,
                value,
                to_size,
            } => write!(
                f,
                "map `{map}` entry {entry} = {value} out of range for target set of size {to_size}"
            ),
            CoreError::UnknownSet(name) => write!(f, "unknown set `{name}`"),
            CoreError::BadArg { what, detail } => write!(f, "bad loop argument ({what}): {detail}"),
            CoreError::Config { line, msg } => write!(f, "chain config line {line}: {msg}"),
            CoreError::UnknownLoop(name) => write!(f, "chain references unknown loop `{name}`"),
            CoreError::InvalidChain(msg) => write!(f, "invalid loop-chain: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}
