//! Loop-chain abstraction and the halo-layer dependency analysis.
//!
//! A *loop-chain* (§2.2 of the paper) is an ordered sequence of parallel
//! loops with no global synchronisation point in between. The CA back-end
//! moves all halo exchanges to the start of the chain; in exchange, each
//! loop must redundantly compute over extra halo layers so that later
//! loops' reads are satisfied. [`calc_halo_layers`] is the paper's
//! Algorithm 3: it walks the chain backwards, accumulating how many layers
//! of halo each loop must execute for each dat, then takes the per-loop
//! maximum.

use crate::access::AccessMode;
use crate::domain::DatId;
use crate::error::{CoreError, Result};
use crate::loops::{LoopSig, LoopSpec};

/// A named, validated loop-chain: the loops (in program order) plus the
/// result of the halo-layer analysis.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Chain name (matches the configuration file).
    pub name: String,
    /// Constituent loops in program order.
    pub loops: Vec<LoopSpec>,
    /// Per-loop effective halo extension (`HE_l`), in program order.
    pub halo_ext: Vec<usize>,
    /// Dats the application declares chain-local: produced and consumed
    /// entirely inside this chain, with unspecified contents afterwards.
    /// When a fusion group covers all their accesses they are *elided*
    /// into the per-worker scratch pool (never written to memory). See
    /// [`ChainSpec::with_scratch`].
    pub scratch: Vec<DatId>,
}

impl ChainSpec {
    /// Build a chain from loops, running Algorithm 3 to compute halo
    /// extensions. `max_halo`, when given, caps every `HE_l` (the paper's
    /// configuration file carries a "maximum halo extension" per chain).
    /// `overrides` pins specific loops' extensions (by position), which the
    /// paper's config file also permits.
    pub fn new(
        name: &str,
        loops: Vec<LoopSpec>,
        max_halo: Option<usize>,
        overrides: &[(usize, usize)],
    ) -> Result<Self> {
        if loops.is_empty() {
            return Err(CoreError::InvalidChain("empty chain".into()));
        }
        if let Some(l) = loops.iter().find(|l| l.has_reduction()) {
            return Err(CoreError::InvalidChain(format!(
                "loop `{}` performs a global reduction, a synchronisation point",
                l.name
            )));
        }
        let sigs: Vec<LoopSig> = loops.iter().map(|l| l.sig()).collect();
        // Executors need the dependency-correct transitive extents; the
        // literal Algorithm 3 result stays available via
        // [`calc_halo_layers`] for paper-table reproduction.
        let mut halo_ext = calc_halo_extents(&sigs);
        if let Some(cap) = max_halo {
            for he in &mut halo_ext {
                *he = (*he).min(cap);
            }
        }
        for &(pos, he) in overrides {
            if pos >= halo_ext.len() {
                return Err(CoreError::InvalidChain(format!(
                    "override position {pos} out of range for {}-loop chain",
                    halo_ext.len()
                )));
            }
            halo_ext[pos] = he;
        }
        Ok(ChainSpec {
            name: name.to_string(),
            loops,
            halo_ext,
            scratch: Vec::new(),
        })
    }

    /// Declare `dats` as chain-local intermediates (the OPS temp-dat
    /// idiom): the application promises they are produced by this chain
    /// before being read, and never read again after the chain without
    /// being re-produced. This is the opt-in that allows the fused
    /// executor to keep them scratch-resident — after a fused run their
    /// memory contents are **unspecified** (in practice: untouched) and
    /// their halo validity is reset to 0.
    pub fn with_scratch(mut self, dats: &[DatId]) -> Self {
        for &d in dats {
            if !self.scratch.contains(&d) {
                self.scratch.push(d);
            }
        }
        self
    }

    /// Cross-loop fusion analysis of this chain — see [`fusion_groups`].
    pub fn fusion(&self) -> FusionPlan {
        fusion_groups(&self.sigs(), &self.scratch)
    }

    /// Number of loops (`n` in the paper).
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True for a zero-loop chain (never constructable through `new`).
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Maximum halo extension over the chain — the `r ≤ n` of Eq 3/4: how
    /// many layers must be imported at the start of the chain.
    pub fn max_halo_layers(&self) -> usize {
        self.halo_ext.iter().copied().max().unwrap_or(1)
    }

    /// Loop signatures, in program order.
    pub fn sigs(&self) -> Vec<LoopSig> {
        self.loops.iter().map(|l| l.sig()).collect()
    }

    /// A human-readable execution plan — the analogue of OP2's generated
    /// (and deliberately readable, §3.4) chain code: per loop, the halo
    /// extent, latency-hiding core depth and access summary, plus the
    /// grouped-import plan assuming every dat enters dirty.
    pub fn describe(&self, dom: &crate::Domain) -> String {
        use std::fmt::Write;
        let sigs = self.sigs();
        let cores = core_depths(&sigs);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chain `{}`: {} loops, r = {} halo layers",
            self.name,
            self.len(),
            self.max_halo_layers()
        );
        for (pos, sig) in sigs.iter().enumerate() {
            let accesses: Vec<String> = sig
                .dats()
                .iter()
                .filter_map(|&d| {
                    sig.access_of(d).map(|(mode, ind)| {
                        format!(
                            "{}{}:{}",
                            dom.dat(d).name,
                            if ind { "*" } else { "" },
                            mode.label()
                        )
                    })
                })
                .collect();
            let _ = writeln!(
                out,
                "  [{pos}] {:<18} over {:<8} ext={} core_depth={}  {}",
                sig.name,
                dom.set(sig.set).name,
                self.halo_ext[pos],
                cores[pos],
                accesses.join(" ")
            );
        }
        let imports = import_depths_relaxed(&sigs, &self.halo_ext, &|_| 0);
        let _ = writeln!(
            out,
            "  grouped import (all-dirty entry): {}",
            imports
                .iter()
                .map(|&(d, t)| format!("{}@{t}", dom.dat(d).name))
                .collect::<Vec<_>>()
                .join(", ")
        );
        // Per-loop fusion eligibility and the elided intermediates, so a
        // plan dump explains why the chain did (not) fuse.
        let fusion = self.fusion();
        if fusion.has_fusion() {
            for g in &fusion.groups {
                let elided: Vec<&str> = g
                    .elided
                    .iter()
                    .map(|&d| dom.dat(d).name.as_str())
                    .collect();
                let _ = writeln!(
                    out,
                    "  fusion: loops [{}-{}] fuse{}",
                    g.start,
                    g.end - 1,
                    if elided.is_empty() {
                        String::new()
                    } else {
                        format!(" — elides {}", elided.join(", "))
                    }
                );
            }
        } else {
            let _ = writeln!(out, "  fusion: none");
        }
        for (pos, b) in fusion.blockers.iter().enumerate() {
            if let Some(b) = b {
                let why = match b {
                    FuseBlock::SetChange => "iteration set changes".to_string(),
                    FuseBlock::SharedHazard(d) => format!(
                        "shared dat `{}` mixes indirect access with modification",
                        dom.dat(*d).name
                    ),
                    FuseBlock::Reduction => "global reduction".to_string(),
                };
                let _ = writeln!(out, "  fusion blocked at [{pos}]: {why}");
            }
        }
        out
    }
}

/// Why a loop could not join its predecessor's fusion group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseBlock {
    /// Different iteration set than the running group.
    SetChange,
    /// A dat shared with the group mixes indirect access with
    /// modification — interleaving would reorder its per-location ops.
    SharedHazard(DatId),
    /// The loop carries a global reduction (a synchronisation point;
    /// unreachable through [`ChainSpec::new`], which rejects them).
    Reduction,
}

/// One maximal run of fusable adjacent loops (≥ 2 members).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroupInfo {
    /// First member (chain-loop index, inclusive).
    pub start: usize,
    /// One past the last member.
    pub end: usize,
    /// Declared-scratch dats whose every access lies inside this group
    /// as one direct Write followed by direct Reads — elidable into the
    /// worker scratch pool. (The schedule build re-verifies that the
    /// chosen lowering actually keeps every consumer inside a fused
    /// piece before applying the elision.)
    pub elided: Vec<DatId>,
}

impl FusionGroupInfo {
    /// Member chain-loop indices, in program order.
    pub fn members(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Number of member loops.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Never true: groups always hold ≥ 2 loops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The chain-level fusion plan: which adjacent loops may interleave per
/// element, and why the others may not.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FusionPlan {
    /// Fusable runs (≥ 2 loops each), in program order.
    pub groups: Vec<FusionGroupInfo>,
    /// Per chain loop: index into `groups`, if fused.
    pub group_of: Vec<Option<usize>>,
    /// Per chain loop: why it could not extend the preceding run (`None`
    /// for loop 0 and for loops that did fuse backwards).
    pub blockers: Vec<Option<FuseBlock>>,
}

impl FusionPlan {
    /// Whether any loops fuse at all.
    pub fn has_fusion(&self) -> bool {
        !self.groups.is_empty()
    }

    /// All elided dats across groups.
    pub fn elided(&self) -> Vec<DatId> {
        self.groups.iter().flat_map(|g| g.elided.clone()).collect()
    }
}

/// Cross-loop fusion legality analysis.
///
/// Two adjacent loops may interleave per element (`A(e); B(e); A(e+1);
/// …`) iff they iterate the same set and every dat they share is either
/// **read-only in both** (order of reads is immaterial) or **accessed
/// only directly in both** (element `e`'s ops touch only location `e`,
/// so the per-location op sequence `A(e); B(e)` equals the unfused
/// one). A shared dat that is modified and touched indirectly on either
/// side is a hazard: unfused, *all* of `A`'s ops precede *all* of `B`'s
/// on every location; fused, `B(e)` would run before `A(e+1)` reaches
/// the same location through a map. Greedy scan left to right, merging
/// maximal runs; the per-location argument is transitive over the run
/// because the compatibility summary accumulates every member's
/// accesses.
///
/// `scratch` lists the chain's declared chain-local dats
/// ([`ChainSpec::with_scratch`]); a scratch dat whose accesses all fall
/// in one group as a direct Write followed by direct Reads is marked
/// elidable.
pub fn fusion_groups(sigs: &[LoopSig], scratch: &[DatId]) -> FusionPlan {
    let n = sigs.len();
    let mut group_of: Vec<Option<usize>> = vec![None; n];
    let mut blockers: Vec<Option<FuseBlock>> = vec![None; n];
    let mut runs: Vec<(usize, usize)> = Vec::new();

    // Accumulated access summary of the current run: (dat, modifies,
    // indirect) merged over members.
    let mut summary: Vec<(DatId, bool, bool)> = Vec::new();
    let mut start = 0usize;
    let seed = |summary: &mut Vec<(DatId, bool, bool)>, sig: &LoopSig| {
        summary.clear();
        for d in sig.dats() {
            if let Some((mode, ind)) = sig.access_of(d) {
                summary.push((d, mode.modifies(), ind));
            }
        }
    };
    if n > 0 {
        seed(&mut summary, &sigs[0]);
    }
    for l in 1..n {
        let block = fuse_block(&sigs[start], &summary, &sigs[l]);
        match block {
            None => {
                // Merge l's accesses into the running summary.
                for d in sigs[l].dats() {
                    if let Some((mode, ind)) = sigs[l].access_of(d) {
                        match summary.iter_mut().find(|(x, _, _)| *x == d) {
                            Some(e) => {
                                e.1 |= mode.modifies();
                                e.2 |= ind;
                            }
                            None => summary.push((d, mode.modifies(), ind)),
                        }
                    }
                }
            }
            Some(b) => {
                runs.push((start, l));
                blockers[l] = Some(b);
                start = l;
                seed(&mut summary, &sigs[l]);
            }
        }
    }
    if n > 0 {
        runs.push((start, n));
    }

    let mut groups = Vec::new();
    for (s, e) in runs {
        if e - s >= 2 {
            let gi = groups.len();
            for item in group_of.iter_mut().take(e).skip(s) {
                *item = Some(gi);
            }
            groups.push(FusionGroupInfo {
                start: s,
                end: e,
                elided: Vec::new(),
            });
        }
    }

    // Scratch elision: every access of the dat inside one group, shaped
    // as one direct Write then direct Reads.
    for &d in scratch {
        let accesses: Vec<(usize, AccessMode, bool)> = sigs
            .iter()
            .enumerate()
            .filter_map(|(l, s)| s.access_of(d).map(|(m, i)| (l, m, i)))
            .collect();
        let Some(&(first, fmode, find)) = accesses.first() else {
            continue;
        };
        let Some(g) = group_of[first] else { continue };
        let same_group = accesses.iter().all(|&(l, _, _)| group_of[l] == Some(g));
        let producer_ok = fmode == AccessMode::Write && !find;
        let consumers_ok = accesses.len() >= 2
            && accesses[1..]
                .iter()
                .all(|&(_, m, i)| m == AccessMode::Read && !i);
        if same_group && producer_ok && consumers_ok {
            groups[g].elided.push(d);
        }
    }

    FusionPlan {
        groups,
        group_of,
        blockers,
    }
}

/// Whether `next` may extend a run starting at `first` whose accumulated
/// access summary is `summary`. `None` = fusable; `Some` names the
/// blocker.
fn fuse_block(
    first: &LoopSig,
    summary: &[(DatId, bool, bool)],
    next: &LoopSig,
) -> Option<FuseBlock> {
    if next.args.iter().any(
        |a| matches!(a, crate::access::Arg::Gbl { mode, .. } if mode.modifies()),
    ) {
        return Some(FuseBlock::Reduction);
    }
    if next.set != first.set {
        return Some(FuseBlock::SetChange);
    }
    for d in next.dats() {
        let Some((mode_b, ind_b)) = next.access_of(d) else {
            continue;
        };
        let Some(&(_, mod_g, ind_g)) = summary.iter().find(|(x, _, _)| *x == d) else {
            continue;
        };
        let both_readonly = !mod_g && !mode_b.modifies();
        let both_direct = !ind_g && !ind_b;
        if !(both_readonly || both_direct) {
            return Some(FuseBlock::SharedHazard(d));
        }
    }
    None
}

/// Output of [`calc_halo_layers`] (Algorithm 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloLayers {
    /// Distinct dats considered, in first-appearance order.
    pub dats: Vec<DatId>,
    /// `per_dat[l][k]` = halo extension required by loop `l` (program
    /// order) for dat `dats[k]`.
    pub per_dat: Vec<Vec<usize>>,
    /// `per_loop[l]` = `HE_l` = max over dats (at least 1).
    pub per_loop: Vec<usize>,
}

/// Algorithm 3 of the paper, implemented literally.
///
/// Walks loops from last (`n-1`) to first (`0`). For each dat it tracks
/// `halo_ext` (layers demanded by later loops' indirect reads) and
/// `ind_rd` (is the most recent relevant access an indirect read?). The
/// three branches, in the paper's order:
///
/// 1. `ind_rd` ∧ mode ∈ {WRITE, INC, RW} → this loop must produce
///    `halo_ext + 1` layers; reset.
/// 2. indirect ∧ mode ∈ {READ, RW} → one more layer demanded from earlier
///    producers; `ind_rd := true`.
/// 3. direct ∧ mode ∈ {READ, RW} → a direct read needs only the standard
///    single layer; reset.
///
/// Note (also recorded in DESIGN.md): applied to Table 3's `weight` chain
/// this literal transcription reproduces 4 of the 5 published `HE_l`
/// values; the `centreline` WRITE loop computes 1 where the paper's table
/// lists 2. The paper's configuration file can override per-loop
/// extensions, which [`ChainSpec::new`] supports.
pub fn calc_halo_layers(sigs: &[LoopSig]) -> HaloLayers {
    let n = sigs.len();
    // Distinct dats in first-appearance order.
    let mut dats: Vec<DatId> = Vec::new();
    for s in sigs {
        for d in s.dats() {
            if !dats.contains(&d) {
                dats.push(d);
            }
        }
    }
    let mut per_dat = vec![vec![1usize; dats.len()]; n];

    for (k, &dat) in dats.iter().enumerate() {
        let mut halo_ext = 0usize;
        let mut ind_rd = false;
        for l in (0..n).rev() {
            per_dat[l][k] = 1;
            let Some((mode, indirect)) = sigs[l].access_of(dat) else {
                continue;
            };
            // Branch 1: a producer below a pending indirect read.
            if ind_rd
                && matches!(
                    mode,
                    AccessMode::Write | AccessMode::Inc | AccessMode::Rw
                )
            {
                per_dat[l][k] = halo_ext + 1;
                halo_ext = 0;
                ind_rd = false;
                continue;
            }
            // Branch 2: an indirect read demands one more layer.
            if indirect && matches!(mode, AccessMode::Read | AccessMode::Rw) {
                halo_ext += 1;
                per_dat[l][k] = halo_ext;
                ind_rd = true;
                continue;
            }
            // Branch 3: a direct read resets the demand.
            if !indirect && matches!(mode, AccessMode::Read | AccessMode::Rw) {
                per_dat[l][k] = 1;
                halo_ext = 0;
                ind_rd = false;
                continue;
            }
        }
    }

    let per_loop = (0..n)
        .map(|l| per_dat[l].iter().copied().max().unwrap_or(1).max(1))
        .collect();
    HaloLayers {
        dats,
        per_dat,
        per_loop,
    }
}

/// Transitive halo-extent analysis — the dependency-correct variant the
/// executors use.
///
/// The paper's prose (§3.1) states the requirement directly: in a chain
/// where each loop updates a dat the next loop reads, "to compute I
/// iterations of the last loop, the loops L_{n-1}, …, L_0 should be
/// iterating over I plus halo depths of 1, 2, …, n respectively". The
/// printed Algorithm 3 tracks each dat *independently* and therefore does
/// not propagate depth through such ladders (it yields 2 for every
/// producer). This function computes the fixpoint the prose demands:
///
/// * `E[n-1] = 1` baseline; every loop executes at least one halo layer
///   (owner-compute needs ring 1 for indirect increments, exactly
///   standard OP2's import-execute halo);
/// * if loop `m` reads dat `d` *indirectly* at depth `E[m]`, the latest
///   preceding modifier `l` of `d` must produce `d` valid to depth `E[m]`,
///   i.e. `E[l] ≥ E[m] + 1` when `l` modifies `d` indirectly (ring
///   `E[l]` holds partial sums, so validity is `E[l] − 1`), or
///   `E[l] ≥ E[m]` when `l` writes `d` directly;
/// * a *direct* read by `m` demands validity `E[m]` likewise.
///
/// Iterating backwards once suffices because demands only flow from later
/// to earlier loops.
pub fn calc_halo_extents(sigs: &[LoopSig]) -> Vec<usize> {
    let n = sigs.len();
    let mut ext = vec![1usize; n];
    // For each loop (reverse order), record the validity depth demanded of
    // each dat by this loop and later ones.
    let mut demand: Vec<(DatId, usize)> = Vec::new();
    let demand_of = |demand: &[(DatId, usize)], d: DatId| {
        demand
            .iter()
            .rev()
            .find(|(x, _)| *x == d)
            .map(|(_, v)| *v)
    };
    let set_demand = |demand: &mut Vec<(DatId, usize)>, d: DatId, v: usize| {
        if let Some(entry) = demand.iter_mut().find(|(x, _)| *x == d) {
            entry.1 = v;
        } else {
            demand.push((d, v));
        }
    };

    for l in (0..n).rev() {
        // 1. This loop's execution depth must satisfy the strongest
        //    outstanding demand on any dat it modifies.
        let mut e = 1usize;
        for d in sigs[l].dats() {
            let Some((mode, indirect)) = sigs[l].access_of(d) else {
                continue;
            };
            if mode.modifies() {
                if let Some(v) = demand_of(&demand, d) {
                    // Indirect modification poisons its outermost ring.
                    let need = if indirect { v + 1 } else { v };
                    e = e.max(need);
                }
            }
        }
        ext[l] = e;
        // 2. Now that E[l] is fixed, this loop's own reads place demands
        //    on earlier producers; its modifications *satisfy* (clear)
        //    later demands.
        for d in sigs[l].dats() {
            let Some((mode, indirect)) = sigs[l].access_of(d) else {
                continue;
            };
            if mode.modifies() {
                // Earlier loops only need to satisfy *this* loop's reads
                // of d from now on.
                set_demand(&mut demand, d, 0);
            }
            if mode.reads() {
                // Reading at depth E[l]: indirect reads touch rings ≤ E[l]
                // of the data set; direct reads (and INC's
                // read-modify-write of prior values) need validity E[l]
                // too — but an indirect INC only *consumes* rings that end
                // up valid, demanding E[l] − 1 … conservatively we demand
                // the full E[l] for RW/Read and E[l] for Inc prior values.
                let need = if indirect && mode == AccessMode::Inc {
                    // Prior values on rings ≤ E[l] are incremented; ring
                    // E[l] becomes partial anyway, so correctness of the
                    // final valid region (≤ E[l]−1) needs priors ≤ E[l]−1.
                    ext[l].saturating_sub(1)
                } else {
                    ext[l]
                };
                let cur = demand_of(&demand, d).unwrap_or(0);
                set_demand(&mut demand, d, cur.max(need));
            }
        }
    }
    ext
}

/// Validity depth a loop at halo extent `ext` demands of a dat accessed
/// with (`mode`, `indirect`):
///
/// * indirect READ/RW from executed rings ≤ ext touches data rings up to
///   `max(ext, 1)` (even owned iterations read the ring-1 frontier);
/// * direct READ/RW touches exactly the executed rings;
/// * indirect INC consumes prior values only where the result must end
///   up correct, rings ≤ ext − 1;
/// * pure writes need no prior halo values.
pub fn read_requirement(mode: AccessMode, indirect: bool, ext: usize) -> usize {
    match (mode, indirect) {
        (AccessMode::Read | AccessMode::Rw, true) => ext.max(1),
        (AccessMode::Read | AccessMode::Rw, false) => ext,
        (AccessMode::Inc, true) => ext.saturating_sub(1),
        (AccessMode::Inc, false) => ext,
        (AccessMode::Write, _) => 0,
    }
}

/// Validity depth a loop at extent `ext` leaves behind on a dat it
/// modifies (`None` = unmodified): indirect modification poisons its
/// outermost executed ring with partial sums (`ext − 1`); a direct write
/// recomputes rings ≤ ext exactly as the owner does (`ext`).
pub fn produced_validity(mode: AccessMode, indirect: bool, ext: usize) -> Option<usize> {
    if !mode.modifies() {
        return None;
    }
    Some(if indirect {
        ext.saturating_sub(1)
    } else {
        ext
    })
}

/// The grouped-import plan of a chain (the inspection side of Alg 2,
/// lines 1–3): per dat, the depth the initial grouped exchange must
/// deliver, given each dat's validity at chain entry.
///
/// Returns `(dat, depth)` pairs for every dat whose entry validity falls
/// short of its first-use requirement. Panics if the chain's extents are
/// internally inconsistent (a later loop reads deeper than an earlier
/// in-chain modification can provide — only possible with manual
/// overrides pinned too low).
pub fn import_depths(
    sigs: &[LoopSig],
    extents: &[usize],
    entry_validity: &dyn Fn(DatId) -> usize,
) -> Vec<(DatId, usize)> {
    import_depths_mode(sigs, extents, entry_validity, false)
}

/// [`import_depths`] in *relaxed* mode: when a read's requirement exceeds
/// what an earlier in-chain modification produced, the initial grouped
/// import is deepened to cover it instead of panicking. The deep rings
/// then hold *pre-chain* values — exactly the paper's "all communications
/// at the start of the loop-chain" semantics, which tolerates bounded
/// staleness on boundary-subset loops (§2.2's order-independence
/// assumption; the Hydra chains of Tables 3–4 are configured this way).
pub fn import_depths_relaxed(
    sigs: &[LoopSig],
    extents: &[usize],
    entry_validity: &dyn Fn(DatId) -> usize,
) -> Vec<(DatId, usize)> {
    import_depths_mode(sigs, extents, entry_validity, true)
}

fn import_depths_mode(
    sigs: &[LoopSig],
    extents: &[usize],
    entry_validity: &dyn Fn(DatId) -> usize,
    relaxed: bool,
) -> Vec<(DatId, usize)> {
    assert_eq!(sigs.len(), extents.len());
    #[derive(Clone, Copy)]
    enum Sim {
        /// Untouched since chain entry: reads are satisfied by import.
        Initial,
        /// Left at this validity by an in-chain modification.
        Known(usize),
    }
    let mut need: Vec<(DatId, usize)> = Vec::new();
    let mut sim: Vec<(DatId, Sim)> = Vec::new();

    for (sig, &ext) in sigs.iter().zip(extents) {
        for d in sig.dats() {
            let Some((mode, indirect)) = sig.access_of(d) else {
                continue;
            };
            let req = read_requirement(mode, indirect, ext);
            let state = sim.iter().find(|(x, _)| *x == d).map(|(_, s)| *s);
            match state {
                None | Some(Sim::Initial) => {
                    if req > 0 {
                        match need.iter_mut().find(|(x, _)| *x == d) {
                            Some(entry) => entry.1 = entry.1.max(req),
                            None => need.push((d, req)),
                        }
                    }
                    if state.is_none() {
                        sim.push((d, Sim::Initial));
                    }
                }
                Some(Sim::Known(v)) => {
                    if v < req {
                        if relaxed {
                            // Deepen the initial import: rings beyond the
                            // in-chain validity carry pre-chain values.
                            match need.iter_mut().find(|(x, _)| *x == d) {
                                Some(entry) => entry.1 = entry.1.max(req),
                                None => need.push((d, req)),
                            }
                        } else {
                            panic!(
                                "loop `{}` reads a dat at depth {req} but an \
                                 earlier chain loop left it valid only to {v} \
                                 — halo extents are inconsistent (overridden \
                                 too low?)",
                                sig.name
                            );
                        }
                    }
                }
            }
            if let Some(v) = produced_validity(mode, indirect, ext) {
                match sim.iter_mut().find(|(x, _)| *x == d) {
                    Some(entry) => entry.1 = Sim::Known(v),
                    None => sim.push((d, Sim::Known(v))),
                }
            }
        }
    }
    need.retain(|&(d, t)| t > entry_validity(d));
    need
}

/// Latency-hiding core depths per loop of a chain.
///
/// During Alg 2's overlap phase, loop `l` may execute, before the
/// grouped exchange completes, exactly the owned elements whose
/// touched-data region is ordered consistently with every other loop it
/// conflicts with. Alg 2 runs *all* prewait cores first, then every
/// postwait halo region in loop order — so a later loop's prewait core
/// effectively executes *before* an earlier loop's postwait boundary.
/// That reordering is only legal where the two loops' touched regions
/// are disjoint or their accesses commute:
///
/// * two loops that only **read** a shared dat never conflict;
/// * two loops that only **increment** a shared dat commute (the
///   paper's §2.2 order-independence assumption) and never conflict;
/// * every other sharing (read–write, write–read, write–write in any
///   direction) orders loop `B` after loop `A`: `B`'s prewait core must
///   sit strictly inside the region `A`'s postwait phase can touch.
///   `A` at core depth `c` touches the shared dat up to inner depth
///   `c` when its access is *indirect* (its boundary elements reach one
///   map-hop further in) and up to `c − 1` when *direct* — hence
///   `depth(B) ≥ depth(A) + 1` (indirect) or `≥ depth(A)` (direct).
///
/// The executor runs loop `l`'s prewait core over owned elements with
/// inner depth ≥ `core_depths[l]`. The depths are driven by conflict
/// structure, not chain position: for the paper's `vflux` chain
/// (`initres` writes `vres` *directly*; `vflux_edge` reads only
/// chain-external dats) every depth is 1 and the CA cores equal the OP2
/// cores, exactly as Table 5 reports.
pub fn core_depths(sigs: &[LoopSig]) -> Vec<usize> {
    let n = sigs.len();
    let mut depth = vec![1usize; n];
    for l in 0..n {
        let mut d_l = 1usize;
        for d in sigs[l].dats() {
            let Some((mode_b, _)) = sigs[l].access_of(d) else {
                continue;
            };
            for a in 0..l {
                let Some((mode_a, indirect_a)) = sigs[a].access_of(d) else {
                    continue;
                };
                let both_read = !mode_a.modifies() && !mode_b.modifies();
                let both_inc = mode_a == AccessMode::Inc && mode_b == AccessMode::Inc;
                if both_read || both_inc {
                    continue;
                }
                d_l = d_l.max(depth[a] + usize::from(indirect_a));
            }
        }
        depth[l] = d_l;
    }
    depth
}

/// The `halo_exch_dats` step of Alg 2: which dats need their halos
/// synchronised at chain entry?
///
/// A dat is exchanged iff it is *indirectly read* (READ or RW) by some loop
/// of the chain **and** its halo is dirty at that point — i.e. it was
/// modified either before the chain (`initially_dirty`) or by an earlier
/// loop *of the chain* (in which case the redundant computation, not a new
/// message, satisfies the dependency — but the *initial* import must still
/// carry it deep enough, so it is included).
pub fn halo_exch_dats(sigs: &[LoopSig], initially_dirty: &dyn Fn(DatId) -> bool) -> Vec<DatId> {
    let mut out: Vec<DatId> = Vec::new();
    // Dats modified so far while scanning the chain in program order.
    let mut modified: Vec<DatId> = Vec::new();
    for s in sigs {
        for d in s.dats() {
            let Some((mode, indirect)) = s.access_of(d) else {
                continue;
            };
            let reads_halo = indirect && matches!(mode, AccessMode::Read | AccessMode::Rw);
            // INC also reads prior values in the halo it executes over.
            let inc_reads = indirect && mode == AccessMode::Inc;
            if (reads_halo || inc_reads)
                && (initially_dirty(d) || modified.contains(&d))
                && !out.contains(&d)
            {
                out.push(d);
            }
            if mode.modifies() && !modified.contains(&d) {
                modified.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Arg;
    use crate::domain::{DatId, MapId, SetId};

    fn sig(name: &str, set: u32, args: Vec<Arg>) -> LoopSig {
        LoopSig {
            name: name.into(),
            set: SetId(set),
            args,
        }
    }

    const EDGES: u32 = 0;
    fn e2n() -> MapId {
        MapId(0)
    }
    fn dres() -> DatId {
        DatId(0)
    }
    fn dpres() -> DatId {
        DatId(1)
    }
    fn dflux() -> DatId {
        DatId(2)
    }

    /// The paper's Figure 3 chain: update (INC res, READ pres) then
    /// edge_flux (READ res, INC flux). The producer loop needs 2 layers,
    /// the consumer 1 (Fig 7).
    #[test]
    fn two_loop_chain_depths() {
        let update = sig(
            "update",
            EDGES,
            vec![
                Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Inc),
                Arg::dat_indirect(dres(), e2n(), 1, AccessMode::Inc),
                Arg::dat_indirect(dpres(), e2n(), 0, AccessMode::Read),
                Arg::dat_indirect(dpres(), e2n(), 1, AccessMode::Read),
            ],
        );
        let edge_flux = sig(
            "edge_flux",
            EDGES,
            vec![
                Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Read),
                Arg::dat_indirect(dres(), e2n(), 1, AccessMode::Read),
                Arg::dat_indirect(dflux(), e2n(), 0, AccessMode::Inc),
                Arg::dat_indirect(dflux(), e2n(), 1, AccessMode::Inc),
            ],
        );
        let hl = calc_halo_layers(&[update, edge_flux]);
        assert_eq!(hl.per_loop, vec![2, 1]);
    }

    fn ladder(n: usize) -> Vec<LoopSig> {
        // loop i INCs dat i and READs dat i-1 (all indirect).
        (0..n)
            .map(|i| {
                let mut args = vec![Arg::dat_indirect(
                    DatId(i as u32),
                    e2n(),
                    0,
                    AccessMode::Inc,
                )];
                if i > 0 {
                    args.push(Arg::dat_indirect(
                        DatId(i as u32 - 1),
                        e2n(),
                        0,
                        AccessMode::Read,
                    ));
                }
                sig(&format!("l{i}"), EDGES, args)
            })
            .collect()
    }

    /// An n-loop produce/consume ladder requires transitive depths
    /// n, n-1, …, 1 (the §3.1 prose), which [`calc_halo_extents`]
    /// computes. The literal Algorithm 3 tracks dats independently and
    /// reports 2 for every producer — both behaviours are pinned here.
    #[test]
    fn ladder_chain_max_depth() {
        let sigs = ladder(5);
        assert_eq!(calc_halo_extents(&sigs), vec![5, 4, 3, 2, 1]);
        let hl = calc_halo_layers(&sigs);
        assert_eq!(hl.per_loop, vec![2, 2, 2, 2, 1]);
    }

    /// On a single producer/consumer pair the two analyses agree.
    #[test]
    fn extents_match_alg3_on_two_loop_chain() {
        let sigs = ladder(2);
        assert_eq!(calc_halo_extents(&sigs), vec![2, 1]);
        assert_eq!(calc_halo_layers(&sigs).per_loop, vec![2, 1]);
    }

    /// A direct write between producer and consumer absorbs the demand at
    /// the write's own depth (no +1 for direct modification).
    #[test]
    fn direct_write_absorbs_demand() {
        let produce = sig(
            "produce",
            1,
            vec![Arg::dat_direct(dres(), AccessMode::Write)],
        );
        let consume = sig(
            "consume",
            EDGES,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Read)],
        );
        assert_eq!(calc_halo_extents(&[produce, consume]), vec![1, 1]);
    }

    /// Independent loops (no shared dats) all keep the default depth 1.
    #[test]
    fn independent_loops_depth_one() {
        let sigs: Vec<LoopSig> = (0..4)
            .map(|i| {
                sig(
                    &format!("l{i}"),
                    EDGES,
                    vec![Arg::dat_indirect(DatId(i), e2n(), 0, AccessMode::Inc)],
                )
            })
            .collect();
        let hl = calc_halo_layers(&sigs);
        assert_eq!(hl.per_loop, vec![1, 1, 1, 1]);
    }

    /// A direct read between producer and indirect consumer does not
    /// deepen the producer (branch 3 resets the demand).
    #[test]
    fn direct_read_resets() {
        let produce = sig(
            "produce",
            EDGES,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Inc)],
        );
        let direct = sig("direct", 1, vec![Arg::dat_direct(dres(), AccessMode::Read)]);
        let hl = calc_halo_layers(&[produce, direct]);
        assert_eq!(hl.per_loop, vec![1, 1]);
    }

    /// vflux's shape: a direct-write producer then a consumer that only
    /// reads chain-external dats keeps every core at the standard
    /// depth 1 (the paper's Table 5 shows equal OP2/CA cores for it).
    #[test]
    fn core_depths_vflux_shape() {
        let initres = sig("initres", 1, vec![Arg::dat_direct(dres(), AccessMode::Write)]);
        let vflux_edge = sig(
            "vflux_edge",
            EDGES,
            vec![
                Arg::dat_indirect(dpres(), e2n(), 0, AccessMode::Read),
                Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Inc),
            ],
        );
        assert_eq!(core_depths(&[initres, vflux_edge]), vec![1, 1]);
    }

    /// Read-after-indirect-write deepens; INC-INC pairs commute and do
    /// not.
    #[test]
    fn core_depths_raw_and_commuting_incs() {
        let produce = sig(
            "produce",
            EDGES,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Inc)],
        );
        let consume = sig(
            "consume",
            EDGES,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Read)],
        );
        assert_eq!(core_depths(&[produce.clone(), consume]), vec![1, 2]);
        // Two INCs of the same dat commute: no deepening.
        assert_eq!(core_depths(&[produce.clone(), produce]), vec![1, 1]);
    }

    /// Write-after-read: a later writer's prewait core must clear the
    /// earlier reader's postwait reach (the jacob-chain hazard: the
    /// centreline write must not land before the periodic read).
    #[test]
    fn core_depths_war_hazard() {
        let reader = sig(
            "jac_period",
            EDGES,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Rw)],
        );
        let writer = sig(
            "jac_centreline",
            1,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Write)],
        );
        let corrections = sig(
            "jac_corrections",
            2,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Rw)],
        );
        assert_eq!(core_depths(&[reader, writer, corrections]), vec![1, 2, 3]);
    }

    /// `describe` renders the execution plan with extents, core depths
    /// and the grouped-import line.
    #[test]
    fn describe_renders_plan() {
        let mut dom = crate::Domain::new();
        let nodes = dom.decl_set("nodes", 3);
        let edges = dom.decl_set("edges", 2);
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2]).unwrap();
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let b = dom.decl_dat_zeros("b", nodes, 1);
        fn k(_: &crate::Args<'_>) {}
        let produce = LoopSpec::new(
            "produce",
            edges,
            vec![Arg::dat_indirect(a, e2n, 0, AccessMode::Inc)],
            k,
        );
        let consume = LoopSpec::new(
            "consume",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(b, e2n, 0, AccessMode::Inc),
            ],
            k,
        );
        let chain = ChainSpec::new("pc", vec![produce, consume], None, &[]).unwrap();
        let text = chain.describe(&dom);
        assert!(text.contains("chain `pc`: 2 loops, r = 2 halo layers"));
        assert!(text.contains("produce"));
        assert!(text.contains("ext=2"));
        assert!(text.contains("core_depth=2"));
        assert!(text.contains("a*:INC"));
        assert!(text.contains("grouped import"));
        assert!(text.contains("a@"));
    }

    #[test]
    fn halo_exch_dats_respects_dirty_bits() {
        let consume = sig(
            "consume",
            EDGES,
            vec![
                Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Read),
                Arg::dat_indirect(dpres(), e2n(), 0, AccessMode::Read),
            ],
        );
        // Only dres is dirty on entry: only it is exchanged.
        let dirty = |d: DatId| d == dres();
        let got = halo_exch_dats(std::slice::from_ref(&consume), &dirty);
        assert_eq!(got, vec![dres()]);
        // A clean dat modified by an earlier chain loop and read later is
        // also included (the initial import must be deep enough).
        let produce = sig(
            "produce",
            EDGES,
            vec![Arg::dat_indirect(dpres(), e2n(), 0, AccessMode::Inc)],
        );
        let got = halo_exch_dats(&[produce, consume], &dirty);
        assert!(got.contains(&dpres()));
    }

    #[test]
    fn inc_of_dirty_dat_requires_exchange() {
        // An INC over a dirty dat reads its prior halo values, so the dat
        // must be imported.
        let inc = sig(
            "inc",
            EDGES,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Inc)],
        );
        let got = halo_exch_dats(&[inc], &|_| true);
        assert_eq!(got, vec![dres()]);
        let got = halo_exch_dats(
            &[sig(
                "inc",
                EDGES,
                vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Inc)],
            )],
            &|_| false,
        );
        assert!(got.is_empty());
    }

    const NODES: u32 = 1;
    fn dtmp() -> DatId {
        DatId(3)
    }

    /// A direct Read/Write pair followed by a direct Read of the staged
    /// dat fuses into one group with the scratch dat elided.
    #[test]
    fn fusion_direct_pair_elides_scratch() {
        let stage = sig(
            "stage",
            NODES,
            vec![
                Arg::dat_direct(dres(), AccessMode::Read),
                Arg::dat_direct(dtmp(), AccessMode::Write),
            ],
        );
        let apply = sig(
            "apply",
            NODES,
            vec![
                Arg::dat_direct(dtmp(), AccessMode::Read),
                Arg::dat_direct(dres(), AccessMode::Rw),
            ],
        );
        let fp = fusion_groups(&[stage, apply], &[dtmp()]);
        assert!(fp.has_fusion());
        assert_eq!(fp.groups.len(), 1);
        assert_eq!(fp.groups[0].members(), 0..2);
        assert_eq!(fp.groups[0].elided, vec![dtmp()]);
        assert_eq!(fp.group_of, vec![Some(0), Some(0)]);
        assert_eq!(fp.elided(), vec![dtmp()]);
    }

    /// A set change blocks fusion, and the resulting length-1 run is
    /// dropped rather than emitted as a degenerate group.
    #[test]
    fn fusion_set_change_blocks_and_solo_runs_vanish() {
        let produce = sig(
            "produce",
            EDGES,
            vec![Arg::dat_indirect(dflux(), e2n(), 0, AccessMode::Inc)],
        );
        let stage = sig(
            "stage",
            NODES,
            vec![
                Arg::dat_direct(dres(), AccessMode::Read),
                Arg::dat_direct(dtmp(), AccessMode::Write),
            ],
        );
        let apply = sig(
            "apply",
            NODES,
            vec![Arg::dat_direct(dtmp(), AccessMode::Read)],
        );
        let fp = fusion_groups(&[produce, stage, apply], &[]);
        assert_eq!(fp.groups.len(), 1);
        assert_eq!(fp.groups[0].members(), 1..3);
        assert_eq!(fp.group_of[0], None);
        assert_eq!(fp.blockers[1], Some(FuseBlock::SetChange));
        // No scratch declared ⇒ nothing elided even though the group fused.
        assert!(fp.groups[0].elided.is_empty());
    }

    /// A dat modified and touched indirectly across the pair is a
    /// hazard: fused, the consumer would read location `l` before other
    /// elements' increments arrive through the map.
    #[test]
    fn fusion_shared_indirect_modification_blocks() {
        let produce = sig(
            "produce",
            EDGES,
            vec![Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Inc)],
        );
        let consume = sig(
            "consume",
            EDGES,
            vec![
                Arg::dat_indirect(dres(), e2n(), 0, AccessMode::Read),
                Arg::dat_indirect(dflux(), e2n(), 0, AccessMode::Inc),
            ],
        );
        let fp = fusion_groups(&[produce, consume], &[]);
        assert!(!fp.has_fusion());
        assert_eq!(fp.blockers[1], Some(FuseBlock::SharedHazard(dres())));
    }

    /// Scratch elision needs the exact Write-then-Reads shape inside one
    /// group: a staged dat first accessed as Rw (reads stale memory) is
    /// kept in memory.
    #[test]
    fn fusion_scratch_needs_write_first() {
        let stage = sig(
            "stage",
            NODES,
            vec![Arg::dat_direct(dtmp(), AccessMode::Rw)],
        );
        let apply = sig(
            "apply",
            NODES,
            vec![Arg::dat_direct(dtmp(), AccessMode::Read)],
        );
        let fp = fusion_groups(&[stage, apply], &[dtmp()]);
        assert!(fp.has_fusion());
        assert!(fp.groups[0].elided.is_empty(), "Rw producer must not elide");
    }
}
