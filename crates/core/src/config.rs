//! The loop-chain configuration file (§3.4 of the paper).
//!
//! The only addition CA makes to OP2's code-generation flow is a small
//! configuration file naming the loops to be chained, the loop count and
//! the maximum halo extension. We mirror that with a tiny declarative
//! format:
//!
//! ```text
//! # Hydra chains
//! chain period {
//!     loops = negflag, limxp, periodicity, limxp, periodicity, negflag
//!     max_halo = 2
//!     he 2 = 1          # optional: pin loop at position 2 to HE = 1
//!     he periodicity = 1 # optional: pin every occurrence of a loop name
//! }
//! ```

use crate::chain::ChainSpec;
use crate::error::{CoreError, Result};
use crate::loops::LoopSpec;

/// A per-loop halo-extension override in a chain configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeOverride {
    /// Override the loop at this position (0-based) in the chain.
    Position(usize, usize),
    /// Override every occurrence of this loop name.
    Name(String, usize),
}

/// One `chain { … }` block of a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainConfig {
    /// Chain name.
    pub name: String,
    /// Loop names in program order (repeats allowed).
    pub loops: Vec<String>,
    /// Optional cap on every loop's halo extension.
    pub max_halo: Option<usize>,
    /// Per-loop halo-extension overrides.
    pub overrides: Vec<HeOverride>,
}

impl ChainConfig {
    /// Resolve this configuration against a program (a list of loop
    /// declarations, looked up by name) into a validated [`ChainSpec`].
    pub fn resolve(&self, program: &[LoopSpec]) -> Result<ChainSpec> {
        let mut loops = Vec::with_capacity(self.loops.len());
        for name in &self.loops {
            let spec = program
                .iter()
                .find(|l| &l.name == name)
                .ok_or_else(|| CoreError::UnknownLoop(name.clone()))?;
            loops.push(spec.clone());
        }
        let mut positional: Vec<(usize, usize)> = Vec::new();
        for ov in &self.overrides {
            match ov {
                HeOverride::Position(pos, he) => positional.push((*pos, *he)),
                HeOverride::Name(name, he) => {
                    for (pos, l) in self.loops.iter().enumerate() {
                        if l == name {
                            positional.push((pos, *he));
                        }
                    }
                }
            }
        }
        ChainSpec::new(&self.name, loops, self.max_halo, &positional)
    }
}

/// Parse a chain configuration file. Returns the chains in file order.
pub fn parse_chain_config(text: &str) -> Result<Vec<ChainConfig>> {
    let mut chains = Vec::new();
    let mut current: Option<ChainConfig> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| CoreError::Config {
            line: lineno,
            msg: msg.to_string(),
        };

        if let Some(rest) = line.strip_prefix("chain") {
            if current.is_some() {
                return Err(err("nested `chain` block (missing `}`?)"));
            }
            let rest = rest.trim();
            let Some(name) = rest.strip_suffix('{') else {
                return Err(err("expected `chain <name> {`"));
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err("chain name must be a non-empty identifier"));
            }
            current = Some(ChainConfig {
                name: name.to_string(),
                loops: Vec::new(),
                max_halo: None,
                overrides: Vec::new(),
            });
        } else if line == "}" {
            let chain = current.take().ok_or_else(|| err("unmatched `}`"))?;
            if chain.loops.is_empty() {
                return Err(err("chain has no `loops = …` line"));
            }
            chains.push(chain);
        } else {
            let chain = current
                .as_mut()
                .ok_or_else(|| err("directive outside a `chain { … }` block"))?;
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "loops" => {
                    chain.loops = value
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if chain.loops.is_empty() {
                        return Err(err("`loops` list is empty"));
                    }
                }
                "max_halo" => {
                    chain.max_halo = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| err("`max_halo` must be an integer"))?,
                    );
                }
                _ if key.starts_with("he ") || key.starts_with("he\t") => {
                    let target = key[2..].trim();
                    let he = value
                        .parse::<usize>()
                        .map_err(|_| err("halo-extension override must be an integer"))?;
                    if he == 0 {
                        return Err(err("halo extension must be at least 1"));
                    }
                    let ov = match target.parse::<usize>() {
                        Ok(pos) => HeOverride::Position(pos, he),
                        Err(_) => HeOverride::Name(target.to_string(), he),
                    };
                    chain.overrides.push(ov);
                }
                _ => return Err(err(&format!("unknown key `{key}`"))),
            }
        }
    }
    if current.is_some() {
        return Err(CoreError::Config {
            line: text.lines().count(),
            msg: "unterminated `chain` block".into(),
        });
    }
    Ok(chains)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_example() {
        let text = r#"
            # two chains
            chain period {
                loops = negflag, limxp, periodicity, limxp, periodicity, negflag
                max_halo = 2
                he periodicity = 1
                he 0 = 2
            }
            chain vflux {
                loops = initres, vflux_edge
            }
        "#;
        let chains = parse_chain_config(text).unwrap();
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].name, "period");
        assert_eq!(chains[0].loops.len(), 6);
        assert_eq!(chains[0].max_halo, Some(2));
        assert_eq!(chains[0].overrides.len(), 2);
        assert_eq!(
            chains[0].overrides[0],
            HeOverride::Name("periodicity".into(), 1)
        );
        assert_eq!(chains[0].overrides[1], HeOverride::Position(0, 2));
        assert_eq!(chains[1].loops, vec!["initres", "vflux_edge"]);
        assert_eq!(chains[1].max_halo, None);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_chain_config("chain x {").is_err()); // unterminated
        assert!(parse_chain_config("loops = a").is_err()); // outside block
        assert!(parse_chain_config("chain x {\n}").is_err()); // no loops
        assert!(parse_chain_config("chain x {\n loops = a\n max_halo = y\n}").is_err());
        assert!(parse_chain_config("chain x {\n loops = a\n he 0 = 0\n}").is_err());
        assert!(parse_chain_config("chain 1bad! {\n loops = a\n}").is_err());
        assert!(parse_chain_config("}").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# c\nchain a { # inline\n loops = x # names\n}\n";
        let chains = parse_chain_config(text).unwrap();
        assert_eq!(chains[0].loops, vec!["x"]);
    }
}
