//! Sequential reference executor.
//!
//! Runs a parallel loop over the *global* domain on one thread, in set
//! order. Every other back-end (distributed Alg 1, CA Alg 2, simulated
//! GPU) is tested against this executor: for the order-independent kernels
//! the abstraction admits, results must agree to machine precision — and
//! the test-suite in fact demands exact equality on meshes where each
//! increment sequence is identical.
//!
//! Since the [`crate::schedule`] refactor this module is a thin facade:
//! argument resolution and kernel invocation live in
//! [`crate::schedule::BoundLoop`], and every entry point here lowers to a
//! degenerate one-level [`crate::schedule::Schedule`] (or runs a bound
//! loop's iteration list directly). There is no second execution loop.

use crate::domain::Domain;
use crate::loops::LoopSpec;
use crate::schedule::{run_loop_schedule, run_loop_schedule_threads, BoundLoop, Schedule};

/// Result of one loop execution: the final values of every global
/// argument (constants come back unchanged, reductions hold the sum).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoopResult {
    /// One buffer per [`crate::access::GblDecl`], in declaration order.
    pub gbls: Vec<Vec<f64>>,
}

/// Execute `spec` over the whole domain. Panics (debug) on descriptor
/// misuse; validate with [`LoopSpec::validate`] first for graceful errors.
pub fn run_loop(dom: &mut Domain, spec: &LoopSpec) -> LoopResult {
    let n_iter = dom.set(spec.set).size;
    run_loop_range(dom, spec, 0, n_iter)
}

/// Execute `spec` over an explicit iteration list — the building block
/// of sparse-tiled execution, where each tile owns an arbitrary subset
/// of every loop's iteration space. (A degenerate single-chunk schedule;
/// the list is borrowed rather than lowered to avoid copying it.)
pub fn run_loop_indexed(dom: &mut Domain, spec: &LoopSpec, iters: &[u32]) -> LoopResult {
    let mut gbl_bufs: Vec<Vec<f64>> = spec.gbls.iter().map(|g| g.init.clone()).collect();
    let bound = BoundLoop::bind(dom, spec, &mut gbl_bufs);
    bound.run_list(iters);
    LoopResult { gbls: gbl_bufs }
}

/// Execute `spec` over iterations `[start, end)` of its set — the building
/// block the distributed executors share (core / halo segments are ranges
/// after renumbering).
pub fn run_loop_range(dom: &mut Domain, spec: &LoopSpec, start: usize, end: usize) -> LoopResult {
    run_loop_schedule(dom, spec, &Schedule::range(start, end))
}

/// Execute `spec` color by color, each color's conflict-free iterations
/// spread over `n_threads` OS threads — OP2's shared-memory execution
/// scheme (the coloring guarantees no two concurrent iterations modify
/// the same element, so no atomics are needed; colors are barriers).
/// Lowered through [`Schedule::from_coloring`].
///
/// Within one color the per-element modification order is fixed by the
/// color sequence, so results are **independent of the thread count**
/// (and equal to plain sequential execution exactly when increments are
/// integer-valued, to rounding otherwise).
///
/// # Panics
/// Panics if the loop carries global reduction arguments (reduce
/// sequentially instead, or pre-split the reduction).
pub fn run_loop_colored_parallel(
    dom: &mut Domain,
    spec: &LoopSpec,
    coloring: &crate::coloring::Coloring,
    n_threads: usize,
) {
    assert!(n_threads >= 1);
    debug_assert!(crate::coloring::is_valid_coloring(dom, &spec.sig(), coloring));
    // Chunk each color so every thread gets one contiguous slice.
    let widest = coloring.by_color.iter().map(Vec::len).max().unwrap_or(0);
    let sched = Schedule::from_coloring(coloring, widest.div_ceil(n_threads).max(1));
    run_loop_schedule_threads(dom, spec, &sched, n_threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMode, Arg, GblDecl};
    use crate::kernel::Args;

    /// Figure 2's `update` kernel on the Figure 1 mesh shape: edges
    /// increment node residuals from node pressures.
    fn update_kernel(args: &Args<'_>) {
        // args: res1 INC, res2 INC, pres1 READ, pres2 READ (dim 2 each)
        args.inc(0, 0, args.get(2, 0) - args.get(2, 1));
        args.inc(0, 1, args.get(3, 0) - args.get(3, 1));
        args.inc(1, 0, args.get(3, 1) - args.get(3, 0));
        args.inc(1, 1, args.get(2, 1) - args.get(2, 0));
    }

    #[test]
    fn indirect_increment_matches_hand_rolled() {
        // Path graph: 3 nodes, 2 edges.
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 3);
        let edges = dom.decl_set("edges", 2);
        let e2n = dom
            .decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2])
            .unwrap();
        let pres = dom.decl_dat("pres", nodes, 2, vec![1.0, 2.0, 3.0, 5.0, 8.0, 13.0]);
        let res = dom.decl_dat_zeros("res", nodes, 2);

        let spec = LoopSpec::new(
            "update",
            edges,
            vec![
                Arg::dat_indirect(res, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(res, e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(pres, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(pres, e2n, 1, AccessMode::Read),
            ],
            update_kernel,
        );
        spec.validate(&dom).unwrap();
        run_loop(&mut dom, &spec);

        // Hand-rolled expectation.
        let p = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0];
        let mut expect = [0.0; 6];
        for (a, b) in [(0usize, 1usize), (1, 2)] {
            expect[2 * a] += p[2 * a] - p[2 * a + 1];
            expect[2 * a + 1] += p[2 * b] - p[2 * b + 1];
            expect[2 * b] += p[2 * b + 1] - p[2 * b];
            expect[2 * b + 1] += p[2 * a + 1] - p[2 * a];
        }
        assert_eq!(dom.dat(res).data.as_slice(), &expect);
    }

    fn sumsq_kernel(args: &Args<'_>) {
        let v = args.get(0, 0);
        args.inc(1, 0, v * v);
    }

    #[test]
    fn global_reduction_sums() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 4);
        let x = dom.decl_dat("x", nodes, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let spec = LoopSpec::with_gbls(
            "sumsq",
            nodes,
            vec![
                Arg::dat_direct(x, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            sumsq_kernel,
        );
        spec.validate(&dom).unwrap();
        let res = run_loop(&mut dom, &spec);
        assert_eq!(res.gbls[0], vec![30.0]);
    }

    fn scale_kernel(args: &Args<'_>) {
        let factor = args.get(1, 0);
        args.set(0, 0, args.get(0, 0) * factor);
    }

    #[test]
    fn constant_gbl_and_range_execution() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 4);
        let x = dom.decl_dat("x", nodes, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let spec = LoopSpec::with_gbls(
            "scale",
            nodes,
            vec![
                Arg::dat_direct(x, AccessMode::Rw),
                Arg::gbl(0, AccessMode::Read),
            ],
            vec![GblDecl::constant(&[3.0])],
            scale_kernel,
        );
        // Only iterations 1..3.
        run_loop_range(&mut dom, &spec, 1, 3);
        assert_eq!(dom.dat(x).data, vec![1.0, 3.0, 3.0, 1.0]);
    }
}
