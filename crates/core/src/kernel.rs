//! The kernel calling convention.
//!
//! OP2 kernels are small "user functions" applied once per set element,
//! receiving pointers to each argument's data for that element (gathered
//! through the maps by the back-end). Here a kernel is a plain function
//! pointer taking an [`Args`] view; per-component accessors (`get` / `set`
//! / `inc`) replace raw pointer arithmetic.
//!
//! Accessors are *value-based* rather than handing out `&mut [f64]`
//! because two arguments of one iteration may legally alias (e.g. an edge
//! whose two map entries resolve to the same node); value-based access
//! through raw pointers is sound under aliasing, while two live `&mut`
//! would not be. Mode misuse (writing through a `Read` argument, …) is
//! caught by debug assertions, mirroring how OP2 relies on the access
//! descriptors being truthful.

use crate::access::AccessMode;

/// A user kernel: one invocation per set element.
pub type KernelFn = fn(&Args<'_>);

/// Resolved location of one argument for the current iteration.
#[derive(Debug, Clone, Copy)]
pub struct ArgSlot {
    /// First component of this argument's data for the current element.
    pub ptr: *mut f64,
    /// Number of components.
    pub dim: u32,
    /// Declared access mode (checked in debug builds).
    pub mode: AccessMode,
}

/// View of all arguments for one iteration, passed to the kernel.
pub struct Args<'a> {
    slots: &'a [ArgSlot],
}

impl<'a> Args<'a> {
    /// Build a view over resolved slots. Called by executors only.
    ///
    /// # Safety contract (enforced by executors, not the type system)
    /// Every slot pointer must be valid for reads and (if the mode
    /// modifies) writes of `dim` consecutive `f64`s for the lifetime of the
    /// kernel invocation, and no other thread may access that memory
    /// concurrently.
    #[inline]
    pub fn new(slots: &'a [ArgSlot]) -> Self {
        Args { slots }
    }

    /// Number of arguments.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the loop has no arguments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Dimension (component count) of argument `arg`.
    #[inline]
    pub fn dim(&self, arg: usize) -> usize {
        self.slots[arg].dim as usize
    }

    #[inline]
    fn slot(&self, arg: usize, comp: usize) -> &ArgSlot {
        let s = &self.slots[arg];
        debug_assert!(
            comp < s.dim as usize,
            "component {comp} out of range for argument {arg} (dim {})",
            s.dim
        );
        s
    }

    /// Read component `comp` of argument `arg`. Valid for `Read`, `Rw` and
    /// `Inc` arguments.
    #[inline]
    pub fn get(&self, arg: usize, comp: usize) -> f64 {
        let s = self.slot(arg, comp);
        debug_assert!(
            s.mode.reads(),
            "argument {arg} has mode {:?} and may not be read",
            s.mode
        );
        // SAFETY: executor guarantees validity; see `Args::new`.
        unsafe { *s.ptr.add(comp) }
    }

    /// Overwrite component `comp` of argument `arg`. Valid for `Write` and
    /// `Rw` arguments.
    #[inline]
    pub fn set(&self, arg: usize, comp: usize, v: f64) {
        let s = self.slot(arg, comp);
        debug_assert!(
            matches!(s.mode, AccessMode::Write | AccessMode::Rw),
            "argument {arg} has mode {:?} and may not be overwritten",
            s.mode
        );
        // SAFETY: executor guarantees validity; see `Args::new`.
        unsafe { *s.ptr.add(comp) = v }
    }

    /// Increment component `comp` of argument `arg`. Valid for `Inc`
    /// arguments only.
    #[inline]
    pub fn inc(&self, arg: usize, comp: usize, v: f64) {
        let s = self.slot(arg, comp);
        debug_assert!(
            s.mode == AccessMode::Inc,
            "argument {arg} has mode {:?} and may not be incremented",
            s.mode
        );
        // SAFETY: executor guarantees validity; see `Args::new`.
        unsafe { *s.ptr.add(comp) += v }
    }

    /// Combine component `comp` of argument `arg` with `v` by minimum.
    /// Valid for `Inc`-mode (reduction) arguments.
    #[inline]
    pub fn reduce_min(&self, arg: usize, comp: usize, v: f64) {
        let s = self.slot(arg, comp);
        debug_assert!(s.mode == AccessMode::Inc);
        // SAFETY: executor guarantees validity; see `Args::new`.
        unsafe {
            let cur = *s.ptr.add(comp);
            *s.ptr.add(comp) = cur.min(v);
        }
    }

    /// Combine component `comp` of argument `arg` with `v` by maximum.
    /// Valid for `Inc`-mode (reduction) arguments.
    #[inline]
    pub fn reduce_max(&self, arg: usize, comp: usize, v: f64) {
        let s = self.slot(arg, comp);
        debug_assert!(s.mode == AccessMode::Inc);
        // SAFETY: executor guarantees validity; see `Args::new`.
        unsafe {
            let cur = *s.ptr.add(comp);
            *s.ptr.add(comp) = cur.max(v);
        }
    }

    /// Copy all components of argument `arg` into `out` (a gather helper
    /// for kernels that want a local array).
    #[inline]
    pub fn load(&self, arg: usize, out: &mut [f64]) {
        let s = &self.slots[arg];
        debug_assert!(s.mode.reads());
        debug_assert!(out.len() <= s.dim as usize);
        for (c, o) in out.iter_mut().enumerate() {
            // SAFETY: executor guarantees validity; see `Args::new`.
            *o = unsafe { *s.ptr.add(c) };
        }
    }
}

#[cfg(test)]
#[allow(dropping_references, clippy::drop_non_drop)]
mod tests {
    use super::*;

    #[test]
    fn get_set_inc_roundtrip() {
        let mut a = [1.0, 2.0];
        let mut b = [10.0];
        let slots = [
            ArgSlot {
                ptr: a.as_mut_ptr(),
                dim: 2,
                mode: AccessMode::Rw,
            },
            ArgSlot {
                ptr: b.as_mut_ptr(),
                dim: 1,
                mode: AccessMode::Inc,
            },
        ];
        let args = Args::new(&slots);
        assert_eq!(args.len(), 2);
        assert_eq!(args.dim(0), 2);
        assert_eq!(args.get(0, 1), 2.0);
        args.set(0, 0, 5.0);
        args.inc(1, 0, 2.5);
        drop(args);
        assert_eq!(a, [5.0, 2.0]);
        assert_eq!(b, [12.5]);
    }

    #[test]
    fn aliased_slots_are_sound() {
        // Two arguments resolving to the same element, as happens when an
        // edge's two map entries coincide: increments must both land.
        let mut x = [0.0];
        let slots = [
            ArgSlot {
                ptr: x.as_mut_ptr(),
                dim: 1,
                mode: AccessMode::Inc,
            },
            ArgSlot {
                ptr: x.as_mut_ptr(),
                dim: 1,
                mode: AccessMode::Inc,
            },
        ];
        let args = Args::new(&slots);
        args.inc(0, 0, 1.0);
        args.inc(1, 0, 2.0);
        drop(args);
        assert_eq!(x[0], 3.0);
    }

    #[test]
    fn load_gathers_components() {
        let mut a = [3.0, 4.0, 5.0];
        let slots = [ArgSlot {
            ptr: a.as_mut_ptr(),
            dim: 3,
            mode: AccessMode::Read,
        }];
        let args = Args::new(&slots);
        let mut out = [0.0; 3];
        args.load(0, &mut out);
        assert_eq!(out, [3.0, 4.0, 5.0]);
    }
}
